#!/usr/bin/env python3
"""Quickstart: bring up BM-Store, provision a tenant disk out of band,
and run I/O against it.

This walks the full paper architecture in ~40 lines of user code:

1. build a host with a BM-Store card and four NVMe drives behind it
2. the *remote console* (MCTP over PCIe -> BMS-Controller) creates a
   namespace and binds it to an SR-IOV virtual function — the host OS
   is never involved
3. the unmodified host NVMe driver binds the VF like any disk
4. fio-style load runs; the I/O monitor is read back out of band

Run:  python3 examples/quickstart.py
"""

from repro.baselines import build_bmstore
from repro.host import NVMeDriver
from repro.obs import MetricsRegistry
from repro.sim.units import GIB, MS
from repro.workloads import FioSpec, run_fio


def main() -> None:
    # 1. the rig: host + BMS-Engine/BMS-Controller card + 4 x P4510,
    #    with a metrics registry attached (the paper's I/O monitor)
    obs = MetricsRegistry()
    rig = build_bmstore(num_ssds=4, obs=obs)
    sim, console = rig.sim, rig.console

    # 2. out-of-band provisioning: 256 GiB namespace -> VF 5
    def provision():
        resp = yield console.create_namespace("tenant-disk", 256 * GIB)
        assert resp.ok, resp.body
        resp = yield console.bind_namespace("tenant-disk", fn=5)
        assert resp.ok, resp.body
        print("provisioned 256 GiB namespace on VF 5 (no host involvement)")

    sim.run(sim.process(provision()))

    # 3. the tenant's standard NVMe driver binds the VF
    fn = rig.engine.sriov.function_by_id(5)
    driver = NVMeDriver(rig.host, fn, name="tenant-nvme", obs=obs)
    print(f"bound {fn!r}: {driver.num_blocks * 4096 / GIB:.0f} GiB")

    # 4. run 4K random read, qd 32 x 4 jobs
    spec = FioSpec("demo", "randread", 4096, iodepth=32, numjobs=4,
                   runtime_ns=20 * MS, ramp_ns=2 * MS)
    result = run_fio(sim, [driver], spec, rig.streams)
    print(f"fio {spec.op}: {result.iops / 1000:.0f} KIOPS, "
          f"avg latency {result.avg_latency_us:.1f} us")

    # 5. the vendor reads the I/O monitor out of band
    def monitor():
        resp = yield console.io_stats(fn=5)
        print(f"I/O monitor (via MCTP/NVMe-MI): {resp.body}")
        resp = yield console.health()
        print(f"fleet health: {resp.body['num_ssds']} drives, "
              f"{resp.body['total_ios']} total I/Os")
        resp = yield console.io_monitor()
        ns_ops = {k: v for k, v in resp.body["counters"].items()
                  if k.startswith("ns_ops")}
        print(f"per-namespace ops (metrics snapshot): {ns_ops}")

    sim.run(sim.process(monitor()))

    # 6. the same registry holds full Fig. 6 spans: per-stage latency
    lat = obs.histograms("span_total_ns").get(())
    if lat is not None and lat.count:
        print(f"span latency (submit->interrupt): p50 {lat.p50 / 1e3:.1f} us, "
              f"p99 {lat.p99 / 1e3:.1f} us over {lat.count} spans")


if __name__ == "__main__":
    main()
