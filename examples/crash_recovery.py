#!/usr/bin/env python3
"""Durability end to end: crash the databases and recover them.

Runs on a BM-Store virtual disk, because the durability chain the
recovery relies on — WAL ordering, group commit, page writeback — goes
through the full engine datapath:

* MiniSQL (ARIES-lite): committed transactions survive with no page
  flushes; an uncommitted transaction that leaked to disk is undone.
* MiniKV (WAL replay): synced puts survive; the unsynced tail is lost.

Run:  python3 examples/crash_recovery.py
"""

from repro.apps.minikv import MiniKV, MiniKVConfig, KVRecoveryReport, crash_and_recover_kv
from repro.apps.minisql import (
    MiniSQL,
    MiniSQLConfig,
    RecoveryReport,
    TableSchema,
    crash_and_recover,
)
from repro.baselines import build_bmstore
from repro.sim.units import GIB


def main() -> None:
    rig = build_bmstore(num_ssds=2)
    sql_disk = rig.baremetal_driver(rig.provision("sql", 64 * GIB))
    kv_disk = rig.baremetal_driver(rig.provision("kv", 64 * GIB))
    sim = rig.sim

    # ----------------------------------------------------------- MiniSQL
    db = MiniSQL(sim, sql_disk, MiniSQLConfig(buffer_pool_pages=16,
                                              stmt_cpu_ns=0, row_cpu_ns=0))
    db.create_table(TableSchema("accounts", "id", ("id", "balance")))

    def sql_scenario():
        txn = db.begin()
        for i in range(20):
            yield from txn.insert("accounts", {"id": i, "balance": 100})
        yield from txn.commit()
        print("committed 20 accounts (pages still dirty in the pool)")

        loser = db.begin()
        yield from loser.update("accounts", 0, {"balance": -1_000_000})
        yield from db.pool.flush_all()  # the uncommitted change LEAKS to disk
        print("uncommitted update leaked to disk via page writeback ... CRASH")

        report = RecoveryReport()
        recovered = yield from crash_and_recover(db, report)
        print(f"recovery: {len(report.winners)} winner txns, "
              f"{len(report.losers)} losers, redone {report.redone}, "
              f"undone {report.undone}, {report.rows_recovered} rows")
        txn = recovered.begin()
        row = yield from txn.select("accounts", 0)
        yield from txn.commit()
        print(f"account 0 after recovery: {row}  (leak rolled back)\n")

    sim.run(sim.process(sql_scenario()))

    # ------------------------------------------------------------ MiniKV
    kv = MiniKV(sim, kv_disk, MiniKVConfig(memtable_bytes=4 * 1024,
                                           sync_writes=False, carry_data=True))

    def kv_scenario():
        for i in range(200):
            yield from kv.put(b"key%03d" % i, b"synced")
        yield kv.wal.sync()
        for i in range(200, 205):
            yield from kv.put(b"key%03d" % i, b"unsynced")
        print(f"LSM store: 200 synced puts ({kv.stats.flushes} flushes), "
              "5 unsynced ... CRASH")

        report = KVRecoveryReport()
        recovered = yield from crash_and_recover_kv(kv, report)
        print(f"recovery: {report.tables_restored} SSTables from the MANIFEST, "
              f"replayed {report.wal_records_replayed} WAL records "
              f"({report.wal_blocks_read} blocks scanned)")
        survived = 0
        for i in range(205):
            if (yield from recovered.get(b"key%03d" % i)) is not None:
                survived += 1
        print(f"{survived}/205 keys survived (the 5 unsynced are gone, "
              "as RocksDB semantics dictate)")

    sim.run(sim.process(kv_scenario()))


if __name__ == "__main__":
    main()
