#!/usr/bin/env python3
"""Fleet operations on a bare-metal host the vendor cannot log into.

The paper's manageability story end to end, entirely out of band:

* provision three tenants with different QoS classes
* watch the per-tenant I/O monitor while they run
* hot-upgrade an SSD's firmware under live tenant I/O (no errors)
* hot-plug-replace a "failing" drive while the tenants' logical disks
  keep their identities

Run:  python3 examples/fleet_maintenance.py
"""

from repro.baselines import build_bmstore
from repro.nvme import NVMeSSD
from repro.sim.units import GIB, MS, sec

TENANTS = [
    ("gold", 5, None, None),           # uncapped
    ("silver", 6, 200_000, 1500.0),    # 200K IOPS / 1.5 GB/s
    ("bronze", 7, 50_000, 400.0),      # 50K IOPS / 400 MB/s
]


def main() -> None:
    rig = build_bmstore(num_ssds=4)
    sim, console = rig.sim, rig.console
    log = lambda msg: print(f"[t={sim.now / 1e9:7.3f}s] {msg}")

    # --- provision three QoS classes, all out of band ---------------------
    def provision():
        for name, fn, iops, mbps in TENANTS:
            resp = yield console.create_namespace(
                name, 128 * GIB, max_iops=iops, max_mbps=mbps,
            )
            assert resp.ok
            resp = yield console.bind_namespace(name, fn=fn)
            assert resp.ok
            log(f"tenant {name!r} on VF {fn} "
                f"(cap: {iops or 'unlimited'} IOPS / {mbps or 'unlimited'} MB/s)")

    sim.run(sim.process(provision()))

    # --- tenants run continuous 4K random reads ---------------------------
    drivers = {
        name: rig.baremetal_driver(rig.engine.sriov.function_by_id(fn))
        for name, fn, _, _ in TENANTS
    }
    stats = {name: {"ios": 0, "errors": 0} for name, *_ in TENANTS}
    stop = {"flag": False}

    def tenant_io(name, driver, depth=16):
        def worker(w):
            lba = w * 131
            while not stop["flag"]:
                info = yield driver.read(lba % driver.num_blocks, 1)
                stats[name]["ios"] += 1
                if not info.ok:
                    stats[name]["errors"] += 1
                lba += 977
        for w in range(depth):
            sim.process(worker(w), name=f"{name}.{w}")

    for name, *_ in TENANTS:
        tenant_io(name, drivers[name])

    # --- operations timeline ----------------------------------------------
    def operations():
        yield sim.timeout(50 * MS)
        for name, fn, *_ in TENANTS:
            resp = yield console.io_stats(fn)
            log(f"monitor {name}: {resp.body['read_ops']} reads so far")

        log("starting firmware hot-upgrade of SSD 0 under live I/O ...")
        resp = yield console.hot_upgrade(0, version="FW-2026.07", activation_s=6.5)
        body = resp.body
        log(f"hot-upgrade done: total {body['total_s']:.2f}s, "
            f"I/O paused {body['io_pause_s']:.2f}s, "
            f"BM-Store processing {body['processing_ms']:.0f}ms")

        yield sim.timeout(100 * MS)
        log("SSD 3 reports as failing; staging replacement and hot-plugging ...")
        replacement = NVMeSSD(sim, rig.engine.backend_fabric, rig.streams,
                              name="spare-drive")
        rig.controller.stage_replacement(3, replacement)
        resp = yield console.hot_plug_replace(3)
        log(f"hot-plug done: paused {resp.body['io_pause_ms']:.0f}ms, "
            f"front-end identity preserved: {resp.body['front_end_preserved']}")

        yield sim.timeout(100 * MS)
        stop["flag"] = True

    done = sim.process(operations(), name="ops")
    sim.run(done)
    sim.run(until=sim.now + sec(0.05))

    print()
    for name, *_ in TENANTS:
        s = stats[name]
        rate = s["ios"] / (sim.now / 1e9)
        print(f"tenant {name:7}: {s['ios']:8d} I/Os (~{rate / 1000:6.0f} K IOPS "
              f"avg incl. pauses), {s['errors']} errors")
    print("\nNo tenant saw a single I/O error through a firmware upgrade "
          "and a drive replacement — the paper's availability claim.")


if __name__ == "__main__":
    main()
