#!/usr/bin/env python3
"""Fleet operations across servers the vendor cannot log into.

The paper's manageability story at datacenter scale, on the
``repro.fleet`` control plane:

* build a small fleet (6 servers across 3 racks / failure domains)
* generate tenants from the workload profile catalogue and place them
  with the QoS-aware policy (gold spread with reserved headroom)
* run a failure-domain-aware rolling firmware hot-upgrade under live
  tenant I/O — at most one server per rack per wave
* arm a surprise hot-removal on one server; watch the control plane
  drain it and re-place its tenants on the residual fleet
* read the per-wave fleet availability and per-tenant SLO ledger

Run:  python3 examples/fleet_maintenance.py
"""

from repro.fleet import (
    FleetRunConfig,
    build_fleet,
    make_tenants,
    place,
    plan_waves,
    render_report,
    run_fleet,
)

SERVERS, RACKS, TENANTS = 6, 3, 12


def main() -> None:
    fleet = build_fleet(num_servers=SERVERS, num_racks=RACKS)
    tenants = make_tenants(TENANTS, seed=11)

    # --- the control plane's view before anything runs --------------------
    placement = place(fleet, tenants, policy="qos")
    print(f"fleet: {len(fleet)} servers in {len(fleet.racks)} failure domains")
    for row in placement.describe()["servers"]:
        print(f"  {row['server']} ({row['rack']}): "
              f"{len(row['tenants'])} tenants, "
              f"{row['chunks_used']}/{row['chunk_capacity']} chunks, "
              f"{row['iops_used'] / 1e3:.0f}K/{row['iops_capacity'] / 1e3:.0f}K "
              f"nominal IOPS")
    waves = plan_waves(fleet, max_per_domain=1)
    print(f"\nupgrade plan: {len(waves)} waves, <=1 server per rack per wave")
    for k, wave in enumerate(waves):
        print(f"  wave {k}: {', '.join(wave)}")

    # --- run it: rolling upgrade + a surprise hot-removal -----------------
    print("\nrunning rolling hot-upgrade with a hot-remove armed ...\n")
    report = run_fleet(fleet, tenants, policy="qos", faults="hot-remove",
                       seed=11, config=FleetRunConfig.quick())
    print(render_report(report))

    # --- the SLO ledger ----------------------------------------------------
    print("\nper-tenant SLO ledger (planned maintenance excluded):")
    for row in report["tenants"]:
        status = "ok" if row["availability_met"] and row["p99_met"] else "SLO!"
        print(f"  [{status:<4}] {row['tenant']:<22} {row['qos']:<7} "
              f"on {row['server']:<5} "
              f"avail {row['unplanned_availability']:.1%} "
              f"(budget used {row['error_budget_consumed']:.0%}), "
              f"p99 {row['p99_us']:.0f} us")

    upgraded = report["summary"]["servers_upgraded"]
    print(f"\nall {upgraded} servers took new firmware; tenant I/O kept "
          "flowing through every wave — the paper's availability claim, "
          "fleet-wide.")


if __name__ == "__main__":
    main()
