#!/usr/bin/env python3
"""Regenerate every table and figure of the BM-Store paper.

Prints each reproduced artifact as a text table.  The full sweep takes
some minutes; ``--quick`` runs the cheap subset, ``--only fig8`` (or any
id substring) selects specific experiments.

Run:  python3 examples/reproduce_paper.py [--quick] [--only SUBSTR]
"""

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    extensions,
    fig1,
    fig8_table5,
    fig9_table7,
    fig10,
    fig11,
    fig12,
    fig13a,
    fig13b_table8,
    fig14,
    fig15_table9,
    latency_breakdown,
    table1,
    table2,
    table6,
    tco_analysis,
)

EXPERIMENTS = [
    ("table1", table1.run, True),
    ("table2", table2.run, True),
    ("tco", tco_analysis.run, True),
    ("fig1", fig1.run, False),
    ("fig8+table5", fig8_table5.run, False),
    ("table6", table6.run, False),
    ("fig9+table7", fig9_table7.run, False),
    ("fig10", fig10.run, False),
    ("fig11", fig11.run, False),
    ("fig12", fig12.run, False),
    ("fig13a", fig13a.run, False),
    ("fig13b+table8", fig13b_table8.run, False),
    ("fig14", fig14.run, False),
    ("fig15+table9", fig15_table9.run, False),
    ("ablation-zerocopy", ablations.run_zero_copy, False),
    ("ablation-qos", ablations.run_qos_isolation, False),
    ("ablation-arm", ablations.run_arm_offload, False),
    ("latency-breakdown", latency_breakdown.run, False),
    ("ext-sata", extensions.run_sata_tiers, False),
    ("ext-remote", extensions.run_remote_tiers, False),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="only the instant (analytic) artifacts")
    parser.add_argument("--only", default=None,
                        help="run experiments whose id contains this substring")
    args = parser.parse_args(argv)

    for exp_id, run, instant in EXPERIMENTS:
        if args.quick and not instant:
            continue
        if args.only and args.only not in exp_id:
            continue
        start = time.time()
        result = run()
        print(result.table())
        print(f"  ({time.time() - start:.1f}s wall)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
