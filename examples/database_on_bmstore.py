#!/usr/bin/env python3
"""Run real database workloads on virtual local storage.

The paper's application evaluation in miniature: a MySQL-style engine
under Sysbench OLTP and a RocksDB-style LSM store under YCSB, each
inside a VM backed by a BM-Store VF, compared against VFIO pass-through
and SPDK vhost on identical hardware.

Run:  python3 examples/database_on_bmstore.py
"""

from dataclasses import replace

from repro.apps.minikv import MiniKV, MiniKVConfig
from repro.apps.minisql import MiniSQL, MiniSQLConfig
from repro.experiments.common import build_vm_targets
from repro.sim.units import MS
from repro.workloads import (
    SysbenchSpec,
    YCSB_WORKLOADS,
    run_sysbench,
    run_ycsb,
)

SQL_SPEC = SysbenchSpec(table_size=12000, threads=16,
                        runtime_ns=30 * MS, ramp_ns=3 * MS)
KV_SPEC = replace(YCSB_WORKLOADS["B"], record_count=15_000, threads=8,
                  runtime_ns=30 * MS, ramp_ns=3 * MS)


def main() -> None:
    print(f"{'scheme':10} | {'sysbench qps':>12} | {'txn lat ms':>10} | "
          f"{'YCSB-B ops/s':>12} | {'p99 us':>8}")
    print("-" * 65)
    for scheme in ("vfio", "bmstore", "spdk"):
        # MySQL/Sysbench world
        sim, streams, targets = build_vm_targets(scheme, 1)
        sql = MiniSQL(sim, targets[0], MiniSQLConfig(buffer_pool_pages=96))
        sql_res = run_sysbench(sim, sql, SQL_SPEC, streams)

        # RocksDB/YCSB world (fresh rig, same scheme)
        sim, streams, targets = build_vm_targets(scheme, 1, seed=11)
        # small memtable: the 15K-record dataset lives in SSTables, so
        # reads exercise the storage scheme rather than RAM
        kv = MiniKV(sim, targets[0],
                    MiniKVConfig(sync_writes=False, memtable_bytes=128 * 1024))
        kv_res = run_ycsb(sim, kv, KV_SPEC, streams)

        print(f"{scheme:10} | {sql_res.qps:12,.0f} | "
              f"{sql_res.avg_latency_ms:10.2f} | "
              f"{kv_res.throughput_ops:12,.0f} | "
              f"{kv_res.latency.p99_us if kv_res.latency else 0:8.1f}")
    print("\n(BM-Store tracks VFIO pass-through; SPDK vhost pays its "
          "polling-core tax — the paper's Fig. 13/14 story.)")


if __name__ == "__main__":
    main()
