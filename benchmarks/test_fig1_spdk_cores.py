"""Fig. 1 — SPDK vhost bandwidth vs bound polling cores on 4 SSDs."""

from conftest import reproduce

from repro.experiments import fig1


def test_fig1_spdk_cores(benchmark):
    result = reproduce(benchmark, fig1.run)
    by_cores = {row["cores"]: row for row in result.rows}
    native = by_cores[0]["bandwidth_gbps"]

    # bandwidth rises with cores
    series = [by_cores[c]["bandwidth_gbps"] for c in (1, 2, 4, 6, 8)]
    assert all(b2 > b1 for b1, b2 in zip(series, series[1:]))
    # paper headline: ~8 cores reach only ~80% of native (not 100%)
    assert 0.65 <= by_cores[8]["pct_of_native"] / 100 <= 0.90
    # one core is far from enough for four drives
    assert by_cores[1]["pct_of_native"] < 30
    # the polling cores are pegged while underprovisioned
    assert by_cores[4]["vhost_cpu_util"] > 0.9
