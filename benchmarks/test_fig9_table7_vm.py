"""Fig. 9 + Table VII — single-VM: VFIO vs BM-Store vs SPDK vhost."""

from conftest import reproduce

from repro.experiments import fig9_table7


def test_fig9_table7_vm(benchmark):
    result = reproduce(benchmark, fig9_table7.run)
    rows = {row["case"]: row for row in result.rows}

    # paper: BM-Store at 95.6-102.7% of VFIO except rand-w-1 (81.2%)
    for case in ("rand-r-1", "rand-r-128", "rand-w-16", "seq-r-256", "seq-w-256"):
        assert 0.92 <= rows[case]["bmstore_vs_vfio"] <= 1.05, case
    assert 0.72 <= rows["rand-w-1"]["bmstore_vs_vfio"] <= 0.92

    # paper: SPDK vhost at 63-96% of VFIO, worst on seq-r-256
    for case, row in rows.items():
        assert row["spdk_vs_vfio"] <= 1.02, case
    assert rows["seq-r-256"]["spdk_vs_vfio"] <= 0.75
    # BM-Store beats SPDK decisively on the paper's headline case
    headline = rows["seq-r-256"]["bmstore_kiops"] / rows["seq-r-256"]["spdk_kiops"]
    assert headline >= 1.35  # paper: +62.9%

    # deep-queue latency ordering (Table VII): BM-Store < SPDK.
    # (seq-w-256 is excluded: the drive's 1.42 GB/s write bus is the
    # bottleneck for every scheme in our model, so SPDK's CPU cost
    # hides; the paper saw an extra 12% there — noted in EXPERIMENTS.md)
    for case in ("rand-r-128", "rand-w-16", "seq-r-256"):
        assert rows[case]["bmstore_lat_us"] < rows[case]["spdk_lat_us"], case
