"""Fig. 10 — BM-Store total bandwidth vs number of SSDs."""

import pytest
from conftest import reproduce

from repro.experiments import fig10


def test_fig10_scalability(benchmark):
    result = reproduce(benchmark, fig10.run)
    rows = {row["ssds"]: row for row in result.rows}

    # linear scaling: N drives deliver ~N x one drive
    for n in (2, 3, 4):
        assert rows[n]["scaling"] == pytest.approx(n, rel=0.06)
    # 4 drives saturated near 4 x 3.23 GB/s
    assert rows[4]["bandwidth_gbps"] == pytest.approx(12.9, rel=0.06)
    # per-drive bandwidth does not degrade as drives are added
    assert rows[4]["per_ssd_gbps"] == pytest.approx(rows[1]["per_ssd_gbps"], rel=0.06)
