"""Table II — FPGA resource utilization for 1/2/4/6 SSDs."""

from conftest import reproduce

from repro.core import FPGAResourceModel
from repro.experiments import table2

# the paper's exact cells: ssds -> (LUTs, registers, pct columns)
PAPER = {
    1: (216711, 226309, 41, 22),
    2: (244711, 270309, 47, 26),
    4: (300711, 358309, 58, 34),
    6: (356711, 446309, 68, 43),
}


def test_table2_fpga_resources(benchmark):
    result = reproduce(benchmark, table2.run)
    model = FPGAResourceModel()
    for ssds, (luts, regs, luts_pct, regs_pct) in PAPER.items():
        cfg = model.configuration(ssds)
        assert cfg.luts == luts
        assert cfg.registers == regs
        util = model.utilization(ssds)
        assert round(util["luts"] * 100) == luts_pct
        assert round(util["registers"] * 100) == regs_pct
        assert cfg.clock_mhz == 250
    # "BM-Store can support more SSDs with the remaining resources"
    assert model.max_supported_ssds() >= 6
    # 4 SSDs consume only about half the FPGA (the Fig. 10 remark)
    util4 = model.utilization(4)
    assert util4["luts"] <= 0.60
