"""Extension benches: SATA tiers (§VI-A) and remote volumes (§VI-D)."""

import pytest
from conftest import reproduce

from repro.experiments import extensions


def test_extension_sata_tiers(benchmark):
    result = reproduce(benchmark, extensions.run_sata_tiers)
    rows = {row["backend"]: row for row in result.rows}
    # the interface is identical; the tier ordering must hold at depth
    assert rows["nvme"]["kiops"] > rows["sata-ssd"]["kiops"] > rows["hdd"]["kiops"]
    assert rows["nvme"]["avg_lat_us"] < rows["sata-ssd"]["avg_lat_us"]
    assert rows["sata-ssd"]["avg_lat_us"] < rows["hdd"]["avg_lat_us"]
    # SATA SSD is interface-bound (~540 MB/s -> ~130K 4K IOPS)
    assert rows["sata-ssd"]["kiops"] == pytest.approx(130, rel=0.12)
    # HDD service is mechanical: milliseconds, triple-digit IOPS
    assert rows["hdd"]["avg_lat_us"] > 10_000
    assert rows["hdd"]["kiops"] < 1.0


def test_extension_remote_tiers(benchmark):
    result = reproduce(benchmark, extensions.run_remote_tiers)
    rows = {row["backend"]: row for row in result.rows}
    # 25 GbE is the ceiling for sequential reads
    assert rows["25gbe"]["bandwidth_gbps"] == pytest.approx(3.05, rel=0.08)
    # 100 GbE hands the bottleneck back to the media
    assert rows["100gbe"]["bandwidth_gbps"] == pytest.approx(
        rows["local"]["bandwidth_gbps"], rel=0.08
    )
    # network RTT shows in latency ordering
    assert rows["local"]["avg_lat_ms"] <= rows["100gbe"]["avg_lat_ms"]