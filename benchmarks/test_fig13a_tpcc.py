"""Fig. 13(a) — TPC-C on MySQL in a VM: normalized transactions."""

from conftest import reproduce

from repro.experiments import fig13a


def test_fig13a_tpcc(benchmark):
    result = reproduce(benchmark, fig13a.run)
    rows = {row["scheme"]: row for row in result.rows}

    # BM-Store reaches near-native (VFIO) transaction throughput
    assert rows["bmstore"]["normalized"] >= 0.93
    # and does not lose to SPDK vhost on the stable metrics.  (The
    # paper reports up to +13.4% tpmC over SPDK; our scale-reduced
    # TPC-C is more CPU/commit-bound than the 100-warehouse original,
    # so the separation is smaller — see EXPERIMENTS.md.)
    assert rows["bmstore"]["tps"] >= rows["spdk"]["tps"]
    assert rows["bmstore"]["avg_txn_us"] <= rows["spdk"]["avg_txn_us"]
    assert rows["bmstore"]["tpmc"] >= 0.95 * rows["spdk"]["tpmc"]
