"""Fig. 12 — tail-latency closeness of four concurrent VMs."""

from conftest import reproduce

from repro.experiments import fig12


def test_fig12_tail_latency(benchmark):
    result = reproduce(benchmark, fig12.run)
    for row in result.rows:
        # per-VM p99s lie close together (no starved VM)
        assert row["p99_spread"] <= 0.20, row["case"]
        # and medians are ordered sanely under the tails
        assert all(p50 <= p99 for p50, p99 in zip(row["p50_us"], row["p99_us"]))
