"""Benchmark-suite helpers.

Every benchmark regenerates one paper artifact via its experiment
module, prints the reproduced table/series, records the rows in the
pytest-benchmark ``extra_info`` (so ``--benchmark-json`` captures the
data), and asserts the paper's qualitative shape.

``REPRO_TIME_SCALE`` (float, default 1.0) stretches the simulated
measurement windows for higher-fidelity runs.  ``REPRO_WORKERS``
(int, default 1) fans the grid experiments (fig8/fig9/fault-recovery)
over worker processes; reproduced rows are byte-identical either way,
but note that parallel runs make the pytest-benchmark *wall times*
incomparable to sequential ones.
"""

from __future__ import annotations

import json


def reproduce(benchmark, run_fn, *args, **kwargs):
    """Run one experiment exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(run_fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["experiment_id"] = result.experiment_id
    benchmark.extra_info["rows"] = json.loads(json.dumps(result.rows, default=str))
    print()
    print(result.table())
    return result
