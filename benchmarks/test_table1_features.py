"""Table I — feature matrix of local-storage schemes."""

from conftest import reproduce

from repro.experiments import table1


def test_table1_features(benchmark):
    result = reproduce(benchmark, table1.run)
    rows = {row["scheme"]: row for row in result.rows}

    # paper Table I, row by row
    assert rows["BM-Store"] == {
        "scheme": "BM-Store", "host_efficiency": "yes", "compatibility": "yes",
        "transparency": "yes", "performance": "yes", "deployability": "yes",
        "manageability": "yes",
    }
    assert rows["SPDK vhost"]["host_efficiency"] == "-"
    assert rows["SPDK vhost"]["transparency"] == "-"
    assert rows["SR-IOV"]["compatibility"] == "-"
    assert rows["SR-IOV"]["transparency"] == "yes"
    assert rows["LeapIO"]["performance"] == "-"
    assert rows["LeapIO"]["deployability"] == "-"
    assert rows["FVM"]["deployability"] == "-"
    # only BM-Store is manageable out of band
    assert [s for s, r in rows.items() if r["manageability"] == "yes"] == ["BM-Store"]
