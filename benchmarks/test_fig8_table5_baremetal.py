"""Fig. 8 + Table V — bare-metal single-disk: Native vs BM-Store."""

import pytest
from conftest import reproduce

from repro.experiments import fig8_table5


def test_fig8_table5_baremetal(benchmark):
    result = reproduce(benchmark, fig8_table5.run)
    rows = {row["case"]: row for row in result.rows}

    # paper: 96.2%..101.4% of native for every case except rand-w-1
    for case in ("rand-r-1", "rand-r-128", "rand-w-16", "seq-r-256", "seq-w-256"):
        assert 0.93 <= rows[case]["iops_ratio"] <= 1.03, case
    # rand-w-1: the ~3 us constant adder is magnified (paper 82.5%)
    assert 0.74 <= rows["rand-w-1"]["iops_ratio"] <= 0.90

    # Table V absolute anchors (within 10%)
    for case, row in rows.items():
        assert row["native_lat_us"] == pytest.approx(
            row["paper_native_lat_us"], rel=0.10
        ), case
        assert row["bmstore_lat_us"] == pytest.approx(
            row["paper_bmstore_lat_us"], rel=0.10
        ), case

    # the constant ~3 us extra latency on small I/O
    extra = rows["rand-r-1"]["bmstore_lat_us"] - rows["rand-r-1"]["native_lat_us"]
    assert 1.0 <= extra <= 5.0
