"""Table VI — BM-Store across host OS / kernel versions."""

import pytest
from conftest import reproduce

from repro.experiments import table6


def test_table6_kernels(benchmark):
    result = reproduce(benchmark, table6.run)
    centos = [r for r in result.rows if r["os"].startswith("CentOS")]
    fedora = [r for r in result.rows if r["os"].startswith("Fedora")]
    assert len(centos) == 3 and len(fedora) == 2

    # transparency: BM-Store runs on every kernel and performs stably
    centos_iops = [r["kiops"] for r in centos]
    assert max(centos_iops) / min(centos_iops) < 1.02
    # paper shape: Fedora a few percent lower, noticeably lower latency gap
    for f in fedora:
        assert f["kiops"] < min(centos_iops)
        assert f["kiops"] > 0.90 * min(centos_iops)
    # IOPS land near the paper's 642K / ~605K split
    assert centos_iops[0] == pytest.approx(642, rel=0.08)
    assert fedora[0]["kiops"] == pytest.approx(603, rel=0.08)
