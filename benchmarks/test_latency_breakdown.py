"""Engine stage-latency breakdown — the §V-B ~3 us budget, itemized."""

import pytest
from conftest import reproduce

from repro.experiments import latency_breakdown


def test_latency_breakdown(benchmark):
    result = reproduce(benchmark, latency_breakdown.run)
    by_stage = {row["stage"]: row["mean_us"] for row in result.rows}

    # the engine span is dominated by the back end (media time)
    assert by_stage["backend (SSD + zero-copy DMA)"] > 50
    # non-media engine stages are sub-microsecond to ~1.5 us each
    for stage in ("fetch", "map+qos pipeline", "forward to adaptor",
                  "CQE relay to host"):
        assert 0.0 <= by_stage[stage] <= 2.5, stage
    # stage sums reconstruct the measured span (nothing unaccounted)
    stage_sum = sum(
        by_stage[s] for s in (
            "fetch", "map+qos pipeline", "forward to adaptor",
            "backend (SSD + zero-copy DMA)", "CQE relay to host",
        )
    )
    assert stage_sum == pytest.approx(
        by_stage["engine span (doorbell->host CQE)"], rel=0.02
    )
    # the paper's headline: ~3 us extra vs the native disk
    assert 1.5 <= by_stage["extra vs native"] <= 5.0
