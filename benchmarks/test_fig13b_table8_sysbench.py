"""Fig. 13(b) + Table VIII — Sysbench OLTP on MySQL in a VM."""

from conftest import reproduce

from repro.experiments import fig13b_table8


def test_fig13b_table8_sysbench(benchmark):
    result = reproduce(benchmark, fig13b_table8.run)
    rows = {row["scheme"]: row for row in result.rows}

    # Table VIII shape: BM-Store adds a few percent latency vs VFIO,
    # SPDK adds noticeably more
    assert rows["bmstore"]["lat_vs_vfio"] <= 1.08
    assert rows["spdk"]["lat_vs_vfio"] > rows["bmstore"]["lat_vs_vfio"]
    # Fig. 13(b): queries within a few percent of native, above SPDK
    assert rows["bmstore"]["norm_queries"] >= 0.92
    assert rows["bmstore"]["qps"] > rows["spdk"]["qps"]
