"""§VI-C — TCO analysis."""

import pytest
from conftest import reproduce

from repro.experiments import tco_analysis


def test_tco_analysis(benchmark):
    result = reproduce(benchmark, tco_analysis.run)
    rows = {row["scheme"]: row for row in result.rows}

    # paper: 16 dedicated polling cores strand 128 GB + 2 SSDs
    assert rows["SPDK vhost"]["sellable_instances"] == 14
    assert rows["SPDK vhost"]["stranded_mem_gb"] == 128
    assert rows["SPDK vhost"]["stranded_ssds"] == 2
    # BM-Store sells the full server
    assert rows["BM-Store"]["sellable_instances"] == 16
    assert rows["BM-Store"]["stranded_ssds"] == 0
    # headline numbers: +14.3% instances, >= 11.3% TCO reduction
    assert rows["delta"]["sellable_instances"] == "+14.3%"
    reduction = float(rows["delta"]["tco_per_instance"].strip("-%"))
    assert reduction == pytest.approx(11.3, abs=0.3)
