"""Fig. 14 — mixed YCSB(RocksDB) + Sysbench(MySQL) across VMs."""

from conftest import reproduce

from repro.experiments import fig14


def test_fig14_mixed(benchmark):
    result = reproduce(benchmark, fig14.run)
    rows = {row["scheme"]: row for row in result.rows}

    vfio_kv = rows["vfio"]["rocksdb_kops"]
    bms_kv = rows["bmstore"]["rocksdb_kops"]
    spdk_kv = rows["spdk"]["rocksdb_kops"]

    # BM-Store near-native under the mix
    assert sum(bms_kv) >= 0.90 * sum(vfio_kv)
    # and at least as good as SPDK vhost
    assert sum(bms_kv) >= sum(spdk_kv) * 0.98
    # isolation: the two RocksDB VMs perform alike on BM-Store
    assert min(bms_kv) / max(bms_kv) >= 0.85
    # MySQL latency: BM-Store no worse than SPDK
    assert (
        sum(rows["bmstore"]["mysql_lat_ms"])
        <= sum(rows["spdk"]["mysql_lat_ms"]) * 1.05
    )
