"""Fig. 11 — multi-VM total bandwidth and fairness on 4 SSDs."""

import pytest
from conftest import reproduce

from repro.experiments import fig11


def test_fig11_multivm(benchmark):
    result = reproduce(benchmark, fig11.run)
    rows = {row["vms"]: row for row in result.rows}

    # throughput scales with VM count until the 4-drive ceiling
    assert rows[2]["total_gbps"] == pytest.approx(2 * rows[1]["total_gbps"], rel=0.12)
    assert rows[4]["total_gbps"] > rows[2]["total_gbps"]
    # paper: ~12.4 GB/s at 16 VMs (four P4510s saturated)
    assert rows[16]["total_gbps"] == pytest.approx(12.4, rel=0.08)
    # adding VMs past saturation neither gains nor collapses
    assert rows[26]["total_gbps"] == pytest.approx(rows[16]["total_gbps"], rel=0.08)
    # balanced allocation between VMs (Jain index ~ 1)
    for count in (4, 8, 16, 26):
        assert rows[count]["fairness"] >= 0.97, count
