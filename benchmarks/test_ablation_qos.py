"""Ablation — QoS isolation under an aggressor namespace (§IV-C)."""

from conftest import reproduce

from repro.experiments import ablations


def test_ablation_qos(benchmark):
    result = reproduce(benchmark, ablations.run_qos_isolation)
    uncapped = result.row_for(qos_capped=False)
    capped = result.row_for(qos_capped=True)
    # the cap binds the aggressor near its configured 100K IOPS
    assert capped["aggressor_kiops"] <= 115
    assert uncapped["aggressor_kiops"] > capped["aggressor_kiops"] * 1.5
    # and the victim's latency improves
    assert capped["victim_lat_us"] < uncapped["victim_lat_us"]
    assert capped["victim_kiops"] > uncapped["victim_kiops"]
