"""Fig. 15 + Table IX — firmware hot-upgrade under I/O."""

from conftest import reproduce

from repro.experiments import fig15_table9


def test_fig15_table9_hotupgrade(benchmark):
    result = reproduce(benchmark, fig15_table9.run)
    for row in result.rows:
        # Table IX: total hot-upgrade time 6-9 s
        assert 6.0 <= row["avg_upgrade_total_s"] <= 9.0, row["op"]
        # BM-Store's own processing ~100 ms
        assert 80 <= row["bmstore_processing_ms"] <= 150
        # the pause is bounded by the upgrade and well under NVMe's 30 s
        # I/O timeout — "tenants will not receive I/O errors"
        assert row["avg_io_pause_s"] <= row["avg_upgrade_total_s"]
        assert row["avg_io_pause_s"] < 30.0
        assert row["errors"] == 0
        assert row["ios"] > 0
        # Fig. 15: the IOPS series visibly dips to zero during upgrades
        assert row["paused_100ms_windows"] >= 2
