"""Ablation — FPGA datapath vs ARM offload (the LeapIO comparison, §III-B)."""

from conftest import reproduce

from repro.experiments import ablations


def test_ablation_arm_offload(benchmark):
    result = reproduce(benchmark, ablations.run_arm_offload)
    arm = result.row_for(datapath="ARM offload (LeapIO-like)")
    # paper: LeapIO reached only ~68% of a single native disk; the
    # serialized ARM datapath should land in that region
    assert 0.50 <= arm["vs_fpga"] <= 0.85
    fpga = result.row_for(datapath="FPGA (BM-Store)")
    assert fpga["kiops"] > arm["kiops"]
