"""Ablation — zero-copy DMA routing vs store-and-forward (DESIGN.md §6)."""

from conftest import reproduce

from repro.experiments import ablations


def test_ablation_zero_copy(benchmark):
    result = reproduce(benchmark, ablations.run_zero_copy)
    on = result.row_for(zero_copy=True)
    off = result.row_for(zero_copy=False)
    # the paper's motivation for Fig. 4(b): a buffered engine caps the
    # back end at the FPGA DRAM rate, losing most of four drives' bandwidth
    assert off["bandwidth_gbps"] < 0.5 * on["bandwidth_gbps"]
    # while zero-copy saturates all four drives
    assert on["bandwidth_gbps"] >= 12.0
