"""FaultPlan / FaultSpec / DriverFaultPolicy: pure-data layer."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    DriverFaultPolicy,
    FaultPlan,
    FaultSpec,
    get_preset,
    PRESETS,
)
from repro.nvme.spec import StatusCode
from repro.sim.units import ms


def test_builders_chain_and_accumulate():
    plan = (FaultPlan()
            .media_error("bssd0", at_ns=ms(10), count=2, op="read")
            .die_stall("bssd0", at_ns=ms(5), duration_ns=ms(3))
            .cmd_drop(at_ns=ms(1), count=1)
            .link_flap("bssd0", at_ns=ms(2))
            .width_degrade("bssd0", at_ns=ms(2), lanes=2)
            .firmware_stall("bssd0", extra_ns=ms(100))
            .engine_stall(at_ns=ms(4))
            .hot_remove(0, at_ns=ms(6), reattach_after_ns=ms(2)))
    assert len(plan) == 8
    assert plan.kinds() == set(FAULT_KINDS)
    # hot_remove keeps the slot id as a string target + re-seat delay
    hr = [s for s in plan if s.kind == "hot_remove"][0]
    assert hr.target == "0" and hr.duration_ns == ms(2)


def test_describe_is_json_able_and_time_sorted():
    plan = (FaultPlan()
            .link_flap("p0", at_ns=ms(20))
            .media_error("s0", at_ns=ms(10)))
    desc = plan.describe()
    assert [d["kind"] for d in desc] == ["media_error", "link_flap"]
    assert all(isinstance(d, dict) for d in desc)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meteor_strike")


def test_negative_times_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        FaultSpec("media_error", at_ns=-1)


def test_driver_policy_defaults_retry_hotplug_statuses():
    policy = DriverFaultPolicy()
    assert int(StatusCode.NAMESPACE_NOT_READY) in policy.retryable
    assert int(StatusCode.ABORTED_BY_REQUEST) in policy.retryable


def test_with_driver_policy_attaches_policy():
    plan = FaultPlan().with_driver_policy(timeout_ns=ms(3), max_retries=2)
    assert plan.driver_policy.timeout_ns == ms(3)
    assert plan.driver_policy.max_retries == 2
    assert len(plan) == 0  # a policy alone schedules nothing


def test_presets_build_fresh_plans():
    for name in PRESETS:
        plan = get_preset(name)
        assert isinstance(plan, FaultPlan)
        assert len(plan) >= 1
    assert get_preset("cmd-drop") is not get_preset("cmd-drop")


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown fault preset"):
        get_preset("gamma-ray")
