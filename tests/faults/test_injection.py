"""FaultInjector wired through real rigs: every hook point fires."""

import json

from repro.baselines import build_bmstore, build_native
from repro.experiments.common import quick_cases, run_case
from repro.faults import FaultPlan
from repro.nvme.spec import StatusCode
from repro.obs import MetricsRegistry
from repro.sim.units import MS, ms, us


def _one_read(rig, driver, lba=0):
    out = {}

    def flow():
        out["info"] = yield driver.read(lba, 1)

    rig.sim.run(rig.sim.process(flow()))
    return out["info"]


# ------------------------------------------------------------- media faults
def test_media_error_surfaces_nvme_status_and_counters():
    obs = MetricsRegistry()
    plan = FaultPlan().media_error("nvme0", at_ns=0, count=1, op="read")
    rig = build_native(1, obs=obs, faults=plan)
    info = _one_read(rig, rig.driver())
    assert not info.ok
    assert info.status == int(StatusCode.DATA_TRANSFER_ERROR)
    # the second read is past the one-shot budget
    assert _one_read(rig, rig.driver(), lba=8).ok
    assert rig.faults.injected == 1
    [counter] = obs.counters("faults_injected").values()
    assert counter.value == 1
    assert sum(c.value for c in obs.counters("span_faults").values()) == 1


def test_media_error_op_and_lba_filters():
    plan = FaultPlan().media_error("nvme0", at_ns=0, op="write", lba=100, nblocks=4)
    rig = build_native(1, faults=plan)
    driver = rig.driver()
    assert _one_read(rig, driver, lba=100).ok  # reads unaffected

    out = {}

    def flow():
        out["miss"] = yield driver.write(50, 1)   # outside the bad range
        out["hit"] = yield driver.write(102, 1)   # inside it

    rig.sim.run(rig.sim.process(flow()))
    assert out["miss"].ok
    assert not out["hit"].ok


def test_die_stall_adds_latency_inside_window():
    clean = build_native(1)
    t_clean = _one_read(clean, clean.driver()).latency_ns
    plan = FaultPlan().die_stall("nvme0", at_ns=0, duration_ns=ms(5),
                                 stall_ns=us(300))
    stalled = build_native(1, faults=plan)
    t_stalled = _one_read(stalled, stalled.driver()).latency_ns
    assert t_stalled >= t_clean + us(300)


def test_link_flap_stalls_the_port():
    plan = FaultPlan().link_flap("nvme0", at_ns=0, duration_ns=ms(2))
    rig = build_native(1, faults=plan)
    info = _one_read(rig, rig.driver())
    assert info.ok
    assert info.latency_ns >= ms(2)


def test_width_degrade_rescales_and_restores_lanes():
    plan = FaultPlan().width_degrade("nvme0", at_ns=0, lanes=1,
                                     duration_ns=ms(1))
    rig = build_native(1, faults=plan)
    port = rig.host.fabric.port("nvme0")
    rig.sim.run(until=10_000)
    assert port.lanes == 1
    rig.sim.run(until=2 * MS)
    assert port.lanes == 4


# ---------------------------------------------------------------- dormancy
def test_empty_plan_is_byte_identical_to_no_plan():
    (spec,) = quick_cases(["rand-r-1"])
    bare = run_case("bmstore", spec, seed=11)
    empty = run_case("bmstore", spec, seed=11, faults=FaultPlan())
    assert empty.fio.ios == bare.fio.ios
    assert json.dumps(empty.snapshot, sort_keys=True) == \
        json.dumps(bare.snapshot, sort_keys=True)


def test_empty_plan_creates_no_injector():
    rig = build_bmstore(num_ssds=1, faults=FaultPlan())
    assert rig.faults is None
    for ssd in rig.ssds:
        assert ssd.faults is None
    assert rig.engine.faults is None


# ------------------------------------------------------------- determinism
def test_same_seed_same_plan_same_bytes():
    (spec,) = quick_cases(["rand-r-1"])

    def plan():
        return (FaultPlan()
                .media_error("bssd0", at_ns=ms(6), duration_ns=ms(4), op="any")
                .cmd_drop("bssd0", at_ns=ms(12), count=2)
                .with_driver_policy(timeout_ns=ms(2), max_retries=3,
                                    backoff_base_ns=us(100),
                                    backoff_cap_ns=us(400)))

    a = run_case("bmstore", spec, seed=3, faults=plan())
    b = run_case("bmstore", spec, seed=3, faults=plan())
    assert a.fio.ios == b.fio.ios and a.errors == b.errors
    assert json.dumps(a.snapshot, sort_keys=True) == \
        json.dumps(b.snapshot, sort_keys=True)
    # and the faults really fired
    assert sum(c.value for c in a.obs.counters("faults_injected").values()) > 0


# ------------------------------------------- hot remove + managed recovery
def test_hot_remove_recovery_via_watchdog_and_fault_log():
    obs = MetricsRegistry()
    # removal at 1 ms catches the workers' second round in flight; the
    # watchdog re-seat (scan period + hot-plug pre/post) lands ~120 ms
    # in, so the retry budget must stretch past it: 5+10+20*6 = 135 ms
    plan = (FaultPlan()
            .hot_remove(0, at_ns=ms(1), reattach_after_ns=ms(1))
            .with_driver_policy(timeout_ns=ms(10), max_retries=8,
                                backoff_base_ns=ms(5), backoff_cap_ns=ms(20)))
    rig = build_bmstore(num_ssds=1, obs=obs, faults=plan)
    fn = rig.provision("ns0", 64 << 30)
    driver = rig.baremetal_driver(fn)
    infos = []

    def worker(i):
        info = yield driver.read(i * 7, 1)
        infos.append(info)
        yield rig.sim.timeout(ms(1))
        info = yield driver.read(i * 13, 1)
        infos.append(info)

    procs = [rig.sim.process(worker(i)) for i in range(8)]
    rig.sim.run(rig.sim.all_of(procs))
    assert len(infos) == 16
    # the retry policy rode out the removal window: no surfaced error
    assert all(info.ok for info in infos)
    assert rig.controller.recoveries == 1
    assert sum(c.value for c in obs.counters("bmsc_recoveries").values()) == 1

    # out-of-band visibility through NVMe-MI
    resp = rig.sim.run(rig.console.fault_log())
    assert resp.ok
    kinds = {e["kind"] for e in resp.body["events"]}
    assert "hot_remove" in kinds and "reattach" in kinds
    assert resp.body["recoveries"] == 1
    assert all(s["attached"] for s in resp.body["slots"])

    # the re-seated drive serves I/O again
    assert _one_read(rig, driver, lba=99).ok


def test_engine_stall_slows_dispatch():
    (spec,) = quick_cases(["rand-r-1"])
    clean = run_case("bmstore", spec, seed=5)
    plan = FaultPlan().engine_stall(at_ns=0, duration_ns=0, stall_ns=us(30))
    slowed = run_case("bmstore", spec, seed=5, faults=plan)
    assert slowed.avg_latency_us >= clean.avg_latency_us + 25
    assert sum(
        c.value for c in slowed.obs.counters("faults_injected").values()
    ) > 0
