"""Smoke tests: the shipped examples actually run."""

import importlib.util
import pathlib


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "provisioned 256 GiB namespace" in out
    assert "KIOPS" in out
    assert "fleet health" in out


def test_reproduce_paper_quick_mode(capsys):
    module = load_example("reproduce_paper")
    assert module.main(["--quick"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out and "[table2]" in out and "[tco]" in out


def test_crash_recovery_example(capsys):
    load_example("crash_recovery").main()
    out = capsys.readouterr().out
    assert "leak rolled back" in out
    assert "200/205 keys survived" in out


def test_fleet_maintenance_example(capsys):
    load_example("fleet_maintenance").main()
    out = capsys.readouterr().out
    assert "upgrade plan: " in out and "waves" in out
    assert "drained" in out
    assert "per-tenant SLO ledger" in out
    assert "all 6 servers took new firmware" in out


def test_every_example_parses():
    import ast

    for path in sorted(EXAMPLES.glob("*.py")):
        ast.parse(path.read_text())
