"""Baseline-scheme tests: feature matrix, VFIO exclusivity, SPDK vhost."""

import pytest

from repro.baselines import (
    SCHEMES,
    SPDKConfig,
    build_native,
    build_spdk,
    build_vfio,
    feature_matrix,
)
from repro.sim import SimulationError
from repro.sim.units import GIB, MS
from repro.workloads import FioSpec, run_fio


# ---------------------------------------------------------------- features
def test_feature_matrix_matches_paper_table1():
    matrix = feature_matrix()
    # row signature per scheme, ordered as FEATURE_COLUMNS
    expect = {
        "MDev-NVMe": (False, True, False, True, True, False),
        "SPDK vhost": (False, True, False, True, True, False),
        "SR-IOV": (True, False, True, True, True, False),
        "LeapIO": (True, True, False, False, False, False),
        "FVM": (True, True, False, True, False, False),
        "BM-Store": (True, True, True, True, True, True),
    }
    for scheme, flags in expect.items():
        assert tuple(matrix[scheme].values()) == flags, scheme


def test_feature_flags_are_derived_from_structure():
    bm = SCHEMES["BM-Store"]
    assert bm.host_efficiency == (bm.dedicated_host_cores == 0)
    assert bm.transparency == (not bm.requires_custom_driver)
    leapio = SCHEMES["LeapIO"]
    assert not leapio.performance  # 68% < 80% threshold


# -------------------------------------------------------------------- VFIO
def test_vfio_enforces_exclusive_assignment():
    rig = build_vfio(num_vms=1)
    from repro.host import VirtualMachine

    other = VirtualMachine(rig.host, "intruder")
    with pytest.raises(SimulationError, match="cannot be shared"):
        rig.assignment.assign(other, rig.ssds[0])
    assert rig.assignment.owner_of(rig.ssds[0]) == "vm0"
    rig.assignment.release(rig.ssds[0])
    rig.assignment.assign(other, rig.ssds[0])


# -------------------------------------------------------------------- SPDK
def quick_spec(op="randread", bs=4096, qd=16, jobs=2):
    return FioSpec("q", op, bs, iodepth=qd, numjobs=jobs,
                   runtime_ns=8 * MS, ramp_ns=2 * MS)


def test_spdk_dedicates_host_cores():
    rig = build_spdk(num_ssds=1, num_cores=2)
    assert rig.host.cpu.dedicated_by("vhost") == 2
    assert len(rig.host.cpu.tenant_cores) == rig.host.cpu.num_cores - 2


def test_spdk_vdev_io_and_data_integrity():
    rig = build_spdk(num_ssds=1, num_cores=1, num_vdevs=1)
    vdev = rig.vdev()
    payload = bytes(range(256)) * 16

    def flow():
        info = yield vdev.write(10, 1, payload=payload)
        assert info.ok
        info = yield vdev.read(10, 1, want_data=True)
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.data == payload


def test_spdk_vdev_slices_are_isolated():
    rig = build_spdk(num_ssds=1, num_cores=1, num_vdevs=2,
                     vdev_blocks=1 * GIB // 4096)
    a, b = rig.vdevs

    def flow():
        yield a.write(0, 1, payload=b"A" * 4096)
        yield b.write(0, 1, payload=b"B" * 4096)
        ra = yield a.read(0, 1, want_data=True)
        rb = yield b.read(0, 1, want_data=True)
        return ra.data, rb.data

    da, db_ = rig.sim.run(rig.sim.process(flow()))
    assert da == b"A" * 4096
    assert db_ == b"B" * 4096


def test_spdk_throughput_bounded_by_polling_core():
    rig = build_spdk(num_ssds=1, num_cores=1, num_vdevs=1)
    spec = FioSpec("deep", "randread", 4096, iodepth=128, numjobs=4,
                   runtime_ns=10 * MS, ramp_ns=2 * MS)
    res = run_fio(rig.sim, [rig.vdev()], spec, rig.streams)
    native = build_native(1)
    nres = run_fio(native.sim, [native.driver()], spec, native.streams)
    # vhost on one core cannot match the native interrupt path at depth
    assert res.iops < 0.95 * nres.iops
    assert rig.target.cpu_utilization() > 0.5


def test_spdk_cpu_cost_model_shape():
    cfg = SPDKConfig()
    # 128K requests pay for their 30 slow segments; 4K requests do not
    assert cfg.cheap_segments * cfg.segment_bytes >= 4096
    big = cfg.per_op_ns + (128 * 1024 // cfg.segment_bytes - cfg.cheap_segments) * cfg.per_segment_ns
    small = cfg.per_op_ns
    assert big > 10 * small


def test_spdk_flush_passthrough():
    rig = build_spdk(num_ssds=1, num_cores=1, num_vdevs=1)

    def flow():
        yield rig.vdev().write(0, 4)
        info = yield rig.vdev().flush()
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.ok
