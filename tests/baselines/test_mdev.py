"""MDev-NVMe mediated-passthrough baseline tests."""

import pytest

from repro.baselines import MDevNVMeTarget, build_native
from repro.sim import SimulationError
from repro.sim.units import GIB, MS
from repro.workloads import FioSpec, run_fio


def mdev_world(slices=1):
    rig = build_native(1)
    target = MDevNVMeTarget(rig.host, rig.ssds[0])
    vdisks = [
        target.create_vdisk(f"vd{i}", i * (256 * GIB // 4096), 256 * GIB // 4096)
        for i in range(slices)
    ]
    target.start()
    return rig, target, vdisks


def test_mdev_dedicates_one_core_and_installs_in_host():
    rig, target, _ = mdev_world()
    assert rig.host.cpu.dedicated_by("mdev") == 1  # the Table I row


def test_mdev_near_native_throughput_at_depth():
    rig, target, (vd,) = mdev_world()
    spec = FioSpec("deep", "randread", 4096, iodepth=128, numjobs=4,
                   runtime_ns=12 * MS, ramp_ns=3 * MS)
    res = run_fio(rig.sim, [vd], spec, rig.streams)
    # mediated fast path keeps ~native IOPS (the MDev-NVMe claim)
    assert res.iops == pytest.approx(640_000, rel=0.10)
    assert target.cpu_utilization() > 0.5  # but the polling core burns


def test_mdev_data_integrity_with_lba_translation():
    rig, target, vdisks = mdev_world(slices=2)
    a, b = vdisks

    def flow():
        yield a.write(0, 1, payload=b"A" * 4096)
        yield b.write(0, 1, payload=b"B" * 4096)
        ra = yield a.read(0, 1, want_data=True)
        rb = yield b.read(0, 1, want_data=True)
        return ra.data, rb.data

    da, db_ = rig.sim.run(rig.sim.process(flow()))
    assert da == b"A" * 4096 and db_ == b"B" * 4096
    # slices landed at distinct physical LBAs
    assert rig.ssds[0].block_data(0) == b"A" * 4096
    assert rig.ssds[0].block_data(256 * GIB // 4096) == b"B" * 4096


def test_mdev_slice_bounds_checked():
    rig, target, _ = mdev_world()
    with pytest.raises(SimulationError, match="beyond"):
        target.create_vdisk("huge", 0, rig.ssds[0].namespaces[1].num_blocks + 1)


def test_mdev_low_depth_latency_close_to_native():
    rig, target, (vd,) = mdev_world()
    spec = FioSpec("shallow", "randread", 4096, iodepth=1, numjobs=2,
                   runtime_ns=8 * MS, ramp_ns=2 * MS)
    res = run_fio(rig.sim, [vd], spec, rig.streams)
    # ~native 77us + mediation + injection ~ <92us
    assert res.avg_latency_us < 95
