"""The declarative scheme registry and the tables derived from it."""

import pytest

from repro.baselines.features import SCHEMES as TABLE1_ROWS
from repro.baselines.registry import (
    INTERPOSITION_LEVELS,
    SCHEME_DEFS,
    SchemeDef,
    runnable_schemes,
    scheme_def,
    table1_schemes,
)


def test_runner_map_covers_exactly_the_runnable_entries():
    from repro.experiments.common import SCHEMES as RUNNERS

    assert set(RUNNERS) == set(runnable_schemes())


def test_every_def_is_runnable_or_a_table1_row():
    for d in SCHEME_DEFS:
        assert d.runnable or d.table1


def test_table1_rows_derive_from_the_registry():
    assert list(TABLE1_ROWS) == [d.title for d in table1_schemes().values()]
    for row, d in zip(TABLE1_ROWS.values(), table1_schemes().values()):
        assert row.name == d.title
        assert row.dedicated_host_cores == d.dedicated_host_cores
        assert row.requires_custom_driver == d.requires_custom_driver
        assert row.requires_special_device == d.requires_special_device
        assert row.single_disk_throughput == d.single_disk_throughput
        assert row.architecture == d.architecture
        assert row.out_of_band_management == d.out_of_band_management


def test_passthrough_capabilities():
    d = scheme_def("passthrough")
    assert d.interposition == "doorbell"
    assert not d.qos_seam  # no per-command interposition, no QoS gate
    assert "hot_remove" in d.fault_seams
    assert set(d.dma_models) == {"register", "descriptor"}
    assert d.out_of_band_management


def test_bmstore_capabilities():
    d = scheme_def("bmstore")
    assert d.interposition == "full"
    assert d.qos_seam
    assert "descriptor" in d.dma_models


def test_spdk_honours_only_the_immediate_doorbell():
    assert scheme_def("spdk-vm").doorbell_modes == ("immediate",)


def test_scheme_def_rejects_unknown_keys():
    with pytest.raises(KeyError):
        scheme_def("no-such-scheme")


def test_def_validation():
    with pytest.raises(ValueError, match="interposition"):
        SchemeDef(key="x", title=None, interposition="telepathy")
    with pytest.raises(ValueError, match="runnable key or"):
        SchemeDef(key=None, title=None)
    assert "doorbell" in INTERPOSITION_LEVELS
