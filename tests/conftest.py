"""Suite-wide defaults.

The tier-1 suite runs with every runtime invariant checker armed unless
the environment says otherwise: any world built through the rig builders
or ``run_case`` self-audits while the tests exercise it.  ``setdefault``
keeps CI free to pin an explicit value (``REPRO_CHECKS=1`` / ``=off``)
without this file fighting it.
"""

import os

os.environ.setdefault("REPRO_CHECKS", "all")
