"""Result-table and case-registry edge cases: ragged rows in
``ExperimentResult.column`` and explicit-empty ``quick_cases``."""

import pytest

from repro.experiments.common import ExperimentResult, quick_cases
from repro.workloads.fio import TABLE_IV_CASES


# ------------------------------------------------------------- quick_cases
def test_quick_cases_default_is_full_table_iv():
    specs = quick_cases()
    assert [s.name for s in specs] == list(TABLE_IV_CASES)


def test_quick_cases_none_means_default():
    assert [s.name for s in quick_cases(None)] == list(TABLE_IV_CASES)


def test_quick_cases_explicit_empty_returns_no_cases():
    """An empty selection must stay empty, not fall back to the full
    grid (the classic ``names or DEFAULT`` falsy-list bug)."""
    assert quick_cases([]) == []
    assert quick_cases(()) == []


def test_quick_cases_subset_preserves_order():
    names = ["rand-w-16", "rand-r-1"]
    assert [s.name for s in quick_cases(names)] == names


def test_quick_cases_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="rand-r-1"):
        quick_cases(["not-a-case"])


# ----------------------------------------------------------------- column()
def _ragged_result() -> ExperimentResult:
    result = ExperimentResult("exp-test", "ragged rows")
    result.add(case="a", iops=1.0)
    result.add(case="b", iops=2.0, extra_col=42)
    return result


def test_column_on_uniform_key():
    assert _ragged_result().column("iops") == [1.0, 2.0]


def test_column_missing_key_raises_descriptive_error():
    result = _ragged_result()
    with pytest.raises(KeyError) as excinfo:
        result.column("extra_col")
    msg = str(excinfo.value)
    assert "exp-test" in msg
    assert "row 0" in msg
    assert "extra_col" in msg
    assert "default" in msg  # points at the tolerant spelling


def test_column_with_default_fills_ragged_holes():
    result = _ragged_result()
    assert result.column("extra_col", default=None) == [None, 42]
    assert result.column("extra_col", default=0) == [0, 42]


def test_column_default_none_is_a_real_default():
    """``default=None`` must mean "fill with None", not "no default"."""
    result = ExperimentResult("exp-test", "empty rows")
    result.add(case="a")
    assert result.column("missing", default=None) == [None]
