"""The redesigned scheme-runner API: the SCHEMES registry, run_case,
CaseResult, deprecated wrappers, and table() column union."""

import pytest

from repro.experiments.common import (
    SCHEMES,
    CaseResult,
    ExperimentResult,
    quick_cases,
    run_case,
    run_case_bmstore,
    run_case_native,
)
from repro.obs import MetricsRegistry
from repro.sim.units import MS
from repro.workloads.fio import FioResult, FioSpec


def _tiny_spec():
    return FioSpec("api-probe", "randread", 4096, iodepth=4, numjobs=1,
                   runtime_ns=2 * MS, ramp_ns=MS // 2)


# ------------------------------------------------------------- the registry
def test_schemes_registry_names():
    assert set(SCHEMES) == {
        "native", "bmstore", "passthrough", "vfio-vm", "bmstore-vm",
        "spdk-vm",
    }


def test_run_case_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="bmstore"):
        run_case("no-such-scheme", _tiny_spec())


def test_run_case_returns_bundled_case_result():
    case = run_case("bmstore", _tiny_spec(), seed=11)
    assert isinstance(case, CaseResult)
    assert case.scheme == "bmstore"
    assert isinstance(case.fio, FioResult)
    assert isinstance(case.obs, MetricsRegistry)
    assert case.fio.ios > 0
    # convenience properties delegate to the fio measurement
    assert case.iops == case.fio.iops
    assert case.avg_latency_us == case.fio.avg_latency_us
    assert case.latency is case.fio.latency
    # the snapshot is taken from the same registry
    assert case.snapshot["spans"]["recorded"] == len(case.obs.spans)


def test_run_case_uses_caller_registry_when_given():
    obs = MetricsRegistry()
    case = run_case("bmstore", _tiny_spec(), seed=11, obs=obs)
    assert case.obs is obs
    assert len(obs.spans) > 0


def test_run_case_is_deterministic_per_seed():
    a = run_case("native", _tiny_spec(), seed=5)
    b = run_case("native", _tiny_spec(), seed=5)
    assert a.fio.ios == b.fio.ios
    assert a.avg_latency_us == b.avg_latency_us


# ------------------------------------------------------ deprecated wrappers
def test_old_runners_warn_and_match_run_case():
    spec = _tiny_spec()
    with pytest.warns(DeprecationWarning, match="run_case_native"):
        old = run_case_native(spec, seed=9)
    new = run_case("native", spec, seed=9)
    assert isinstance(old, FioResult)
    assert old.ios == new.fio.ios


def test_old_bmstore_runner_warns():
    with pytest.warns(DeprecationWarning, match="run_case"):
        result = run_case_bmstore(_tiny_spec(), seed=9)
    assert result.ios > 0


# ----------------------------------------------------------- table() union
def test_table_renders_union_of_keys_in_first_seen_order():
    res = ExperimentResult("x", "ragged rows")
    res.add(case="a", kiops=1.0)
    res.add(case="b", kiops=2.0, extra="late-column")
    text = res.table()
    header = text.splitlines()[1]
    assert header.index("case") < header.index("kiops") < header.index("extra")
    # both rows render; the missing cell shows as None, not a crash
    assert "late-column" in text
    assert "None" in text


def test_quick_cases_reject_unknown_name():
    with pytest.raises(KeyError):
        quick_cases(["definitely-not-a-case"])
