"""Experiment-harness tests: result records, scheme runners, and cheap
experiment smoke runs (the benchmarks do the full sweeps)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    fig8_table5,
    fig10,
    quick_cases,
    run_case,
    table1,
    table2,
    tco_analysis,
)
from repro.experiments.common import _WINDOWS
from repro.workloads.fio import TABLE_IV_CASES


# -------------------------------------------------------- result records
def test_result_add_column_row_for():
    res = ExperimentResult("x", "title")
    res.add(a=1, b="one")
    res.add(a=2, b="two")
    assert res.column("a") == [1, 2]
    assert res.row_for(a=2)["b"] == "two"
    with pytest.raises(KeyError):
        res.row_for(a=3)


def test_result_table_renders_all_rows_and_notes():
    res = ExperimentResult("x", "title")
    res.add(col=1.2345, other="v")
    res.notes.append("a note")
    text = res.table()
    assert "[x] title" in text
    assert "1.23" in text
    assert "note: a note" in text


def test_empty_result_table():
    res = ExperimentResult("y", "empty")
    assert "(no rows)" in res.table()


# ----------------------------------------------------------- quick cases
def test_quick_cases_cover_table_iv():
    specs = quick_cases()
    assert {s.name for s in specs} == set(TABLE_IV_CASES)
    for spec in specs:
        assert spec.runtime_ns == _WINDOWS[spec.name][0]


def test_quick_cases_subset():
    specs = quick_cases(["rand-w-1"])
    assert len(specs) == 1 and specs[0].op == "randwrite"


# --------------------------------------------------------- scheme runners
def test_runners_produce_comparable_results():
    spec = quick_cases(["rand-w-1"])[0]
    native = run_case("native", spec)
    bms = run_case("bmstore", spec)
    assert native.fio.ios > 0 and bms.fio.ios > 0
    assert bms.avg_latency_us > native.avg_latency_us  # the ~3us adder


# -------------------------------------------------------- instant artifacts
def test_table1_experiment_has_six_schemes():
    res = table1.run()
    assert len(res.rows) == 6
    assert res.row_for(scheme="BM-Store")["manageability"] == "yes"


def test_table2_matches_paper_cells_exactly():
    res = table2.run()
    assert res.row_for(ssds=1)["luts"] == "216711 (41%)"
    assert res.row_for(ssds=6)["registers"] == "446309 (43%)"


def test_tco_experiment_delta_row():
    res = tco_analysis.run()
    delta = res.row_for(scheme="delta")
    assert delta["sellable_instances"] == "+14.3%"


# ------------------------------------------------------------- small sweeps
def test_fig10_two_point_scaling():
    res = fig10.run(ssd_counts=(1, 2))
    assert res.row_for(ssds=2)["scaling"] == pytest.approx(2.0, rel=0.08)


def test_fig8_single_case_has_paper_reference():
    res = fig8_table5.run(cases=["rand-w-1"])
    row = res.rows[0]
    assert row["paper_native_lat_us"] == 11.6
    assert 0.7 <= row["iops_ratio"] <= 0.95
