"""REPRO_TIME_SCALE: the fidelity knob stretches measurement windows."""


from repro.experiments.common import scaled, time_scale
from repro.workloads.fio import TABLE_IV_CASES


def test_default_scale_is_one(monkeypatch):
    monkeypatch.delenv("REPRO_TIME_SCALE", raising=False)
    assert time_scale() == 1.0


def test_env_var_scales_windows(monkeypatch):
    monkeypatch.setenv("REPRO_TIME_SCALE", "2.5")
    assert time_scale() == 2.5
    spec = scaled(TABLE_IV_CASES["rand-r-1"], 10_000_000, 2_000_000)
    assert spec.runtime_ns == 25_000_000
    assert spec.ramp_ns == 5_000_000


def test_scaled_preserves_all_other_fields(monkeypatch):
    monkeypatch.delenv("REPRO_TIME_SCALE", raising=False)
    base = TABLE_IV_CASES["seq-w-256"]
    spec = scaled(base, 1_000, 100)
    assert spec.op == base.op
    assert spec.block_bytes == base.block_bytes
    assert spec.iodepth == base.iodepth
    assert spec.numjobs == base.numjobs
    assert (spec.runtime_ns, spec.ramp_ns) == (1_000, 100)
