"""Burst absorption: fixed DRAM dies, the CXL tier completes, pinned."""

import json

from repro.cli import main
from repro.experiments.burst_absorption import BurstCell, run, run_cell


def small_cell(hot_remove=False, seed=901):
    # a smaller burst than the default cell, with a window shrunk to
    # match so it still overflows into borrowed slot buffer
    return BurstCell(name="c", seed=seed, hot_remove=hot_remove,
                     window_kib=32, slot_buffer_kib=80,
                     kv_workers=32, kv_ops=6, sql_workers=16, sql_ops=8,
                     steady_workers=4, steady_ops=8)


def test_fixed_arm_dies_and_cxl_arm_completes():
    payload = run_cell(small_cell())
    fixed, cxl = payload["fixed"], payload["cxl"]
    assert not fixed["completed"]
    assert "out of memory" in fixed["error"]
    assert cxl["completed"] and cxl["errors"] == 0
    assert cxl["ios"] == 32 * 6 + 16 * 8 + 4 * 8
    tier = cxl["tier"]
    assert tier["spills"] > 0
    assert cxl["borrowed_peak_bytes"] > 0
    assert tier["promotes"] > 0                    # steady phase handed back
    assert tier["borrowed_bytes"] < cxl["borrowed_peak_bytes"]
    assert 0.0 < tier["hit_ratio"] < 1.0


def test_hot_remove_cell_revokes_the_lenders_grants():
    first = run_cell(small_cell(hot_remove=True))
    again = run_cell(small_cell(hot_remove=True))
    assert first["payload"] == again["payload"]    # deterministic end to end
    cxl = first["cxl"]
    assert cxl["completed"]
    assert cxl["removed_lender"]
    assert cxl["tier"]["revocations"] > 0


def test_run_is_worker_count_invariant():
    seq = run(seed=41, cells=2, workers=1)
    par = run(seed=41, cells=2, workers=2)
    assert seq.rows == par.rows
    assert any(row["hot_remove"] for row in seq.rows)
    assert all(not row["fixed_completed"] and row["cxl_completed"]
               for row in seq.rows)


def test_cxl_command_cli(capsys):
    assert main(["cxl", "--cells", "1", "--seed", "3", "--workers", "1",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment_id"] == "burst-absorption"
    row = payload["rows"][0]
    assert row["cxl_completed"] and not row["fixed_completed"]
    assert main(["cxl", "--cells", "1", "--seed", "3", "--workers", "1"]) == 0
    assert "spills" in capsys.readouterr().out
