"""Pushdown ablation: the >=2x command reduction, pinned as a test."""

import json

from repro.cli import main
from repro.experiments.pushdown_ablation import PushdownCell, run, run_cell


def small_cell(hot_remove=False, seed=901):
    # default key count (enough puts to flush SSTables), few lookups
    return PushdownCell(name="c", seed=seed, lookups=12,
                        hot_remove=hot_remove)


def test_cell_halves_commands_with_identical_results():
    payload = run_cell(small_cell())
    assert payload["command_ratio"] >= 2.0
    med, push = payload["mediated"], payload["pushdown"]
    assert med["values_digest"] == push["values_digest"]  # same answers
    assert med["found"] == push["found"] > 0
    assert push["program"]["sandbox_faults"] == 0
    assert push["fallbacks"] == 0
    # the json-encoded payload is what CI byte-compares across workers
    assert json.loads(payload["payload"])["cell"] == "c"


def test_hot_remove_cell_records_the_failure_deterministically():
    first = run_cell(small_cell(hot_remove=True))
    again = run_cell(small_cell(hot_remove=True))
    assert first["payload"] == again["payload"]
    assert not first["pushdown"]["remove_ok"]  # vendor cmd failed mid-remove
    assert not first["mediated"]["remove_ok"]
    assert first["command_ratio"] >= 2.0


def test_run_is_worker_count_invariant():
    seq = run(seed=31, cells=2, workers=1)
    par = run(seed=31, cells=2, workers=2)
    assert seq.rows == par.rows
    assert all(row["ratio"] >= 2.0 for row in seq.rows)


def test_push_command_cli(capsys):
    assert main(["push", "--cells", "1", "--seed", "3", "--workers", "1",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment_id"] == "pushdown"
    assert payload["rows"][0]["ratio"] >= 2.0
    assert main(["push", "--cells", "1", "--seed", "3", "--workers", "1"]) == 0
    assert "ratio" in capsys.readouterr().out
