"""CXL buffer tier: spill boundary, promote, borrowing, revocation,
NVMe-MI surfacing, and dormancy byte-identity."""

import hashlib
import json
from types import SimpleNamespace

import pytest

from repro.baselines import build_bmstore
from repro.core.cxl import CXLBufferTier, CXLTimings
from repro.host.memory import BufferPool, HostMemory, PAGE_SIZE
from repro.mgmt.nvme_mi import MIStatus
from repro.sim import SimulationError, Simulator
from repro.sim.units import MIB


class _StubEngine:
    """The minimal engine surface the tier touches, with a tiny chip."""

    def __init__(self, chip_pages=4, slots=2):
        self.sim = Simulator()
        self.name = "stub"
        self.obs = None
        self.chip_memory = HostMemory(
            self.sim, chip_pages * PAGE_SIZE, base=0x1000_0000,
            name="stub.chipmem",
        )
        self._prp_pool = BufferPool(self.chip_memory)
        self.adaptor = SimpleNamespace(
            slots=[SimpleNamespace(ssd=object()) for _ in range(slots)]
        )


def small_tier(chip_pages=4, window_pages=2, slot_pages=2, promote_after=4):
    engine = _StubEngine(chip_pages=chip_pages)
    tier = CXLBufferTier(engine, CXLTimings(
        window_bytes=window_pages * PAGE_SIZE,
        slot_buffer_bytes=slot_pages * PAGE_SIZE,
        promote_after=promote_after,
    ))
    engine._prp_pool.tier = tier
    return engine, tier, engine._prp_pool


# ------------------------------------------------------------ spill boundary
def test_oom_to_spill_boundary_is_exact():
    """The first allocation past the chip budget spills; not one before."""
    engine, tier, pool = small_tier(chip_pages=4, window_pages=2)
    onchip = [pool.get(PAGE_SIZE) for _ in range(4)]
    assert all(engine.chip_memory.contains(a) for a in onchip)
    assert tier.spills == 0
    assert engine.chip_memory.allocated == engine.chip_memory.size
    spilled = pool.get(PAGE_SIZE)
    assert tier.window.contains(spilled)
    assert tier.spills == 1
    assert tier.hits_onchip == 4 and tier.hits_cxl == 1


def test_window_overflow_borrows_then_exhausts():
    """Window full -> bounded borrowing from slot buffers, slot by slot,
    then the original out-of-memory resurfaces."""
    engine, tier, pool = small_tier(chip_pages=1, window_pages=1,
                                    slot_pages=2)
    pool.get(PAGE_SIZE)                    # fills the chip
    a_window = pool.get(PAGE_SIZE)         # fills the window
    assert tier.window.contains(a_window)
    # each slot lends at most half its 2-page buffer = 1 page
    b0 = pool.get(PAGE_SIZE)
    b1 = pool.get(PAGE_SIZE)
    assert tier.share.grants[b0].ssd_id == 0
    assert tier.share.grants[b1].ssd_id == 1
    assert tier.borrowed_bytes == 2 * PAGE_SIZE
    with pytest.raises(SimulationError, match="share pool all exhausted"):
        pool.get(PAGE_SIZE)


def test_hot_set_prefers_oncard_and_promote_hands_back():
    """After a burst subsides, on-card serves retire idle spilled
    buffers (window first-in-bucket, borrowed grants given back)."""
    engine, tier, pool = small_tier(chip_pages=2, window_pages=1,
                                    slot_pages=2, promote_after=2)
    burst = [pool.get(PAGE_SIZE) for _ in range(4)]  # 2 chip, 1 win, 1 borrow
    assert tier.borrowed_bytes == PAGE_SIZE
    for addr in burst:
        pool.put(addr, PAGE_SIZE)
    # steady state: a working set of one buffer, always served on-card
    for _ in range(8):
        addr = pool.get(PAGE_SIZE)
        assert engine.chip_memory.contains(addr)
        pool.put(addr, PAGE_SIZE)
    assert tier.promotes == 2              # both spilled buffers retired
    assert tier.borrowed_bytes == 0        # the grant went back to slot 0
    assert not pool._free_tier.get(PAGE_SIZE)


def test_spill_determinism_two_runs_identical():
    def trace():
        engine, tier, pool = small_tier(chip_pages=2, window_pages=2,
                                        slot_pages=4)
        addrs = [pool.get(PAGE_SIZE) for _ in range(7)]
        for a in addrs[::2]:
            pool.put(a, PAGE_SIZE)
        addrs += [pool.get(PAGE_SIZE) for _ in range(3)]
        return addrs, tier.stat()

    assert trace() == trace()


# --------------------------------------------------------------- revocation
def test_revocation_purges_pooled_and_absorbs_inflight():
    engine, tier, pool = small_tier(chip_pages=1, window_pages=1,
                                    slot_pages=2)
    pool.get(PAGE_SIZE)
    pool.get(PAGE_SIZE)
    b0 = pool.get(PAGE_SIZE)               # borrowed from slot 0
    b1 = pool.get(PAGE_SIZE)               # borrowed from slot 1
    pool.put(b0, PAGE_SIZE)                # b0 pooled; b1 stays in flight
    tier.on_slot_removed(0)
    assert tier.share.revocations == 1
    # the pooled grant is purged: the pool can never hand b0 out again
    assert b0 not in pool._free_tier.get(PAGE_SIZE, [])
    tier.on_slot_removed(1)
    # the in-flight grant is absorbed when the command returns it
    pool.put(b1, PAGE_SIZE)
    assert tier.revoked_inflight == 1
    assert b1 not in pool._free_tier.get(PAGE_SIZE, [])


def test_surprise_remove_of_lending_slot_revokes_grants():
    """Full-rig revocation: the drive's DRAM leaves with the drive."""
    rig = build_bmstore(num_ssds=2, seed=5, chip_memory_bytes=512 * 1024)
    tier = rig.engine.cxl_tier(CXLTimings(
        window_bytes=PAGE_SIZE, slot_buffer_bytes=2 * PAGE_SIZE,
    ))
    pool = rig.engine._prp_pool
    grabbed = []
    while tier.borrowed_bytes < 2 * PAGE_SIZE:  # force lends off both slots
        grabbed.append(pool.get(PAGE_SIZE))
    lenders = {g.ssd_id for g in tier.share.grants.values()}
    assert lenders == {0, 1}
    removed = rig.engine.surprise_remove(1)
    assert removed is not None
    assert tier.share.revocations >= 1
    assert all(g.ssd_id != 1 for g in tier.share.grants.values())
    # a replacement drive lends again, at fresh addresses
    rig.engine.adaptor.slot_for(1).attach_ssd(removed)
    older = set(grabbed)
    fresh = pool.get(PAGE_SIZE)
    assert fresh not in older


# ------------------------------------------------------------------ NVMe-MI
def test_cxl_stat_unsupported_while_dormant_then_armed_oob():
    rig = build_bmstore(num_ssds=1)
    bodies = {}

    def proc():
        resp = yield rig.console.cxl_stat()
        bodies["dormant"] = (resp.status, dict(resp.body))
        resp = yield rig.console.enable_cxl()
        bodies["enable"] = (resp.status, dict(resp.body))
        resp = yield rig.console.cxl_stat()
        bodies["armed"] = (resp.status, dict(resp.body))

    rig.sim.run(rig.sim.process(proc(), name="mi"))
    assert bodies["dormant"][0] == int(MIStatus.UNSUPPORTED)
    assert bodies["enable"][0] == int(MIStatus.SUCCESS)
    assert bodies["armed"][0] == int(MIStatus.SUCCESS)
    assert bodies["armed"][1]["spills"] == 0
    assert bodies["armed"][1]["hit_ratio"] == 1.0
    assert rig.engine.cxl is not None


def test_obs_counters_surface_spills_and_borrowing():
    from repro.obs import MetricsRegistry

    obs = MetricsRegistry()
    rig = build_bmstore(num_ssds=2, seed=5, obs=obs,
                        chip_memory_bytes=512 * 1024)
    tier = rig.engine.cxl_tier(CXLTimings(
        window_bytes=PAGE_SIZE, slot_buffer_bytes=4 * PAGE_SIZE,
    ))
    pool = rig.engine._prp_pool
    while tier.borrowed_bytes == 0:
        pool.get(PAGE_SIZE)
    snap = obs.snapshot()
    assert snap["counters"]["cxl_spills{engine=bms}"] == tier.spills > 0
    assert snap["gauges"]["borrowed_bytes{engine=bms}"] \
        == tier.borrowed_bytes > 0
    assert 0.0 < snap["gauges"]["cxl_hit_ratio{engine=bms}"] < 1.0


# ------------------------------------------------------------------ checker
def test_checker_follows_buffers_across_tiers():
    """A double free of a *spilled* buffer must be charged against the
    CXL window's freed ranges, not chip memory's."""
    from repro.checks import CheckContext, InvariantViolation

    ctx = CheckContext(checkers=["prp"])
    engine, tier, pool = small_tier(chip_pages=1, window_pages=2)
    ctx.bind_pool(pool)
    pool.get(PAGE_SIZE)
    spilled = pool.get(PAGE_SIZE)
    assert tier.window.contains(spilled)
    pool.put(spilled, PAGE_SIZE)
    assert "stub.cxlmem" in ctx._freed
    assert spilled in ctx._freed["stub.cxlmem"].ranges
    with pytest.raises(InvariantViolation, match="double free"):
        # the checker fires on the owning memory before the inline guard
        pool.put(spilled, PAGE_SIZE)


# ---------------------------------------------------------------- dormancy
def test_dormancy_armed_but_unused_is_byte_identical():
    """An armed tier that never spills must not perturb the world."""

    def run_world(arm: bool):
        rig = build_bmstore(num_ssds=2, seed=9)
        if arm:
            rig.engine.cxl_tier()
        fn = rig.provision("t", 64 * MIB)
        driver = rig.baremetal_driver(fn)

        def proc():
            for k in range(40):
                if k % 3 == 0:
                    yield driver.write((k * 67) % 512, 8)
                else:
                    yield driver.read((k * 67) % 512, 32)

        rig.sim.run(rig.sim.process(proc(), name="w"))
        return rig.sim.now, rig.sim.events_processed, driver.stats.completed

    assert run_world(False) == run_world(True)


GOLDEN_CLEAN_SHA = "270d40e2bbf259c5276e4fa6dc9c36c57f526e63aa641fa52f6b32e9f1f8a925"
GOLDEN_HOT_REMOVE_SHA = "3dfe3fc4d83f6909059bd7a30c6ffec77e8e55ecf601d705026481b747504127"


@pytest.mark.parametrize("extra,sha", [
    ((), GOLDEN_CLEAN_SHA),
    (("--faults", "hot-remove"), GOLDEN_HOT_REMOVE_SHA),
], ids=["clean", "hot-remove"])
def test_dormant_runs_match_pre_cxl_golden(capsys, extra, sha):
    """``engine.cxl is None`` runs are byte-identical to the output this
    command produced before the CXL tier (and the buffer-pool bugfixes)
    landed — the digests pin the pre-PR JSON."""
    from repro.cli import main

    assert main(["fio", "--scheme", "bmstore", "--case", "rand-r-128",
                 "--seed", "7", "--json", *extra]) == 0
    out = capsys.readouterr().out
    assert json.loads(out)["ios"] > 0
    assert hashlib.sha256(out.encode()).hexdigest() == sha
