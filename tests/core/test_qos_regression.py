"""Regression tests for the QoS fast-path overtaking bug (Fig. 5).

The dispatcher's ``yield buffer.get()`` pops the head command
synchronously and resumes via a now-queue hop, so for one scheduling
step the buffer is empty while the dequeued command has not yet touched
its token buckets.  A same-instant arrival used to see an empty buffer
plus available tokens and take the fast path — overtaking the command
that was admitted first and stealing the tokens it was about to claim.
"""

import pytest

from repro.checks import CheckContext, InvariantViolation
from repro.core import QoSLimits, QoSModule
from repro.core.qos import _NamespaceQoS
from repro.sim import Simulator

#: 100 MB/s with a 1 MiB burst; every command fits inside the burst so
#: each consume() is always eventually satisfiable.
LIMITS = QoSLimits(max_bytes_per_sec=100e6, burst_bytes=1 << 20)
PRIMER = 900 * 1024  # drains the burst down to ~124 KiB
BIG = 512 * 1024  # must buffer behind the drained bucket
SMALL = 4096  # small enough to find leftover tokens to steal


def overtaking_world(qos):
    """A primer, one big buffered command, a small same-instant arrival.

    The small command is admitted from a process body, so it lands in
    the now-queue *between* the dispatcher's ``buffer.get()`` pop and
    the dispatcher's continuation — exactly the overtaking window: the
    buffer is empty and ~124 KiB of tokens remain.
    """
    qos.configure("ns", LIMITS)
    done = []

    def waiter(tag, gate):
        yield gate
        done.append((tag, qos.sim.now))

    qos.sim.process(waiter("primer", qos.admit("ns", PRIMER)))  # fast path
    qos.sim.process(waiter("big", qos.admit("ns", BIG)))  # buffered

    def latecomer():
        yield from waiter("small", qos.admit("ns", SMALL))

    qos.sim.process(latecomer())
    return done


def test_same_instant_arrival_cannot_overtake_buffered_command():
    sim = Simulator()
    qos = QoSModule(sim)
    done = overtaking_world(qos)
    sim.run()
    assert [tag for tag, _ in done] == ["primer", "big", "small"]
    big_t = done[1][1]
    # big waits for its missing ~388 KiB of bandwidth budget
    deficit = BIG - ((1 << 20) - PRIMER)
    assert big_t == pytest.approx(deficit / 100e6 * 1e9, rel=0.05)
    assert done[2][1] >= big_t
    assert qos.buffered_total("ns") == 2  # big and small both buffered


def _prefix_admit(self, nbytes, span=None):
    """The pre-fix fast-path condition (no ``_dispatcher_running`` test),
    checker hooks included, for the revert-detection test below."""
    seq = None
    if self.checks is not None:
        seq = self.checks.on_qos_admit(self, span=span)
    gate = self.sim.event(name="qos.admit")
    if len(self.buffer) == 0 and not self.over_threshold(nbytes):
        self.iops_bucket.consume(1.0)
        self.bw_bucket.consume(nbytes)
        self.passed_total += 1
        if self.checks is not None:
            self.checks.on_qos_grant(self, seq, fast=True, span=span)
        gate.succeed()
        return gate
    self.buffered_total += 1
    self.buffer.put((gate, nbytes, seq, span))
    if not self._dispatcher_running:
        self._dispatcher_running = True
        self.sim.process(self._dispatch(), name="qos.dispatch")
    return gate


def test_qos_checker_detects_overtaking_when_fix_reverted(monkeypatch):
    """Revert-detection: with the pre-fix admit logic back in place, the
    qos checker flags the out-of-order grant the fix prevents."""
    monkeypatch.setattr(_NamespaceQoS, "admit", _prefix_admit)
    sim = Simulator()
    ctx = CheckContext(checkers=["qos"])
    qos = QoSModule(sim, checks=ctx)
    overtaking_world(qos)
    with pytest.raises(InvariantViolation, match="out of admission order") as exc:
        sim.run()
    assert exc.value.checker == "qos"
    assert exc.value.context["fast_path"] is True


def test_fixed_admit_passes_checker_in_overtaking_scenario():
    sim = Simulator()
    ctx = CheckContext(checkers=["qos"])
    qos = QoSModule(sim, checks=ctx)
    done = overtaking_world(qos)
    sim.run()
    assert [tag for tag, _ in done] == ["primer", "big", "small"]
    assert ctx.violations == 0
    assert ctx.summary()["qos"] == 3


def test_buffered_count_alias_removed():
    """The deprecated buffered_count shim is gone for good; the two
    unambiguous accessors cover both readings it conflated."""
    sim = Simulator()
    qos = QoSModule(sim)
    qos.configure("ns", LIMITS)
    drained = [qos.admit("ns", PRIMER), qos.admit("ns", BIG)]  # fast, buffered
    sim.run()
    assert all(g.triggered for g in drained)
    assert not hasattr(qos, "buffered_count")
    assert qos.buffered_total("ns") == 1
    assert qos.buffer_depth("ns") == 0
