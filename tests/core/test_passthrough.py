"""The I/O-queue passthrough scheme: guest rings mapped straight onto
the backend drive, with device-side DMA/LBA translation."""

import pytest

from repro.baselines import build_bmstore
from repro.experiments.common import run_case
from repro.faults import get_preset
from repro.sim import SimulationError
from repro.sim.units import MS
from repro.workloads.fio import FioSpec


def _spec(iodepth=4, runtime_ms=3):
    return FioSpec("pt-probe", "randread", 4096, iodepth=iodepth, numjobs=1,
                   runtime_ns=runtime_ms * MS, ramp_ns=MS)


# ------------------------------------------------------------ basic running
def test_passthrough_scheme_runs_clean():
    case = run_case("passthrough", _spec(), seed=7)
    assert case.fio.ios > 0
    assert case.errors == 0


def test_passthrough_is_deterministic():
    a = run_case("passthrough", _spec(), seed=5)
    b = run_case("passthrough", _spec(), seed=5)
    assert a.fio.ios == b.fio.ios
    assert a.fio.sim_events == b.fio.sim_events
    assert a.avg_latency_us == b.avg_latency_us


def test_passthrough_beats_bmstore_at_high_iodepth():
    spec = _spec(iodepth=128, runtime_ms=10)
    bms = run_case("bmstore", spec, seed=7)
    pt = run_case("passthrough", spec, seed=7)
    # no per-command interposition: fewer kernel events per I/O, at
    # least matching throughput, and a lower tail
    assert pt.fio.sim_events < bms.fio.sim_events
    assert pt.fio.ios >= bms.fio.ios
    assert pt.latency.p99_us <= bms.latency.p99_us


def test_passthrough_datapath_checkers_have_coverage():
    case = run_case("passthrough", _spec(), seed=7, checks="all")
    cov = case.checks.summary()
    for name in ("ring", "prp", "lba", "kernel"):
        assert cov[name] > 0, f"{name} checker silent on the passthrough path"


# ---------------------------------------------------- translation semantics
def test_passthrough_translates_lbas_and_isolates_namespaces():
    rig = build_bmstore(num_ssds=1)
    chunk = rig.engine.chunk_bytes
    rig.provision("front", chunk)          # takes physical chunk 0
    fn = rig.provision("pt", chunk)        # takes physical chunk 1
    rig.engine.enable_passthrough("pt")
    driver = rig.baremetal_driver(fn)
    marker = b"passthrough block 5"
    payload = marker.ljust(4096, b"\0")

    def flow():
        info = yield driver.write(5, 1, payload=payload)
        assert info.ok
        info = yield driver.read(5, 1, want_data=True)
        assert info.ok
        return info.data

    data = rig.sim.run(rig.sim.process(flow()))
    assert data[: len(marker)] == marker
    # the device stored it at the translated physical LBA...
    offset = rig.engine.chunk_blocks
    stored = rig.ssds[0].block_data(offset + 5)
    assert stored is not None and stored[: len(marker)] == marker
    # ...and the first namespace's physical extent was never touched
    assert rig.ssds[0].block_data(5) is None


def test_passthrough_bounds_guest_lbas_to_the_namespace():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("pt", rig.engine.chunk_bytes)
    rig.engine.enable_passthrough("pt")
    driver = rig.baremetal_driver(fn)

    def flow():
        last = driver.num_blocks - 1
        info = yield driver.read(last, 1)
        assert info.ok
        info = yield driver.read(last, 2)  # crosses the translation window
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert not info.ok


# ------------------------------------------------------------- eligibility
def test_passthrough_rejects_multi_ssd_namespaces():
    rig = build_bmstore(num_ssds=2)
    rig.provision("wide", 2 * rig.engine.chunk_bytes, placement=[0, 1])
    with pytest.raises(SimulationError, match="single-SSD"):
        rig.engine.enable_passthrough("wide")


def test_passthrough_rejects_fragmented_extents():
    rig = build_bmstore(num_ssds=1)
    chunk = rig.engine.chunk_bytes
    rig.provision("a", chunk, fn_id=5)     # physical chunk 0
    rig.provision("b", chunk, fn_id=6)     # physical chunk 1
    rig.engine.delete_namespace("a")       # chunk 0 returns to the tail
    nfree = len(rig.engine._free_chunks[0])
    # taking the whole free list wraps around to the recycled chunk 0,
    # so the extent ends ..., N-1, 0 — contiguous it is not
    rig.provision("frag", nfree * chunk, fn_id=7, placement=[0] * nfree)
    with pytest.raises(SimulationError, match="contiguous"):
        rig.engine.enable_passthrough("frag")


def test_passthrough_requires_a_bound_function():
    rig = build_bmstore(num_ssds=1)
    rig.engine.create_namespace("loose", rig.engine.chunk_bytes)
    with pytest.raises(SimulationError, match="bound"):
        rig.engine.enable_passthrough("loose")


# ------------------------------------------------------------ hot removal
def test_surprise_hot_removal_recovers_under_passthrough_at_high_iodepth():
    """ISSUE 6 regression: with no interposition point, the driver's
    timeout -> Abort -> retry policy is the only safety net when the
    backend drive is yanked mid-flight at qd128."""
    spec = FioSpec("pt-yank", "randread", 4096, iodepth=128, numjobs=1,
                   runtime_ns=30 * MS, ramp_ns=2 * MS)
    case = run_case("passthrough", spec, seed=7,
                    faults=get_preset("pt-hot-remove"))
    def total(prefix):
        return sum(metric.value
                   for kind, label, metric in case.obs.iter_metrics()
                   if kind == "counter" and label.startswith(prefix))

    # the outage stranded in-flight commands; the driver timed out,
    # aborted, and re-drove them after the re-seat
    assert total("driver_timeouts") > 0
    assert total("driver_retries{") > 0
    assert total("driver_aborts") > 0
    # the workload survived the yank and kept completing afterwards
    assert case.fio.ios > 1000
    assert case.errors < case.fio.ios


def test_ring_full_during_outage_blocks_instead_of_overflowing():
    """Timed-out commands release their queue slot while their stale
    SQEs still occupy the ring; with four jobs at qd128 one timeout
    round used to overflow the 1024-deep SQ (nothing fetches during a
    passthrough outage).  Submission must block for ring space, like a
    real driver, and drain once the re-seated drive starts fetching."""
    spec = FioSpec("pt-yank-wide", "randread", 4096, iodepth=128, numjobs=4,
                   runtime_ns=20 * MS, ramp_ns=2 * MS)
    case = run_case("passthrough", spec, seed=7,
                    faults=get_preset("pt-hot-remove"))
    assert case.errors == 0
    assert case.fio.ios > 1000


def test_hot_removal_recovery_is_deterministic():
    spec = FioSpec("pt-yank", "randread", 4096, iodepth=64, numjobs=1,
                   runtime_ns=25 * MS, ramp_ns=2 * MS)
    runs = [run_case("passthrough", spec, seed=9,
                     faults=get_preset("pt-hot-remove")) for _ in range(2)]
    assert runs[0].fio.ios == runs[1].fio.ios
    assert runs[0].fio.sim_events == runs[1].fio.sim_events
