"""CoW volume composition: snapshots, thin clones, faulting, refcounts.

The layer's contract: provisioning a clone copies *nothing* (metadata
only), the first write to a shared chunk faults exactly once, the last
holder writes in place, and the lba checker's refcount shadow makes a
premature free impossible.  The determinism tests pin the VOLUME_STAT
payload byte-for-byte across sequential and parallel experiment runs.
"""

import json

import pytest

from repro.baselines import build_bmstore
from repro.checks import InvariantViolation
from repro.core.lba_mapping import CHUNK_BYTES
from repro.experiments import volumes_demo
from repro.sim import SimulationError


def golden_rig(chunks=2, num_ssds=2):
    rig = build_bmstore(num_ssds=num_ssds, seed=11)
    rig.provision("golden", chunks * CHUNK_BYTES)
    return rig, rig.engine.volume_manager()


def clone_driver(rig, vm, source, key, fn_id):
    vm.clone_volume(source, key)
    fn = rig.engine.bind_namespace(key, fn_id)
    return rig.baremetal_driver(fn)


def run_one(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


# ------------------------------------------------------------- thin clones
def test_clone_shares_chunks_and_copies_nothing():
    rig, vm = golden_rig(chunks=2)
    golden = rig.engine.namespaces["golden"]
    clone = vm.clone_volume("golden", "c0")
    assert clone.chunks == golden.chunks          # same physical chunks
    assert clone.table is not golden.table        # own mapping table
    assert vm.cow_faults == 0                     # nothing copied
    assert vm.shared_chunk_count() == 2
    for phys in golden.chunks:
        assert vm.refcounts[tuple(phys)] == 2


def test_clone_provisioning_cost_is_metadata_only():
    rig, vm = golden_rig(chunks=2)
    assert vm.clone_cost_ns(24) == 24 * vm.clone_chunk_meta_ns
    # versus any physical copy: 24 chunks of 64 GiB would be minutes
    assert vm.clone_cost_ns(24) < 10_000


def test_clone_name_collision_rejected():
    rig, vm = golden_rig()
    with pytest.raises(SimulationError, match="already in use"):
        vm.clone_volume("golden", "golden")
    with pytest.raises(SimulationError, match="no volume or snapshot"):
        vm.clone_volume("ghost", "c0")


# ------------------------------------------------------------- CoW faults
def test_first_write_faults_shared_chunk_apart():
    rig, vm = golden_rig(chunks=2)
    golden = rig.engine.namespaces["golden"]
    driver = clone_driver(rig, vm, "golden", "c0", fn_id=10)
    before = list(rig.engine.namespaces["c0"].chunks)

    def writes():
        info = yield driver.write(0, 8)
        assert info.ok

    run_one(rig, writes())
    clone = rig.engine.namespaces["c0"]
    assert vm.cow_faults == 1
    assert clone.chunks[0] != before[0]           # chunk 0 diverged
    assert clone.chunks[1] == before[1]           # chunk 1 still shared
    assert golden.chunks == before                # source untouched
    assert vm.refcounts[tuple(clone.chunks[0])] == 1
    assert vm.refcounts[tuple(golden.chunks[0])] == 1


def test_second_write_to_diverged_chunk_pays_no_cow_tax():
    rig, vm = golden_rig(chunks=1)
    driver = clone_driver(rig, vm, "golden", "c0", fn_id=10)

    def writes():
        yield driver.write(0, 8)
        t0 = rig.sim.now
        yield driver.write(8, 8)
        return rig.sim.now - t0

    run_one(rig, writes())
    assert vm.cow_faults == 1  # only the first write faulted


def test_last_holder_writes_in_place():
    rig, vm = golden_rig(chunks=1)
    driver = clone_driver(rig, vm, "golden", "c0", fn_id=10)
    rig.engine.delete_namespace("golden")         # clone is the last holder
    before = list(rig.engine.namespaces["c0"].chunks)

    def writes():
        info = yield driver.write(0, 8)
        assert info.ok

    run_one(rig, writes())
    assert vm.cow_faults == 0
    assert rig.engine.namespaces["c0"].chunks == before


# -------------------------------------------------------------- snapshots
def test_snapshot_pins_chunks_across_origin_deletion():
    rig, vm = golden_rig(chunks=2, num_ssds=2)
    golden_chunks = [tuple(p) for p in rig.engine.namespaces["golden"].chunks]
    vm.create_snapshot("golden", "golden@base")
    free_before = {i: len(f) for i, f in enumerate(rig.engine._free_chunks)}
    rig.engine.delete_namespace("golden")
    # the snapshot still references every chunk: none returned
    for ssd_id, free in enumerate(rig.engine._free_chunks):
        assert len(free) == free_before[ssd_id]
        for _, chunk in [p for p in golden_chunks if p[0] == ssd_id]:
            assert chunk not in free
    vm.delete_snapshot("golden@base")
    for ssd_id, chunk in golden_chunks:
        assert chunk in rig.engine._free_chunks[ssd_id]


def test_clone_from_snapshot_sees_point_in_time_state():
    rig, vm = golden_rig(chunks=1)
    vm.create_snapshot("golden", "golden@base")
    snap_chunks = vm.snapshots["golden@base"]["chunks"]
    driver = clone_driver(rig, vm, "golden", "direct", fn_id=10)

    def writes():
        yield driver.write(0, 8)

    run_one(rig, writes())  # diverge the live golden's chunk... no: diverges direct
    late = vm.clone_volume("golden@base", "from-snap")
    assert [tuple(p) for p in late.chunks] == list(snap_chunks)
    stat = vm.volume_stat("from-snap")
    assert stat["kind"] == "clone" and stat["parent"] == "golden@base"


def test_snapshot_name_collision_rejected():
    rig, vm = golden_rig()
    vm.create_snapshot("golden", "s0")
    with pytest.raises(SimulationError, match="already in use"):
        vm.create_snapshot("golden", "s0")
    with pytest.raises(SimulationError, match="no snapshot"):
        vm.delete_snapshot("ghost")


# ------------------------------------------------------- refcount checker
def test_checker_blocks_free_of_referenced_chunk():
    rig, vm = golden_rig(chunks=1)
    vm.clone_volume("golden", "c0")               # refcount 2
    phys = tuple(rig.engine.namespaces["golden"].chunks[0])
    ctx = rig.engine._check_ctx
    assert ctx is not None                        # conftest arms REPRO_CHECKS
    with pytest.raises(InvariantViolation, match="freed while refcount"):
        ctx.on_chunk_free(vm, phys)


def test_checker_shadow_tracks_incref_decref():
    rig, vm = golden_rig(chunks=1)
    ctx = rig.engine._check_ctx
    phys = tuple(rig.engine.namespaces["golden"].chunks[0])
    with pytest.raises(InvariantViolation, match="drifted from shadow"):
        ctx.on_chunk_incref(vm, phys, 99)


# ---------------------------------------------------------- determinism
def test_volume_stat_payload_deterministic_across_workers():
    """Same seed => byte-identical VOLUME_STAT payloads, seq vs parallel."""
    seq = volumes_demo.run(seed=7, cells=4, workers=None)
    par = volumes_demo.run(seed=7, cells=4, workers=4)
    a = json.dumps(seq.rows, sort_keys=True)
    b = json.dumps(par.rows, sort_keys=True)
    assert a == b
    assert all(row["cow_faults_pre"] == 0 for row in seq.rows)


def test_run_cell_reproducible():
    cell = volumes_demo.VolumeCell(name="x", seed=123)
    assert volumes_demo.run_cell(cell) == volumes_demo.run_cell(cell)
