"""Target Controller: engine-local admin fast paths and demux stats."""


from repro.baselines import build_bmstore
from repro.nvme import AdminOpcode
from repro.sim.units import GIB


def rig_with_driver():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 128 * GIB)
    driver = rig.baremetal_driver(fn)
    return rig, fn, driver


def test_identify_served_by_engine_fast_path():
    rig, fn, driver = rig_with_driver()
    buf = rig.host.memory.alloc(4096)

    def flow():
        info = yield driver.admin(AdminOpcode.IDENTIFY, prp1=buf)
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.ok
    page = rig.engine.host_identify_pages[buf]
    assert page["model"] == "BM-Store virtual NVMe"
    assert page["function"] == fn.fn_id
    assert page["namespace_blocks"] == driver.num_blocks
    # served locally, never forwarded to the ARM controller
    assert rig.engine.target_controller.admin_forwarded == 0


def test_get_log_page_returns_engine_counters():
    rig, fn, driver = rig_with_driver()
    buf = rig.host.memory.alloc(4096)

    def flow():
        yield driver.read(0, 1)
        yield driver.write(0, 1)
        info = yield driver.admin(AdminOpcode.GET_LOG_PAGE, prp1=buf)
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.ok
    stats = rig.engine.host_identify_pages[buf]
    assert stats["read_ops"] == 1 and stats["write_ops"] == 1


def test_queue_create_delete_acknowledged():
    rig, fn, driver = rig_with_driver()

    def flow():
        a = yield driver.admin(AdminOpcode.CREATE_IO_CQ, cdw10=5)
        b = yield driver.admin(AdminOpcode.DELETE_IO_SQ, cdw10=5)
        return a, b

    a, b = rig.sim.run(rig.sim.process(flow()))
    assert a.ok and b.ok


def test_demux_counters_track_traffic_classes():
    rig, fn, driver = rig_with_driver()
    tc = rig.engine.target_controller

    def flow():
        for _ in range(3):
            yield driver.read(0, 1)
        yield driver.admin(AdminOpcode.IDENTIFY)
        yield driver.admin(AdminOpcode.NS_MANAGEMENT)  # vendor op -> ARM

    rig.sim.run(rig.sim.process(flow()))
    assert tc.io_commands == 3
    assert tc.admin_commands == 2
    assert tc.admin_forwarded == 1  # only the vendor-management one
