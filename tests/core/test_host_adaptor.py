"""Host-adaptor tests: forwarding, pause/drain/resume, I/O context,
back-end admin path."""

import pytest

from repro.baselines import build_bmstore
from repro.nvme import AdminOpcode, IOOpcode, SQE, StatusCode


def make_rig():
    rig = build_bmstore(num_ssds=2)
    return rig, rig.engine.adaptor


def fwd_sqe(lba=0, opcode=IOOpcode.READ):
    return SQE(opcode=int(opcode), cid=0, nsid=1, slba=lba, nlb=0,
               prp1=0x200_0000_0000_0000 | 0x1000, prp2=0)  # fn-1 tagged


def test_forward_completes_and_counts():
    rig, adaptor = make_rig()
    slot = adaptor.slot_for(0)
    statuses = []
    slot.forward(fwd_sqe(), statuses.append)
    rig.sim.run()
    assert statuses == [int(StatusCode.SUCCESS)]
    assert slot.forwarded == 1 and slot.completed == 1
    assert slot.inflight == 0


def test_pause_holds_commands_until_resume():
    rig, adaptor = make_rig()
    slot = adaptor.slot_for(0)
    statuses = []
    slot.pause()
    slot.forward(fwd_sqe(), statuses.append)
    rig.sim.run(until=1_000_000)
    assert statuses == []
    assert rig.ssds[0].stats.read_ops == 0
    slot.resume()
    rig.sim.run()
    assert statuses == [int(StatusCode.SUCCESS)]


def test_drain_fires_when_inflight_clears():
    rig, adaptor = make_rig()
    slot = adaptor.slot_for(0)
    for _ in range(4):
        slot.forward(fwd_sqe(), lambda s: None)
    drained_at = []

    def waiter():
        yield slot.drain()
        drained_at.append(rig.sim.now)

    rig.sim.process(waiter())
    rig.sim.run()
    assert drained_at and slot.inflight == 0


def test_drain_immediate_when_idle():
    rig, adaptor = make_rig()
    slot = adaptor.slot_for(0)

    def waiter():
        yield slot.drain()
        return rig.sim.now

    assert rig.sim.run(rig.sim.process(waiter())) == 0


def test_io_context_snapshot_fields():
    rig, adaptor = make_rig()
    slot = adaptor.slot_for(0)
    slot.pause()
    slot.forward(fwd_sqe(), lambda s: None)
    ctx = slot.io_context()
    assert ctx["buffered"] == 1
    assert ctx["pending_cids"] == []
    assert {"sq_head", "sq_tail", "cq_head"} <= set(ctx)


def test_backend_admin_roundtrip():
    rig, adaptor = make_rig()
    slot = adaptor.slot_for(1)
    statuses = []
    sqe = SQE(opcode=int(AdminOpcode.GET_LOG_PAGE), cid=0, nsid=0)
    slot.forward_admin(sqe, statuses.append)
    rig.sim.run()
    assert statuses == [int(StatusCode.SUCCESS)]
    assert rig.ssds[1].stats.admin_ops == 1


def test_detach_attach_rebinds_queues():
    rig, adaptor = make_rig()
    from repro.nvme import NVMeSSD

    slot = adaptor.slot_for(0)
    old = slot.detach_ssd()
    assert slot.ssd is None
    new = NVMeSSD(rig.sim, rig.engine.backend_fabric, rig.streams, name="new0")
    slot.attach_ssd(new)
    statuses = []
    slot.forward(fwd_sqe(), statuses.append)
    rig.sim.run()
    assert statuses == [int(StatusCode.SUCCESS)]
    assert new.stats.read_ops == 1
    assert old.stats.read_ops == 0


def test_double_attach_rejected():
    rig, adaptor = make_rig()
    from repro.nvme import NVMeSSD
    from repro.sim import SimulationError

    new = NVMeSSD(rig.sim, rig.engine.backend_fabric, rig.streams, name="x")
    with pytest.raises(SimulationError, match="already has"):
        adaptor.slot_for(0).attach_ssd(new)


def test_slot_for_bounds():
    rig, adaptor = make_rig()
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        adaptor.slot_for(5)
