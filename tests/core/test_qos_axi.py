"""QoS module (Fig. 5) and AXI bus tests."""

import pytest

from repro.core import AXIBus, QoSLimits, QoSModule
from repro.sim import SimulationError, Simulator


def drain(sim, gates):
    done = []

    def waiter(i, gate):
        yield gate
        done.append((i, sim.now))

    for i, gate in enumerate(gates):
        sim.process(waiter(i, gate))
    sim.run()
    return done


def test_under_threshold_commands_pass_through():
    sim = Simulator()
    qos = QoSModule(sim)
    qos.configure("ns", QoSLimits(max_iops=1000.0, burst_ios=10))
    gates = [qos.admit("ns", 4096) for _ in range(5)]
    done = drain(sim, gates)
    assert all(t == 0 for _, t in done)
    assert qos.passed_count("ns") == 5
    assert qos.buffered_total("ns") == 0
    assert qos.buffer_depth("ns") == 0


def test_over_threshold_commands_enter_buffer_and_reschedule():
    sim = Simulator()
    qos = QoSModule(sim)
    # 1000 IOPS, burst 2: third+ must wait ~1ms each
    qos.configure("ns", QoSLimits(max_iops=1000.0, burst_ios=2))
    gates = [qos.admit("ns", 4096) for _ in range(4)]
    done = drain(sim, gates)
    times = [t for _, t in sorted(done)]
    assert times[0] == 0 and times[1] == 0
    assert times[2] == pytest.approx(1_000_000, rel=0.05)
    assert times[3] == pytest.approx(2_000_000, rel=0.05)
    assert qos.buffered_total("ns") == 2
    assert qos.buffer_depth("ns") == 0  # drained; total stays cumulative


def test_dispatcher_preserves_fifo_order():
    sim = Simulator()
    qos = QoSModule(sim)
    qos.configure("ns", QoSLimits(max_iops=10_000.0, burst_ios=1))
    gates = [qos.admit("ns", 4096) for _ in range(6)]
    done = drain(sim, gates)
    order = [i for i, _ in sorted(done, key=lambda x: (x[1], x[0]))]
    assert order == [0, 1, 2, 3, 4, 5]


def test_bandwidth_threshold_applies():
    sim = Simulator()
    qos = QoSModule(sim)
    # 100 MB/s cap, 1 MiB burst: 4 MiB of traffic takes ~30 ms extra
    qos.configure("ns", QoSLimits(
        max_bytes_per_sec=100e6, burst_bytes=1 << 20))
    gates = [qos.admit("ns", 1 << 20) for _ in range(4)]
    done = drain(sim, gates)
    last = max(t for _, t in done)
    assert last == pytest.approx(3 * (1 << 20) / 100e6 * 1e9, rel=0.05)


def test_qos_disabled_never_blocks():
    sim = Simulator()
    qos = QoSModule(sim, enabled=False)
    qos.configure("ns", QoSLimits(max_iops=1.0, burst_ios=1))
    gates = [qos.admit("ns", 1 << 20) for _ in range(100)]
    done = drain(sim, gates)
    assert all(t == 0 for _, t in done)


def test_unconfigured_namespace_is_unlimited():
    sim = Simulator()
    qos = QoSModule(sim)
    gates = [qos.admit("mystery", 4096) for _ in range(10)]
    done = drain(sim, gates)
    assert all(t == 0 for _, t in done)


def test_namespaces_are_isolated():
    sim = Simulator()
    qos = QoSModule(sim)
    qos.configure("slow", QoSLimits(max_iops=100.0, burst_ios=1))
    qos.configure("fast", QoSLimits(max_iops=1e6, burst_ios=1000))
    slow_gates = [qos.admit("slow", 4096) for _ in range(3)]
    fast_gates = [qos.admit("fast", 4096) for _ in range(3)]
    done_fast = drain(sim, fast_gates)
    assert all(t == 0 for _, t in done_fast)
    done_slow = drain(sim, slow_gates)
    assert max(t for _, t in done_slow) > 1_000_000


# --------------------------------------------------------------------- AXI
def test_axi_read_write_with_latency():
    sim = Simulator()
    axi = AXIBus(sim, access_ns=120)
    state = {"reg": 7}
    axi.register_read(0x0, lambda: state["reg"])
    axi.register_write(0x8, lambda v: state.update(reg=v))

    def proc():
        val = yield axi.read(0x0)
        assert val == 7
        yield axi.write(0x8, 42)
        val = yield axi.read(0x0)
        return (val, sim.now)

    val, t = sim.run(sim.process(proc()))
    assert val == 42
    assert t == 3 * 120
    assert axi.reads == 2 and axi.writes == 1


def test_axi_unbound_register_errors():
    sim = Simulator()
    axi = AXIBus(sim)
    with pytest.raises(SimulationError):
        axi.read(0x1000)
    with pytest.raises(SimulationError):
        axi.write(0x1000, 1)


def test_axi_double_registration_rejected():
    sim = Simulator()
    axi = AXIBus(sim)
    axi.register_read(0, lambda: 0)
    with pytest.raises(SimulationError):
        axi.register_read(0, lambda: 1)
