"""SR-IOV layer tests: BAR layout, doorbell demux, function identities."""

import pytest

from repro.baselines import build_bmstore
from repro.core.sriov_layer import FN_BAR_BYTES
from repro.sim.units import GIB


def test_per_function_bar_regions_are_disjoint():
    rig = build_bmstore(num_ssds=1)
    fns = list(rig.engine.sriov.functions.values())
    bases = [fn.bar_base for fn in fns]
    assert len(set(bases)) == len(bases)
    for a, b in zip(sorted(bases), sorted(bases)[1:]):
        assert b - a == FN_BAR_BYTES


def test_doorbell_addresses_unique_per_queue():
    rig = build_bmstore(num_ssds=1)
    fn = rig.engine.sriov.function_by_id(3)
    addrs = {fn.doorbell_addr(q, is_cq) for q in range(5) for is_cq in (0, 1)}
    assert len(addrs) == 10


def test_doorbell_write_reaches_right_function_queue():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB, fn_id=9)
    driver = rig.baremetal_driver(fn)
    seen = []
    original = rig.engine.on_front_doorbell
    rig.engine.on_front_doorbell = lambda f, q: (seen.append((f, q)), original(f, q))

    def flow():
        info = yield driver.read(0, 1)
        assert info.ok

    rig.sim.run(rig.sim.process(flow()))
    assert all(f == 9 for f, _ in seen)
    assert any(q >= 1 for _, q in seen)  # an I/O queue doorbell fired


def test_pf_vf_parentage():
    rig = build_bmstore(num_ssds=1)
    layer = rig.engine.sriov
    for vf in layer.virtual_functions:
        assert vf.function.is_vf
        assert vf.function.parent_pf is not None
        assert not vf.function.parent_pf.is_vf
    for pf in layer.physical_functions:
        assert pf.function.config.sriov is not None


def test_unknown_function_lookup_fails():
    rig = build_bmstore(num_ssds=1)
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        rig.engine.sriov.function_by_id(999)


def test_queue_attach_detach_cycle():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn, num_io_queues=2)
    assert set(fn.queue_pairs) == {0, 1, 2}
    fn.detach_queue_pair(2)
    assert set(fn.queue_pairs) == {0, 1}
