"""Property tests on engine namespace provisioning invariants."""

from hypothesis import given, settings, strategies as st

from repro.baselines import build_bmstore
from repro.sim import SimulationError
from repro.sim.units import GIB

CHUNK = 64 * GIB


@given(st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(1, 6)),   # size in chunks
        st.tuples(st.just("delete"), st.integers(0, 30)),  # victim index
    ),
    min_size=1, max_size=40,
))
@settings(max_examples=20, deadline=None)
def test_chunk_allocation_never_overlaps_and_always_recycles(ops):
    """Under any create/delete sequence:
    * no physical chunk is ever owned by two namespaces,
    * deletes return every chunk,
    * per-SSD chunk books balance exactly."""
    rig = build_bmstore(num_ssds=4)
    engine = rig.engine
    total_free = [len(free) for free in engine._free_chunks]
    live: list[str] = []
    counter = 0

    for op, arg in ops:
        if op == "create":
            counter += 1
            key = f"ns{counter}"
            try:
                engine.create_namespace(key, arg * CHUNK)
                live.append(key)
            except SimulationError:
                pass  # out of space is legal; invariants below still hold
        else:
            if live:
                engine.delete_namespace(live.pop(arg % len(live)))

        # invariant: every owned chunk is owned exactly once
        owned = [
            (ssd, chunk)
            for ens in engine.namespaces.values()
            for ssd, chunk in ens.chunks
        ]
        assert len(owned) == len(set(owned))
        # invariant: owned + free == the initial inventory, per SSD
        for ssd_id in range(4):
            owned_here = sum(1 for s, _ in owned if s == ssd_id)
            free_here = len(engine._free_chunks[ssd_id])
            assert owned_here + free_here == total_free[ssd_id]
            # no chunk both owned and free
            free_set = set(engine._free_chunks[ssd_id])
            assert not any(c in free_set for s, c in owned if s == ssd_id)

    # drain: deleting everything returns the full inventory
    for key in list(engine.namespaces):
        engine.delete_namespace(key)
    assert [len(f) for f in engine._free_chunks] == total_free


@given(st.integers(1, 24), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_mapping_table_covers_whole_namespace(nchunks, probe_chunk):
    """Every LBA of a created namespace translates without error and
    lands on a chunk the namespace owns."""
    rig = build_bmstore(num_ssds=4)
    ens = rig.engine.create_namespace("ns", nchunks * CHUNK)
    chunk_blocks = rig.engine.chunk_blocks
    probe = (probe_chunk % nchunks) * chunk_blocks + 17
    ssd_id, plba = ens.table.translate(probe)
    assert (ssd_id, plba // chunk_blocks) in ens.chunks
    assert plba % chunk_blocks == probe % chunk_blocks
