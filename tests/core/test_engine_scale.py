"""Scale tests: many front-end functions active on one engine."""


from repro.baselines import build_bmstore
from repro.sim.units import GIB


def test_64_functions_bound_and_serving_concurrently():
    """64 VFs each with a one-chunk namespace, all doing I/O at once."""
    rig = build_bmstore(num_ssds=4)
    drivers = []
    for i in range(64):
        fn = rig.provision(f"t{i}", 64 * GIB, placement=[i % 4])
        drivers.append(rig.baremetal_driver(fn, num_io_queues=1, queue_depth=16))
    results = []

    def worker(idx, driver):
        info = yield driver.write(idx, 1)
        assert info.ok
        info = yield driver.read(idx, 1)
        results.append((idx, info.ok))

    procs = [rig.sim.process(worker(i, d)) for i, d in enumerate(drivers)]
    rig.sim.run(rig.sim.all_of(procs))
    assert len(results) == 64
    assert all(ok for _, ok in results)
    assert rig.engine.total_ios == 128
    # per-function accounting stayed separate
    for i in range(64):
        snap = rig.engine.monitor_snapshot(rig.engine.namespaces[f"t{i}"].bound_fn)
        assert snap["read_ops"] == 1 and snap["write_ops"] == 1


def test_axi_monitor_covers_all_128_functions():
    rig = build_bmstore(num_ssds=1)

    def flow():
        total = 0
        for fn_id in range(1, 129):
            base = rig.engine.AXI_FN_BASE + (fn_id - 1) * rig.engine.AXI_FN_STRIDE
            value = yield rig.engine.axi.read(base)  # read_ops register
            total += value
        return total

    assert rig.sim.run(rig.sim.process(flow())) == 0


def test_namespace_capacity_accounting_across_many_tenants():
    """4 drives hold 116 chunks; over-provisioning fails cleanly."""
    rig = build_bmstore(num_ssds=4)
    created = 0
    try:
        for i in range(200):
            # spread single-chunk namespaces across drives; the engine
            # only auto-assigns 124 VFs, so bind chunks unbound
            rig.engine.create_namespace(f"x{i}", 64 * GIB, placement=[i % 4])
            created += 1
    except Exception:
        pass
    # P4510 2 TB = 29 usable 64 GiB chunks per drive
    assert created == 4 * 29
