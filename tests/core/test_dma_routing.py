"""Global-PRP encode/decode tests — paper Fig. 4(b)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import decode_global_prp, encode_global_prp, is_global_prp
from repro.core.dma_routing import (
    ADDRESS_MASK,
    FUNCTION_ID_SHIFT,
    LIST_FLAG_SHIFT,
)
from repro.sim import SimulationError


def test_layout_uses_top_reserved_bits():
    g = encode_global_prp(0x55, 0x1234_5678_9ABC, is_list=True)
    assert (g >> FUNCTION_ID_SHIFT) & 0x7F == 0x55
    assert (g >> LIST_FLAG_SHIFT) & 1 == 1
    assert g & ADDRESS_MASK == 0x1234_5678_9ABC


@given(
    st.integers(1, 127),
    st.integers(0, (1 << 48) - 1),
    st.booleans(),
)
def test_encode_decode_roundtrip(fn, addr, is_list):
    g = encode_global_prp(fn, addr, is_list)
    assert decode_global_prp(g) == (fn, addr, is_list)
    assert is_global_prp(g)


@given(st.integers(0, (1 << 48) - 1))
def test_untagged_addresses_are_not_global(addr):
    assert not is_global_prp(addr)


def test_function_id_zero_reserved():
    with pytest.raises(SimulationError, match="0 is reserved"):
        encode_global_prp(0, 0x1000)


def test_function_id_range_enforced():
    with pytest.raises(SimulationError):
        encode_global_prp(128, 0x1000)


def test_address_must_fit_48_bits():
    with pytest.raises(SimulationError, match="exceeds 48 bits"):
        encode_global_prp(1, 1 << 48)


@given(st.integers(1, 127), st.integers(0, (1 << 48) - 1))
def test_page_arithmetic_survives_tagging(fn, addr):
    """The engine hands tagged addresses to the SSD, whose PRP walking
    does page arithmetic on them — offsets must be preserved."""
    g = encode_global_prp(fn, addr)
    assert g % 4096 == addr % 4096
    g2 = g + (4096 - addr % 4096)  # step to next page, as pages_for does
    fn2, addr2, _ = decode_global_prp(g2)
    # stepping within 48 bits never corrupts the tag
    if addr + 4096 < (1 << 48):
        assert fn2 == fn
