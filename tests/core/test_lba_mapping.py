"""Mapping table tests: Fig. 4(a) bit format and equations (1)-(4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CHUNK_BYTES, MappingEntry, MappingTable
from repro.sim import SimulationError

CHUNK_BLOCKS = CHUNK_BYTES // 4096


# ------------------------------------------------------------- bit format
def test_entry_encodes_to_paper_layout():
    entry = MappingEntry(base_chunk=0b101101, ssd_id=0b10)
    raw = entry.encode()
    assert raw == (0b101101 << 2) | 0b10
    assert raw <= 0xFF


@given(st.integers(0, 63), st.integers(0, 3))
def test_entry_encode_decode_roundtrip(base, ssd):
    entry = MappingEntry(base_chunk=base, ssd_id=ssd)
    assert MappingEntry.decode(entry.encode()) == entry


def test_entry_field_bounds_enforced():
    with pytest.raises(SimulationError):
        MappingEntry(base_chunk=64, ssd_id=0)
    with pytest.raises(SimulationError):
        MappingEntry(base_chunk=0, ssd_id=4)
    with pytest.raises(SimulationError):
        MappingEntry.decode(0x100)


# ---------------------------------------------------------------- equations
def test_translate_follows_equations():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    # host chunk 9 -> row 1, entry 1 per equations (1)/(2)
    table.set_entry(9, MappingEntry(base_chunk=5, ssd_id=3))
    hl = 9 * CHUNK_BLOCKS + 1234
    ssd, pl = table.translate(hl)
    assert ssd == 3  # equation (3)
    assert pl == 5 * CHUNK_BLOCKS + 1234  # equation (4)


def test_translate_requires_valid_bit():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    table.set_entry(0, MappingEntry(0, 0))
    table.clear_entry(0)
    with pytest.raises(SimulationError, match="invalid mapping entry"):
        table.translate(0)


def test_validation_entry_is_a_bit_vector():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    table.set_entry(0, MappingEntry(1, 0))
    table.set_entry(2, MappingEntry(2, 1))
    table.set_entry(7, MappingEntry(3, 2))
    assert table.validation_entry(0) == 0b10000101
    table.clear_entry(2)
    assert table.validation_entry(0) == 0b10000001


def test_translate_beyond_table_errors():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS, rows=1)
    table.set_entry(0, MappingEntry(0, 0))
    with pytest.raises(SimulationError, match="beyond mapping table"):
        table.translate(8 * CHUNK_BLOCKS)


@given(
    st.lists(st.tuples(st.integers(0, 63), st.integers(0, 3)),
             min_size=1, max_size=64),
    st.data(),
)
def test_translate_roundtrip_property(entries, data):
    """For any provisioned table, translate() must land inside the
    mapped chunk and preserve the intra-chunk offset."""
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    for idx, (base, ssd) in enumerate(entries):
        table.set_entry(idx, MappingEntry(base, ssd))
    idx = data.draw(st.integers(0, len(entries) - 1))
    offset = data.draw(st.integers(0, CHUNK_BLOCKS - 1))
    hl = idx * CHUNK_BLOCKS + offset
    ssd, pl = table.translate(hl)
    base, expected_ssd = entries[idx]
    assert ssd == expected_ssd
    assert pl == base * CHUNK_BLOCKS + offset
    assert pl % CHUNK_BLOCKS == hl % CHUNK_BLOCKS  # offset preserved


def test_extent_within_one_chunk_is_single():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    table.set_entry(0, MappingEntry(7, 1))
    extents = table.translate_extent(100, 32)
    assert extents == [(1, 7 * CHUNK_BLOCKS + 100, 32)]


def test_extent_splits_at_chunk_boundary():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    table.set_entry(0, MappingEntry(2, 0))
    table.set_entry(1, MappingEntry(9, 3))
    start = CHUNK_BLOCKS - 10
    extents = table.translate_extent(start, 30)
    assert extents == [
        (0, 2 * CHUNK_BLOCKS + start, 10),
        (3, 9 * CHUNK_BLOCKS, 20),
    ]
    assert sum(cnt for _, _, cnt in extents) == 30


@given(st.integers(0, 3 * CHUNK_BLOCKS - 1), st.integers(1, 4096))
def test_extent_conservation_property(start, count):
    """Extents always cover exactly the requested range, in order."""
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    for idx in range(4):
        table.set_entry(idx, MappingEntry(base_chunk=idx * 2, ssd_id=idx % 4))
    count = min(count, 4 * CHUNK_BLOCKS - start)
    extents = table.translate_extent(start, count)
    assert sum(c for _, _, c in extents) == count
    # each fragment stays inside one chunk on its target drive
    for _, pl, c in extents:
        assert (pl % CHUNK_BLOCKS) + c <= CHUNK_BLOCKS


def test_extent_ending_exactly_at_final_chunk_boundary():
    """The last block of the last provisioned chunk is reachable."""
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS, rows=1)
    for idx in range(8):
        table.set_entry(idx, MappingEntry(idx, idx % 4))
    extents = table.translate_extent(8 * CHUNK_BLOCKS - 4, 4)
    assert extents == [(3, 7 * CHUNK_BLOCKS + CHUNK_BLOCKS - 4, 4)]
    # one block past the table still errors
    with pytest.raises(SimulationError, match="beyond mapping table"):
        table.translate_extent(8 * CHUNK_BLOCKS - 4, 5)


def test_extent_crossing_a_just_cleared_entry_errors_cleanly():
    """A split extent whose second chunk was just deprovisioned must
    raise — and the cleared slot must read back as zero, not the stale
    packed entry (the regression the lba checker's invalid-read hook
    pins at runtime)."""
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    table.set_entry(0, MappingEntry(2, 0))
    table.set_entry(1, MappingEntry(9, 3))
    table.clear_entry(1)
    assert table.raw_entry(1) == 0  # no stale packed value survives
    with pytest.raises(SimulationError, match="invalid mapping entry"):
        table.translate_extent(CHUNK_BLOCKS - 10, 30)
    # the part before the cleared chunk still translates on its own
    assert table.translate_extent(CHUNK_BLOCKS - 10, 10) == [
        (0, 2 * CHUNK_BLOCKS + CHUNK_BLOCKS - 10, 10)]


def test_cleared_entry_reads_back_zero_under_checker():
    """clear_entry must zero the packed byte: the runtime checker fails
    any invalid-entry read that still sees a nonzero raw value."""
    from repro.checks import CheckContext

    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    ctx = CheckContext(checkers=["lba"])
    ctx.bind_table(table)
    table.set_entry(0, MappingEntry(base_chunk=13, ssd_id=2))
    table.clear_entry(0)
    # translate hits the invalid entry; the checker inspects the raw
    # byte via on_lba_invalid_read and would raise InvariantViolation
    # ("stale packed value") if clear_entry left it nonzero
    with pytest.raises(SimulationError, match="invalid mapping entry"):
        table.translate(5)


def test_valid_count_tracks_provisioning():
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS)
    assert table.valid_count() == 0
    for i in range(5):
        table.set_entry(i, MappingEntry(i, 0))
    assert table.valid_count() == 5


def test_capacity_entries_and_large_tables():
    # the paper's eval binds a 1536 GB namespace = 24 chunks = 3 rows
    table = MappingTable(chunk_blocks=CHUNK_BLOCKS, rows=3)
    assert table.capacity_entries == 24
    for i in range(24):
        table.set_entry(i, MappingEntry(i % 29 % 64, i % 4))
    ssd, pl = table.translate(23 * CHUNK_BLOCKS + 5)
    assert ssd == 23 % 4
