"""QoS reconfiguration out of band: SET_QOS takes effect on live traffic."""

import pytest

from repro.baselines import build_bmstore
from repro.sim.units import GIB, MS


def test_set_qos_applies_to_running_namespace():
    rig = build_bmstore(num_ssds=1)
    sim = rig.sim
    driver = rig.baremetal_driver(rig.provision("t", 64 * GIB))
    windows = {"before": 0, "after": 0}
    phase = {"name": "before"}
    stop = {"flag": False}

    def io_loop(w):
        lba = w
        while not stop["flag"]:
            info = yield driver.read(lba % (1 << 20), 1)
            assert info.ok
            windows[phase["name"]] += 1
            lba += 101

    for w in range(16):
        sim.process(io_loop(w))

    def orchestrate():
        yield sim.timeout(20 * MS)
        resp = yield rig.console.set_qos("t", max_iops=20_000)
        assert resp.ok
        phase["name"] = "after"
        yield sim.timeout(20 * MS)
        stop["flag"] = True

    sim.run(sim.process(orchestrate()))
    sim.run(until=sim.now + 5 * MS)
    before_rate = windows["before"] / 0.020
    after_rate = windows["after"] / 0.020
    assert before_rate > 100_000  # unthrottled
    assert after_rate == pytest.approx(20_000, rel=0.35)  # capped live


def test_set_qos_can_lift_a_cap():
    rig = build_bmstore(num_ssds=1)
    sim = rig.sim
    from repro.core import QoSLimits

    driver = rig.baremetal_driver(
        rig.provision("t", 64 * GIB, limits=QoSLimits(max_iops=10_000.0))
    )
    count = {"n": 0}
    stop = {"flag": False}

    def io_loop(w):
        lba = w
        while not stop["flag"]:
            yield driver.read(lba % 4096, 1)
            count["n"] += 1
            lba += 7

    for w in range(8):
        sim.process(io_loop(w))

    def orchestrate():
        yield sim.timeout(10 * MS)
        capped = count["n"]
        resp = yield rig.console.set_qos("t")  # no limits -> unlimited
        assert resp.ok
        count["n"] = 0
        yield sim.timeout(10 * MS)
        stop["flag"] = True
        return capped, count["n"]

    capped, uncapped = sim.run(sim.process(orchestrate()))
    sim.run(until=sim.now + 5 * MS)
    assert uncapped > capped * 3  # cap demonstrably lifted
