"""BMS-Engine integration tests: the seven-step path, SR-IOV layer,
namespace provisioning, zero-copy routing, splits, and monitoring."""

import pytest

from repro.baselines import build_bmstore, build_native
from repro.core import NUM_PFS, NUM_VFS, QoSLimits
from repro.nvme import LBA_BYTES
from repro.sim import SimulationError
from repro.sim.units import GIB, to_us


GB64 = 64 * GIB


def provisioned_rig(size_bytes=256 * GIB, num_ssds=4, **kwargs):
    rig = build_bmstore(num_ssds=num_ssds, **kwargs)
    fn = rig.provision("ns0", size_bytes)
    driver = rig.baremetal_driver(fn)
    return rig, fn, driver


def run_one(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


# ------------------------------------------------------------- SR-IOV layer
def test_engine_exposes_4_pfs_and_124_vfs():
    rig = build_bmstore(num_ssds=1)
    assert len(rig.engine.sriov.physical_functions) == NUM_PFS == 4
    assert len(rig.engine.sriov.virtual_functions) == NUM_VFS == 124
    # 128 independent NVMe devices in total
    assert len(rig.engine.sriov.functions) == 128


def test_function_ids_start_at_one():
    # id 0 is reserved by the global-PRP encoding
    rig = build_bmstore(num_ssds=1)
    assert min(rig.engine.sriov.functions) == 1
    assert max(rig.engine.sriov.functions) == 128


# ------------------------------------------------------------- namespaces
def test_namespace_round_robin_placement():
    rig = build_bmstore(num_ssds=4)
    ens = rig.engine.create_namespace("ns", 256 * GIB)  # 4 chunks
    assert [ssd for ssd, _ in ens.chunks] == [0, 1, 2, 3]


def test_namespace_explicit_placement():
    rig = build_bmstore(num_ssds=4)
    ens = rig.engine.create_namespace("ns", 128 * GIB, placement=[2, 2])
    assert [ssd for ssd, _ in ens.chunks] == [2, 2]


def test_namespace_capacity_exhaustion_rolls_back():
    rig = build_bmstore(num_ssds=1)
    # P4510 2TB = 29 64GiB chunks usable
    rig.engine.create_namespace("big", 28 * GB64)
    with pytest.raises(SimulationError, match="out of free chunks"):
        rig.engine.create_namespace("more", 4 * GB64)
    # rollback: the free chunk is still allocatable
    rig.engine.create_namespace("small", 1 * GB64)


def test_delete_namespace_frees_chunks_and_unbinds():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 2 * GB64)
    rig.engine.delete_namespace("ns")
    assert fn.ns_key is None
    assert 1 not in fn.namespaces
    rig.engine.create_namespace("ns2", 29 * GB64)  # all chunks free again


def test_double_bind_rejected():
    rig = build_bmstore(num_ssds=1)
    rig.provision("a", GB64, fn_id=10)
    rig.engine.create_namespace("b", GB64)
    with pytest.raises(SimulationError, match="already has a namespace"):
        rig.engine.bind_namespace("b", 10)


# --------------------------------------------------------------- I/O path
def test_io_to_unbound_function_fails_cleanly():
    rig = build_bmstore(num_ssds=1)
    fn = rig.engine.sriov.function_by_id(20)
    # bind a namespace object so the driver can size itself, then unbind
    rig.provision("ns", GB64, fn_id=20)
    driver = rig.baremetal_driver(fn)
    rig.engine.unbind_namespace("ns")
    fn.namespaces[1] = rig.engine.namespaces["ns"].namespace  # stale view

    def flow():
        info = yield driver.read(0, 1)
        return info

    info = run_one(rig, flow())
    assert not info.ok


def test_read_beyond_namespace_returns_lba_out_of_range():
    rig, fn, driver = provisioned_rig(size_bytes=GB64, num_ssds=1)

    def flow():
        info = yield driver.read(driver.num_blocks - 1, 4)
        return info

    info = run_one(rig, flow())
    assert not info.ok


def test_engine_remaps_lba_onto_correct_backend_ssd():
    rig, fn, driver = provisioned_rig(size_bytes=256 * GIB, num_ssds=4)
    chunk_blocks = rig.engine.chunk_blocks

    def flow():
        # chunk 2 lives on SSD 2 (round-robin)
        info = yield driver.write(2 * chunk_blocks + 7, 1)
        assert info.ok

    run_one(rig, flow())
    assert rig.ssds[2].stats.write_ops == 1
    assert all(rig.ssds[i].stats.write_ops == 0 for i in (0, 1, 3))


def test_write_spanning_chunks_fans_out_and_joins():
    rig, fn, driver = provisioned_rig(size_bytes=256 * GIB, num_ssds=4)
    chunk_blocks = rig.engine.chunk_blocks

    def flow():
        info = yield driver.write(chunk_blocks - 2, 4)  # 2 blocks each side
        return info

    info = run_one(rig, flow())
    assert info.ok
    assert rig.ssds[0].stats.write_ops == 1
    assert rig.ssds[1].stats.write_ops == 1


def test_split_write_then_read_preserves_data_across_chunks():
    rig, fn, driver = provisioned_rig(size_bytes=256 * GIB, num_ssds=4)
    chunk_blocks = rig.engine.chunk_blocks
    payload = bytes((i * 7) % 256 for i in range(4 * LBA_BYTES))

    def flow():
        info = yield driver.write(chunk_blocks - 2, 4, payload=payload)
        assert info.ok
        info = yield driver.read(chunk_blocks - 2, 4, want_data=True)
        return info

    info = run_one(rig, flow())
    assert info.ok
    assert info.data == payload


def test_zero_copy_data_never_lands_in_chip_memory():
    rig, fn, driver = provisioned_rig(num_ssds=1)
    payload = b"\xab" * LBA_BYTES

    def flow():
        yield driver.write(10, 1, payload=payload)
        info = yield driver.read(10, 1, want_data=True)
        return info

    info = run_one(rig, flow())
    assert info.data == payload
    # chip memory saw ring/PRP traffic only, nothing data-sized
    assert rig.engine._chip_dram_bus.bytes_moved == 0


def test_flush_fans_out_to_all_backing_ssds():
    rig, fn, driver = provisioned_rig(size_bytes=256 * GIB, num_ssds=4)

    def flow():
        info = yield driver.flush()
        return info

    info = run_one(rig, flow())
    assert info.ok
    assert all(ssd.stats.admin_ops == 0 for ssd in rig.ssds)  # IO flush, not admin


def test_engine_latency_overhead_is_about_3us():
    # jitter-free flash so the single-sample comparison is exact
    from dataclasses import replace
    from repro.nvme import P4510_PROFILE

    quiet = replace(P4510_PROFILE, jitter_cv=0.0)
    nat = build_native(1, flash_profile=quiet)

    def one_native():
        info = yield nat.driver().read(50, 1)
        return info.latency_ns

    native_lat = nat.sim.run(nat.sim.process(one_native()))

    rig = build_bmstore(num_ssds=1, flash_profile=quiet)
    driver = rig.baremetal_driver(rig.provision("ns0", 256 * GIB))

    def one_bms():
        info = yield driver.read(50, 1)
        return info.latency_ns

    bms_lat = run_one(rig, one_bms())
    extra_us = to_us(bms_lat - native_lat)
    assert 1.5 <= extra_us <= 5.0  # paper: "about 3 us"


def test_concurrent_functions_are_independent():
    rig = build_bmstore(num_ssds=2)
    d1 = rig.baremetal_driver(rig.provision("a", GB64, placement=[0]))
    d2 = rig.baremetal_driver(rig.provision("b", GB64, placement=[1]))
    results = []

    def flow(driver, lba):
        info = yield driver.write(lba, 1)
        results.append(info.ok)

    p1 = rig.sim.process(flow(d1, 5))
    p2 = rig.sim.process(flow(d2, 5))
    rig.sim.run(rig.sim.all_of([p1, p2]))
    assert results == [True, True]
    assert rig.ssds[0].stats.write_ops == 1
    assert rig.ssds[1].stats.write_ops == 1


def test_same_physical_lba_isolated_between_namespaces():
    rig = build_bmstore(num_ssds=1)
    d1 = rig.baremetal_driver(rig.provision("a", GB64))
    d2 = rig.baremetal_driver(rig.provision("b", GB64))

    def flow():
        yield d1.write(0, 1, payload=b"A" * LBA_BYTES)
        yield d2.write(0, 1, payload=b"B" * LBA_BYTES)
        a = yield d1.read(0, 1, want_data=True)
        b = yield d2.read(0, 1, want_data=True)
        return a.data, b.data

    a, b = run_one(rig, flow())
    assert a == b"A" * LBA_BYTES
    assert b == b"B" * LBA_BYTES


# -------------------------------------------------------------- monitoring
def test_engine_accounts_per_function_io():
    rig, fn, driver = provisioned_rig(num_ssds=1)

    def flow():
        for _ in range(3):
            yield driver.read(0, 1)
        yield driver.write(0, 2)

    run_one(rig, flow())
    snap = rig.engine.monitor_snapshot(fn.fn_id)
    assert snap["read_ops"] == 3
    assert snap["write_ops"] == 1
    assert snap["read_bytes"] == 3 * LBA_BYTES
    assert snap["write_bytes"] == 2 * LBA_BYTES
    assert rig.engine.total_ios == 4


def test_qos_limits_cap_namespace_iops():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", GB64, limits=QoSLimits(max_iops=10_000.0, burst_ios=4))
    driver = rig.baremetal_driver(fn)
    done = {"n": 0}

    def worker():
        while done["n"] < 200:
            done["n"] += 1
            yield driver.read(0, 1)

    procs = [rig.sim.process(worker()) for _ in range(8)]
    start = rig.sim.now
    rig.sim.run(rig.sim.all_of(procs))
    elapsed = rig.sim.now - start
    iops = 200 * 1e9 / elapsed
    assert iops == pytest.approx(10_000, rel=0.15)
