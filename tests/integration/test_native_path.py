"""End-to-end tests of the native path: driver -> PCIe -> SSD -> flash.

These also pin the P4510 calibration anchors from DESIGN.md §5 so any
model change that breaks Table V shows up here first.
"""

import pytest

from repro.host import Host, NVMeDriver
from repro.nvme import NVMeSSD
from repro.sim import Simulator, StreamFactory
from repro.sim.units import to_us


def make_rig(queue_depth=1024, num_io_queues=4):
    sim = Simulator()
    streams = StreamFactory(root_seed=7)
    host = Host(sim, streams)
    ssd = NVMeSSD(sim, host.fabric, streams, name="nvme-ssd")
    driver = NVMeDriver(host, ssd, queue_depth=queue_depth, num_io_queues=num_io_queues)
    return sim, host, ssd, driver


def run_closed_loop(sim, driver, op, outstanding, nblocks, count, lba_span=1 << 20):
    """Run a closed loop of `outstanding` workers until `count` I/Os done."""
    latencies = []
    issued = {"n": 0}

    def worker(tag):
        lba = (tag * 7919) % lba_span
        while issued["n"] < count:
            issued["n"] += 1
            if op == "read":
                info = yield driver.read(lba, nblocks)
            else:
                info = yield driver.write(lba, nblocks)
            assert info.ok
            latencies.append(info.latency_ns)
            lba = (lba + nblocks * 13) % lba_span

    procs = [sim.process(worker(i)) for i in range(outstanding)]
    start = sim.now
    sim.run(sim.all_of(procs))
    elapsed = sim.now - start
    return latencies, elapsed


def test_single_4k_read_completes_with_native_latency():
    sim, host, ssd, driver = make_rig()

    def one():
        info = yield driver.read(100, 1)
        return info

    info = sim.run(sim.process(one()))
    assert info.ok
    # DESIGN.md anchor: P4510 4K random read qd1 ~ 77.2 us
    assert to_us(info.latency_ns) == pytest.approx(77.2, rel=0.08)


def test_single_4k_write_latency_anchor():
    sim, host, ssd, driver = make_rig()

    def one():
        info = yield driver.write(500, 1)
        return info

    info = sim.run(sim.process(one()))
    assert info.ok
    # anchor: ~11.6 us; model gives write-buffer latency + transport
    assert to_us(info.latency_ns) == pytest.approx(11.6, rel=0.25)


def test_random_read_saturation_iops():
    sim, host, ssd, driver = make_rig()
    lats, elapsed = run_closed_loop(sim, driver, "read", outstanding=512, nblocks=1, count=4000)
    iops = len(lats) * 1e9 / elapsed
    # anchor: ~640K IOPS at qd512
    assert iops == pytest.approx(640_000, rel=0.10)
    mean_lat = sum(lats) / len(lats)
    # anchor: ~787 us average latency at qd512
    assert to_us(mean_lat) == pytest.approx(787, rel=0.15)


def test_random_write_saturation_iops():
    sim, host, ssd, driver = make_rig()
    lats, elapsed = run_closed_loop(sim, driver, "write", outstanding=64, nblocks=1, count=3000)
    iops = len(lats) * 1e9 / elapsed
    # anchor: ~356K IOPS at qd64 (rand-w-16 x 4 jobs)
    assert iops == pytest.approx(356_000, rel=0.12)


def test_sequential_read_bandwidth():
    sim, host, ssd, driver = make_rig()
    # 128K ops (32 blocks), high outstanding
    lats, elapsed = run_closed_loop(sim, driver, "read", outstanding=256, nblocks=32, count=1500)
    bw = len(lats) * 32 * 4096 * 1e9 / elapsed
    # anchor: ~3.23 GB/s sequential read
    assert bw == pytest.approx(3.23e9, rel=0.08)


def test_sequential_write_bandwidth():
    sim, host, ssd, driver = make_rig()
    lats, elapsed = run_closed_loop(sim, driver, "write", outstanding=256, nblocks=32, count=1000)
    bw = len(lats) * 32 * 4096 * 1e9 / elapsed
    # anchor: ~1.42 GB/s sequential write
    assert bw == pytest.approx(1.42e9, rel=0.08)


def test_data_integrity_write_then_read():
    sim, host, ssd, driver = make_rig()
    payload = bytes(range(256)) * 16 * 2  # two blocks
    result = {}

    def flow():
        info = yield driver.write(42, 2, payload=payload)
        assert info.ok
        info = yield driver.read(42, 2, want_data=True)
        result["data"] = info.data

    sim.run(sim.process(flow()))
    assert result["data"] == payload


def test_read_of_never_written_range_returns_no_data():
    sim, host, ssd, driver = make_rig()
    result = {}

    def flow():
        info = yield driver.read(9999, 1, want_data=True)
        result["info"] = info

    sim.run(sim.process(flow()))
    assert result["info"].ok
    assert result["info"].data is None


def test_flush_completes():
    sim, host, ssd, driver = make_rig()

    def flow():
        yield driver.write(0, 8)
        info = yield driver.flush()
        assert info.ok

    sim.run(sim.process(flow()))


def test_out_of_range_read_fails_cleanly():
    sim, host, ssd, driver = make_rig()

    def flow():
        info = yield driver.read(driver.num_blocks - 1, 8)
        return info

    info = sim.run(sim.process(flow()))
    assert not info.ok
    assert driver.stats.errors == 1


def test_driver_counts_interrupts_and_ops():
    sim, host, ssd, driver = make_rig()
    run_closed_loop(sim, driver, "read", outstanding=8, nblocks=1, count=100)
    assert driver.stats.submitted == 100
    assert driver.stats.completed == 100
    assert driver.stats.interrupts > 0
    assert ssd.stats.read_ops == 100
