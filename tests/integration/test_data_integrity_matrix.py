"""Data-integrity matrix: byte-exact roundtrips through every scheme.

The transparency argument only holds if the remapped, rerouted,
re-queued bytes are *the same bytes*.  One pattern, every scheme,
multiple transfer shapes (sub-page, two-page, PRP-list sized).
"""

import pytest

from repro.baselines import build_bmstore, build_native, build_spdk, build_vfio
from repro.host import VirtualMachine
from repro.sim.units import GIB

SHAPES = [1, 2, 32]  # blocks: direct PRP, two-entry, PRP-list


def pattern(nblocks: int, salt: int) -> bytes:
    return bytes((i * 131 + salt) % 256 for i in range(nblocks * 4096))


def roundtrip(sim, target, nblocks, salt, lba=77):
    payload = pattern(nblocks, salt)

    def flow():
        info = yield target.write(lba, nblocks, payload=payload)
        assert info.ok
        info = yield target.read(lba, nblocks, want_data=True)
        return info.data

    return sim.run(sim.process(flow())) == payload


@pytest.mark.parametrize("nblocks", SHAPES)
def test_native_integrity(nblocks):
    rig = build_native(1)
    assert roundtrip(rig.sim, rig.driver(), nblocks, salt=1)


@pytest.mark.parametrize("nblocks", SHAPES)
def test_bmstore_baremetal_integrity(nblocks):
    rig = build_bmstore(num_ssds=4)
    driver = rig.baremetal_driver(rig.provision("ns", 256 * GIB))
    assert roundtrip(rig.sim, driver, nblocks, salt=2)


@pytest.mark.parametrize("nblocks", SHAPES)
def test_bmstore_vm_integrity(nblocks):
    rig = build_bmstore(num_ssds=2)
    vm = VirtualMachine(rig.host, "vm0")
    driver = rig.vm_driver(vm, rig.provision("ns", 128 * GIB))
    assert roundtrip(rig.sim, driver, nblocks, salt=3)


@pytest.mark.parametrize("nblocks", SHAPES)
def test_vfio_integrity(nblocks):
    rig = build_vfio(1)
    assert roundtrip(rig.sim, rig.driver(), nblocks, salt=4)


@pytest.mark.parametrize("nblocks", SHAPES)
def test_spdk_integrity(nblocks):
    rig = build_spdk(1, 1, 1)
    assert roundtrip(rig.sim, rig.vdev(), nblocks, salt=5)


def test_bmstore_rewrites_do_not_leak_across_lbas():
    """Adjacent logical blocks on a striped namespace stay distinct."""
    rig = build_bmstore(num_ssds=4)
    driver = rig.baremetal_driver(rig.provision("ns", 256 * GIB))
    chunk = rig.engine.chunk_blocks

    def flow():
        # neighbors straddling a chunk (and therefore drive) boundary
        a, b = pattern(1, 10), pattern(1, 11)
        yield driver.write(chunk - 1, 1, payload=a)
        yield driver.write(chunk, 1, payload=b)
        ra = yield driver.read(chunk - 1, 1, want_data=True)
        rb = yield driver.read(chunk, 1, want_data=True)
        return ra.data == a and rb.data == b

    assert rig.sim.run(rig.sim.process(flow()))
