"""Cross-feature integration: maintenance under multi-tenant load.

Combines the subsystems the paper argues must compose in production:
several tenants with QoS classes, live I/O, an out-of-band firmware
hot-upgrade, and monitoring — all at once.
"""

import pytest

from repro.baselines import build_bmstore
from repro.core import QoSLimits
from repro.sim.units import GIB, MS, sec


def test_hot_upgrade_with_three_qos_tenants_no_errors_and_caps_hold():
    rig = build_bmstore(num_ssds=2)
    sim = rig.sim
    tenants = {
        "uncapped": rig.baremetal_driver(
            rig.provision("uncapped", 64 * GIB, placement=[0])
        ),
        "capped": rig.baremetal_driver(
            rig.provision("capped", 64 * GIB, placement=[1],
                          limits=QoSLimits(max_iops=30_000.0))
        ),
    }
    stats = {name: {"ios": 0, "errors": 0} for name in tenants}
    stop = {"flag": False}

    def io_loop(name, driver, depth):
        def worker(w):
            lba = w * 313
            while not stop["flag"]:
                info = yield driver.read(lba % (1 << 20), 1)
                stats[name]["ios"] += 1
                if not info.ok:
                    stats[name]["errors"] += 1
                lba += 769
        for w in range(depth):
            sim.process(worker(w))

    for name, driver in tenants.items():
        io_loop(name, driver, depth=8)

    def orchestrate():
        yield sim.timeout(20 * MS)
        # upgrade drive 1 (the capped tenant's backend) under load
        resp = yield rig.console.hot_upgrade(1, version="NEW", activation_s=0.5)
        assert resp.ok
        yield sim.timeout(20 * MS)
        mon = yield rig.console.io_stats(
            rig.engine.namespaces["capped"].bound_fn
        )
        stop["flag"] = True
        return mon

    mon = sim.run(sim.process(orchestrate()))
    sim.run(until=sim.now + sec(0.05))

    # nobody saw an error through the upgrade
    assert all(s["errors"] == 0 for s in stats.values())
    # the uncapped tenant (other drive) kept running during the pause
    elapsed_s = sim.now / 1e9
    assert stats["uncapped"]["ios"] / elapsed_s > 50_000
    # the capped tenant respected its QoS ceiling while it was running
    running_s = elapsed_s - 0.5  # minus the upgrade pause
    capped_rate = stats["capped"]["ios"] / running_s
    assert capped_rate < 33_000
    # and the OOB monitor agrees with the tenant's own count
    assert mon.body["read_ops"] == pytest.approx(stats["capped"]["ios"], abs=16)


def test_monitoring_history_spans_hot_plug():
    from repro.nvme import NVMeSSD

    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("t", 64 * GIB)
    driver = rig.baremetal_driver(fn)
    rig.controller.start_monitor(period_ns=2 * MS, fn_ids=[fn.fn_id])
    replacement = NVMeSSD(rig.sim, rig.engine.backend_fabric, rig.streams,
                          name="spare")
    rig.controller.stage_replacement(0, replacement)

    def flow():
        for i in range(30):
            yield driver.read(i, 1)
        resp = yield rig.console.hot_plug_replace(0)
        assert resp.ok
        for i in range(30):
            yield driver.read(i, 1)

    done = rig.sim.process(flow())
    rig.sim.run(done)
    rig.sim.run(until=rig.sim.now + 10 * MS)
    history = rig.controller.monitor_history
    assert history[-1]["fns"][fn.fn_id]["read_ops"] == 60
    # samples kept flowing across the replacement window
    assert len(history) >= 5
