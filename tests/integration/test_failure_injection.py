"""Failure injection: grown media defects through every layer.

The operational story the hot-plug machinery exists for: a drive grows
bad blocks, tenants see failed reads (not corruption), the vendor sees
the error counters out of band, and a hot-plug replacement clears the
fault while the tenant's logical drive survives.
"""


from repro.baselines import build_bmstore, build_native
from repro.nvme import NVMeSSD
from repro.sim.units import GIB


def test_media_error_surfaces_as_failed_read_native():
    rig = build_native(1)
    rig.ssds[0].bad_lbas.add(500)

    def flow():
        ok_info = yield rig.driver().read(400, 1)
        bad_info = yield rig.driver().read(500, 1)
        return ok_info, bad_info

    ok_info, bad_info = rig.sim.run(rig.sim.process(flow()))
    assert ok_info.ok
    assert not bad_info.ok
    assert rig.ssds[0].stats.errors == 1


def test_media_error_spanning_range_fails_whole_command():
    rig = build_native(1)
    rig.ssds[0].bad_lbas.add(102)

    def flow():
        info = yield rig.driver().read(100, 8)  # covers the bad LBA
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert not info.ok


def test_writes_unaffected_by_read_defects():
    rig = build_native(1)
    rig.ssds[0].bad_lbas.add(7)

    def flow():
        info = yield rig.driver().write(7, 1)
        return info

    assert rig.sim.run(rig.sim.process(flow())).ok


def test_error_propagates_through_bmstore_to_tenant_and_monitor():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn)
    # the physical LBA behind host LBA 123 (chunk 0 -> identity-ish map)
    ssd_id, plba = rig.engine.namespaces["ns"].table.translate(123)
    rig.ssds[ssd_id].bad_lbas.add(plba)

    def flow():
        bad = yield driver.read(123, 1)
        good = yield driver.read(124, 1)
        stats = yield rig.console.io_stats(fn.fn_id)
        return bad, good, stats

    bad, good, stats = rig.sim.run(rig.sim.process(flow()))
    assert not bad.ok and good.ok
    assert stats.body["errors"] == 1  # visible out of band


def test_hot_plug_replacement_clears_grown_defects():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn)
    _, plba = rig.engine.namespaces["ns"].table.translate(55)
    rig.ssds[0].bad_lbas.add(plba)
    replacement = NVMeSSD(rig.sim, rig.engine.backend_fabric, rig.streams,
                          name="fresh")
    rig.controller.stage_replacement(0, replacement)

    def flow():
        info = yield driver.read(55, 1)
        assert not info.ok  # failing drive
        resp = yield rig.console.hot_plug_replace(0)
        assert resp.ok
        info = yield driver.read(55, 1)  # same logical drive, new media
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.ok
