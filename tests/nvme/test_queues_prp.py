"""Queue-ring (phase bits, wrap-around) and PRP construction tests."""

import pytest
from hypothesis import given, strategies as st

from repro.host.memory import PAGE_SIZE, HostMemory
from repro.nvme import (
    CQE,
    SQE,
    CompletionQueue,
    SubmissionQueue,
    build_prps,
    pages_for,
    walk_prps,
)
from repro.nvme.prp import PRPList
from repro.sim import SimulationError, Simulator


def make_mem():
    sim = Simulator()
    return sim, HostMemory(sim, 1 << 30)


# ------------------------------------------------------------------ SQ ring
def test_sq_push_consume_fifo():
    sim, mem = make_mem()
    sq = SubmissionQueue(mem, mem.alloc(8 * 64), 8, sqid=1)
    for i in range(5):
        sq.push(SQE(opcode=2, cid=i, nsid=1))
    got = []
    while not sq.is_empty:
        addr = sq.consume_addr()
        got.append(mem.load_obj(addr).cid)
    assert got == [0, 1, 2, 3, 4]


def test_sq_full_detection_and_wrap():
    sim, mem = make_mem()
    sq = SubmissionQueue(mem, mem.alloc(4 * 64), 4, sqid=1)
    for i in range(3):
        sq.push(SQE(opcode=2, cid=i, nsid=1))
    assert sq.is_full
    with pytest.raises(SimulationError, match="full"):
        sq.push(SQE(opcode=2, cid=9, nsid=1))
    sq.consume_addr()
    assert not sq.is_full
    sq.push(SQE(opcode=2, cid=3, nsid=1))  # wraps
    assert sq.outstanding() == 3


def test_sq_empty_consume_rejected():
    sim, mem = make_mem()
    sq = SubmissionQueue(mem, mem.alloc(4 * 64), 4, sqid=1)
    with pytest.raises(SimulationError, match="empty"):
        sq.consume_addr()


def test_sq_depth_minimum():
    sim, mem = make_mem()
    with pytest.raises(SimulationError):
        SubmissionQueue(mem, 0, 1, sqid=1)


# ------------------------------------------------------------------ CQ ring
def test_cq_phase_bit_polling():
    sim, mem = make_mem()
    cq = CompletionQueue(mem, mem.alloc(4 * 16), 4, cqid=1)
    assert cq.poll() is None  # nothing posted
    cq.post_slot(CQE(cid=1))
    cqe = cq.poll()
    assert cqe is not None and cqe.cid == 1 and cqe.phase == 1
    assert cq.poll() is None


def test_cq_phase_flips_on_wrap():
    sim, mem = make_mem()
    cq = CompletionQueue(mem, mem.alloc(4 * 16), 4, cqid=1)
    seen = []
    for round_ in range(3):  # wraps twice
        for i in range(4):
            cq.post_slot(CQE(cid=round_ * 4 + i))
            cqe = cq.poll()
            seen.append((cqe.cid, cqe.phase))
    cids = [c for c, _ in seen]
    assert cids == list(range(12))
    phases = [p for _, p in seen]
    assert phases[:4] == [1] * 4 and phases[4:8] == [0] * 4 and phases[8:] == [1] * 4


def test_cq_stale_entry_not_consumed():
    sim, mem = make_mem()
    cq = CompletionQueue(mem, mem.alloc(2 * 16), 2, cqid=1)
    cq.post_slot(CQE(cid=1))
    assert cq.poll().cid == 1
    cq.post_slot(CQE(cid=2))
    assert cq.poll().cid == 2
    # ring wrapped; slot 0 still holds the old phase-1 entry, but the
    # host now expects phase 0 -> must not re-consume
    assert cq.poll() is None


def test_cq_full_post_rejected():
    sim, mem = make_mem()
    cq = CompletionQueue(mem, mem.alloc(2 * 16), 2, cqid=1)
    cq.post_slot(CQE(cid=1))
    # depth 2 holds at most one unconsumed completion; a second post
    # would overwrite the entry the host has not seen yet
    with pytest.raises(SimulationError, match="full"):
        cq.post_slot(CQE(cid=2))
    assert cq.poll().cid == 1
    cq.post_slot(CQE(cid=2))  # space again after the host consumed
    assert cq.poll().cid == 2


# --------------------------------------------------------------------- PRPs
def test_pages_for_unaligned_buffer():
    pages = pages_for(PAGE_SIZE + 100, 2 * PAGE_SIZE)
    assert pages == [PAGE_SIZE + 100, 2 * PAGE_SIZE, 3 * PAGE_SIZE]


def test_pages_for_zero_length():
    assert pages_for(0x1000, 0) == []


def test_build_prps_single_page():
    sim, mem = make_mem()
    buf = mem.alloc(PAGE_SIZE)
    prp1, prp2 = build_prps(mem, buf, PAGE_SIZE)
    assert prp1 == buf and prp2 == 0


def test_build_prps_two_pages_direct():
    sim, mem = make_mem()
    buf = mem.alloc(2 * PAGE_SIZE)
    prp1, prp2 = build_prps(mem, buf, 2 * PAGE_SIZE)
    assert prp1 == buf and prp2 == buf + PAGE_SIZE


def test_build_prps_list_for_large_transfer():
    sim, mem = make_mem()
    buf = mem.alloc(32 * PAGE_SIZE)
    prp1, prp2 = build_prps(mem, buf, 32 * PAGE_SIZE)
    assert prp1 == buf
    entry = mem.load_obj(prp2)
    assert isinstance(entry, PRPList)
    assert len(entry.entries) == 31


@given(st.integers(1, 64), st.integers(0, PAGE_SIZE - 1))
def test_walk_prps_covers_whole_transfer(npages, offset):
    sim = Simulator()
    mem = HostMemory(sim, 1 << 30)
    length = npages * PAGE_SIZE
    buf = mem.alloc(length + PAGE_SIZE) + offset
    prp1, prp2 = build_prps(mem, buf, length)
    pages, _ = walk_prps(mem, prp1, prp2, length)
    covered = 0
    for page_addr in pages:
        covered += min(PAGE_SIZE - page_addr % PAGE_SIZE, length - covered)
    assert covered == length
    assert pages[0] == buf


def test_walk_prps_bad_list_pointer_rejected():
    sim, mem = make_mem()
    with pytest.raises(SimulationError, match="PRP list"):
        walk_prps(mem, 0, 0xDEAD, 10 * PAGE_SIZE)


def test_walk_prps_unaligned_prp2_rejected():
    sim, mem = make_mem()
    # only prp1 may carry a page offset; an offset prp2 would DMA into
    # the middle of the wrong page
    with pytest.raises(SimulationError, match="prp2 .* not page-aligned"):
        walk_prps(mem, 0x1000, 0x2000 + 8, 2 * PAGE_SIZE)


def test_walk_prps_unaligned_list_entry_rejected():
    sim, mem = make_mem()
    list_addr = mem.alloc(4 * 8, align=8)
    entries = [2 * PAGE_SIZE, 3 * PAGE_SIZE + 4, 4 * PAGE_SIZE]
    mem.store_obj(list_addr, PRPList(list_addr, entries))
    with pytest.raises(SimulationError, match="list entry .* not page-aligned"):
        walk_prps(mem, 0x1000, list_addr, 4 * PAGE_SIZE)


def test_walk_prps_ignores_stale_tail_beyond_transfer():
    sim, mem = make_mem()
    list_addr = mem.alloc(4 * 8, align=8)
    # an unaligned entry past the transfer's page count is never used,
    # so it must not be validated (lists may be recycled with stale tails)
    entries = [2 * PAGE_SIZE, 3 * PAGE_SIZE, 5 * PAGE_SIZE + 4]
    mem.store_obj(list_addr, PRPList(list_addr, entries))
    pages, _ = walk_prps(mem, 0x1000, list_addr, 3 * PAGE_SIZE)
    assert pages == [0x1000, 2 * PAGE_SIZE, 3 * PAGE_SIZE]


def test_build_prps_zero_length_rejected():
    sim, mem = make_mem()
    with pytest.raises(SimulationError):
        build_prps(mem, 0x1000, 0)
