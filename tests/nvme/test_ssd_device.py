"""NVMeSSD device tests: admin commands, firmware activation pause,
namespace bounds, and data persistence."""


from repro.host import Host, NVMeDriver
from repro.nvme import DEFAULT_FIRMWARE, AdminOpcode, FirmwareImage, NVMeSSD
from repro.sim import Simulator, StreamFactory
from repro.sim.units import sec


def make_rig():
    sim = Simulator()
    streams = StreamFactory(11)
    host = Host(sim, streams)
    ssd = NVMeSSD(sim, host.fabric, streams, name="unit-ssd")
    driver = NVMeDriver(host, ssd, queue_depth=64, num_io_queues=2)
    return sim, host, ssd, driver


def test_identify_returns_model_and_capacity():
    sim, host, ssd, driver = make_rig()
    buf = host.memory.alloc(4096)

    def flow():
        info = yield driver.admin(AdminOpcode.IDENTIFY, prp1=buf)
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok
    page = ssd.admin_payload_at(buf)
    assert page["model"] == "intel-p4510-2tb"
    assert page["capacity_blocks"] == ssd.namespaces[1].num_blocks


def test_get_log_page_health():
    sim, host, ssd, driver = make_rig()
    buf = host.memory.alloc(4096)

    def flow():
        yield driver.write(3, 1)
        info = yield driver.admin(AdminOpcode.GET_LOG_PAGE, prp1=buf)
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok
    log = ssd.admin_payload_at(buf)
    assert log["write_ops"] == 1
    assert log["firmware"] == DEFAULT_FIRMWARE.version


def test_unknown_admin_opcode_rejected():
    sim, host, ssd, driver = make_rig()

    def flow():
        info = yield driver.admin(AdminOpcode.NS_ATTACH)  # unhandled
        return info

    info = sim.run(sim.process(flow()))
    assert not info.ok


def test_firmware_activation_pauses_then_resumes_io():
    sim, host, ssd, driver = make_rig()
    image = FirmwareImage(version="NEW", size_bytes=4096, activation_ns=sec(0.5))
    buf = host.memory.alloc(4096)
    log = []

    def upgrade():
        yield driver.admin(
            AdminOpcode.FIRMWARE_DOWNLOAD, cdw10=4096 // 4 - 1, prp1=buf,
            payload=b"NEW",
        )
        info = yield driver.admin(
            AdminOpcode.FIRMWARE_COMMIT, cdw10=2 | (3 << 3), payload=image
        )
        log.append(("commit-done", sim.now, info.ok))

    def io_during():
        yield sim.timeout(1_000_000)  # after commit is in flight
        info = yield driver.read(0, 1)
        log.append(("read-done", sim.now, info.ok))

    p1 = sim.process(upgrade())
    p2 = sim.process(io_during())
    sim.run(sim.all_of([p1, p2]))
    assert ssd.firmware.active.version == "NEW"
    commit_t = next(t for tag, t, _ in log if tag == "commit-done")
    read_t = next(t for tag, t, _ in log if tag == "read-done")
    assert commit_t >= sec(0.5)  # activation took its time
    assert read_t >= commit_t  # the read waited for the reset, no error
    assert all(ok for _, _, ok in log)
    assert ssd.power_cycles == 2


def test_write_zeroes_discards_data():
    sim, host, ssd, driver = make_rig()
    from repro.nvme import IOOpcode
    payload = b"z" * 4096

    def flow():
        yield driver.write(7, 1, payload=payload)
        assert ssd.block_data(7) == payload
        info = yield driver._submit_io(int(IOOpcode.WRITE_ZEROES), 7, 1, None, False)
        assert info.ok
        return ssd.block_data(7)

    data = sim.run(sim.process(flow()))
    assert data is None


def test_multiblock_write_persists_per_lba():
    sim, host, ssd, driver = make_rig()
    payload = bytes([1] * 4096 + [2] * 4096 + [3] * 4096)

    def flow():
        yield driver.write(100, 3, payload=payload)

    sim.run(sim.process(flow()))
    assert ssd.block_data(100) == bytes([1] * 4096)
    assert ssd.block_data(101) == bytes([2] * 4096)
    assert ssd.block_data(102) == bytes([3] * 4096)


def test_large_transfer_uses_prp_list_and_roundtrips():
    sim, host, ssd, driver = make_rig()
    payload = bytes((i // 97) % 256 for i in range(32 * 4096))  # 128K

    def flow():
        yield driver.write(1000, 32, payload=payload)
        info = yield driver.read(1000, 32, want_data=True)
        return info.data

    assert sim.run(sim.process(flow())) == payload


def test_health_log_contents():
    sim, host, ssd, driver = make_rig()
    log = ssd.health_log()
    assert log["firmware"] == DEFAULT_FIRMWARE.version
    assert log["power_cycles"] == 1
    assert log["errors"] == 0
