"""Flash performance-model and firmware-slot tests."""

import pytest

from repro.nvme import FirmwareImage, FirmwareSlots, FlashBackend, P4510_PROFILE
from repro.sim import SimulationError, Simulator, StreamFactory
from repro.sim.units import sec, to_us


def make_flash():
    sim = Simulator()
    rng = StreamFactory(3).stream("flash")
    return sim, FlashBackend(sim, P4510_PROFILE, rng)


def closed_loop(sim, flash, op, nbytes, workers, count):
    done = {"n": 0}

    def worker():
        while done["n"] < count:
            done["n"] += 1
            if op == "read":
                yield sim.process(flash.read(nbytes))
            else:
                yield sim.process(flash.write(nbytes))

    procs = [sim.process(worker()) for _ in range(workers)]
    sim.run(sim.all_of(procs))
    return sim.now


def test_profile_derived_limits_match_calibration():
    # DESIGN.md anchors
    assert P4510_PROFILE.max_random_read_iops == pytest.approx(668_000, rel=0.02)
    assert P4510_PROFILE.max_random_write_iops == pytest.approx(356_000, rel=0.02)


def test_read_saturation_iops():
    sim, flash = make_flash()
    elapsed = closed_loop(sim, flash, "read", 4096, workers=256, count=4000)
    iops = 4000 * 1e9 / elapsed
    assert iops == pytest.approx(P4510_PROFILE.max_random_read_iops, rel=0.05)


def test_sequential_read_bus_bound():
    sim, flash = make_flash()
    elapsed = closed_loop(sim, flash, "read", 128 * 1024, workers=64, count=500)
    bw = 500 * 128 * 1024 * 1e9 / elapsed
    assert bw == pytest.approx(3.23e9, rel=0.05)


def test_write_qd1_hits_buffer_latency():
    sim, flash = make_flash()

    def one():
        yield sim.process(flash.write(4096))
        return sim.now

    t = sim.run(sim.process(one()))
    assert to_us(t) == pytest.approx(4.5, rel=0.15)


def test_write_saturation_is_drain_bound():
    sim, flash = make_flash()
    elapsed = closed_loop(sim, flash, "write", 4096, workers=128, count=4000)
    iops = 4000 * 1e9 / elapsed
    assert iops == pytest.approx(356_000, rel=0.08)


def test_flush_waits_for_backlog():
    sim, flash = make_flash()

    def flow():
        for _ in range(16):
            yield sim.process(flash.write(128 * 1024))
        t0 = sim.now
        yield sim.process(flash.flush())
        return sim.now - t0

    wait = sim.run(sim.process(flow()))
    assert wait > 0


def test_flash_stats_accumulate():
    sim, flash = make_flash()
    closed_loop(sim, flash, "read", 4096, workers=2, count=10)
    assert flash.stats.reads == 10
    assert flash.stats.read_bytes == 10 * 4096


# ------------------------------------------------------------- firmware
def fw(version="V2", size=1024, act=sec(1)):
    return FirmwareImage(version=version, size_bytes=size, activation_ns=act)


def test_firmware_download_then_commit_then_activate():
    slots = FirmwareSlots(active=fw("V1"))
    image = fw("V2", size=2048)
    slots.download_chunk(1024, "V2")
    slots.download_chunk(1024, "V2")
    slots.commit(2, image)
    assert slots.slots[2] == image
    assert slots.active.version == "V1"
    slots.activate(2)
    assert slots.active.version == "V2"


def test_incomplete_download_rejected():
    slots = FirmwareSlots(active=fw("V1"))
    slots.download_chunk(100, "V2")
    with pytest.raises(SimulationError, match="incomplete"):
        slots.commit(2, fw("V2", size=2048))


def test_version_mismatch_rejected():
    slots = FirmwareSlots(active=fw("V1"))
    slots.download_chunk(2048, "V3")
    with pytest.raises(SimulationError, match="version"):
        slots.commit(2, fw("V2", size=2048))


def test_new_version_restarts_download_buffer():
    slots = FirmwareSlots(active=fw("V1"))
    slots.download_chunk(1024, "V2")
    slots.download_chunk(2048, "V3")  # switch: buffer resets to this chunk
    slots.commit(2, fw("V3", size=2048))


def test_slot_bounds_and_empty_slot():
    slots = FirmwareSlots(active=fw("V1"))
    slots.download_chunk(1024, "V2")
    with pytest.raises(SimulationError, match="slot"):
        slots.commit(9, fw("V2", size=1024))
    with pytest.raises(SimulationError, match="no firmware"):
        slots.activate(3)
