"""Low-overhead observability modes: span sampling and counters-only."""

import pytest

from repro.obs import OBS_MODES, MetricsRegistry, NullHistogram
from repro.obs.spans import IOSpan


def test_modes_constant_lists_all_modes():
    assert OBS_MODES == ("full", "sampled", "counters")


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown obs mode"):
        MetricsRegistry(mode="verbose")


def test_bad_span_sample_rejected():
    with pytest.raises(ValueError, match="span_sample"):
        MetricsRegistry(mode="sampled", span_sample=0)


def test_full_mode_always_wants_spans():
    reg = MetricsRegistry()  # default: full
    assert all(reg.want_span() for _ in range(32))


def test_full_mode_forces_sample_of_one():
    reg = MetricsRegistry(mode="full", span_sample=8)
    assert reg.span_sample == 1


def test_sampled_mode_is_deterministic_one_in_n():
    reg = MetricsRegistry(mode="sampled", span_sample=4)
    picks = [reg.want_span() for _ in range(16)]
    assert picks == [True, False, False, False] * 4
    # a fresh registry makes the same decisions: no wall-clock coupling
    reg2 = MetricsRegistry(mode="sampled", span_sample=4)
    assert [reg2.want_span() for _ in range(16)] == picks


def test_counters_mode_never_wants_spans():
    reg = MetricsRegistry(mode="counters")
    assert not any(reg.want_span() for _ in range(16))


def test_counters_mode_histogram_is_null_and_shared():
    reg = MetricsRegistry(mode="counters")
    h1 = reg.histogram("io_latency_ns", driver="nvme0")
    h2 = reg.histogram("other_ns")
    assert isinstance(h1, NullHistogram)
    assert h1 is h2  # one shared no-op sink, no per-label allocation


def test_null_histogram_swallows_observations():
    h = NullHistogram()
    for v in (1, 10, 10**9):
        h.observe(v)
    assert h.count == 0
    assert h.p50 == 0.0 and h.p99 == 0.0
    assert h.summary()["count"] == 0


def test_counters_mode_finish_span_is_a_noop():
    reg = MetricsRegistry(mode="counters")
    span = IOSpan("read", origin="test")
    span.stamp("submit", 0)
    span.stamp("interrupt", 1000)
    reg.finish_span(span)
    assert len(reg.spans) == 0
    assert reg.histograms("span_stage_ns") == {}


def test_counters_mode_counters_still_count():
    reg = MetricsRegistry(mode="counters")
    reg.counter("ios", ns="ns0").inc()
    reg.counter("ios", ns="ns0").inc()
    [(_, counter)] = list(reg.counters("ios").items())
    assert counter.value == 2


def test_full_mode_snapshot_has_no_mode_keys():
    """Default snapshots must stay byte-identical to the pre-modes
    format: the new keys appear only when a non-default mode is on."""
    reg = MetricsRegistry()
    snap = reg.snapshot()
    assert "obs_mode" not in snap
    assert "span_sample" not in snap


def test_non_default_mode_snapshot_declares_itself():
    snap = MetricsRegistry(mode="counters").snapshot()
    assert snap["obs_mode"] == "counters"
    sampled = MetricsRegistry(mode="sampled", span_sample=8).snapshot()
    assert sampled["obs_mode"] == "sampled"
    assert sampled["span_sample"] == 8


def test_finish_span_uses_cached_stage_histograms():
    reg = MetricsRegistry()
    for start in (0, 100):
        span = IOSpan("read", origin="t")
        span.stamp("submit", start)
        span.stamp("interrupt", start + 50)
        reg.finish_span(span)
    hists = reg.histograms("span_stage_ns")
    [(_, h)] = list(hists.items())
    assert h.count == 2
