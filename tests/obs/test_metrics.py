"""Metrics primitives: counters, gauges, and the log-bucketed
histogram's percentile accuracy against exact quantiles."""

import math
import random

import pytest

from repro.obs import Counter, Histogram, MetricsRegistry


# ------------------------------------------------------------- counters
def test_counter_increments_and_rejects_decrease():
    c = Counter("ops")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ValueError):
        c.inc(-1)


def test_registry_get_or_create_is_keyed_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("ops", ns="vol0")
    b = reg.counter("ops", ns="vol0")
    c = reg.counter("ops", ns="vol1")
    assert a is b and a is not c
    a.inc(3)
    c.inc(1)
    by_label = reg.counters("ops")
    assert by_label[(("ns", "vol0"),)].value == 3
    assert by_label[(("ns", "vol1"),)].value == 1


def test_gauge_tracks_point_in_time_value():
    reg = MetricsRegistry()
    g = reg.gauge("depth", q="0")
    g.add(5)
    g.add(-2)
    assert g.value == 3
    g.set(0)
    assert g.value == 0


# ------------------------------------------------------------ histograms
def _exact_percentile(samples: list[float], p: float) -> float:
    """Nearest-rank exact quantile over the raw samples."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@pytest.mark.parametrize("dist,params", [
    ("lognormal", (math.log(80_000), 0.4)),   # latency-like, long tail
    ("uniform", (1_000, 1_000_000)),          # flat over three decades
    ("expo", (1 / 50_000,)),                  # heavy near zero
])
def test_percentiles_within_one_bucket_of_exact(dist, params):
    rng = random.Random(1234)
    draw = {
        "lognormal": lambda: rng.lognormvariate(*params),
        "uniform": lambda: rng.uniform(*params),
        "expo": lambda: rng.expovariate(*params),
    }[dist]
    samples = [draw() for _ in range(20_000)]
    hist = Histogram("lat")
    for s in samples:
        hist.observe(s)
    # one bucket is ~4.4% wide, so the estimate (bucket midpoint) stays
    # within the ISSUE's <=7% bound of the exact nearest-rank quantile
    for p in (50, 95, 99, 99.9):
        exact = _exact_percentile(samples, p)
        assert hist.percentile(p) == pytest.approx(exact, rel=0.07), (dist, p)


def test_histogram_percentile_properties_match_query():
    hist = Histogram("lat")
    for v in (10, 20, 30, 40, 50):
        hist.observe(v)
    assert hist.p50 == hist.percentile(50)
    assert hist.p99 == hist.percentile(99)
    assert hist.p999 == hist.percentile(99.9)


def test_histogram_min_max_mean_are_exact():
    hist = Histogram("lat")
    for v in (5, 15, 100):
        hist.observe(v)
    assert hist.min == 5
    assert hist.max == 100
    assert hist.mean == pytest.approx(40.0)
    assert hist.count == 3


def test_histogram_zero_observations_land_in_zero_bucket():
    hist = Histogram("lat")
    for _ in range(99):
        hist.observe(0)
    hist.observe(1_000_000)
    assert hist.p50 == 0.0
    assert hist.percentile(100) == pytest.approx(1_000_000, rel=0.05)


def test_empty_histogram_is_all_zero():
    hist = Histogram("lat")
    assert hist.p50 == 0.0 and hist.mean == 0.0
    assert hist.min == 0.0 and hist.max == 0.0


def test_percentile_range_is_validated():
    hist = Histogram("lat")
    hist.observe(1)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


# -------------------------------------------------------------- snapshot
def test_snapshot_is_json_shaped_and_complete():
    import json

    reg = MetricsRegistry()
    reg.counter("ops", ns="vol0").inc(7)
    reg.gauge("depth").set(2)
    reg.histogram("lat", stage="fetch").observe(123)
    snap = reg.snapshot()
    json.dumps(snap)  # must be serializable as-is
    assert snap["counters"]["ops{ns=vol0}"] == 7
    assert snap["gauges"]["depth"] == 2
    assert snap["histograms"]["lat{stage=fetch}"]["count"] == 1
    assert snap["spans"] == {"recorded": 0, "dropped": 0, "complete": 0}


def test_render_table_mentions_every_metric():
    reg = MetricsRegistry()
    reg.counter("ops").inc()
    reg.histogram("lat").observe(10)
    text = reg.render_table()
    assert "ops" in text and "lat" in text and "spans:" in text
