"""Span tracing: IOSpan/SpanLog units plus end-to-end stamping through
the simulated BM-Store datapath (the Fig. 6 stages)."""


from repro.obs import STAGES, IOSpan, MetricsRegistry, SpanLog
from repro.sim.units import MS
from repro.workloads.fio import FioSpec


# ----------------------------------------------------------------- units
def test_span_completeness_requires_all_seven_stages():
    span = IOSpan("read")
    for i, stage in enumerate(STAGES[:-1]):
        span.stamp(stage, i * 10)
        assert not span.is_complete
    span.stamp(STAGES[-1], 100)
    assert span.is_complete


def test_span_monotonicity_and_deltas():
    span = IOSpan("read")
    span.stamp("submit", 0)
    span.stamp("doorbell", 40)
    span.stamp("fetch", 90)
    assert span.is_monotone
    assert span.stage_deltas() == [("doorbell", 40), ("fetch", 50)]
    assert span.duration_ns("submit", "fetch") == 90
    assert span.duration_ns("submit", "complete") is None
    span.stamp("lba_map", 50)  # earlier than the prior stage
    assert not span.is_monotone


def test_span_restamp_keeps_latest():
    span = IOSpan("write")
    span.stamp("ssd_dma", 10)
    span.stamp("ssd_dma", 30)  # e.g. multi-extent fan-out, last fragment
    assert span.get("ssd_dma") == 30


def test_span_total_is_submit_to_interrupt():
    span = IOSpan("read")
    span.stamp("submit", 100)
    span.stamp("interrupt", 4100)
    assert span.total_ns() == 4000


def test_spanlog_caps_and_counts_drops():
    log = SpanLog(capacity=2)
    for i in range(5):
        span = IOSpan("read")
        span.stamp("submit", i)
        log.add(span)
    assert len(log) == 2
    assert log.dropped == 3
    assert log[0].get("submit") == 0
    log.clear()
    assert len(log) == 0 and log.dropped == 0


# ----------------------------------------------- end-to-end through the sim
def _small_spec():
    return FioSpec("span-probe", "randread", 4096, iodepth=4, numjobs=1,
                   runtime_ns=2 * MS, ramp_ns=MS // 2)


def test_bmstore_spans_cover_all_stages_and_are_monotone():
    from repro.experiments.common import run_case

    case = run_case("bmstore", _small_spec(), seed=3)
    spans = list(case.obs.spans)
    assert spans, "a bmstore run must record spans"
    for span in spans:
        assert span.is_complete, f"missing stages: {span!r}"
        assert span.is_monotone, f"time went backwards: {span!r}"
    # every canonical inter-stage delta fed its histogram
    hists = case.obs.histograms("span_stage_ns")
    for stage in STAGES[1:]:
        h = hists.get((("stage", stage),))
        assert h is not None and h.count == len(spans), stage


def test_bmstore_run_populates_namespace_counters():
    from repro.experiments.common import run_case

    case = run_case("bmstore", _small_spec(), seed=3)
    ops = case.obs.counters("ns_ops")
    assert ops, "the engine I/O monitor must count per-namespace ops"
    (labels, counter), = ops.items()
    tags = dict(labels)
    assert tags["op"] == "read"
    assert counter.value > 0
    # total latency histogram agrees with the span log
    total = case.obs.histograms("span_total_ns")[()]
    assert total.count == len(case.obs.spans) + case.obs.spans.dropped


def test_native_spans_lack_engine_stages():
    from repro.experiments.common import run_case

    case = run_case("native", _small_spec(), seed=3)
    spans = list(case.obs.spans)
    assert spans, "the native driver still records spans"
    for span in spans:
        assert "submit" in span and "interrupt" in span
        assert "doorbell" not in span  # no BMS-Engine on the native path
        assert not span.is_complete


def test_finish_span_accounts_incomplete_spans_too():
    reg = MetricsRegistry()
    span = IOSpan("read")
    span.stamp("submit", 0)
    span.stamp("interrupt", 500)
    reg.finish_span(span)
    assert len(reg.spans) == 1
    assert reg.spans.complete() == []
    assert reg.histograms("span_total_ns")[()].count == 1
