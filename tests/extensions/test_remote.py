"""Remote-storage extension tests (paper §VI-D future work)."""

import pytest

from repro.baselines import build_bmstore
from repro.remote import (
    RDMA_25GBE,
    RDMA_100GBE,
    NetworkLink,
    RemoteStorageTarget,
)
from repro.sim import Simulator, StreamFactory
from repro.sim.units import GIB, MS, to_us
from repro.workloads import FioSpec, run_fio


# ------------------------------------------------------------------ network
def test_network_link_charges_bandwidth_and_latency():
    sim = Simulator()
    link = NetworkLink(sim, RDMA_25GBE)

    def flow():
        yield link.send(128 * 1024)
        return sim.now

    t = sim.run(sim.process(flow()))
    serial = (128 * 1024 + 96) / RDMA_25GBE.bytes_per_sec * 1e9
    assert t == pytest.approx(serial + RDMA_25GBE.one_way_ns, rel=0.01)


def test_network_directions_are_independent():
    sim = Simulator()
    link = NetworkLink(sim, RDMA_25GBE)
    done = []

    def fwd():
        yield link.send(1 << 20)
        done.append(("fwd", sim.now))

    def rev():
        yield link.respond(1 << 20)
        done.append(("rev", sim.now))

    sim.process(fwd())
    sim.process(rev())
    sim.run()
    # full duplex: both complete at the same time
    assert done[0][1] == done[1][1]


# ------------------------------------------------------------------- target
def test_remote_target_serves_and_persists():
    sim = Simulator()
    streams = StreamFactory(3)
    target = RemoteStorageTarget(sim, streams)
    payload = b"\xab" * 4096

    def flow():
        result = yield target.execute("write", 3, 1, payload)
        assert result.ok
        result = yield target.execute("read", 3, 1)
        return result

    result = sim.run(sim.process(flow()))
    assert result.ok and result.data == payload
    assert target.commands == 2


def test_remote_target_bounds_checked():
    sim = Simulator()
    target = RemoteStorageTarget(sim, StreamFactory(3))

    def flow():
        result = yield target.execute("read", target.num_blocks, 1)
        return result

    assert not sim.run(sim.process(flow())).ok


# ------------------------------------------------- BM-Store + remote backend
def remote_rig(profile=RDMA_25GBE):
    rig = build_bmstore(num_ssds=1)
    target = RemoteStorageTarget(rig.sim, rig.streams, name="far")
    link = NetworkLink(rig.sim, profile)
    rig.engine.attach_remote(target, link)
    driver = rig.baremetal_driver(rig.provision("rns", 64 * GIB, placement=[1]))
    return rig, target, link, driver


def test_remote_namespace_full_path_with_integrity():
    rig, target, link, driver = remote_rig()
    payload = bytes((7 * i) % 256 for i in range(4096))

    def flow():
        info = yield driver.write(11, 1, payload=payload)
        assert info.ok
        info = yield driver.read(11, 1, want_data=True)
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.ok and info.data == payload
    assert link.bytes_moved > 8192  # data crossed the network


def test_remote_read_latency_includes_network_rtt():
    rig, target, link, driver = remote_rig()
    local_driver = rig.baremetal_driver(rig.provision("lns", 64 * GIB, placement=[0]))

    def flow(drv):
        info = yield drv.read(0, 1)
        return info.latency_ns

    local = rig.sim.run(rig.sim.process(flow(local_driver)))
    remote = rig.sim.run(rig.sim.process(flow(driver)))
    extra_us = to_us(remote - local)
    # 2x one-way (2.5us) + capsule serialization + target cpu ~ 7-12us
    assert 4.0 <= extra_us <= 20.0


def test_remote_sequential_bandwidth_is_network_bound():
    rig, target, link, driver = remote_rig()
    spec = FioSpec("seq", "read", 128 * 1024, iodepth=64, numjobs=2,
                   runtime_ns=30 * MS, ramp_ns=6 * MS)
    res = run_fio(rig.sim, [driver], spec, rig.streams)
    # 25 GbE ~ 3.05 GB/s < the drive's 3.23 GB/s
    assert res.bandwidth_bps == pytest.approx(3.05e9, rel=0.06)


def test_remote_faster_network_shifts_bottleneck_to_media():
    rig, target, link, driver = remote_rig(profile=RDMA_100GBE)
    spec = FioSpec("seq", "read", 128 * 1024, iodepth=64, numjobs=2,
                   runtime_ns=30 * MS, ramp_ns=6 * MS)
    res = run_fio(rig.sim, [driver], spec, rig.streams)
    assert res.bandwidth_bps == pytest.approx(3.23e9, rel=0.06)
