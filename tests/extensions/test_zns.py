"""ZNS SSD tests: zone state machine, sequential-write rule, append,
management commands, and resource limits (paper §VI-A)."""


from repro.host import Host, NVMeDriver
from repro.nvme.zns import (
    ZNS_STATUS,
    ZNSConfig,
    ZNSOpcode,
    ZNSSSD,
    ZoneSendAction,
    ZoneState,
)
from repro.sim import Simulator, StreamFactory

CFG = ZNSConfig(zone_blocks=64, max_open_zones=3, max_active_zones=5)


def make_rig():
    sim = Simulator()
    streams = StreamFactory(13)
    host = Host(sim, streams)
    ssd = ZNSSSD(sim, host.fabric, streams, name="zns0", zns_config=CFG)
    driver = NVMeDriver(host, ssd, queue_depth=64, num_io_queues=1)
    return sim, host, ssd, driver


def submit(driver, opcode, lba, nblocks, cdw10=0):
    return driver._submit_io(int(opcode), lba, nblocks, None, False)


def mgmt(sim, driver, ssd, zone_idx, action):
    done = sim.event()

    def proc():
        qp = driver._qps[1]
        from repro.nvme.command import SQE

        cid = driver._next_cid[1] = driver._next_cid[1] + 1
        sqe = SQE(opcode=int(ZNSOpcode.ZONE_MGMT_SEND), cid=cid, nsid=1,
                  slba=zone_idx * CFG.zone_blocks, cdw10=int(action))
        yield driver._slots[1].acquire()
        qp.sq.push(sqe)
        driver._pending[(1, cid)] = {
            "done": done, "start": sim.now, "buf": 0, "length": 0,
            "want_data": False, "qid": 1,
        }
        yield driver.host.fabric.cpu_write(qp.sq_doorbell, 4)

    sim.process(proc())
    return done


def test_sequential_write_at_write_pointer_succeeds():
    sim, host, ssd, driver = make_rig()

    def flow():
        info = yield driver.write(0, 4)
        assert info.ok
        info = yield driver.write(4, 4)  # exactly at the new WP
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok
    zone = ssd.zone(0)
    assert zone.write_pointer == 8
    assert zone.state == ZoneState.IMPLICITLY_OPEN


def test_non_sequential_write_rejected():
    sim, host, ssd, driver = make_rig()

    def flow():
        yield driver.write(0, 4)
        info = yield driver.write(10, 1)  # hole: WP is at 4
        return info

    info = sim.run(sim.process(flow()))
    assert not info.ok
    assert info.status == int(ZNS_STATUS.ZONE_INVALID_WRITE)


def test_write_across_zone_boundary_rejected():
    sim, host, ssd, driver = make_rig()

    def flow():
        # fill zone 0 up to two blocks before its end, then overrun
        info = yield driver.write(0, CFG.zone_blocks - 2)
        assert info.ok
        info = yield driver.write(CFG.zone_blocks - 2, 4)
        return info

    info = sim.run(sim.process(flow()))
    assert info.status == int(ZNS_STATUS.ZONE_BOUNDARY_ERROR)


def test_zone_fills_and_rejects_further_writes():
    sim, host, ssd, driver = make_rig()

    def flow():
        info = yield driver.write(0, CFG.zone_blocks)
        assert info.ok
        info = yield driver.write(0, 1)
        return info

    info = sim.run(sim.process(flow()))
    assert ssd.zone(0).state == ZoneState.FULL
    assert info.status == int(ZNS_STATUS.ZONE_IS_FULL)


def test_zone_append_returns_assigned_lbas():
    sim, host, ssd, driver = make_rig()
    zone2 = 2 * CFG.zone_blocks

    def flow():
        a = yield submit(driver, ZNSOpcode.ZONE_APPEND, zone2, 3)
        b = yield submit(driver, ZNSOpcode.ZONE_APPEND, zone2, 2)
        return a, b

    a, b = sim.run(sim.process(flow()))
    assert a.ok and b.ok
    assert ssd.zone(2).write_pointer == 5


def test_zone_append_requires_zone_start_lba():
    sim, host, ssd, driver = make_rig()

    def flow():
        info = yield submit(driver, ZNSOpcode.ZONE_APPEND, 5, 1)
        return info

    info = sim.run(sim.process(flow()))
    assert info.status == int(ZNS_STATUS.ZONE_INVALID_WRITE)


def test_reset_empties_zone_and_discards_data():
    sim, host, ssd, driver = make_rig()

    def flow():
        yield driver.write(0, 4, payload=b"z" * 4 * 4096)
        info = yield mgmt(sim, driver, ssd, 0, ZoneSendAction.RESET)
        assert info.ok
        info = yield driver.write(0, 1)  # WP is back at zone start
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok
    assert ssd.zone(0).state is not ZoneState.FULL
    assert ssd.block_data(1) is None  # reset deallocated it


def test_finish_moves_zone_to_full():
    sim, host, ssd, driver = make_rig()

    def flow():
        yield driver.write(0, 2)
        info = yield mgmt(sim, driver, ssd, 0, ZoneSendAction.FINISH)
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok
    assert ssd.zone(0).state == ZoneState.FULL


def test_explicit_open_close_cycle():
    sim, host, ssd, driver = make_rig()

    def flow():
        info = yield mgmt(sim, driver, ssd, 1, ZoneSendAction.OPEN)
        assert info.ok
        assert ssd.zone(1).state == ZoneState.EXPLICITLY_OPEN
        info = yield mgmt(sim, driver, ssd, 1, ZoneSendAction.CLOSE)
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok
    assert ssd.zone(1).state == ZoneState.CLOSED


def test_max_open_zones_enforced():
    sim, host, ssd, driver = make_rig()

    def flow():
        for z in range(CFG.max_open_zones):
            info = yield mgmt(sim, driver, ssd, z, ZoneSendAction.OPEN)
            assert info.ok
        info = yield mgmt(sim, driver, ssd, CFG.max_open_zones, ZoneSendAction.OPEN)
        return info

    info = sim.run(sim.process(flow()))
    assert info.status == int(ZNS_STATUS.TOO_MANY_OPEN_ZONES)


def test_max_active_zones_enforced():
    sim, host, ssd, driver = make_rig()

    def flow():
        # open then close zones to accumulate ACTIVE (closed) zones
        for z in range(CFG.max_active_zones):
            info = yield mgmt(sim, driver, ssd, z, ZoneSendAction.OPEN)
            assert info.ok
            info = yield mgmt(sim, driver, ssd, z, ZoneSendAction.CLOSE)
            assert info.ok
        info = yield mgmt(sim, driver, ssd, CFG.max_active_zones,
                          ZoneSendAction.OPEN)
        return info

    info = sim.run(sim.process(flow()))
    assert info.status == int(ZNS_STATUS.TOO_MANY_ACTIVE_ZONES)


def test_reads_work_anywhere_and_data_roundtrips():
    sim, host, ssd, driver = make_rig()
    payload = bytes(range(256)) * 16

    def flow():
        yield driver.write(0, 1, payload=payload)
        info = yield driver.read(0, 1, want_data=True)
        return info

    info = sim.run(sim.process(flow()))
    assert info.ok and info.data == payload


def test_zone_report_reflects_states():
    sim, host, ssd, driver = make_rig()

    def flow():
        yield driver.write(0, 4)
        yield mgmt(sim, driver, ssd, 1, ZoneSendAction.OPEN)

    sim.run(sim.process(flow()))
    report = ssd.zone_report()
    by_zone = {z["zone"]: z for z in report}
    assert by_zone[0]["state"] == "implicitly-open"
    assert by_zone[0]["write_pointer"] == 4
    assert by_zone[1]["state"] == "explicitly-open"
    assert all(z["capacity"] == CFG.zone_blocks for z in report)
