"""SATA device + SATA-backed BM-Store namespace tests (paper §VI-A)."""

import pytest

from repro.baselines import build_bmstore
from repro.sata import HDD_7200_PROFILE, SATA_SSD_PROFILE, SATADisk
from repro.sim import Simulator, StreamFactory
from repro.sim.units import GIB, to_ms, to_us


def make_disk(profile=HDD_7200_PROFILE):
    sim = Simulator()
    rng = StreamFactory(5).stream("disk")
    return sim, SATADisk(sim, profile, rng, name="d0")


# ------------------------------------------------------------- device model
def test_hdd_latency_is_mechanical():
    sim, disk = make_disk()

    def one():
        result = yield disk.submit("read", 1_000_000, 1)
        return result, sim.now

    result, t = sim.run(sim.process(one()))
    assert result.ok
    # seek + rotation + transfer: single-digit milliseconds
    assert 1.0 <= to_ms(t) <= 20.0


def test_sata_ssd_latency_is_flat():
    sim, disk = make_disk(SATA_SSD_PROFILE)

    def one():
        yield disk.submit("read", 0, 1)
        t1 = sim.now
        yield disk.submit("read", disk.num_blocks - 1, 1)
        return t1, sim.now - t1

    t1, t2 = sim.run(sim.process(one()))
    # no seek penalty for a far LBA
    assert t2 == pytest.approx(t1, rel=0.10)
    assert to_us(t1) < 200


def test_hdd_near_seeks_cheaper_than_far_seeks():
    sim, disk = make_disk()
    times = []

    def flow():
        yield disk.submit("read", 0, 1)
        t0 = sim.now
        yield disk.submit("read", 8, 1)  # sequentialish
        times.append(sim.now - t0)
        t0 = sim.now
        yield disk.submit("read", disk.num_blocks - 1, 1)  # full stroke
        times.append(sim.now - t0)

    sim.run(sim.process(flow()))
    near, far = times
    assert far > near * 1.5


def test_ncq_bounds_concurrency_but_actuator_serializes():
    sim, disk = make_disk()
    done = []

    def worker(i):
        yield disk.submit("read", i * 1000, 1)
        done.append(sim.now)

    for i in range(8):
        sim.process(worker(i))
    sim.run()
    assert len(done) == 8
    assert len(set(done)) == 8  # strictly serialized service


def test_sata_data_persistence():
    sim, disk = make_disk(SATA_SSD_PROFILE)
    payload = b"\x5a" * 4096 * 2

    def flow():
        result = yield disk.submit("write", 40, 2, payload=payload)
        assert result.ok
        result = yield disk.submit("read", 40, 2, want_data=True)
        return result.data

    assert sim.run(sim.process(flow())) == payload


def test_sata_out_of_range_rejected():
    sim, disk = make_disk()

    def flow():
        result = yield disk.submit("read", disk.num_blocks, 1)
        return result

    assert not sim.run(sim.process(flow())).ok


def test_sata_unknown_op_rejected():
    sim, disk = make_disk()

    def flow():
        result = yield disk.submit("trim", 0, 1)
        return result

    assert not sim.run(sim.process(flow())).ok


# --------------------------------------------------- BM-Store + SATA backend
def sata_rig():
    rig = build_bmstore(num_ssds=1)
    disk = SATADisk(rig.sim, SATA_SSD_PROFILE, rig.streams.stream("sata"),
                    name="sata0")
    rig.engine.attach_sata(disk)
    driver = rig.baremetal_driver(rig.provision("sns", 64 * GIB, placement=[1]))
    return rig, disk, driver


def test_namespace_on_sata_backend_full_path():
    rig, disk, driver = sata_rig()
    payload = bytes(range(256)) * 16

    def flow():
        info = yield driver.write(7, 1, payload=payload)
        assert info.ok
        info = yield driver.read(7, 1, want_data=True)
        return info

    info = rig.sim.run(rig.sim.process(flow()))
    assert info.ok and info.data == payload
    assert disk.reads == 1 and disk.writes == 1


def test_sata_slot_pause_resume():
    rig, disk, driver = sata_rig()
    slot = rig.engine.adaptor.slot_for(1)
    got = []

    def flow():
        info = yield driver.read(0, 1)
        got.append(info.ok)

    slot.pause()
    rig.sim.process(flow())
    rig.sim.run(until=5_000_000)
    assert got == []
    slot.resume()
    rig.sim.run()
    assert got == [True]


def test_sata_slot_rejects_firmware_upgrade():
    rig, disk, driver = sata_rig()

    def flow():
        resp = yield rig.console.hot_upgrade(1, version="X")
        return resp

    resp = rig.sim.run(rig.sim.process(flow()))
    assert not resp.ok


def test_mixed_backends_share_one_engine():
    rig, disk, sata_driver = sata_rig()
    nvme_driver = rig.baremetal_driver(rig.provision("nns", 64 * GIB, placement=[0]))
    results = []

    def flow(tag, driver):
        info = yield driver.read(0, 1)
        results.append((tag, info.ok, info.latency_ns))

    p1 = rig.sim.process(flow("nvme", nvme_driver))
    p2 = rig.sim.process(flow("sata", sata_driver))
    rig.sim.run(rig.sim.all_of([p1, p2]))
    by_tag = {tag: lat for tag, ok, lat in results if ok}
    assert set(by_tag) == {"nvme", "sata"}
    assert by_tag["sata"] > by_tag["nvme"]  # interface gap preserved


def test_backend_count_capped_by_mapping_entry_bits():
    from repro.sim import SimulationError

    rig = build_bmstore(num_ssds=4)
    disk = SATADisk(rig.sim, SATA_SSD_PROFILE, rig.streams.stream("x"))
    with pytest.raises(SimulationError, match="2 bits"):
        rig.engine.attach_sata(disk)
