"""CheckContext unit tests: binding, coverage, and violation detection."""

import pytest

from repro.checks import CHECKER_NAMES, CheckContext, InvariantViolation, resolve_checks
from repro.core.lba_mapping import MappingEntry, MappingTable
from repro.host.memory import PAGE_SIZE, BufferPool, HostMemory
from repro.nvme import CQE, SQE, CompletionQueue, SubmissionQueue
from repro.obs import MetricsRegistry
from repro.sim import SimulationError, Simulator


def make_mem():
    sim = Simulator()
    return sim, HostMemory(sim, 1 << 30)


# -------------------------------------------------------------- resolve_checks
def test_resolve_checks_spellings():
    assert resolve_checks(False) is None
    assert resolve_checks("off") is None
    assert resolve_checks("0") is None
    assert resolve_checks([]) is None
    for spec in (True, "all", "1", "on"):
        ctx = resolve_checks(spec)
        assert ctx is not None and ctx.enabled == frozenset(CHECKER_NAMES)
    ctx = resolve_checks("ring, qos")
    assert ctx.enabled == frozenset({"ring", "qos"})
    ctx = resolve_checks(["lba"])
    assert ctx.enabled == frozenset({"lba"})


def test_resolve_checks_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    assert resolve_checks(None) is None
    monkeypatch.setenv("REPRO_CHECKS", "all")
    assert resolve_checks(None).enabled == frozenset(CHECKER_NAMES)
    monkeypatch.setenv("REPRO_CHECKS", "prp,kernel")
    assert resolve_checks(None).enabled == frozenset({"prp", "kernel"})
    monkeypatch.setenv("REPRO_CHECKS", "off")
    assert resolve_checks(None) is None


def test_resolve_checks_passthrough_and_unknown_name():
    ctx = CheckContext(checkers=["ring"])
    assert resolve_checks(ctx) is ctx
    with pytest.raises(ValueError, match="unknown checker"):
        CheckContext(checkers=["rings"])


def test_violation_is_simulation_error_and_carries_context():
    err = InvariantViolation("ring", "boom", head=3, tail=4)
    assert isinstance(err, SimulationError)
    assert err.checker == "ring"
    assert err.context == {"head": 3, "tail": 4}
    text = str(err)
    assert "[ring] boom" in text and "head=3" in text


def test_counts_flow_into_obs_counters():
    obs = MetricsRegistry()
    ctx = CheckContext(checkers=["ring"], obs=obs)
    _, mem = make_mem()
    sq = SubmissionQueue(mem, mem.alloc(8 * 64), 8, sqid=1)
    ctx.bind_ring(sq)
    sq.push(SQE(opcode=2, cid=0, nsid=1))
    sq.consume_addr()
    assert ctx.summary() == {"ring": 2}
    ((labels, counter),) = obs.counters("invariant_checks").items()
    assert counter.value == 2 and dict(labels)["checker"] == "ring"


def test_bind_respects_checker_subset():
    ctx = CheckContext(checkers=["lba"])
    _, mem = make_mem()
    sq = SubmissionQueue(mem, mem.alloc(8 * 64), 8, sqid=1)
    ctx.bind_ring(sq)  # ring checker not armed: must stay dormant
    assert sq.checks is None


# ------------------------------------------------------------------ ring
def ring_world():
    sim, mem = make_mem()
    ctx = CheckContext(checkers=["ring"])
    cq = CompletionQueue(mem, mem.alloc(4 * 16), 4, cqid=1)
    ctx.bind_ring(cq)
    return ctx, cq


def test_ring_checker_clean_across_wraps():
    ctx, cq = ring_world()
    for i in range(12):  # three full revolutions: both phases seen twice
        cq.post_slot(CQE(cid=i))
        assert cq.poll().cid == i
    assert ctx.summary()["ring"] == 24
    assert ctx.violations == 0


def test_ring_checker_detects_cq_overflow_when_guard_removed(monkeypatch):
    """Revert-detection: with the post_slot full-guard disabled, the ring
    checker still catches the silent overwrite the guard exists for."""
    monkeypatch.setattr(CompletionQueue, "is_full", property(lambda self: False))
    ctx, cq = ring_world()
    for i in range(3):  # depth 4 holds at most 3 unconsumed completions
        cq.post_slot(CQE(cid=i))
    with pytest.raises(InvariantViolation, match="overflow") as exc:
        cq.post_slot(CQE(cid=3))
    assert exc.value.checker == "ring"
    assert exc.value.context["unconsumed"] == 3


def test_ring_checker_detects_stale_phase_poll():
    ctx, cq = ring_world()
    cq.post_slot(CQE(cid=0))
    assert cq.poll().cid == 0
    # hand the checker a completion whose phase contradicts the host's
    # expectation; a correct poll() would have skipped it
    with pytest.raises(InvariantViolation, match="never posted"):
        ctx.on_cq_poll(cq, CQE(cid=9, phase=1))


def test_ring_checker_detects_underflow():
    sim, mem = make_mem()
    ctx = CheckContext(checkers=["ring"])
    sq = SubmissionQueue(mem, mem.alloc(4 * 64), 4, sqid=1)
    ctx.bind_ring(sq)
    with pytest.raises(InvariantViolation, match="underflow"):
        sq.consume_addr()


# ------------------------------------------------------------------- prp
def test_prp_checker_accepts_offset_first_entry():
    ctx = CheckContext(checkers=["prp"])
    pages = [PAGE_SIZE + 100, 2 * PAGE_SIZE, 3 * PAGE_SIZE]
    ctx.on_prp_chain(pages, 2 * PAGE_SIZE, where="t")
    assert ctx.summary()["prp"] == 1


def test_prp_checker_rejects_unaligned_tail_entry():
    ctx = CheckContext(checkers=["prp"])
    with pytest.raises(InvariantViolation, match="not page-aligned"):
        ctx.on_prp_chain([0, PAGE_SIZE + 8], 2 * PAGE_SIZE, where="t")


def test_prp_checker_rejects_short_chain():
    ctx = CheckContext(checkers=["prp"])
    with pytest.raises(InvariantViolation, match="cover"):
        ctx.on_prp_chain([0, PAGE_SIZE], 3 * PAGE_SIZE, where="t")


def test_prp_checker_detects_double_free_and_freed_reuse():
    sim, mem = make_mem()
    ctx = CheckContext(checkers=["prp"])
    pool = BufferPool(mem)
    ctx.bind_pool(pool)
    addr = pool.get(PAGE_SIZE)
    pool.put(addr, PAGE_SIZE)
    with pytest.raises(InvariantViolation, match="double free"):
        pool.put(addr, PAGE_SIZE)
    # a chain into the freed range is flagged...
    with pytest.raises(InvariantViolation, match="freed"):
        ctx.on_prp_chain([addr], PAGE_SIZE, memory_name=mem.name, where="t")
    # ...until the pool recycles the buffer
    assert pool.get(PAGE_SIZE) == addr
    ctx.on_prp_chain([addr], PAGE_SIZE, memory_name=mem.name, where="t")


# ------------------------------------------------------------------- lba
def test_lba_checker_detects_non_injective_mapping():
    ctx = CheckContext(checkers=["lba"])
    table = MappingTable(chunk_blocks=1 << 20)
    ctx.bind_table(table)
    table.set_entry(0, MappingEntry(base_chunk=5, ssd_id=1))
    table.set_entry(1, MappingEntry(base_chunk=6, ssd_id=1))
    with pytest.raises(InvariantViolation, match="injective") as exc:
        table.set_entry(2, MappingEntry(base_chunk=5, ssd_id=1))
    assert exc.value.checker == "lba"


def test_lba_checker_allows_remap_after_clear():
    ctx = CheckContext(checkers=["lba"])
    table = MappingTable(chunk_blocks=1 << 20)
    ctx.bind_table(table)
    table.set_entry(0, MappingEntry(base_chunk=5, ssd_id=1))
    table.clear_entry(0)
    table.set_entry(3, MappingEntry(base_chunk=5, ssd_id=1))  # chunk is free again
    # and re-pointing an index releases its old physical chunk
    table.set_entry(3, MappingEntry(base_chunk=7, ssd_id=1))
    table.set_entry(4, MappingEntry(base_chunk=5, ssd_id=1))


def test_lba_checker_validates_translation_outputs():
    ctx = CheckContext(checkers=["lba"])
    table = MappingTable(chunk_blocks=1 << 20)
    ctx.bind_table(table)
    table.set_entry(0, MappingEntry(base_chunk=2, ssd_id=3))
    ssd_id, plba = table.translate(12345)
    assert (ssd_id, plba % table.chunk_blocks) == (3, 12345)
    with pytest.raises(InvariantViolation, match="chunk-granular"):
        ctx.on_lba_translate(table, 12345, 3, 12346)
    with pytest.raises(InvariantViolation, match="2-bit"):
        ctx.on_lba_translate(table, 0, 4, 0)


# ---------------------------------------------------------------- kernel
def test_kernel_checker_counts_dispatches():
    sim = Simulator()
    ctx = CheckContext(checkers=["kernel"])
    ctx.bind_sim(sim)

    def proc():
        for _ in range(5):
            yield sim.timeout(10)

    sim.process(proc())
    sim.run()
    assert ctx.summary()["kernel"] > 0
    assert ctx.violations == 0


def test_kernel_checker_detects_backwards_clock():
    sim = Simulator()
    ctx = CheckContext(checkers=["kernel"])
    ctx.bind_sim(sim)
    event = sim.event(name="probe")
    sim._now = 100
    ctx.on_event_dispatch(sim, event)
    sim._now = 50
    with pytest.raises(InvariantViolation, match="backwards"):
        ctx.on_event_dispatch(sim, event)
