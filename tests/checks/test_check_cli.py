"""`python -m repro check` command tests."""

import json

from repro.cli import main


def test_check_static_only_clean(capsys):
    assert main(["check", "--static"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_check_static_json(capsys):
    assert main(["check", "--static", "--json"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    payload = json.loads(lines[-1])
    assert payload == {"static_findings": []}


def test_check_runtime_reports_full_coverage(capsys):
    assert main(["check", "--case", "rand-r-1", "--seed", "3", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert payload["violation"] is None
    coverage = payload["coverage"]
    # every named checker must have actually executed
    assert set(coverage) == {"ring", "prp", "lba", "qos", "kernel", "push"}
    assert all(count > 0 for count in coverage.values())


def test_check_runtime_subset(capsys):
    assert main(["check", "--checks", "ring,qos", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert set(payload["coverage"]) == {"ring", "qos"}
