"""Static determinism audit (AST scan) tests."""

from repro.checks import audit_file, audit_tree, render_findings


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def rules_of(findings):
    return [f.rule for f in findings]


def test_flags_global_random_imports(tmp_path):
    path = write(tmp_path, "bad.py", "import random\nfrom random import choice\n")
    findings = audit_file(path, "core/bad.py")
    assert rules_of(findings) == ["unseeded-random", "unseeded-random"]
    assert findings[0].line == 1 and findings[1].line == 2


def test_relative_random_import_is_not_the_stdlib(tmp_path):
    path = write(tmp_path, "ok.py", "from .random import RandomStream\n")
    assert audit_file(path, "sim/__init__.py") == []


def test_random_allowed_inside_sim_random(tmp_path):
    path = write(tmp_path, "random.py", "import random\n")
    assert audit_file(path, "sim/random.py") == []


def test_flags_wall_clock_outside_cli(tmp_path):
    source = (
        "import time\n"
        "def f():\n"
        "    return time.perf_counter()\n"
    )
    path = write(tmp_path, "hot.py", source)
    findings = audit_file(path, "sim/hot.py")
    assert rules_of(findings) == ["wall-clock"]
    assert audit_file(path, "cli.py") == []  # the front end may time itself


def test_flags_set_iteration(tmp_path):
    source = (
        "def f(items):\n"
        "    for x in {1, 2, 3}:\n"
        "        pass\n"
        "    return [y for y in set(items)]\n"
    )
    path = write(tmp_path, "iter.py", source)
    findings = audit_file(path, "core/iter.py")
    assert rules_of(findings) == ["unordered-iteration"] * 2


def test_sorted_set_iteration_is_clean(tmp_path):
    source = (
        "def f(items):\n"
        "    for x in sorted(set(items)):\n"
        "        pass\n"
    )
    assert audit_file(write(tmp_path, "ok.py", source), "core/ok.py") == []


def test_flags_unsorted_directory_listing(tmp_path):
    source = (
        "import os\n"
        "def f(d):\n"
        "    for name in os.listdir(d):\n"
        "        pass\n"
    )
    findings = audit_file(write(tmp_path, "ls.py", source), "core/ls.py")
    assert rules_of(findings) == ["unordered-iteration"]


def test_syntax_error_becomes_a_finding(tmp_path):
    findings = audit_file(write(tmp_path, "broken.py", "def f(:\n"), "x.py")
    assert rules_of(findings) == ["syntax-error"]


def test_repro_package_is_clean():
    assert audit_tree() == []


def test_audit_tree_on_custom_root_sorts_findings(tmp_path):
    write(tmp_path, "b.py", "import random\n")
    write(tmp_path, "a.py", "import time\nx = time.time()\n")
    findings = audit_tree(str(tmp_path))
    assert [(f.path, f.rule) for f in findings] == [
        ("a.py", "wall-clock"),
        ("b.py", "unseeded-random"),
    ]
    text = render_findings(findings)
    assert "2 finding(s)" in text and "a.py:2" in text


def test_render_clean():
    assert "clean" in render_findings([])
