"""Metrics (percentiles, fairness) and TCO-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import LatencyStats, fairness_index, percentile
from repro.analysis.tco import (
    BMSTORE_SCHEME,
    SPDK_SCHEME,
    InstanceShape,
    SchemeCost,
    ServerConfig,
    TCOModel,
)


# ------------------------------------------------------------------ metrics
def test_percentile_nearest_rank():
    data = sorted(range(1, 101))
    assert percentile(data, 50) == 50
    assert percentile(data, 99) == 99
    assert percentile(data, 100) == 100
    assert percentile(data, 0) == 1


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_latency_stats_summary():
    stats = LatencyStats.from_samples([100, 200, 300, 400, 1000])
    assert stats.count == 5
    assert stats.mean_ns == 400
    assert stats.min_ns == 100 and stats.max_ns == 1000
    assert stats.p50_ns == 300
    assert stats.mean_us == pytest.approx(0.4)


def test_latency_stats_empty_rejected():
    with pytest.raises(ValueError):
        LatencyStats.from_samples([])


@given(st.lists(st.integers(1, 10**9), min_size=1, max_size=500))
def test_latency_stats_invariants(samples):
    stats = LatencyStats.from_samples(samples)
    assert stats.min_ns <= stats.p50_ns <= stats.p99_ns <= stats.max_ns
    assert stats.min_ns <= stats.mean_ns <= stats.max_ns


def test_fairness_index_extremes():
    assert fairness_index([5, 5, 5, 5]) == pytest.approx(1.0)
    assert fairness_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert fairness_index([0, 0]) == 1.0
    with pytest.raises(ValueError):
        fairness_index([])


@given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=30))
def test_fairness_bounds_property(values):
    f = fairness_index(values)
    assert 1.0 / len(values) - 1e-9 <= f <= 1.0 + 1e-9


# --------------------------------------------------------------------- TCO
def test_paper_headline_numbers():
    comparison = TCOModel().compare()
    assert comparison["baseline"].sellable_instances == 14
    assert comparison["candidate"].sellable_instances == 16
    assert comparison["extra_instances_pct"] == pytest.approx(14.3, abs=0.1)
    assert comparison["tco_reduction_pct"] == pytest.approx(11.3, abs=0.3)


def test_spdk_strands_fragments():
    report = TCOModel().report(SPDK_SCHEME)
    assert report.stranded_memory_gb == 128
    assert report.stranded_ssds == 2
    assert report.stranded_hyperthreads == 0  # 112 HT sell exactly 14x8


def test_bmstore_sells_everything():
    report = TCOModel().report(BMSTORE_SCHEME)
    assert report.stranded_memory_gb == 0
    assert report.stranded_ssds == 0


def test_memory_can_be_the_binding_constraint():
    model = TCOModel(server=ServerConfig(memory_gb=512))
    assert model.sellable_instances(BMSTORE_SCHEME) == 8  # 512/64


def test_zero_instances_yields_infinite_tco():
    model = TCOModel(shape=InstanceShape(hyperthreads=256))
    report = model.report(BMSTORE_SCHEME)
    assert report.sellable_instances == 0
    assert report.tco_per_instance == float("inf")


def test_hardware_adder_only_touches_capex():
    expensive = SchemeCost(name="x", hardware_cost_fraction=0.5)
    plain = SchemeCost(name="y")
    model = TCOModel()
    delta = model.report(expensive).server_tco - model.report(plain).server_tco
    assert delta == pytest.approx(model.server.capex * 0.5)
