"""Report-rendering tests: ASCII charts and markdown output."""

import pytest

from repro.analysis.report import ascii_bar_chart, render_markdown
from repro.experiments import ExperimentResult


def sample_result():
    res = ExperimentResult("fig10", "scaling")
    res.add(ssds=1, bandwidth_gbps=3.23)
    res.add(ssds=2, bandwidth_gbps=6.46)
    res.add(ssds=4, bandwidth_gbps=12.9)
    res.notes.append("linear")
    return res


def test_bar_chart_scales_to_peak():
    chart = ascii_bar_chart(sample_result().rows, "ssds", "bandwidth_gbps", width=10)
    lines = chart.splitlines()
    assert len(lines) == 3
    # the peak row is a full-width bar
    assert "█" * 10 in lines[2]
    # smaller rows are proportionally shorter
    assert lines[0].count("█") < lines[2].count("█")
    assert "12.9" in lines[2]


def test_bar_chart_handles_non_numeric_and_title():
    rows = [{"x": "a", "y": "oops"}, {"x": "b", "y": 2.0}]
    chart = ascii_bar_chart(rows, "x", "y", title="T")
    assert chart.splitlines()[0] == "T"


def test_bar_chart_empty_rejected():
    with pytest.raises(ValueError):
        ascii_bar_chart([], "x", "y")


def test_render_markdown_tables_charts_notes():
    doc = render_markdown([sample_result()], header="hello")
    assert "# BM-Store reproduction report" in doc
    assert "hello" in doc
    assert "## [fig10] scaling" in doc
    assert "| ssds | bandwidth_gbps |" in doc
    assert "```" in doc  # the chart block for a chartable experiment
    assert "> linear" in doc


def test_render_markdown_uncharted_experiment_has_no_chart():
    res = ExperimentResult("table1", "features")
    res.add(scheme="BM-Store", manageability="yes")
    doc = render_markdown([res])
    assert "```" not in doc
    assert "| scheme | manageability |" in doc
