"""Tests for deterministic random streams, units, and tracing."""

import pytest

from repro.sim import SeriesRecorder, Simulator, StreamFactory, Trace
from repro.sim.units import (
    GB,
    MB,
    MS,
    SEC,
    US,
    gb_per_sec,
    mb_per_sec,
    ms,
    sec,
    to_ms,
    to_sec,
    to_us,
    us,
)


# --------------------------------------------------------------------------
# RandomStream / StreamFactory
# --------------------------------------------------------------------------

def test_streams_are_deterministic_by_name():
    f1 = StreamFactory(root_seed=1)
    f2 = StreamFactory(root_seed=1)
    s1 = f1.stream("ssd0")
    s2 = f2.stream("ssd0")
    assert [s1.random() for _ in range(10)] == [s2.random() for _ in range(10)]


def test_different_names_give_different_streams():
    f = StreamFactory(root_seed=1)
    a = f.stream("a")
    b = f.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_give_different_streams():
    a = StreamFactory(root_seed=1).stream("x")
    b = StreamFactory(root_seed=2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_jitter_ns_mean_tracks_base():
    s = StreamFactory().stream("jitter")
    samples = [s.jitter_ns(10_000, cv=0.2) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(10_000, rel=0.05)
    assert all(x >= 0 for x in samples)


def test_jitter_ns_zero_cv_is_deterministic():
    s = StreamFactory().stream("nojitter")
    assert s.jitter_ns(5000, cv=0.0) == 5000


def test_zipf_index_is_skewed_and_in_range():
    s = StreamFactory().stream("zipf")
    n = 1000
    draws = [s.zipf_index(n, theta=0.99) for _ in range(5000)]
    assert all(0 <= d < n for d in draws)
    hot = sum(1 for d in draws if d < n // 10)
    assert hot > len(draws) * 0.5  # top 10% of keys gets most traffic


def test_zipf_index_rejects_empty():
    s = StreamFactory().stream("zipf2")
    with pytest.raises(ValueError):
        s.zipf_index(0)


# --------------------------------------------------------------------------
# units
# --------------------------------------------------------------------------

def test_time_unit_roundtrips():
    assert us(3.0) == 3 * US
    assert ms(2.0) == 2 * MS
    assert sec(1.5) == 1.5 * SEC
    assert to_us(us(77.2)) == pytest.approx(77.2)
    assert to_ms(ms(5)) == 5
    assert to_sec(sec(9)) == 9


def test_bandwidth_units():
    assert mb_per_sec(3200) == 3200 * MB
    assert gb_per_sec(3.2) == pytest.approx(3.2 * GB)


# --------------------------------------------------------------------------
# Trace / SeriesRecorder
# --------------------------------------------------------------------------

def test_trace_records_time_and_category():
    sim = Simulator()
    trace = Trace(sim)

    def proc():
        trace.record("io", {"op": "read"})
        yield sim.timeout(100)
        trace.record("io", {"op": "write"})
        trace.record("irq")

    sim.process(proc())
    sim.run()
    ios = trace.select("io")
    assert [ev.time_ns for ev in ios] == [0, 100]
    assert trace.count("irq") == 1
    trace.clear()
    assert trace.events == []


def test_trace_disabled_records_nothing():
    sim = Simulator()
    trace = Trace(sim, enabled=False)
    trace.record("io")
    assert trace.count("io") == 0


def test_trace_select_uses_category_index():
    sim = Simulator()
    trace = Trace(sim)
    for i in range(10):
        trace.record("even" if i % 2 == 0 else "odd", i)
    assert [ev.payload for ev in trace.select("even")] == [0, 2, 4, 6, 8]
    assert trace.count("odd") == 5
    assert trace.count("missing") == 0
    assert trace.select("missing") == []
    assert len(trace) == 10


def test_trace_max_events_evicts_oldest():
    sim = Simulator()
    trace = Trace(sim, max_events=3)
    for i in range(5):
        trace.record("io", i)
    assert [ev.payload for ev in trace.events] == [2, 3, 4]
    assert trace.dropped == 2
    # the category index drops the same evicted events
    assert [ev.payload for ev in trace.select("io")] == [2, 3, 4]
    assert trace.count("io") == 3


def test_trace_max_events_eviction_spans_categories():
    sim = Simulator()
    trace = Trace(sim, max_events=2)
    trace.record("a", 1)
    trace.record("b", 2)
    trace.record("b", 3)  # evicts the only "a" event
    assert trace.count("a") == 0
    assert [ev.payload for ev in trace.select("b")] == [2, 3]
    assert trace.dropped == 1
    trace.clear()
    assert trace.events == [] and trace.dropped == 0


def test_trace_rejects_nonpositive_cap():
    sim = Simulator()
    with pytest.raises(ValueError):
        Trace(sim, max_events=0)


def test_series_recorder_bins_rates():
    sim = Simulator()
    rec = SeriesRecorder(sim, window_ns=1000)

    def proc():
        for _ in range(10):
            rec.tick()
            yield sim.timeout(100)

    sim.process(proc())
    sim.run()
    series = rec.series(0, 1000)
    # 10 ticks in the first 1000ns window -> 10e6 per second... one tick lands at t=1000
    assert series[0][1] == pytest.approx(10 * 1e9 / 1000, rel=0.2)
    assert rec.total() == 10


def test_series_recorder_covers_empty_windows():
    sim = Simulator()
    rec = SeriesRecorder(sim, window_ns=100)

    def proc():
        rec.tick()
        yield sim.timeout(500)
        rec.tick()

    sim.process(proc())
    sim.run()
    series = rec.series(0, 600)
    assert len(series) == 6
    assert series[1][1] == 0.0
