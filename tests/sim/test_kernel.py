"""Unit tests for the DES kernel: events, processes, conditions, run()."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)
        assert sim.now == 100
        yield sim.timeout(50)
        return sim.now

    p = sim.process(proc())
    result = sim.run(p)
    assert result == 150
    assert sim.now == 150


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(5, value="hello")
        return got

    assert sim.run(sim.process(proc())) == "hello"


def test_zero_delay_events_fire_in_fifo_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(0)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter():
        val = yield ev
        seen.append((sim.now, val))

    def trigger():
        yield sim.timeout(42)
        ev.succeed("done")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert seen == [(42, "done")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_process():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def trigger():
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))

    p = sim.process(waiter())
    sim.process(trigger())
    assert sim.run(p) == "caught boom"


def test_waiting_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def late_waiter():
        yield sim.timeout(10)
        val = yield ev  # already fired at t=0
        assert sim.now == 10
        return val

    assert sim.run(sim.process(late_waiter())) == "early"


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(7)
        return 99

    def parent():
        val = yield sim.process(child())
        return val + 1

    assert sim.run(sim.process(parent())) == 100


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise RuntimeError("child died")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError as exc:
            return str(exc)

    assert sim.run(sim.process(parent())) == "child died"


def test_uncaught_process_failure_raises_from_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise RuntimeError("unwaited crash")

    p = sim.process(child())
    with pytest.raises(RuntimeError, match="unwaited crash"):
        sim.run(p)


def test_interrupt_mid_wait():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(10)
        target.interrupt(cause="urgent")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 10, "urgent")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_any_of_returns_first():
    sim = Simulator()

    def proc():
        fast = sim.timeout(5, value="fast")
        slow = sim.timeout(50, value="slow")
        results = yield sim.any_of([fast, slow])
        assert sim.now == 5
        return list(results.values())

    assert sim.run(sim.process(proc())) == ["fast"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        evs = [sim.timeout(d, value=d) for d in (5, 20, 10)]
        results = yield sim.all_of(evs)
        assert sim.now == 20
        return sorted(results.values())

    assert sim.run(sim.process(proc())) == [5, 10, 20]


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        yield sim.all_of([])
        return sim.now

    assert sim.run(sim.process(proc())) == 0


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    ticks = []

    def clock():
        while True:
            yield sim.timeout(10)
            ticks.append(sim.now)

    sim.process(clock())
    sim.run(until=35)
    assert sim.now == 35
    assert ticks == [10, 20, 30]
    sim.run(until=55)
    assert ticks == [10, 20, 30, 40, 50]


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=100)
    with pytest.raises(SimulationError):
        sim.run(until=50)


def test_run_until_event_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(ev)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run()


def test_determinism_same_seed_same_order():
    def run_once():
        sim = Simulator()
        order = []

        def proc(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)

        for tag, delay in [("a", 30), ("b", 10), ("c", 10), ("d", 20)]:
            sim.process(proc(tag, delay))
        sim.run()
        return order

    assert run_once() == run_once() == ["b", "c", "d", "a"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(25)
    assert sim.peek() == 25
