"""Kernel edge cases: interrupting a process parked on an
already-processed event, and composite conditions with failing members."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, SimulationError, Simulator


# ------------------------------------------------------- interrupt edges
def test_interrupt_while_waiting_on_processed_event():
    # A process that yields an event which already fired waits on the
    # kernel's internal replay poke; interrupting in that window must
    # deliver the Interrupt, not the stale replay value.
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run(until=0)  # ev is now processed
    log = []

    def waiter():
        try:
            yield ev
            log.append("resumed")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))

    p = sim.process(waiter())
    sim.step()  # bootstrap: waiter yields the processed event
    p.interrupt("urgent")
    sim.run()
    assert log == [("interrupted", "urgent")]
    assert not p.is_alive


def test_interrupt_default_cause_is_none():
    sim = Simulator()
    causes = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            causes.append(intr.cause)

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1)
        p.interrupt()

    sim.process(interrupter())
    sim.run()
    assert causes == [None]


def test_interrupted_process_can_keep_running():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt:
            log.append(("caught", sim.now))
        yield sim.timeout(5)
        log.append(("done", sim.now))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10)
        p.interrupt()

    sim.process(interrupter())
    sim.run()
    assert log == [("caught", 10), ("done", 15)]


# ------------------------------------------------- conditions with failures
def test_all_of_fails_fast_on_member_failure():
    # AllOf must deliver the failure as soon as one member fails, not
    # wait for the stragglers.
    sim = Simulator()
    slow = sim.timeout(1000)
    bad = sim.event()
    bad.fail(RuntimeError("member died"), delay=5)

    def waiter():
        try:
            yield sim.all_of([slow, bad])
        except RuntimeError as exc:
            return (sim.now, str(exc))

    assert sim.run(sim.process(waiter())) == (5, "member died")


def test_all_of_with_already_failed_member():
    sim = Simulator()
    bad = sim.event()
    bad.fail(ValueError("pre-failed"))
    sim.run(until=0)

    def waiter():
        try:
            yield sim.all_of([sim.timeout(100), bad])
        except ValueError as exc:
            return str(exc)

    assert sim.run(sim.process(waiter())) == "pre-failed"


def test_any_of_with_already_failed_member():
    sim = Simulator()
    bad = sim.event()
    bad.fail(ValueError("pre-failed"))
    sim.run(until=0)

    def waiter():
        try:
            yield sim.any_of([sim.timeout(100), bad])
        except ValueError as exc:
            return str(exc)

    assert sim.run(sim.process(waiter())) == "pre-failed"


def test_any_of_success_beats_later_failure():
    sim = Simulator()
    fast = sim.timeout(1, value="ok")
    bad = sim.event()
    bad.fail(RuntimeError("too late"), delay=50)

    def waiter():
        results = yield sim.any_of([fast, bad])
        yield sim.timeout(100)  # outlive the failure; it must not re-raise
        return list(results.values())

    assert sim.run(sim.process(waiter())) == ["ok"]


def test_condition_rejects_foreign_simulator_events():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim_a, [sim_a.timeout(1), sim_b.timeout(1)])
    with pytest.raises(SimulationError):
        AllOf(sim_a, [sim_a.timeout(1), sim_b.timeout(1)])
