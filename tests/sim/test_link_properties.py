"""Property tests on BandwidthLink: FIFO ordering and conservation."""

from hypothesis import given, settings, strategies as st

from repro.sim import BandwidthLink, Simulator


@given(st.lists(st.integers(1, 1 << 16), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_link_is_fifo_and_conserves_bytes(sizes):
    """Transfers started in order complete in order; total time is at
    least the serialization of every byte."""
    sim = Simulator()
    link = BandwidthLink(sim, bytes_per_sec=1e9, propagation_ns=100)
    done = []

    def proc():
        events = [link.transfer(n, value=i) for i, n in enumerate(sizes)]
        for ev in events:
            idx = yield ev
            done.append((idx, sim.now))

    sim.run(sim.process(proc()))
    order = [i for i, _ in sorted(done, key=lambda x: x[1])]
    assert order == sorted(order)  # FIFO
    assert link.bytes_moved == sum(sizes)
    # last completion >= total serialization + one propagation
    assert done[-1][1] >= sum(sizes) + 100


@given(
    st.lists(st.tuples(st.integers(0, 50_000), st.integers(1, 8192)),
             min_size=1, max_size=30),
)
@settings(max_examples=30, deadline=None)
def test_link_never_exceeds_configured_bandwidth(arrivals):
    """However transfers arrive, long-run throughput <= the line rate."""
    sim = Simulator()
    rate = 2e9
    link = BandwidthLink(sim, bytes_per_sec=rate)
    finished = []

    def submitter(delay, nbytes):
        def proc():
            yield sim.timeout(delay)
            yield link.transfer(nbytes)
            finished.append(sim.now)

        sim.process(proc())

    for delay, nbytes in arrivals:
        submitter(delay, nbytes)
    sim.run()
    total = sum(n for _, n in arrivals)
    elapsed = max(finished)
    if elapsed == 0:
        return  # sub-ns serialization rounds to zero at integer time
    assert total / (elapsed / 1e9) <= rate * 1.001
