"""Unit tests for Resource, Store, BandwidthLink, TokenBucket."""

import pytest

from repro.sim import BandwidthLink, Resource, SimulationError, Simulator, Store, TokenBucket


# --------------------------------------------------------------------------
# Resource
# --------------------------------------------------------------------------

def test_resource_serializes_beyond_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(tag):
        yield res.acquire()
        yield sim.timeout(100)
        res.release()
        done.append((tag, sim.now))

    for tag in range(4):
        sim.process(worker(tag))
    sim.run()
    # two run [0,100], the next two [100,200]
    assert [t for _, t in done] == [100, 100, 200, 200]


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(10)
        res.release()

    for tag in range(5):
        sim.process(worker(tag))
    sim.run()
    assert order == list(range(5))


def test_resource_release_idle_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_utilization_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield res.acquire()
        yield sim.timeout(500)
        res.release()

    sim.process(worker())
    sim.run(until=1000)
    assert res.utilization() == pytest.approx(0.5)


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield res.acquire()
        yield sim.timeout(100)
        res.release()

    def waiter():
        yield res.acquire()
        res.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run(until=50)
    assert res.in_use == 1
    assert res.queued == 1


# --------------------------------------------------------------------------
# Store
# --------------------------------------------------------------------------

def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield sim.timeout(10)
            store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [(10, 0), (20, 1), (30, 2)]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.run()
    assert got == []
    store.put("late")
    sim.run()
    assert got == [(0, "late")]


def test_store_bounded_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            times.append(sim.now)

    def consumer():
        while True:
            yield sim.timeout(100)
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run(until=1000)
    # first put immediate; each subsequent put unblocks when consumer drains
    assert times == [0, 100, 200]


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.items == ("a", "b")


# --------------------------------------------------------------------------
# BandwidthLink
# --------------------------------------------------------------------------

def test_link_serialization_time():
    sim = Simulator()
    # 1 GB/s == 1 byte/ns
    link = BandwidthLink(sim, bytes_per_sec=1e9, propagation_ns=100)
    done = []

    def proc():
        yield link.transfer(4096)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [4096 + 100]


def test_link_back_to_back_transfers_serialize():
    sim = Simulator()
    link = BandwidthLink(sim, bytes_per_sec=1e9, propagation_ns=0)
    done = []

    def proc(tag):
        yield link.transfer(1000)
        done.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert done == [("a", 1000), ("b", 2000)]


def test_link_propagation_is_pipelined():
    sim = Simulator()
    link = BandwidthLink(sim, bytes_per_sec=1e9, propagation_ns=500)
    done = []

    def proc(tag):
        yield link.transfer(1000)
        done.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    # serialization back to back, but each only pays propagation once
    assert done == [("a", 1500), ("b", 2500)]


def test_link_throughput_accounting():
    sim = Simulator()
    link = BandwidthLink(sim, bytes_per_sec=1e9)

    def proc():
        yield link.transfer(10_000)

    sim.process(proc())
    sim.run()
    assert link.bytes_moved == 10_000
    assert link.throughput() == pytest.approx(1e9)


def test_link_zero_byte_transfer():
    sim = Simulator()
    link = BandwidthLink(sim, bytes_per_sec=1e9, propagation_ns=250)
    done = []

    def proc():
        yield link.transfer(0)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [250]


def test_link_invalid_params():
    sim = Simulator()
    with pytest.raises(SimulationError):
        BandwidthLink(sim, bytes_per_sec=0)
    link = BandwidthLink(sim, bytes_per_sec=1.0)
    with pytest.raises(SimulationError):
        link.transfer(-1)


# --------------------------------------------------------------------------
# TokenBucket
# --------------------------------------------------------------------------

def test_bucket_burst_then_throttle():
    sim = Simulator()
    # 1000 tokens/sec == 1 token per ms; burst of 2
    bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=2)
    times = []

    def proc():
        for _ in range(4):
            yield bucket.consume(1)
            times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times[0] == 0
    assert times[1] == 0
    # third and fourth wait ~1ms each for refill
    assert times[2] == pytest.approx(1_000_000, rel=0.01)
    assert times[3] == pytest.approx(2_000_000, rel=0.01)


def test_bucket_unlimited_never_blocks():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_sec=None, burst=0)
    times = []

    def proc():
        for _ in range(100):
            yield bucket.consume(1000)
            times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [0] * 100
    assert not bucket.would_block(1e12)


def test_bucket_fifo_fairness():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_sec=1000.0, burst=1)
    order = []

    def proc(tag):
        yield bucket.consume(1)
        order.append(tag)

    for tag in range(4):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_bucket_rate_is_respected_longrun():
    sim = Simulator()
    rate = 5000.0  # tokens per second
    bucket = TokenBucket(sim, rate_per_sec=rate, burst=1)
    count = 0

    def proc():
        nonlocal count
        while True:
            yield bucket.consume(1)
            count += 1

    sim.process(proc())
    sim.run(until=1_000_000_000)  # 1 simulated second
    assert count == pytest.approx(rate, rel=0.02)


def test_bucket_would_block_reflects_tokens():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_per_sec=1.0, burst=5)
    assert not bucket.would_block(5)
    assert bucket.would_block(6)
