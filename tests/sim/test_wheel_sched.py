"""Calendar-queue (wheel) scheduler edges: overflow cascade, far-future
events, cancelled-event skipping, empty-wheel step, and exact dispatch
order agreement with the reference heap scheduler."""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.kernel import _WHEEL_SHIFT, _WHEEL_SLOTS

#: first instant past the initial calendar window
WINDOW_NS = _WHEEL_SLOTS << _WHEEL_SHIFT


# ------------------------------------------------------------ construction
def test_unknown_scheduler_name_rejected():
    with pytest.raises(SimulationError, match="REPRO_SCHED"):
        Simulator(sched="fifo")


def test_sched_kwarg_overrides_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", "heap")
    assert Simulator(sched="wheel").sched == "wheel"
    monkeypatch.delenv("REPRO_SCHED")
    assert Simulator().sched == "wheel"


# ------------------------------------------------------- overflow cascade
def test_far_future_event_lands_in_overflow_not_calendar():
    sim = Simulator(sched="wheel")
    sim.timeout(WINDOW_NS + 5)
    assert len(sim._overflow) == 1
    assert not sim._slot_heap and not sim._buckets


def test_overflow_cascade_fires_at_exact_time():
    sim = Simulator(sched="wheel")
    fired = []
    t = sim.timeout(WINDOW_NS * 3 + 17)
    t.callbacks.append(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [WINDOW_NS * 3 + 17]
    assert not sim._overflow
    # the window was re-anchored past the cascaded event's slot
    assert sim._wheel_limit > _WHEEL_SLOTS


def test_cascade_preserves_order_across_windows():
    """Events spread over several calendar windows fire in time order,
    and near events are not delayed by far ones."""
    sim = Simulator(sched="wheel")
    fired = []
    times = [3, WINDOW_NS - 1, WINDOW_NS + 1, WINDOW_NS * 2 + 9,
             WINDOW_NS * 10, 40, WINDOW_NS * 10 + 1]
    for when in times:
        t = sim.timeout(when)
        t.callbacks.append(lambda ev, w=when: fired.append((sim.now, w)))
    sim.run()
    assert fired == [(w, w) for w in sorted(times)]


def test_cascade_same_slot_events_keep_insertion_order():
    """Two overflow events in the same far slot cascade together and
    dispatch FIFO (seq order)."""
    sim = Simulator(sched="wheel")
    fired = []
    when = WINDOW_NS * 2
    for tag in ("first", "second"):
        t = sim.timeout(when)
        t.callbacks.append(lambda ev, tag=tag: fired.append(tag))
    sim.run()
    assert fired == ["first", "second"]


# ------------------------------------------------------- active-slot path
def test_insert_into_slot_being_drained_stays_ordered():
    """A callback scheduling into the currently draining slot must not
    lose the event or reorder it before already-due ones."""
    sim = Simulator(sched="wheel")
    fired = []
    slot_base = 10 << _WHEEL_SHIFT

    def first(ev):
        fired.append("first")
        # same calendar slot, one tick later than an already-queued event
        later = sim.timeout((slot_base + 3) - sim.now)
        later.callbacks.append(lambda e: fired.append("injected"))

    t1 = sim.timeout(slot_base + 1)
    t1.callbacks.append(first)
    t2 = sim.timeout(slot_base + 2)
    t2.callbacks.append(lambda ev: fired.append("second"))
    sim.run()
    assert fired == ["first", "second", "injected"]


# -------------------------------------------------- cancelled-event skips
def test_cancelled_event_skipped_without_dispatch():
    sim = Simulator(sched="wheel")
    fired = []
    doomed = sim.event(name="doomed")
    doomed.succeed("never", delay=5)
    live = sim.event(name="live")
    live.succeed("yes", delay=5)
    live.callbacks.append(lambda ev: fired.append(ev.value))
    doomed.callbacks.append(lambda ev: fired.append("BUG"))
    doomed.cancel()
    processed_before = sim.events_processed
    sim.run()
    assert fired == ["yes"]
    # the defunct event was discarded, never counted as dispatched
    assert sim.events_processed == processed_before + 1


def test_cancelled_overflow_event_skipped_after_cascade():
    sim = Simulator(sched="wheel")
    doomed = sim.event(name="far-doomed")
    doomed.succeed(delay=WINDOW_NS + 50)
    anchor = sim.timeout(WINDOW_NS + 60)
    doomed.cancel()
    sim.run()
    assert sim.now == WINDOW_NS + 60
    assert anchor.processed and not doomed.processed


# ----------------------------------------------------------- empty wheel
def test_step_on_empty_wheel_raises_simulation_error():
    sim = Simulator(sched="wheel")
    with pytest.raises(SimulationError, match="no events are scheduled"):
        sim.step()


def test_step_after_wheel_drained_raises_simulation_error():
    sim = Simulator(sched="wheel")
    sim.timeout(WINDOW_NS + 1)  # forces a cascade before the only event
    sim.step()
    with pytest.raises(SimulationError, match="no events are scheduled"):
        sim.step()


# ------------------------------------------------------------------ peek
def test_peek_reports_earliest_across_all_wheel_structures():
    sim = Simulator(sched="wheel")
    assert sim.peek() is None
    sim.timeout(WINDOW_NS + 7)            # overflow only
    assert sim.peek() == WINDOW_NS + 7
    sim.timeout(12)                       # calendar bucket wins
    assert sim.peek() == 12
    sim.timeout(0)                        # now-bucket wins
    assert sim.peek() == 0


# --------------------------------------------- heap/wheel order agreement
def _mixed_workload(sim):
    """A deterministic burst of same-tick timeouts, zero-delay events,
    and callback-spawned work; returns the dispatch tags in order."""
    fired = []

    def note(tag):
        return lambda ev: fired.append((sim.now, tag))

    for i in range(40):
        # many collisions: delays repeat so events share ticks and slots
        t = sim.timeout((i * 7) % 11)
        t.callbacks.append(note(f"t{i}"))
    for i in range(10):
        ev = sim.event()
        ev.succeed(delay=0)
        ev.callbacks.append(note(f"z{i}"))

    def proc():
        for i in range(5):
            yield sim.timeout(3)
            fired.append((sim.now, f"p{i}"))
            chained = sim.timeout((i * 5) % 11)
            chained.callbacks.append(note(f"c{i}"))

    sim.process(proc(), name="mixer")
    sim.run()
    return fired


def test_same_tick_fifo_matches_heap_seq_order():
    """The wheel must reproduce the heap's (time, seq) dispatch order
    exactly — including FIFO among same-tick events — because the whole
    repo's byte-identity guarantee rests on it."""
    heap_order = _mixed_workload(Simulator(sched="heap"))
    wheel_order = _mixed_workload(Simulator(sched="wheel"))
    assert wheel_order == heap_order
