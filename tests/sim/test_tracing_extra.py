"""Extra kernel coverage: AnyOf failure, interrupts during resources,
process interplay the storage models rely on."""


from repro.sim import Interrupt, Resource, Simulator, Store


def test_any_of_fails_when_member_fails_first():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(1000)

    def trigger():
        yield sim.timeout(5)
        bad.fail(ValueError("member failed"))

    def waiter():
        try:
            yield sim.any_of([bad, slow])
        except ValueError as exc:
            return f"caught {exc}"

    sim.process(trigger())
    assert sim.run(sim.process(waiter())) == "caught member failed"


def test_interrupted_holder_can_release_resource_cleanly():
    sim = Simulator()
    res = Resource(sim, 1)
    order = []

    def holder():
        yield res.acquire()
        try:
            yield sim.timeout(10_000)
        except Interrupt:
            order.append("interrupted")
        finally:
            res.release()

    def waiter():
        yield res.acquire()
        order.append("acquired")
        res.release()

    h = sim.process(holder())
    sim.process(waiter())

    def interrupter():
        yield sim.timeout(100)
        h.interrupt()

    sim.process(interrupter())
    sim.run()
    assert order == ["interrupted", "acquired"]


def test_store_get_survives_many_waiters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(i):
        item = yield store.get()
        got.append((i, item))

    for i in range(5):
        sim.process(consumer(i))

    def producer():
        for v in "abcde":
            yield sim.timeout(10)
            store.put(v)

    sim.process(producer())
    sim.run()
    # FIFO across waiters
    assert got == [(0, "a"), (1, "b"), (2, "c"), (3, "d"), (4, "e")]


def test_nested_process_chain_returns_through_layers():
    sim = Simulator()

    def level3():
        yield sim.timeout(1)
        return 3

    def level2():
        value = yield sim.process(level3())
        return value * 2

    def level1():
        value = yield sim.process(level2())
        return value + 1

    assert sim.run(sim.process(level1())) == 7


def test_run_until_none_drains_everything():
    sim = Simulator()
    hits = []

    def proc(delay):
        yield sim.timeout(delay)
        hits.append(delay)

    for delay in (30, 10, 20):
        sim.process(proc(delay))
    sim.run()
    assert hits == [10, 20, 30]
    assert sim.peek() is None
