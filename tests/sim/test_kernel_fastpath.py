"""Fast-path edges of the simulation kernel: the now-bucket, the
Timeout pool, defunct-event skipping, and the error-path fixes
(empty-heap step, non-exception failure values)."""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.kernel import _TIMEOUT_POOL_CAP, Timeout


# ------------------------------------------------------------- error paths
def test_step_on_empty_schedule_raises_simulation_error():
    sim = Simulator()
    with pytest.raises(SimulationError, match="no events are scheduled"):
        sim.step()
    # and not a bare IndexError leaking from the heap
    try:
        sim.step()
    except SimulationError as exc:
        assert not isinstance(exc, IndexError)


def test_step_after_drain_raises_simulation_error():
    sim = Simulator()
    sim.timeout(5)
    sim.step()
    with pytest.raises(SimulationError):
        sim.step()


def test_run_until_event_failed_with_non_exception_value():
    """fail(value) with a non-exception must not crash with
    'exceptions must derive from BaseException' at the run() boundary."""
    sim = Simulator()
    ev = sim.event(name="probe")
    ev.fail("disk on fire", delay=3)
    with pytest.raises(SimulationError, match="disk on fire"):
        sim.run(until=ev)
    assert sim.now == 3


def test_run_until_event_failed_with_real_exception_is_reraised():
    sim = Simulator()
    ev = sim.event(name="probe")
    boom = RuntimeError("boom")
    ev.fail(boom, delay=1)
    with pytest.raises(RuntimeError) as excinfo:
        sim.run(until=ev)
    assert excinfo.value is boom


def test_process_sees_non_exception_failure_as_simulation_error():
    sim = Simulator()
    ev = sim.event(name="probe")
    caught = []

    def proc():
        try:
            yield ev
        except SimulationError as exc:
            caught.append(exc)

    sim.process(proc())
    ev.fail(17, delay=2)
    sim.run()
    assert len(caught) == 1
    assert "17" in str(caught[0])


# --------------------------------------------------------- cancelled events
def test_cancelled_heap_event_is_skipped():
    sim = Simulator()
    victim = sim.event(name="victim")
    victim.succeed(delay=10)
    fired = []
    keeper = sim.event(name="keeper")
    keeper.callbacks.append(lambda ev: fired.append(sim.now))
    keeper.succeed(delay=10)
    victim.cancel()
    sim.run()
    assert fired == [10]
    assert not victim.processed


def test_cancelled_now_bucket_event_is_skipped():
    sim = Simulator()
    victim = sim.event(name="victim")
    victim.succeed(delay=0)
    victim.cancel()
    ran = []

    def proc():
        yield sim.timeout(0)
        ran.append(sim.now)

    sim.process(proc())
    sim.run()
    assert ran == [0]


def test_cancel_processed_event_raises():
    sim = Simulator()
    ev = sim.event(name="done")
    ev.succeed(delay=1)
    sim.run()
    with pytest.raises(SimulationError):
        ev.cancel()


# ------------------------------------------------------- zero-delay ordering
def test_zero_delay_preserves_seq_order_against_heap():
    """A heap event scheduled *before* a zero-delay event at the same
    timestamp must run first: strict (time, seq) order survives the
    now-bucket fast path."""
    sim = Simulator()
    order = []

    def early():
        yield sim.timeout(5)
        order.append("early")

    def late():
        # scheduled second, also fires at t=5 via a zero-delay hop at 5
        yield sim.timeout(5 - sim.now)
        yield sim.timeout(0)
        order.append("late")

    sim.process(early())
    sim.process(late())
    sim.run()
    assert sim.now == 5
    assert order == ["early", "late"]


def test_zero_delay_events_fifo_among_themselves():
    sim = Simulator()
    order = []

    def mk(tag):
        def proc():
            yield sim.timeout(0)
            order.append(tag)
        return proc

    for tag in range(6):
        sim.process(mk(tag)())
    sim.run()
    assert order == list(range(6))


# ------------------------------------------------------------- timeout pool
def test_timeout_objects_are_recycled():
    sim = Simulator()
    seen = set()

    def proc():
        for _ in range(8):
            t = sim.timeout(1)
            seen.add(id(t))
            yield t

    sim.process(proc())
    sim.run()
    # at least one object identity reused (pool hit); with a serial
    # yield chain the pool should recycle nearly every timeout
    assert len(seen) < 8


def test_recycled_timeout_resets_state():
    sim = Simulator()
    values = []

    def proc():
        got = yield sim.timeout(1, value="a")
        values.append(got)
        got = yield sim.timeout(1)  # recycled: must not leak value "a"
        values.append(got)

    sim.process(proc())
    sim.run()
    assert values == ["a", None]


def test_pinned_timeout_is_not_recycled():
    sim = Simulator()
    t = sim.timeout(4).pin()
    sim.timeout(1)
    sim.step()  # pool now warm with the delay-1 timeout... if recycled
    sim.run(until=t)
    assert t.processed and t.ok


def test_pool_respects_capacity_cap():
    sim = Simulator()
    for _ in range(_TIMEOUT_POOL_CAP + 100):
        sim.timeout(0)
    sim.run()
    assert len(sim._timeout_pool) <= _TIMEOUT_POOL_CAP
    assert all(type(t) is Timeout for t in sim._timeout_pool)


def test_condition_members_survive_pooling():
    """any_of/all_of results are read after member processing; members
    must be pinned out of the recycler or values would be clobbered."""
    sim = Simulator()
    results = []

    def proc():
        a = sim.timeout(1, value="a")
        b = sim.timeout(2, value="b")
        got = yield sim.all_of([a, b])
        # churn the pool hard, then read back the member values
        for _ in range(4):
            yield sim.timeout(1)
        results.append(got)
        results.append((a.value, b.value))

    sim.process(proc())
    sim.run()
    assert list(results[0].values()) == ["a", "b"]
    assert results[1] == ("a", "b")


def test_events_processed_counter_counts_only_fired_events():
    sim = Simulator()
    victim = sim.event(name="victim")
    victim.succeed(delay=1)
    victim.cancel()
    sim.timeout(1)
    sim.timeout(2)
    sim.run()
    assert sim.events_processed == 2
