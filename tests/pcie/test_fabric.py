"""PCIe fabric routing, timing, config space, and MSI-X tests."""

import pytest

from repro.host.memory import HostMemory
from repro.pcie import (
    ConfigSpace,
    InterruptController,
    PCIeDevice,
    PCIeFabric,
    SRIOVCapability,
    VendorDefinedMessage,
)
from repro.sim import SimulationError, Simulator


class _Sink:
    """Minimal AddressHandler for BAR tests."""

    def __init__(self, access_ns=10):
        self.access_ns = access_ns
        self.writes = []

    def mem_write(self, addr, length, data):
        self.writes.append((addr, length, data))

    def mem_read(self, addr, length):
        return b"\x5a" * length


def make_fabric():
    sim = Simulator()
    fabric = PCIeFabric(sim, hop_latency_ns=150)
    mem = HostMemory(sim, 1 << 30)
    fabric.set_root_handler(mem)
    return sim, fabric, mem


def test_endpoint_write_reaches_root_memory():
    sim, fabric, mem = make_fabric()
    port = fabric.attach("dev0", lanes=4)

    def proc():
        yield port.mem_write(0x1000, 8, b"ABCDEFGH")

    sim.run(sim.process(proc()))
    assert mem.mem_read(0x1000, 8) == b"ABCDEFGH"
    assert sim.now > 150  # paid at least the hop latency


def test_endpoint_read_roundtrip_time_and_data():
    sim, fabric, mem = make_fabric()
    port = fabric.attach("dev0", lanes=4)
    mem.mem_write(0x2000, 4, b"WXYZ")

    def proc():
        data = yield port.mem_read(0x2000, 4)
        return (data, sim.now)

    data, t = sim.run(sim.process(proc()))
    assert data == b"WXYZ"
    # request hop + access + completion hop
    assert t >= 2 * 150 + mem.access_ns


def test_cpu_write_reaches_device_bar():
    sim, fabric, _mem = make_fabric()
    port = fabric.attach("dev0", lanes=4)
    sink = _Sink()
    port.map_window(0x1_0000_0000, 0x1000, sink)

    def proc():
        yield fabric.cpu_write(0x1_0000_0010, 4, b"\x01\x00\x00\x00")

    sim.run(sim.process(proc()))
    assert sink.writes == [(0x1_0000_0010, 4, b"\x01\x00\x00\x00")]


def test_cpu_read_from_device_bar():
    sim, fabric, _mem = make_fabric()
    port = fabric.attach("dev0", lanes=4)
    port.map_window(0x1_0000_0000, 0x1000, _Sink())

    def proc():
        data = yield fabric.cpu_read(0x1_0000_0000, 2)
        return data

    assert sim.run(sim.process(proc())) == b"\x5a\x5a"


def test_peer_to_peer_write_traverses_both_ports():
    sim, fabric, _mem = make_fabric()
    a = fabric.attach("a", lanes=4)
    b = fabric.attach("b", lanes=4)
    sink = _Sink()
    b.map_window(0x2_0000_0000, 0x1000, sink)

    def proc():
        yield a.mem_write(0x2_0000_0000, 4, b"peer")

    sim.run(sim.process(proc()))
    assert sink.writes
    assert sim.now >= 2 * 150  # two hops


def test_overlapping_windows_rejected():
    sim, fabric, _mem = make_fabric()
    port = fabric.attach("dev0", lanes=4)
    port.map_window(0x1000_0000, 0x2000, _Sink())
    with pytest.raises(SimulationError):
        port.map_window(0x1000_1000, 0x2000, _Sink())


def test_unclaimed_address_without_root_handler_errors():
    sim = Simulator()
    fabric = PCIeFabric(sim)
    port = fabric.attach("dev0")
    with pytest.raises(SimulationError, match="no window claims"):
        port.mem_write(0x5000, 4)


def test_bandwidth_shapes_transfer_time():
    sim, fabric, _mem = make_fabric()
    slow = fabric.attach("slow", lanes=1)  # ~0.98 GB/s

    def proc():
        yield slow.mem_write(0x100, 1 << 20, None)  # 1 MiB
        return sim.now

    t = sim.run(sim.process(proc()))
    # >= serialization at ~1GB/s ~ 1 ms
    assert t >= 1_000_000


def test_vdm_routing_to_endpoint_and_back():
    sim, fabric, _mem = make_fabric()
    port = fabric.attach("bms", lanes=8)
    got_at_ep = []
    got_at_root = []
    port.on_vdm(lambda vdm: got_at_ep.append(vdm.payload))
    fabric.set_root_vdm_handler(lambda vdm: got_at_root.append(vdm.payload))

    def proc():
        yield fabric.root_send_vdm(
            VendorDefinedMessage(requester_id=0, payload=b"cmd", target_id="bms")
        )
        yield port.send_vdm(
            VendorDefinedMessage(requester_id=1, payload=b"resp", route_to_root=True)
        )

    sim.run(sim.process(proc()))
    assert got_at_ep == [b"cmd"]
    assert got_at_root == [b"resp"]


def test_vdm_unknown_target_rejected():
    sim, fabric, _mem = make_fabric()
    with pytest.raises(SimulationError, match="unknown VDM target"):
        fabric.root_send_vdm(
            VendorDefinedMessage(requester_id=0, payload=b"x", target_id="ghost")
        )
        sim.run()


# ---------------------------------------------------------------- SR-IOV
def test_sriov_capability_vf_routing_ids():
    cap = SRIOVCapability(total_vfs=8, first_vf_offset=1, vf_stride=1)
    cap.enable(4)
    assert cap.vf_enable and cap.num_vfs == 4
    assert [cap.vf_routing_id(0x10, i) for i in range(4)] == [0x11, 0x12, 0x13, 0x14]
    cap.disable()
    assert not cap.vf_enable


def test_sriov_enable_bounds():
    cap = SRIOVCapability(total_vfs=4)
    with pytest.raises(ValueError):
        cap.enable(5)
    with pytest.raises(ValueError):
        cap.enable(0)
    with pytest.raises(ValueError):
        cap.vf_routing_id(0, 4)


def test_device_sriov_creates_vfs():
    dev = PCIeDevice("nic")
    pf = dev.add_pf(0x100, vendor_id=0x8086, device_id=0x1234, total_vfs=8,
                    bar_sizes={0: 0x1000})
    vfs = dev.enable_sriov(pf, 3)
    assert len(vfs) == 3
    assert all(vf.is_vf and vf.parent_pf is pf for vf in vfs)
    assert [vf.routing_id for vf in vfs] == [0x101, 0x102, 0x103]
    assert len(dev.all_functions()) == 4


def test_config_space_enable_gates_dma():
    cs = ConfigSpace(vendor_id=1, device_id=2)
    assert not cs.can_dma
    cs.enable()
    assert cs.can_dma and cs.memory_space_enable


# ----------------------------------------------------------------- MSI-X
def test_msix_end_to_end_interrupt_delivery():
    sim, fabric, mem = make_fabric()
    # rebuild with an IRQ window like the host does
    irq = InterruptController(base=0xFEE0_0000)
    fired = []
    addr, data = irq.allocate(lambda v: fired.append(v))

    class Root:
        access_ns = 60

        def mem_write(self, a, l, d):
            if a >= 0xFEE0_0000:
                irq.mem_write(a, l, d)
            else:
                mem.mem_write(a, l, d)

        def mem_read(self, a, l):
            return mem.mem_read(a, l)

    fabric._root_handler = Root()
    port = fabric.attach("dev0")
    dev = PCIeDevice("d")
    pf = dev.add_pf(0x10, 1, 2, bar_sizes={0: 0x1000})
    pf.msix.configure(0, addr, data)

    def proc():
        yield pf.msix.raise_vector(port, 0)

    sim.run(sim.process(proc()))
    assert fired == [data]


def test_msix_masked_vector_not_delivered():
    sim = Simulator()
    fabric = PCIeFabric(sim)
    port = fabric.attach("dev0")
    dev = PCIeDevice("d")
    pf = dev.add_pf(0x10, 1, 2, bar_sizes={0: 0x1000})
    pf.msix.configure(3, 0xFEE0_0000, 7)
    pf.msix.mask(3)
    assert pf.msix.raise_vector(port, 3) is None


def test_msix_unconfigured_vector_errors():
    dev = PCIeDevice("d")
    pf = dev.add_pf(0x10, 1, 2)
    with pytest.raises(SimulationError):
        pf.msix.entry(9)


def test_interrupt_controller_spurious_msi_rejected():
    sim = Simulator()
    irq = InterruptController(base=0x1000)
    with pytest.raises(SimulationError, match="spurious"):
        irq.mem_write(0x1004, 4, b"\x00\x00\x00\x00")
