"""TLP wire-size accounting and structure tests."""

import pytest
from hypothesis import given, strategies as st

from repro.pcie import (
    MAX_PAYLOAD_BYTES,
    TLP_HEADER_BYTES,
    Completion,
    MemRead,
    MemWrite,
    TLPType,
    VendorDefinedMessage,
    wire_bytes,
)


def test_zero_length_still_costs_a_header():
    assert wire_bytes(0) == TLP_HEADER_BYTES


def test_single_payload_segment():
    assert wire_bytes(128) == 128 + TLP_HEADER_BYTES
    assert wire_bytes(MAX_PAYLOAD_BYTES) == MAX_PAYLOAD_BYTES + TLP_HEADER_BYTES


def test_multi_segment_payload_pays_per_segment():
    # 4 KiB at 256B MPS = 16 segments
    assert wire_bytes(4096) == 4096 + 16 * TLP_HEADER_BYTES


@given(st.integers(min_value=1, max_value=1 << 20))
def test_wire_bytes_monotone_and_bounded(n):
    w = wire_bytes(n)
    assert w >= n + TLP_HEADER_BYTES
    segments = -(-n // MAX_PAYLOAD_BYTES)
    assert w == n + segments * TLP_HEADER_BYTES


def test_memwrite_validates_data_length():
    MemWrite(requester_id=1, address=0, length=4, data=b"abcd")
    with pytest.raises(ValueError):
        MemWrite(requester_id=1, address=0, length=8, data=b"abcd")


def test_tlp_types_are_tagged():
    assert MemWrite(requester_id=0, address=0, length=0).tlp_type == TLPType.MEM_WRITE
    assert MemRead(requester_id=0, address=0, length=4).tlp_type == TLPType.MEM_READ
    assert Completion(requester_id=0, length=4).tlp_type == TLPType.COMPLETION
    assert VendorDefinedMessage(requester_id=0).tlp_type == TLPType.MESSAGE


def test_vdm_payload_len():
    vdm = VendorDefinedMessage(requester_id=0, payload=b"x" * 100)
    assert vdm.payload_len == 100
    assert vdm.wire_len == 100 + TLP_HEADER_BYTES
