"""PCIe function/device coverage: BAR mapping, routing ids, errors."""

import pytest

from repro.host.memory import HostMemory
from repro.pcie import ConfigSpace, PCIeDevice, PCIeFabric, PCIeFunction
from repro.sim import SimulationError, Simulator


class _Sink:
    access_ns = 10

    def mem_write(self, addr, length, data):
        pass

    def mem_read(self, addr, length):
        return None


def test_vf_requires_parent_pf():
    cs = ConfigSpace(vendor_id=1, device_id=2)
    with pytest.raises(SimulationError, match="parent PF"):
        PCIeFunction(0x10, cs, is_vf=True)


def test_map_bar_requires_configured_size():
    sim = Simulator()
    fabric = PCIeFabric(sim)
    port = fabric.attach("d")
    fn = PCIeFunction(0x10, ConfigSpace(vendor_id=1, device_id=2))
    with pytest.raises(SimulationError, match="no size"):
        fn.map_bar(port, 0, 0x1000_0000, _Sink())


def test_bar_addr_before_mapping_rejected():
    fn = PCIeFunction(0x10, ConfigSpace(vendor_id=1, device_id=2,
                                        bar_sizes={0: 0x1000}))
    with pytest.raises(SimulationError, match="not mapped"):
        fn.bar_addr(0)


def test_bar_addr_offsets_after_mapping():
    sim = Simulator()
    fabric = PCIeFabric(sim)
    fabric.set_root_handler(HostMemory(sim, 1 << 20))
    port = fabric.attach("d")
    fn = PCIeFunction(0x10, ConfigSpace(vendor_id=1, device_id=2,
                                        bar_sizes={0: 0x1000}))
    fn.map_bar(port, 0, 0x1000_0000, _Sink())
    assert fn.bar_addr(0) == 0x1000_0000
    assert fn.bar_addr(0, 0x40) == 0x1000_0040


def test_device_enable_sriov_requires_capability():
    dev = PCIeDevice("d")
    pf = dev.add_pf(0x10, 1, 2)  # no total_vfs
    with pytest.raises(SimulationError, match="not SR-IOV capable"):
        dev.enable_sriov(pf, 1)


def test_vf_configurer_hook_runs_per_vf():
    dev = PCIeDevice("d")
    pf = dev.add_pf(0x10, 1, 2, total_vfs=4, bar_sizes={0: 0x100})
    seen = []
    dev.enable_sriov(pf, 3, vf_configurer=lambda vf, i: seen.append((vf.name, i)))
    assert [i for _, i in seen] == [0, 1, 2]
    assert all(name.startswith("d.pf0.vf") for name, _ in seen)
