"""CLI tests: python -m repro ..."""


from repro.cli import main


def test_list_prints_all_artifacts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("table1", "fig8+table5", "fig15+table9", "ablation-qos"):
        assert exp_id in out


def test_reproduce_only_filter(capsys):
    assert main(["reproduce", "--only", "table1"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out
    assert "BM-Store" in out


def test_reproduce_unknown_filter_errors(capsys):
    assert main(["reproduce", "--only", "nonexistent"]) == 2


def test_fio_command_runs_case(capsys):
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1"]) == 0
    out = capsys.readouterr().out
    assert "KIOPS" in out and "rand-w-1" in out


def test_fio_rejects_unknown_scheme(capsys):
    assert main(["fio", "--scheme", "warp-drive"]) == 2


def test_fio_rejects_unknown_case(capsys):
    assert main(["fio", "--scheme", "native", "--case", "bogus"]) == 2


def test_stats_command_prints_stage_and_namespace_stats(capsys):
    assert main(["stats", "--scheme", "bmstore", "--case", "rand-w-1"]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency" in out
    assert "ssd_dma" in out and "doorbell" in out
    assert "per-namespace I/O" in out and "KIOPS" in out
    assert "spans:" in out


def test_stats_json_dump_is_parseable(capsys):
    import json

    assert main(["stats", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["spans"]["recorded"] > 0
    assert any(k.startswith("io_latency_ns") for k in snap["histograms"])


def test_stats_rejects_unknown_scheme(capsys):
    assert main(["stats", "--scheme", "warp-drive"]) == 2


def test_tco_command(capsys):
    assert main(["tco"]) == 0
    out = capsys.readouterr().out
    assert "-11.3%" in out and "+14.3%" in out


def test_package_metadata():
    import repro

    assert repro.__version__
    assert "BM-Store" in repro.__paper__
