"""CLI tests: python -m repro ..."""


from repro.cli import main


def test_list_prints_all_artifacts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("table1", "fig8+table5", "fig15+table9", "ablation-qos"):
        assert exp_id in out


def test_reproduce_only_filter(capsys):
    assert main(["reproduce", "--only", "table1"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out
    assert "BM-Store" in out


def test_reproduce_unknown_filter_errors(capsys):
    assert main(["reproduce", "--only", "nonexistent"]) == 2


def test_fio_command_runs_case(capsys):
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1"]) == 0
    out = capsys.readouterr().out
    assert "KIOPS" in out and "rand-w-1" in out


def test_fio_rejects_unknown_scheme(capsys):
    assert main(["fio", "--scheme", "warp-drive"]) == 2


def test_fio_rejects_unknown_case(capsys):
    assert main(["fio", "--scheme", "native", "--case", "bogus"]) == 2


def test_stats_command_prints_stage_and_namespace_stats(capsys):
    assert main(["stats", "--scheme", "bmstore", "--case", "rand-w-1"]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency" in out
    assert "ssd_dma" in out and "doorbell" in out
    assert "per-namespace I/O" in out and "KIOPS" in out
    assert "spans:" in out


def test_stats_json_dump_is_parseable(capsys):
    import json

    assert main(["stats", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["spans"]["recorded"] > 0
    assert any(k.startswith("io_latency_ns") for k in snap["histograms"])


def test_stats_rejects_unknown_scheme(capsys):
    assert main(["stats", "--scheme", "warp-drive"]) == 2


def test_tco_command(capsys):
    assert main(["tco"]) == 0
    out = capsys.readouterr().out
    assert "-11.3%" in out and "+14.3%" in out


def test_package_metadata():
    import repro

    assert repro.__version__
    assert "BM-Store" in repro.__paper__


def test_version_flag_matches_package(capsys):
    import pytest
    import repro

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert f"repro {repro.__version__}" in capsys.readouterr().out


def test_version_matches_pyproject():
    import pathlib

    import repro

    pyproject = pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
    text = pyproject.read_text()
    assert 'version = {attr = "repro.__version__"}' in text
    assert repro.__version__ == "0.1.0"


def test_fio_json_is_parseable_and_deterministic(capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.2")
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    first = capsys.readouterr().out
    out = json.loads(first)
    assert out["scheme"] == "native" and out["case"] == "rand-w-1"
    assert out["ios"] > 0 and out["errors"] == 0
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    assert capsys.readouterr().out == first


def test_fio_faults_preset_counts_injections(capsys, monkeypatch):
    import json

    # full-scale windows so the preset's 10 ms fault time lands in-run
    monkeypatch.delenv("REPRO_TIME_SCALE", raising=False)
    assert main(["fio", "--scheme", "bmstore", "--case", "rand-r-1",
                 "--faults", "cmd-drop", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["faults"] == "cmd-drop"
    injected = sum(
        v for k, v in out["fault_counters"].items()
        if k.startswith("faults_injected")
    )
    assert injected >= 1
    assert any(k.startswith("driver_timeouts")
               for k in out["fault_counters"])


def test_fio_rejects_unknown_faults_preset(capsys):
    assert main(["fio", "--scheme", "bmstore", "--faults", "nope"]) == 2


def test_faults_command_reports_recovery(capsys):
    import json

    assert main(["faults", "--only", "cmd-drop", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["experiment_id"] == "fault-recovery"
    [row] = out["rows"]
    assert row["fault"] == "cmd-drop"
    assert row["recovered"] is True
    assert row["recovery_ms"] >= 0
    assert row["injected"] >= 1


def test_faults_command_unknown_class(capsys):
    assert main(["faults", "--only", "asteroid"]) == 2


def test_reproduce_json_output(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.2")
    path = tmp_path / "rows.json"
    assert main(["reproduce", "--only", "table1", "--json", str(path)]) == 0
    [payload] = json.loads(path.read_text())
    assert payload["experiment_id"] == "table1"
    assert payload["rows"]


def test_reproduce_quick_runs_the_curated_subset(capsys, monkeypatch):
    from repro.cli import QUICK_EXPERIMENT_IDS

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.2")
    # narrow further with --only to keep the test fast; --quick must
    # intersect with the filter, not override it
    assert main(["reproduce", "--quick", "--only", "table1"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out
    assert "table1" in QUICK_EXPERIMENT_IDS
    # fig10 exists in the registry but is not in the quick subset
    assert main(["reproduce", "--quick", "--only", "fig10"]) == 2
    assert "fig10" not in QUICK_EXPERIMENT_IDS


def test_grid_command_parallel_matches_sequential(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_TIME_SCALE", "0.1")
    seq_path, par_path = tmp_path / "seq.json", tmp_path / "par.json"
    base = ["grid", "--schemes", "native,bmstore", "--cases", "rand-w-1",
            "--seed", "3"]
    assert main(base + ["--workers", "1", "--json", str(seq_path)]) == 0
    assert main(base + ["--workers", "4", "--json", str(par_path)]) == 0
    assert seq_path.read_bytes() == par_path.read_bytes()
    import json

    payloads = json.loads(seq_path.read_text())
    assert [p["scheme"] for p in payloads] == ["native", "bmstore"]
    assert all(p["seed"] == 3 and p["ios"] > 0 for p in payloads)
    assert all("snapshot" not in p for p in payloads)  # opt-in via flag


def test_grid_rejects_unknown_scheme_and_case(capsys):
    assert main(["grid", "--schemes", "warp-drive", "--cases", "rand-w-1"]) == 2
    assert main(["grid", "--schemes", "native", "--cases", "bogus"]) == 2
    assert main(["grid", "--schemes", "native", "--cases", "rand-w-1",
                 "--faults", "nope"]) == 2


def test_bench_writes_snapshot_and_passes_self_check(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.05")
    out = tmp_path / "bench.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out)]) == 0
    snap = json.loads(out.read_text())
    assert snap["kind"] == "repro-bench"
    assert snap["obs_mode"] == "counters"
    [run] = snap["runs"]
    assert run["scheme"] == "native" and run["case"] == "rand-w-1"
    assert run["sim_events"] > 0 and run["events_per_sec"] > 0
    text = capsys.readouterr().out
    assert "events/s" in text
    # a snapshot always passes a check against itself
    out2 = tmp_path / "bench2.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out2), "--check", str(out)]) == 0


def test_bench_check_fails_on_regression(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.05")
    out = tmp_path / "bench.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out)]) == 0
    snap = json.loads(out.read_text())
    # forge a baseline whose kernel was impossibly fast
    snap["runs"][0]["events_per_sec"] *= 10
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(snap))
    out2 = tmp_path / "bench2.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out2), "--check", str(baseline)]) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_bench_check_rejects_time_scale_mismatch(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.05")
    out = tmp_path / "bench.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out)]) == 0
    snap = json.loads(out.read_text())
    snap["time_scale"] = 1.0
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(snap))
    out2 = tmp_path / "bench2.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out2), "--check", str(baseline)]) == 1
    assert "time_scale" in capsys.readouterr().err


def test_faults_list_enumerates_presets(capsys):
    assert main(["faults", "--list"]) == 0
    out = capsys.readouterr().out
    for preset in ("media-burst", "die-stall", "cmd-drop", "link-flap",
                   "width-degrade", "hot-remove"):
        assert preset in out


def test_fio_and_grid_faults_list(capsys):
    assert main(["fio", "--scheme", "bmstore", "--faults", "list"]) == 0
    assert "hot-remove" in capsys.readouterr().out
    assert main(["grid", "--schemes", "native", "--cases", "rand-w-1",
                 "--faults", "list"]) == 0
    assert "cmd-drop" in capsys.readouterr().out


def test_fleet_command_quick_run(capsys):
    assert main(["fleet", "--servers", "4", "--racks", "2", "--tenants", "6",
                 "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fleet: 4 servers / 2 racks" in out
    assert "rolling upgrade: 2 waves" in out
    assert "SLO violations" in out


def test_fleet_json_to_stdout(capsys):
    import json

    assert main(["fleet", "--servers", "4", "--racks", "2", "--tenants", "6",
                 "--quick", "--json", "-"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["fleet"]["servers"] == 4
    assert report["summary"]["servers_upgraded"] == 4
    assert report["summary"]["upgrades_ok"] is True


def test_fleet_rejects_bad_inputs(capsys):
    assert main(["fleet", "--policy", "warp", "--quick"]) == 2
    assert main(["fleet", "--faults", "asteroid", "--quick"]) == 2
    assert main(["fleet", "--servers", "0", "--quick"]) == 2


def test_fleet_migrate_flag_reacts_to_hot_removal(capsys):
    import json

    assert main(["fleet", "--servers", "4", "--racks", "2", "--tenants", "6",
                 "--quick", "--faults", "hot-remove", "--migrate",
                 "--json", "-"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["migrated_servers"] == 1
    assert report["summary"]["migrated_tenants"] >= 1
    assert report["maintenance"]["reaction"] == "migrate"
    assert all(m["mode"] == "migrate"
               for m in report["maintenance"]["moves"])
    # the rendered report names the migrated server
    assert main(["fleet", "--servers", "4", "--racks", "2", "--tenants", "6",
                 "--quick", "--faults", "hot-remove",
                 "--reaction", "migrate"]) == 0
    assert "live-migrated" in capsys.readouterr().out


def test_volumes_command_runs_and_is_zero_copy(capsys):
    import json

    assert main(["volumes", "--cells", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["rows"]) == 2
    for row in payload["rows"]:
        assert row["cow_faults_pre"] == 0     # cloning copied nothing
        assert row["cow_faults"] > 0          # first writes faulted
    assert main(["volumes", "--cells", "1"]) == 0
    assert "cow_faults" in capsys.readouterr().out


def test_bench_check_missing_baseline_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_TIME_SCALE", "0.05")
    out = tmp_path / "bench.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out), "--check", str(tmp_path / "no.json")]) == 2
