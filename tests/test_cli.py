"""CLI tests: python -m repro ..."""


from repro.cli import main


def test_list_prints_all_artifacts(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("table1", "fig8+table5", "fig15+table9", "ablation-qos"):
        assert exp_id in out


def test_reproduce_only_filter(capsys):
    assert main(["reproduce", "--only", "table1"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out
    assert "BM-Store" in out


def test_reproduce_unknown_filter_errors(capsys):
    assert main(["reproduce", "--only", "nonexistent"]) == 2


def test_fio_command_runs_case(capsys):
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1"]) == 0
    out = capsys.readouterr().out
    assert "KIOPS" in out and "rand-w-1" in out


def test_fio_rejects_unknown_scheme(capsys):
    assert main(["fio", "--scheme", "warp-drive"]) == 2


def test_fio_rejects_unknown_case(capsys):
    assert main(["fio", "--scheme", "native", "--case", "bogus"]) == 2


def test_stats_command_prints_stage_and_namespace_stats(capsys):
    assert main(["stats", "--scheme", "bmstore", "--case", "rand-w-1"]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency" in out
    assert "ssd_dma" in out and "doorbell" in out
    assert "per-namespace I/O" in out and "KIOPS" in out
    assert "spans:" in out


def test_stats_json_dump_is_parseable(capsys):
    import json

    assert main(["stats", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["spans"]["recorded"] > 0
    assert any(k.startswith("io_latency_ns") for k in snap["histograms"])


def test_stats_rejects_unknown_scheme(capsys):
    assert main(["stats", "--scheme", "warp-drive"]) == 2


def test_tco_command(capsys):
    assert main(["tco"]) == 0
    out = capsys.readouterr().out
    assert "-11.3%" in out and "+14.3%" in out


def test_package_metadata():
    import repro

    assert repro.__version__
    assert "BM-Store" in repro.__paper__


def test_version_flag_matches_package(capsys):
    import pytest
    import repro

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert f"repro {repro.__version__}" in capsys.readouterr().out


def test_version_matches_pyproject():
    import pathlib

    import repro

    pyproject = pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
    text = pyproject.read_text()
    assert 'version = {attr = "repro.__version__"}' in text
    assert repro.__version__ == "0.1.0"


def test_fio_json_is_parseable_and_deterministic(capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.2")
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    first = capsys.readouterr().out
    out = json.loads(first)
    assert out["scheme"] == "native" and out["case"] == "rand-w-1"
    assert out["ios"] > 0 and out["errors"] == 0
    assert main(["fio", "--scheme", "native", "--case", "rand-w-1",
                 "--json"]) == 0
    assert capsys.readouterr().out == first


def test_fio_faults_preset_counts_injections(capsys, monkeypatch):
    import json

    # full-scale windows so the preset's 10 ms fault time lands in-run
    monkeypatch.delenv("REPRO_TIME_SCALE", raising=False)
    assert main(["fio", "--scheme", "bmstore", "--case", "rand-r-1",
                 "--faults", "cmd-drop", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["faults"] == "cmd-drop"
    injected = sum(
        v for k, v in out["fault_counters"].items()
        if k.startswith("faults_injected")
    )
    assert injected >= 1
    assert any(k.startswith("driver_timeouts")
               for k in out["fault_counters"])


def test_fio_rejects_unknown_faults_preset(capsys):
    assert main(["fio", "--scheme", "bmstore", "--faults", "nope"]) == 2


def test_faults_command_reports_recovery(capsys):
    import json

    assert main(["faults", "--only", "cmd-drop", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["experiment_id"] == "fault-recovery"
    [row] = out["rows"]
    assert row["fault"] == "cmd-drop"
    assert row["recovered"] is True
    assert row["recovery_ms"] >= 0
    assert row["injected"] >= 1


def test_faults_command_unknown_class(capsys):
    assert main(["faults", "--only", "asteroid"]) == 2


def test_reproduce_json_output(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_TIME_SCALE", "0.2")
    path = tmp_path / "rows.json"
    assert main(["reproduce", "--only", "table1", "--json", str(path)]) == 0
    [payload] = json.loads(path.read_text())
    assert payload["experiment_id"] == "table1"
    assert payload["rows"]
