"""Fleet servers with the CXL buffer tier armed vs dormant."""

from repro.fleet.server_sim import ServerRunSpec, TenantAssignment, run_server
from repro.sim.units import MS


def small_spec(**kw):
    tenant = TenantAssignment(
        name="t0", qos="gold", capacity_bytes=64 * 1024 * 1024,
        read_fraction=0.7, block_bytes=16 * 1024, workers=2,
    )
    return ServerRunSpec(server="s0", rack="r0", seed=13, num_ssds=2,
                         tenants=(tenant,), run_ns=200 * MS,
                         window_ns=50 * MS, pace_ns=4 * MS, **kw)


def test_dormant_spec_payload_has_no_cxl_key():
    payload = run_server(small_spec())
    assert "cxl" not in payload
    assert payload["ios"] > 0


def test_armed_spec_reports_tier_stats_and_matches_dormant_io():
    dormant = run_server(small_spec())
    armed = run_server(small_spec(cxl=True))
    stats = armed.pop("cxl")
    # this load never overflows on-card DRAM: the armed world runs the
    # same event sequence and only adds the (quiet) tier stats
    assert armed == dormant
    assert stats["spills"] == 0
    assert stats["hit_ratio"] == 1.0
