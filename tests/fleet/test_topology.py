"""Fleet inventory: construction, failure domains, capacity."""

import pytest

from repro.core.lba_mapping import CHUNK_BYTES
from repro.fleet import build_fleet
from repro.fleet.topology import CHUNKS_PER_SSD


def test_build_fleet_shape_and_naming():
    fleet = build_fleet(num_servers=24, num_racks=6, ssds_per_server=2)
    assert len(fleet) == 24
    assert len(fleet.racks) == 6
    assert all(len(rack.servers) == 4 for rack in fleet.racks)
    assert fleet.servers()[0].name == "r0s0"
    assert fleet.domain_of("r3s2") == "r3"
    assert fleet.server("r5s3").num_ssds == 2


def test_build_fleet_is_deterministic():
    assert build_fleet(10, 3) == build_fleet(10, 3)


def test_uneven_fleet_keeps_every_server():
    fleet = build_fleet(num_servers=7, num_racks=3)
    assert len(fleet) == 7
    sizes = sorted(len(rack.servers) for rack in fleet.racks)
    assert sizes == [2, 2, 3]
    assert len({s.name for s in fleet.servers()}) == 7


def test_more_racks_than_servers_collapses():
    fleet = build_fleet(num_servers=2, num_racks=8)
    assert len(fleet.racks) == 2


def test_capacity_accounting_matches_engine_units():
    fleet = build_fleet(num_servers=2, num_racks=1, ssds_per_server=3)
    server = fleet.servers()[0]
    assert server.chunk_capacity == 3 * CHUNKS_PER_SSD
    assert server.capacity_bytes == server.chunk_capacity * CHUNK_BYTES
    assert fleet.total_chunks == 2 * server.chunk_capacity


def test_unknown_server_raises():
    fleet = build_fleet(num_servers=2, num_racks=2)
    with pytest.raises(KeyError):
        fleet.server("r9s9")


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        build_fleet(num_servers=0)
    with pytest.raises(ValueError):
        build_fleet(num_servers=4, num_racks=0)
    with pytest.raises(ValueError):
        build_fleet(num_servers=4, num_racks=2, ssds_per_server=0)


def test_describe_is_json_able():
    import json

    desc = build_fleet(6, 3).describe()
    assert json.loads(json.dumps(desc)) == desc
    assert desc["servers"] == 6 and desc["racks"] == 3
