"""Rolling-upgrade orchestration: wave planning, server sims, determinism.

The determinism tests are the load-bearing ones: a fleet report must
serialize byte-identically for any ``workers`` count, clean and with a
hot-removal preset armed — that is what makes the parallel fan-out
trustworthy.
"""

import json

from hypothesis import given, settings, strategies as st
import pytest

from repro.faults import get_preset
from repro.fleet import (
    FleetRunConfig,
    ServerRunSpec,
    TenantAssignment,
    build_fleet,
    make_tenants,
    plan_waves,
    run_fleet,
    run_server,
    shifted_preset,
)
from repro.sim.units import MS

QUICK = FleetRunConfig(start_ns=100 * MS, spacing_ns=350 * MS,
                       tail_ns=100 * MS, activation_s=0.05)


def _dumps(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


# --------------------------------------------------------------------------
# wave planning
# --------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    num_servers=st.integers(min_value=1, max_value=30),
    num_racks=st.integers(min_value=1, max_value=8),
    max_per_domain=st.integers(min_value=1, max_value=3),
)
def test_plan_waves_covers_every_server_once(num_servers, num_racks,
                                             max_per_domain):
    fleet = build_fleet(num_servers, num_racks)
    waves = plan_waves(fleet, max_per_domain)
    flat = [name for wave in waves for name in wave]
    assert sorted(flat) == sorted(s.name for s in fleet.servers())
    for wave in waves:
        per_rack: dict[str, int] = {}
        for name in wave:
            rack = fleet.domain_of(name)
            per_rack[rack] = per_rack.get(rack, 0) + 1
        assert max(per_rack.values()) <= max_per_domain


def test_plan_waves_rejects_bad_concurrency():
    with pytest.raises(ValueError):
        plan_waves(build_fleet(4, 2), max_per_domain=0)


# --------------------------------------------------------------------------
# preset shifting + single-server simulation
# --------------------------------------------------------------------------

def test_shifted_preset_translates_schedule():
    original = get_preset("media-burst")
    shifted = shifted_preset("media-burst", 500 * MS)
    assert min(s.at_ns for s in shifted.specs) == 500 * MS
    orig_gaps = sorted(s.at_ns - min(x.at_ns for x in original.specs)
                       for s in original.specs)
    new_gaps = sorted(s.at_ns - 500 * MS for s in shifted.specs)
    assert new_gaps == orig_gaps
    assert shifted.driver_policy == original.driver_policy


def _spec(**kw) -> ServerRunSpec:
    tenant = TenantAssignment(name="t000", qos="silver",
                              capacity_bytes=64 << 20, read_fraction=0.7,
                              block_bytes=4096, workers=1)
    base = dict(server="r0s0", rack="r0", seed=42, tenants=(tenant,),
                run_ns=600 * MS, upgrade_at_ns=150 * MS, activation_s=0.05)
    base.update(kw)
    return ServerRunSpec(**base)


def test_run_server_clean_upgrade():
    payload = run_server(_spec())
    assert payload["errors"] == 0
    assert len(payload["upgrades"]) == 1
    up = payload["upgrades"][0]
    assert up["ok"] and up["version"] == "FW-NEXT"
    t = payload["tenants"][0]
    assert t["ios"] > 0
    assert len(t["windows"]) == 600 * MS // (50 * MS)
    # the activation pause blanks at least one availability window
    assert 0.0 < t["availability"] < 1.0


def test_run_server_without_upgrade_stays_fully_available():
    payload = run_server(_spec(upgrade_at_ns=-1))
    assert payload["upgrades"] == []
    assert payload["tenants"][0]["availability"] == 1.0


def test_run_server_hot_remove_recovers():
    payload = run_server(_spec(faults="hot-remove", fault_at_ns=300 * MS))
    assert "hot_remove" in payload["fault_kinds"]
    assert payload["faults_injected"] > 0
    assert payload["bmsc_recoveries"] > 0


# --------------------------------------------------------------------------
# fleet runs: report shape + byte determinism
# --------------------------------------------------------------------------

def test_fleet_report_shape():
    fleet = build_fleet(num_servers=4, num_racks=2)
    tenants = make_tenants(6, seed=7)
    report = run_fleet(fleet, tenants, policy="spread", seed=7, config=QUICK)
    assert report["fleet"]["servers"] == 4
    assert len(report["waves"]) == 2
    assert report["summary"]["servers_upgraded"] == 4
    assert report["summary"]["upgrades_ok"]
    assert report["summary"]["errors"] == 0
    assert report["summary"]["drained_servers"] == 0
    assert len(report["tenants"]) == 6
    for row in report["tenants"]:
        assert 0.0 <= row["availability"] <= 1.0
        assert row["unplanned_availability"] >= row["availability"]
    for wave in report["waves"]:
        assert len(wave["domains"]) <= 2


def test_fleet_hot_remove_drains_and_replaces():
    fleet = build_fleet(num_servers=4, num_racks=2)
    tenants = make_tenants(6, seed=7)
    report = run_fleet(fleet, tenants, policy="spread", faults="hot-remove",
                       seed=7, config=QUICK)
    assert report["summary"]["drained_servers"] == 1
    drained = report["maintenance"]["drained"][0]
    assert report["fleet"]["faults"] == "hot-remove"
    moves = report["maintenance"]["moves"]
    assert moves and all(m["from"] == drained for m in moves)
    assert all(m["to"] != drained for m in moves)


def test_fleet_parallel_matches_sequential_bytes_clean():
    fleet = build_fleet(num_servers=4, num_racks=2)
    tenants = make_tenants(6, seed=7)
    seq = run_fleet(fleet, tenants, seed=7, workers=1, config=QUICK)
    par = run_fleet(fleet, tenants, seed=7, workers=4, config=QUICK)
    assert _dumps(seq) == _dumps(par)


def test_fleet_parallel_matches_sequential_bytes_with_fault():
    fleet = build_fleet(num_servers=4, num_racks=2)
    tenants = make_tenants(6, seed=7)
    seq = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                    workers=1, config=QUICK)
    par = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                    workers=4, config=QUICK)
    assert _dumps(seq) == _dumps(par)
    assert seq["summary"]["drained_servers"] == 1


def test_fleet_seed_changes_report():
    fleet = build_fleet(num_servers=2, num_racks=2)
    tenants = make_tenants(4, seed=7)
    a = run_fleet(fleet, tenants, seed=7, config=QUICK)
    b = run_fleet(fleet, tenants, seed=8, config=QUICK)
    assert _dumps(a) != _dumps(b)
