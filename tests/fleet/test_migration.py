"""Live migration: plan timing, pre-copy protocol, report merging.

The contract under test: migration's availability dip is strictly
smaller than drain's (cutover only, not the whole cold copy), tenant
I/O keeps flowing through every pre-copy round, the merged report stays
byte-deterministic across worker counts, and a run without a reaction
configured is byte-identical to the legacy report shape.
"""

import dataclasses
import json

import pytest

from repro.experiments import migration_vs_evacuation
from repro.fleet import (
    FleetRunConfig,
    MigrationArrival,
    MigrationPlan,
    ServerRunSpec,
    TenantAssignment,
    build_fleet,
    make_tenants,
    run_fleet,
    run_server,
)
from repro.sim.units import MS

QUICK = FleetRunConfig(start_ns=100 * MS, spacing_ns=350 * MS,
                       tail_ns=100 * MS, activation_s=0.05)


def _dumps(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


def _config(reaction: str) -> FleetRunConfig:
    return dataclasses.replace(QUICK, reaction=reaction)


def _world():
    return build_fleet(num_servers=4, num_racks=2), make_tenants(6, seed=7)


# --------------------------------------------------------------- plan math
def test_plan_handover_migrate_is_size_independent():
    plan = MigrationPlan(tenant="t", mode="migrate", dest="r0s1",
                         start_ns=100 * MS)
    assert plan.handover_ns(1) == plan.handover_ns(64)
    assert plan.handover_ns(4) == (100 * MS + plan.rounds * plan.round_ns
                                   + plan.cutover_ns)


def test_plan_handover_drain_grows_with_volume_size():
    plan = MigrationPlan(tenant="t", mode="drain", dest="r0s1",
                         start_ns=100 * MS)
    assert plan.handover_ns(8) - plan.handover_ns(4) == 4 * plan.cold_chunk_copy_ns
    # even a one-chunk drain outage exceeds the migrate cutover
    migrate = MigrationPlan(tenant="t", mode="migrate", dest="r0s1",
                            start_ns=100 * MS)
    assert (plan.handover_ns(1) - plan.start_ns) > migrate.cutover_ns


def test_run_fleet_rejects_unknown_reaction():
    fleet, tenants = _world()
    with pytest.raises(ValueError, match="reaction"):
        run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                  config=dataclasses.replace(QUICK, reaction="teleport"))


# ------------------------------------------------------ single-server runs
def _spec(**kw) -> ServerRunSpec:
    tenant = TenantAssignment(name="t000", qos="silver",
                              capacity_bytes=256 << 20, read_fraction=0.5,
                              block_bytes=4096, workers=2)
    base = dict(server="r0s0", rack="r0", seed=42, tenants=(tenant,),
                run_ns=600 * MS, upgrade_at_ns=-1)
    base.update(kw)
    return ServerRunSpec(**base)


def test_migrate_out_runs_precopy_then_cutover():
    plan = MigrationPlan(tenant="t000", mode="migrate", dest="r0s1",
                         start_ns=200 * MS)
    payload = run_server(_spec(migrate_out=(plan,)))
    [m] = payload["migrations"]
    assert m["mode"] == "migrate" and m["dest"] == "r0s1"
    # round 0 copies the full volume; later rounds only what writes dirtied
    assert m["rounds"][0] == m["chunks"]
    assert all(r <= m["chunks"] for r in m["rounds"][1:])
    assert m["handover_ns"] == plan.handover_ns(m["chunks"])
    t = payload["tenants"][0]
    # the tenant served through pre-copy: windows covering the rounds
    # are nonzero; after cutover the source serves nothing
    window_ns = 50 * MS
    lo = plan.start_ns // window_ns + 1
    hi = (plan.start_ns + plan.rounds * plan.round_ns) // window_ns
    assert all(r > 0.0 for r in t["windows"][lo:hi])
    assert all(r == 0.0 for r in t["windows"][-2:])


def test_drain_goes_dark_for_the_whole_cold_copy():
    plan = MigrationPlan(tenant="t000", mode="drain", dest="r0s1",
                         start_ns=200 * MS)
    payload = run_server(_spec(migrate_out=(plan,)))
    [m] = payload["migrations"]
    assert m["rounds"] == []  # no pre-copy under drain
    assert m["handover_ns"] == plan.handover_ns(m["chunks"])
    t = payload["tenants"][0]
    window_ns = 50 * MS
    dark_from = plan.start_ns // window_ns + 1
    assert all(r == 0.0 for r in t["windows"][dark_from:])


def test_migrate_in_tenant_serves_only_after_handover():
    tenant = TenantAssignment(name="t999", qos="silver",
                              capacity_bytes=64 << 20, read_fraction=0.5,
                              block_bytes=4096, workers=1)
    arrival = MigrationArrival(tenant=tenant, serve_from_ns=300 * MS,
                               source="r0s0", mode="migrate")
    payload = run_server(_spec(tenants=(), migrate_in=(arrival,)))
    [row] = payload["arrivals"]
    assert row["source"] == "r0s0" and row["serve_from_ns"] == 300 * MS
    window_ns = 50 * MS
    first_live = arrival.serve_from_ns // window_ns
    assert all(r == 0.0 for r in row["windows"][:first_live])
    assert any(r > 0.0 for r in row["windows"][first_live + 1:])
    assert payload["ios"] == row["ios"] > 0


# ----------------------------------------------------------- fleet reports
def test_fleet_migrate_beats_drain_on_availability():
    fleet, tenants = _world()
    drain = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                      config=_config("drain"))
    migrate = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                        config=_config("migrate"))
    assert migrate["maintenance"]["migrated"] == drain["maintenance"]["drained"]
    assert migrate["summary"]["migrated_servers"] == 1
    assert migrate["summary"]["migrated_tenants"] >= 1
    moved = {m["tenant"] for m in migrate["maintenance"]["moves"]}
    by_name = lambda rep: {t["tenant"]: t for t in rep["tenants"]}
    for name in moved:
        m_row, d_row = by_name(migrate)[name], by_name(drain)[name]
        assert m_row["availability"] > d_row["availability"]
        assert m_row["migrated_from"] == d_row["migrated_from"]
        # dark windows: migration's dip is strictly smaller
        dark = lambda row: sum(1 for r in row["windows"] if r == 0.0)
        assert dark(m_row) < dark(d_row)
    assert (migrate["summary"]["fleet_availability"]
            > drain["summary"]["fleet_availability"])


def test_fleet_migrate_keeps_io_flowing_through_precopy():
    fleet, tenants = _world()
    report = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                       config=_config("migrate"))
    config = _config("migrate")
    window_ns = config.window_ns
    for move in report["maintenance"]["moves"]:
        row = next(t for t in report["tenants"]
                   if t["tenant"] == move["tenant"])
        lo = -(-move["start_ns"] // window_ns)
        hi = (move["start_ns"]
              + config.precopy_rounds * config.precopy_round_ns) // window_ns
        precopy = row["windows"][lo:hi]
        assert precopy and all(r > 0.0 for r in precopy)
        assert move["precopy_rounds"][0] == move["chunks"]
        assert move["handover_ns"] > move["start_ns"]


def test_fleet_migrate_parallel_matches_sequential_bytes():
    fleet, tenants = _world()
    seq = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                    workers=1, config=_config("migrate"))
    par = run_fleet(fleet, tenants, faults="hot-remove", seed=7,
                    workers=4, config=_config("migrate"))
    assert _dumps(seq) == _dumps(par)
    assert seq["summary"]["migrated_servers"] == 1


def test_fleet_migrate_clean_parallel_matches_sequential_bytes():
    """No fault armed: reaction config must not perturb a clean run."""
    fleet, tenants = _world()
    seq = run_fleet(fleet, tenants, seed=7, workers=1,
                    config=_config("migrate"))
    par = run_fleet(fleet, tenants, seed=7, workers=4,
                    config=_config("migrate"))
    none = run_fleet(fleet, tenants, seed=7, workers=1, config=QUICK)
    assert _dumps(seq) == _dumps(par)
    assert seq["summary"]["migrated_servers"] == 0
    # with no fault there is nothing to react to: byte-identical to the
    # legacy reaction="none" report
    assert _dumps(seq) == _dumps(none)


# ------------------------------------------------------------- experiment
def test_migration_vs_evacuation_experiment():
    result = migration_vs_evacuation.run(seed=7)
    rows = {(r["reaction"], r["tenant"]): r for r in result.rows}
    drains = [r for r in result.rows if r["reaction"] == "drain"]
    migrates = [r for r in result.rows if r["reaction"] == "migrate"]
    assert drains and migrates
    for mig in migrates:
        d = rows[("drain", mig["tenant"])]
        assert mig["dark_windows"] < d["dark_windows"]
        assert mig["outage_ms"] < d["outage_ms"]
        assert mig["io_in_every_precopy_window"] is True
