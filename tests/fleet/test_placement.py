"""Placement policies: capacity safety, domain spreading, determinism.

The capacity properties are hypothesis-driven: for *any* fleet shape
and tenant mix, a policy either raises ``PlacementError`` or returns an
assignment that never overcommits a server — there is no third
outcome.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import (
    PlacementError,
    TenantSpec,
    build_fleet,
    evacuate,
    make_tenants,
    place,
)
from repro.fleet.placement import GOLD_HEADROOM, POLICIES
from repro.core.lba_mapping import CHUNK_BYTES


def _tenant(i: int, chunks: int, iops: int, qos: str = "silver") -> TenantSpec:
    return TenantSpec(
        name=f"t{i:03d}", profile="web-cache", load=1.0, demand_iops=iops,
        capacity_bytes=chunks * CHUNK_BYTES, qos=qos, read_fraction=0.95,
        block_bytes=4096,
    )


tenant_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=40),        # chunks
        st.integers(min_value=1_000, max_value=700_000),  # demand iops
        st.sampled_from(["gold", "silver", "bronze"]),
    ),
    min_size=0, max_size=20,
).map(lambda raw: tuple(
    _tenant(i, chunks, iops, qos) for i, (chunks, iops, qos) in enumerate(raw)
))

fleet_shapes = st.tuples(
    st.integers(min_value=1, max_value=12),  # servers
    st.integers(min_value=1, max_value=4),   # racks
    st.integers(min_value=1, max_value=2),   # ssds per server
)


@settings(max_examples=60, deadline=None)
@given(shape=fleet_shapes, tenants=tenant_lists,
       policy=st.sampled_from(sorted(POLICIES)))
def test_policies_never_overcommit_a_server(shape, tenants, policy):
    fleet = build_fleet(*shape)
    try:
        placement = place(fleet, tenants, policy)
    except PlacementError:
        return  # refusing is the only acceptable alternative
    assert sorted(placement.assignments) == sorted(t.name for t in tenants)
    for server in fleet.servers():
        assert placement.chunks_used(server.name) <= server.chunk_capacity
        assert placement.iops_used(server.name) <= server.iops_capacity


@settings(max_examples=40, deadline=None)
@given(
    num_racks=st.integers(min_value=1, max_value=4),
    per_rack=st.integers(min_value=1, max_value=3),
    num_tenants=st.integers(min_value=0, max_value=12),
)
def test_spread_balances_failure_domains(num_racks, per_rack, num_tenants):
    """With uniformly small tenants, domain counts differ by at most 1."""
    fleet = build_fleet(num_racks * per_rack, num_racks)
    tenants = tuple(_tenant(i, 1, 1_000) for i in range(num_tenants))
    placement = place(fleet, tenants, "spread")
    counts = placement.domain_tenant_counts().values()
    assert max(counts) - min(counts) <= 1


def test_qos_policy_reserves_gold_headroom():
    fleet = build_fleet(num_servers=4, num_racks=2)
    tenants = (
        _tenant(0, 2, 300_000, "gold"),
        _tenant(1, 2, 300_000, "gold"),
        _tenant(2, 2, 200_000, "bronze"),
        _tenant(3, 2, 200_000, "bronze"),
    )
    placement = place(fleet, tenants, "qos")
    gold_servers = {placement.server_of("t000"), placement.server_of("t001")}
    # gold tenants land on distinct servers in distinct domains
    assert len(gold_servers) == 2
    assert len({fleet.domain_of(s) for s in gold_servers}) == 2
    for name in gold_servers:
        server = fleet.server(name)
        assert placement.iops_used(name) <= server.iops_capacity * GOLD_HEADROOM


def test_binpack_consolidates_onto_fewest_servers():
    fleet = build_fleet(num_servers=6, num_racks=3)
    tenants = tuple(_tenant(i, 5, 10_000) for i in range(4))
    packed = place(fleet, tenants, "binpack")
    assert len(set(packed.assignments.values())) == 1  # all fit on one server
    spread = place(fleet, tenants, "spread")
    assert len(set(spread.assignments.values())) == 4


def test_placement_is_deterministic():
    fleet = build_fleet(num_servers=8, num_racks=4)
    tenants = make_tenants(16, seed=3)
    for policy in POLICIES:
        a = place(fleet, tenants, policy).describe()
        b = place(fleet, tenants, policy).describe()
        assert a == b


def test_infeasible_demand_raises():
    fleet = build_fleet(num_servers=2, num_racks=2)
    whale = (_tenant(0, 10_000, 10_000),)  # more chunks than any server
    with pytest.raises(PlacementError):
        place(fleet, whale, "spread")
    many = tuple(_tenant(i, 20, 10_000) for i in range(10))
    with pytest.raises(PlacementError):
        place(fleet, many, "binpack")


def test_unknown_policy_raises():
    with pytest.raises(PlacementError):
        place(build_fleet(2, 2), (), "warp")


def test_duplicate_tenant_names_rejected():
    fleet = build_fleet(2, 2)
    with pytest.raises(PlacementError):
        place(fleet, (_tenant(0, 1, 1000), _tenant(0, 1, 1000)), "spread")


@settings(max_examples=60, deadline=None)
@given(shape=fleet_shapes, tenants=tenant_lists,
       policy=st.sampled_from(sorted(POLICIES)))
def test_evacuate_never_overcommits_the_residual_fleet(shape, tenants, policy):
    """Pin the evacuation capacity-accounting bug.

    ``evacuate`` used to look stay-put tenants' ServerSpecs up in the
    *old* fleet, so residual capacity checks compared against stale
    objects and the drain could overcommit a survivor.  For any
    placeable mix and any victim: evacuate either refuses or the
    residual fleet honors both hard capacities (and, under ``qos``, the
    gold-headroom reservation).
    """
    fleet = build_fleet(*shape)
    try:
        placement = place(fleet, tenants, policy)
    except PlacementError:
        return
    for victim in fleet.servers():
        try:
            after, moves = evacuate(placement, victim.name)
        except PlacementError:
            continue  # refusing is the only acceptable alternative
        assert not after.tenants_on(victim.name)
        assert {m["tenant"] for m in moves} == {
            t.name for t in placement.tenants_on(victim.name)}
        for server in fleet.servers():
            if server.name == victim.name:
                continue
            assert after.chunks_used(server.name) <= server.chunk_capacity
            assert after.iops_used(server.name) <= server.iops_capacity
            if policy == "qos" and any(
                    after.tenants[t].qos == "gold"
                    for t, s in after.assignments.items()
                    if s == server.name):
                assert (after.iops_used(server.name)
                        <= server.iops_capacity * GOLD_HEADROOM)


def test_evacuate_moves_everything_off_and_stays_safe():
    fleet = build_fleet(num_servers=6, num_racks=3)
    tenants = make_tenants(12, seed=5)
    placement = place(fleet, tenants, "spread")
    victim = placement.server_of(tenants[0].name)
    moved_off = {t.name for t in placement.tenants_on(victim)}
    after, moves = evacuate(placement, victim)
    assert {m["tenant"] for m in moves} == moved_off
    assert all(m["from"] == victim and m["to"] != victim for m in moves)
    assert sorted(after.assignments) == sorted(placement.assignments)
    assert not after.tenants_on(victim)
    for server in fleet.servers():
        if server.name == victim:
            continue
        assert after.chunks_used(server.name) <= server.chunk_capacity
        assert after.iops_used(server.name) <= server.iops_capacity
