"""Parallel experiment runner: multiprocess fan-out must be a pure
wall-clock optimisation — payloads byte-identical to sequential runs,
clean and under fault injection alike."""

import json

import pytest

from repro.runner import RunSpec, default_workers, parallel_map, run_grid, run_one


@pytest.fixture(autouse=True)
def _tiny_windows(monkeypatch):
    """Shrink simulated windows so each grid cell runs in ~0.1 s."""
    monkeypatch.setenv("REPRO_TIME_SCALE", "0.1")


def _canon(payloads):
    return json.dumps(payloads, sort_keys=True)


def test_parallel_grid_matches_sequential_bytes():
    kwargs = dict(schemes=["native", "bmstore"], cases=["rand-r-1", "rand-w-1"])
    seq = run_grid(**kwargs, workers=1)
    par = run_grid(**kwargs, workers=4)
    assert _canon(par) == _canon(seq)
    assert len(seq) == 4
    assert all(p["ios"] > 0 for p in seq)


def test_parallel_grid_matches_sequential_with_fault_preset(monkeypatch):
    # windows long enough for the preset's 8 ms fault time to land
    monkeypatch.setenv("REPRO_TIME_SCALE", "0.4")
    kwargs = dict(schemes=["bmstore"], cases=["rand-r-1"],
                  faults="media-burst")
    seq = run_grid(**kwargs, workers=1)
    par = run_grid(**kwargs, workers=2)
    assert _canon(par) == _canon(seq)
    [payload] = seq
    injected = sum(
        v for k, v in payload["snapshot"]["counters"].items()
        if k.startswith("faults_injected")
    )
    assert injected >= 1


def test_grid_order_is_input_order_not_completion_order():
    # rand-r-128 is much slower than rand-r-1: with 4 workers the fast
    # cells finish first, but the payload list must follow grid order
    payloads = run_grid(["native"], ["rand-r-128", "rand-r-1"], workers=4)
    assert [p["case"] for p in payloads] == ["rand-r-128", "rand-r-1"]


def test_run_one_payload_shape():
    payload = run_one(RunSpec(scheme="native", case="rand-w-1", seed=11))
    assert payload["scheme"] == "native"
    assert payload["case"] == "rand-w-1"
    assert payload["seed"] == 11
    assert payload["sim_events"] > 0
    assert payload["iops"] > 0
    assert "counters" in payload["snapshot"]


def test_seed_changes_results():
    a = run_one(RunSpec(scheme="native", case="rand-r-1", seed=1))
    b = run_one(RunSpec(scheme="native", case="rand-r-1", seed=2))
    assert a["avg_latency_us"] != b["avg_latency_us"]


def test_counters_obs_mode_drops_spans_but_keeps_measurement():
    full = run_one(RunSpec(scheme="native", case="rand-w-1"))
    lite = run_one(RunSpec(scheme="native", case="rand-w-1",
                           obs_mode="counters"))
    # identical simulated outcome, cheaper bookkeeping
    assert lite["ios"] == full["ios"]
    assert lite["iops"] == full["iops"]
    assert lite["sim_events"] == full["sim_events"]
    assert lite["snapshot"]["spans"]["recorded"] == 0
    assert full["snapshot"]["spans"]["recorded"] > 0


def test_parallel_map_inline_for_one_worker():
    assert parallel_map(len, ["ab", "c"], workers=1) == [2, 1]


def test_default_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert default_workers() == 6
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        default_workers()


def test_experiment_grid_wiring_parallel_equals_sequential():
    from repro.experiments import fig8_table5

    seq = fig8_table5.run(cases=["rand-w-1"], workers=1)
    par = fig8_table5.run(cases=["rand-w-1"], workers=2)
    assert seq.rows == par.rows
