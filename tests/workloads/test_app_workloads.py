"""YCSB / Sysbench / TPC-C workload-generator tests."""

import pytest
from dataclasses import replace

from repro.apps.minikv import MiniKV, MiniKVConfig
from repro.apps.minisql import MiniSQL, MiniSQLConfig
from repro.baselines import build_native
from repro.sim import SimulationError
from repro.sim.units import MS
from repro.workloads import (
    SysbenchSpec,
    TPCCSpec,
    YCSB_WORKLOADS,
    YCSBSpec,
    run_sysbench,
    run_tpcc,
    run_ycsb,
)

FAST_SQL = MiniSQLConfig(buffer_pool_pages=64, stmt_cpu_ns=5_000, row_cpu_ns=200)


# -------------------------------------------------------------------- YCSB
def kv_world():
    rig = build_native(1)
    db = MiniKV(rig.sim, rig.driver(), MiniKVConfig(memtable_bytes=128 * 1024))
    return rig, db


def test_ycsb_mixes_are_valid():
    for name, spec in YCSB_WORKLOADS.items():
        total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
        assert total == pytest.approx(1.0), name


def test_invalid_mix_rejected():
    with pytest.raises(SimulationError):
        YCSBSpec("bad", read=0.5, update=0.1, insert=0.0, scan=0.0, rmw=0.0)


def test_ycsb_a_runs_mixed_ops_without_failed_reads():
    rig, db = kv_world()
    spec = replace(YCSB_WORKLOADS["A"], record_count=2000, threads=4,
                   runtime_ns=8 * MS, ramp_ns=1 * MS)
    res = run_ycsb(rig.sim, db, spec, rig.streams)
    assert res.ops > 100
    assert res.failed_reads == 0  # load phase covered the key space
    assert set(res.per_op) <= {"read", "update"}
    assert res.per_op["read"] == pytest.approx(res.ops * 0.5, rel=0.15)


def test_ycsb_c_is_read_only():
    rig, db = kv_world()
    spec = replace(YCSB_WORKLOADS["C"], record_count=1500, threads=4,
                   runtime_ns=6 * MS, ramp_ns=1 * MS)
    res = run_ycsb(rig.sim, db, spec, rig.streams)
    assert set(res.per_op) == {"read"}
    puts_after_load = db.stats.puts - spec.record_count
    assert puts_after_load == 0


def test_ycsb_e_scans():
    rig, db = kv_world()
    spec = replace(YCSB_WORKLOADS["E"], record_count=1500, threads=2,
                   runtime_ns=6 * MS, ramp_ns=1 * MS)
    res = run_ycsb(rig.sim, db, spec, rig.streams)
    assert res.per_op.get("scan", 0) > 0
    assert db.stats.scans > 0


def test_ycsb_zipf_skews_to_hot_keys():
    rig, db = kv_world()
    spec = replace(YCSB_WORKLOADS["C"], record_count=5000, threads=4,
                   runtime_ns=8 * MS, ramp_ns=1 * MS, zipf_theta=0.99)
    run_ycsb(rig.sim, db, spec, rig.streams)
    # hot keys live in the memtable/low levels -> high hit counts
    assert db.stats.hits > 0 and db.stats.misses == 0


# ----------------------------------------------------------------- Sysbench
def test_sysbench_read_write_counts_queries():
    rig = build_native(1)
    db = MiniSQL(rig.sim, rig.driver(), FAST_SQL)
    spec = SysbenchSpec(table_size=1500, threads=4,
                        runtime_ns=10 * MS, ramp_ns=1 * MS)
    res = run_sysbench(rig.sim, db, spec, rig.streams)
    assert res.transactions > 5
    # 10 points + 1 range + 2 updates + delete/insert = 15 queries/txn
    assert res.queries / res.transactions == pytest.approx(15, rel=0.05)
    assert res.avg_latency_ms > 0
    assert db.committed_txns >= res.transactions


def test_sysbench_read_only_never_writes():
    rig = build_native(1)
    db = MiniSQL(rig.sim, rig.driver(), FAST_SQL)
    spec = SysbenchSpec(name="oltp_read_only", table_size=1500, threads=4,
                        runtime_ns=8 * MS, ramp_ns=1 * MS, read_only=True)
    before = None
    res = run_sysbench(rig.sim, db, spec, rig.streams)
    assert res.transactions > 0
    assert res.queries / res.transactions == pytest.approx(11, rel=0.05)


# --------------------------------------------------------------------- TPC-C
def tpcc_world():
    rig = build_native(1)
    db = MiniSQL(rig.sim, rig.driver(), FAST_SQL)
    return rig, db


def test_tpcc_loads_all_nine_tables():
    rig, db = tpcc_world()
    spec = TPCCSpec(warehouses=1, customers_per_district=10,
                    stock_per_warehouse=100, items=100, threads=2,
                    runtime_ns=10 * MS, ramp_ns=1 * MS)
    res = run_tpcc(rig.sim, db, spec, rig.streams)
    assert set(db.tables) == {
        "warehouse", "district", "customer", "item", "stock",
        "orders", "new_order", "order_line", "history",
    }
    assert db.tables["district"].row_count == 10
    assert db.tables["customer"].row_count == 100


def test_tpcc_transaction_mix_close_to_spec():
    rig, db = tpcc_world()
    spec = TPCCSpec(warehouses=1, customers_per_district=20,
                    stock_per_warehouse=200, items=200, threads=8,
                    runtime_ns=60 * MS, ramp_ns=3 * MS)
    res = run_tpcc(rig.sim, db, spec, rig.streams)
    assert res.total_txns > 100
    share = res.per_type.get("new_order", 0) / res.total_txns
    assert share == pytest.approx(0.45, abs=0.08)
    share_pay = res.per_type.get("payment", 0) / res.total_txns
    assert share_pay == pytest.approx(0.43, abs=0.08)
    assert res.tpmc > 0


def test_tpcc_new_orders_create_order_lines():
    rig, db = tpcc_world()
    spec = TPCCSpec(warehouses=1, customers_per_district=10,
                    stock_per_warehouse=100, items=100, threads=4,
                    runtime_ns=20 * MS, ramp_ns=1 * MS)
    res = run_tpcc(rig.sim, db, spec, rig.streams)
    orders = db.tables["orders"].row_count
    lines = db.tables["order_line"].row_count
    assert orders > 0
    # ~10 lines per order
    assert lines / orders == pytest.approx(10, rel=0.35)
