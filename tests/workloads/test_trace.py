"""Trace generation and replay tests."""

import pytest

from repro.baselines import build_bmstore, build_native
from repro.sim import SimulationError, StreamFactory
from repro.sim.units import GIB, MS
from repro.workloads import TRACE_PROFILES, generate_trace, replay_trace


def make_trace(profile="oltp", duration=10 * MS, seed=21):
    rng = StreamFactory(seed).stream("trace")
    return generate_trace(TRACE_PROFILES[profile], duration, 1 << 22, rng)


# -------------------------------------------------------------- generation
def test_trace_records_are_time_ordered_and_bounded():
    records = make_trace()
    assert records
    times = [r.timestamp_ns for r in records]
    assert times == sorted(times)
    assert times[-1] < 10 * MS
    assert all(0 <= r.lba and r.lba + r.nblocks <= 1 << 22 for r in records)


def test_trace_mix_matches_profile():
    records = make_trace("oltp", duration=40 * MS)
    reads = sum(1 for r in records if r.op == "read")
    assert reads / len(records) == pytest.approx(0.70, abs=0.05)


def test_backup_profile_is_write_heavy_and_large():
    records = make_trace("backup", duration=40 * MS)
    writes = sum(1 for r in records if r.op == "write")
    assert writes / len(records) > 0.9
    avg_blocks = sum(r.nblocks for r in records) / len(records)
    assert avg_blocks > 10


def test_trace_spatial_skew_hits_hot_region():
    profile = TRACE_PROFILES["oltp"]
    records = make_trace("oltp", duration=40 * MS)
    hot_limit = int((1 << 22) * profile.hot_region_fraction)
    hot = sum(1 for r in records if r.lba < hot_limit)
    assert hot / len(records) == pytest.approx(profile.hot_fraction, abs=0.07)


def test_trace_is_deterministic():
    assert make_trace(seed=5) == make_trace(seed=5)
    assert make_trace(seed=5) != make_trace(seed=6)


# ------------------------------------------------------------------ replay
def test_replay_completes_all_records():
    rig = build_native(1)
    records = make_trace(duration=8 * MS)
    result = replay_trace(rig.sim, rig.driver(), records)
    assert result.completed == result.issued == len(records)
    assert result.errors == 0
    assert result.latency is not None
    assert result.read_latency and result.write_latency


def test_replay_is_open_loop_paced():
    """Replay takes at least the trace duration (arrivals are timed)."""
    rig = build_native(1)
    records = make_trace(duration=8 * MS)
    result = replay_trace(rig.sim, rig.driver(), records)
    assert result.elapsed_ns >= records[-1].timestamp_ns


def test_replay_on_bmstore_adds_constant_latency():
    records = make_trace(duration=8 * MS)
    nat = build_native(1)
    r_native = replay_trace(nat.sim, nat.driver(), records)
    rig = build_bmstore(num_ssds=1)
    driver = rig.baremetal_driver(rig.provision("ns", 256 * GIB))
    r_bms = replay_trace(rig.sim, driver, records)
    delta_us = (r_bms.read_latency.mean_ns - r_native.read_latency.mean_ns) / 1e3
    assert 0.5 <= delta_us <= 8.0  # the engine adder, not an amplification


def test_replay_empty_trace_rejected():
    rig = build_native(1)
    with pytest.raises(SimulationError):
        replay_trace(rig.sim, rig.driver(), [])
