"""fio workload-engine tests."""

import pytest

from repro.baselines import build_native
from repro.sim import SimulationError
from repro.sim.units import MS
from repro.workloads import FioSpec, TABLE_IV_CASES, run_fio


def quick(name="q", op="randread", bs=4096, qd=4, jobs=2, rate=None):
    return FioSpec(name, op, bs, iodepth=qd, numjobs=jobs,
                   runtime_ns=5 * MS, ramp_ns=1 * MS, rate_mbps=rate)


def test_table_iv_matches_paper_cases():
    cases = TABLE_IV_CASES
    assert cases["rand-r-1"].iodepth == 1 and cases["rand-r-1"].numjobs == 4
    assert cases["rand-r-128"].iodepth == 128
    assert cases["rand-w-16"].op == "randwrite" and cases["rand-w-16"].iodepth == 16
    assert cases["seq-r-256"].block_bytes == 128 * 1024
    assert cases["seq-r-256"].iodepth == 256
    assert all(spec.numjobs == 4 for spec in cases.values())


def test_invalid_specs_rejected():
    with pytest.raises(SimulationError):
        FioSpec("x", "bogus-op")
    with pytest.raises(SimulationError):
        FioSpec("x", "read", iodepth=0)


def test_closed_loop_keeps_iodepth_outstanding():
    rig = build_native(1)
    res = run_fio(rig.sim, [rig.driver()], quick(qd=8, jobs=2), rig.streams)
    # 16 outstanding 4K reads ~ 16 / ~80us
    assert res.iops == pytest.approx(16 / 80e-6, rel=0.25)
    assert res.errors == 0
    assert res.latency is not None and res.latency.count == res.ios


def test_ramp_window_excluded():
    rig = build_native(1)
    spec = FioSpec("r", "randread", 4096, iodepth=1, numjobs=1,
                   runtime_ns=4 * MS, ramp_ns=100 * MS)
    res = run_fio(rig.sim, [rig.driver()], spec, rig.streams)
    # only ~4ms of measurement at ~12.5K IOPS
    assert res.ios < 100


def test_sequential_workers_do_not_rewrite_same_block():
    rig = build_native(1)
    res = run_fio(rig.sim, [rig.driver()], quick(op="read", qd=2, jobs=2), rig.streams)
    assert res.ios > 0


def test_multiple_targets_round_robin_by_job():
    rig = build_native(2)
    res = run_fio(rig.sim, rig.drivers, quick(jobs=4, qd=4), rig.streams)
    assert set(res.per_target_ios) == {0, 1}
    a, b = res.per_target_ios[0], res.per_target_ios[1]
    assert min(a, b) / max(a, b) > 0.8


def test_rate_cap_limits_throughput():
    rig = build_native(1)
    spec = FioSpec("paced", "randread", 4096, iodepth=8, numjobs=1,
                   runtime_ns=10 * MS, ramp_ns=2 * MS, rate_mbps=40.0)
    res = run_fio(rig.sim, [rig.driver()], spec, rig.streams)
    # 40 MB/s at 4K ~ 9.8K IOPS (well below the closed-loop ~90K)
    assert res.bandwidth_mbps == pytest.approx(40.0, rel=0.10)


def test_deterministic_given_seed():
    def once():
        rig = build_native(1, seed=99)
        return run_fio(rig.sim, [rig.driver()], quick(), rig.streams).ios

    assert once() == once()


def test_write_case_hits_device_write_path():
    rig = build_native(1)
    res = run_fio(rig.sim, [rig.driver()], quick(op="randwrite"), rig.streams)
    assert rig.ssds[0].stats.write_ops > 0
    assert res.iops > 0
