"""Static validator tests: the sandbox is decided before install."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.push import (
    MAX_FANOUT,
    MAX_HOPS,
    PushValidationError,
    chase_program,
    cond_write_program,
    filter_program,
    validate_program,
)

NS_BLOCKS = 256


def test_accepts_constructor_programs():
    for literal in (
        chase_program([[0, 64]], max_hops=8),
        filter_program([[16, 32]]),
        cond_write_program([[0, 4], [100, 56]]),
    ):
        program = validate_program(literal, NS_BLOCKS)
        assert program.kind == literal["kind"]
        assert program.windows
        # validated programs round-trip through their wire form
        assert validate_program(program.to_dict(), NS_BLOCKS) == program


def test_admits_is_exact_window_containment():
    program = validate_program(chase_program([[10, 4], [100, 2]]), NS_BLOCKS)
    assert program.admits(10, 4)
    assert program.admits(12, 2)
    assert program.admits(101, 1)
    assert not program.admits(9, 2)  # straddles the left edge
    assert not program.admits(13, 2)  # straddles the right edge
    assert not program.admits(50, 1)  # between windows
    assert not program.admits(102, 1)  # past the second window


@pytest.mark.parametrize("mutation, message", [
    ({"kind": "exec"}, "kind"),
    ({"max_hops": 0}, "max_hops"),
    ({"max_hops": MAX_HOPS + 1}, "max_hops"),
    ({"max_hops": True}, "integer"),
    ({"max_hops": None}, "integer"),
    ({"max_fanout": 0}, "max_fanout"),
    ({"max_fanout": MAX_FANOUT + 1}, "max_fanout"),
    ({"windows": []}, "window"),
    ({"windows": [[0]]}, "window"),
    ({"windows": [[-1, 4]]}, "negative"),
    ({"windows": [[0, 0]]}, "empty"),
    ({"windows": [[0, NS_BLOCKS + 1]]}, "escapes"),
    ({"windows": [[NS_BLOCKS - 1, 2]]}, "escapes"),
])
def test_rejects_malformed_programs(mutation, message):
    literal = chase_program([[0, 64]], max_hops=8)
    literal.update(mutation)
    with pytest.raises(PushValidationError, match=message):
        validate_program(literal, NS_BLOCKS)


def test_rejects_non_dict_program():
    with pytest.raises(PushValidationError):
        validate_program("not a program", NS_BLOCKS)


# ------------------------------------------------------------------ property
@given(
    kind=st.sampled_from(["chase", "filter", "cond_write"]),
    max_hops=st.integers(min_value=-2, max_value=MAX_HOPS + 4),
    max_fanout=st.integers(min_value=-2, max_value=MAX_FANOUT + 4),
    windows=st.lists(
        st.tuples(st.integers(min_value=-8, max_value=NS_BLOCKS + 8),
                  st.integers(min_value=-4, max_value=NS_BLOCKS + 8)),
        min_size=1, max_size=4,
    ),
)
@settings(max_examples=80, deadline=None)
def test_validator_confines_reachable_lbas(kind, max_hops, max_fanout, windows):
    """Any program with an out-of-extent reachable LBA (or unbounded /
    degenerate step bounds) is rejected; everything in-bounds is
    accepted and can only ever admit in-namespace accesses."""
    literal = {"kind": kind, "max_hops": max_hops, "max_fanout": max_fanout,
               "windows": [list(w) for w in windows]}
    bounds_ok = 1 <= max_hops <= MAX_HOPS and 1 <= max_fanout <= MAX_FANOUT
    windows_ok = all(
        start >= 0 and count >= 1 and start + count <= NS_BLOCKS
        for start, count in windows
    )
    if bounds_ok and windows_ok:
        program = validate_program(literal, NS_BLOCKS)
        for lba in range(-2, NS_BLOCKS + 4):
            if program.admits(lba, 1):
                assert 0 <= lba < NS_BLOCKS
            if program.admits(lba, 2):
                assert 0 <= lba and lba + 2 <= NS_BLOCKS
    else:
        with pytest.raises(PushValidationError):
            validate_program(literal, NS_BLOCKS)
