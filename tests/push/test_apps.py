"""App-level pushdown tests: MiniKV chase, MiniSQL filter, CLI coverage."""

import json

import pytest

from repro.apps.minikv import MiniKV, MiniKVConfig
from repro.apps.minisql import MiniSQL, MiniSQLConfig, TableSchema
from repro.baselines import build_bmstore
from repro.checks import CHECKER_NAMES
from repro.cli import main
from repro.sim.units import MIB


def drive(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


def make_kv(pushdown, carry, seed=13):
    rig = build_bmstore(num_ssds=2, seed=seed)
    fn = rig.provision("kv", 64 * MIB)
    driver = rig.baremetal_driver(fn)
    config = MiniKVConfig(
        memtable_bytes=8 * 1024, wal_ring_blocks=64,
        indexed_tables=True, carry_data=carry, pushdown_reads=pushdown,
    )
    return rig, driver, MiniKV(rig.sim, driver, config)


def kv_world(pushdown, carry):
    rig, driver, kv = make_kv(pushdown, carry)
    out = {}

    def flow():
        for i in range(240):
            yield from kv.put(b"k%04d" % i, b"v%03d" % i * 8)
        if pushdown:
            info = yield from kv.install_pushdown()
            assert info.ok
        before = driver.stats.submitted
        values = []
        for i in range(0, 120, 7):
            value = yield from kv.get(b"k%04d" % i)
            values.append(value)
        out["commands"] = driver.stats.submitted - before
        out["values"] = values

    drive(rig, flow())
    out["kv"] = kv
    return out


@pytest.mark.parametrize("carry", [False, True])
def test_minikv_pushdown_matches_mediated(carry):
    mediated = kv_world(pushdown=False, carry=carry)
    pushed = kv_world(pushdown=True, carry=carry)
    assert pushed["values"] == mediated["values"]
    assert all(v is not None for v in pushed["values"])
    assert pushed["kv"].stats.pushdown_gets > 0
    assert pushed["kv"].stats.pushdown_fallbacks == 0
    # the whole point: fewer host<->engine commands for the same reads
    assert pushed["commands"] < mediated["commands"]


def test_minikv_falls_back_when_program_vanishes():
    rig, driver, kv = make_kv(pushdown=True, carry=False)

    def flow():
        for i in range(240):
            yield from kv.put(b"k%04d" % i, b"v%03d" % i * 8)
        info = yield from kv.install_pushdown()
        assert info.ok
        yield driver.uninstall_push_program()
        values = []
        for i in range(0, 120, 7):
            values.append((yield from kv.get(b"k%04d" % i)))
        return values

    values = drive(rig, flow())
    assert all(v is not None for v in values)
    assert kv.stats.pushdown_fallbacks > 0  # vendor path refused, reads OK


def test_minisql_pushdown_point_selects():
    rig = build_bmstore(num_ssds=2, seed=17)
    fn = rig.provision("sql", 64 * MIB)
    driver = rig.baremetal_driver(fn)
    db = MiniSQL(rig.sim, driver, MiniSQLConfig(
        buffer_pool_pages=4, redo_ring_blocks=64,
        stmt_cpu_ns=0, row_cpu_ns=0, pushdown_reads=True,
    ))
    db.create_table(TableSchema("t", "id", ("id", "v"), rows_per_page=4))

    def flow():
        info = yield from db.install_pushdown()
        assert info.ok
        txn = db.begin()
        for i in range(64):
            yield from txn.insert("t", {"id": i, "v": i * 10})
        yield from txn.commit()
        rows = []
        for i in (0, 17, 42, 63):
            txn = db.begin()
            rows.append((yield from txn.select("t", i)))
            yield from txn.commit()
        return rows

    rows = drive(rig, flow())
    assert [r["v"] for r in rows] == [0, 170, 420, 630]
    assert db.pushdown_fetches > 0  # pool misses went through the program
    assert db.pushdown_fallbacks == 0


def test_check_bmstore_covers_all_six_checkers(capsys):
    assert main(["check", "--scheme", "bmstore", "--case", "rand-r-1",
                 "--seed", "5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert payload["violation"] is None
    coverage = payload["coverage"]
    assert set(coverage) == set(CHECKER_NAMES)
    assert coverage["push"] > 0
    assert all(count > 0 for count in coverage.values())
