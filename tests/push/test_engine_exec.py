"""Engine-side interpreter tests: PUSH_EXEC through the full stack."""

import struct

import pytest

from repro.apps.minikv import decode_records, encode_record
from repro.baselines import build_bmstore
from repro.checks import CheckContext, InvariantViolation
from repro.mgmt.nvme_mi import MIStatus
from repro.nvme.spec import LBA_BYTES, StatusCode
from repro.push import chase_program, cond_write_program, filter_program
from repro.sim.units import MIB


def make_rig(num_ssds=1, seed=11, checks=None):
    rig = build_bmstore(num_ssds=num_ssds, seed=seed, checks=checks)
    fn = rig.provision("t", 8 * MIB)
    driver = rig.baremetal_driver(fn)
    return rig, driver


def drive(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


def block(*records: bytes) -> bytes:
    """Pack records into one zero-padded device block."""
    return b"".join(records).ljust(LBA_BYTES, b"\x00")


def index_block(key: bytes, data_block: int) -> bytes:
    return block(encode_record(key, struct.pack("<Q", data_block), 0))


# ------------------------------------------------------------------ dormancy
def test_dormant_without_a_program():
    """Arming the manager but installing nothing leaves the event
    sequence byte-identical to a world that never heard of pushdown."""
    def world(touch_manager):
        rig, driver = make_rig(seed=23)
        if touch_manager:
            rig.engine.push_manager()

        def flow():
            for i in range(32):
                yield driver.write(i, 1)
            for i in range(32):
                yield driver.read(i, 1)

        drive(rig, flow())
        return rig

    plain = world(False)
    armed = world(True)
    assert plain.engine.push is None
    assert armed.engine.push is not None and not armed.engine.push.programs
    assert plain.sim.now == armed.sim.now
    assert plain.sim.events_processed == armed.sim.events_processed


def test_exec_without_program_is_an_error():
    rig, driver = make_rig()

    def flow():
        # manager never armed: the vendor opcode itself is unknown
        dormant = yield driver.push_exec(
            {"carry": False, "key": b"k", "candidates": []})
        rig.engine.push_manager()
        # armed, but nothing installed on this namespace
        unprogrammed = yield driver.push_exec(
            {"carry": False, "key": b"k", "candidates": []})
        return dormant, unprogrammed

    dormant, unprogrammed = drive(rig, flow())
    assert not dormant.ok
    assert dormant.status == int(StatusCode.INVALID_OPCODE)
    assert not unprogrammed.ok
    assert unprogrammed.status == int(StatusCode.INVALID_FIELD)


# --------------------------------------------------------------------- chase
def test_chase_carry_parses_real_blocks():
    rig, driver = make_rig()

    def flow():
        info = yield driver.install_push_program(chase_program([[0, 64]]))
        assert info.ok
        yield driver.write(0, 1, payload=index_block(b"aa", 1))
        yield driver.write(2, 1, payload=block(encode_record(b"aa", b"hello", 9)))
        info = yield driver.push_exec({
            "carry": True, "key": b"aa",
            "candidates": [{"index_lba": 0, "data_base": 1}],
        })
        return info

    info = drive(rig, flow())
    assert info.ok
    result = info.data
    assert result.found and result.candidate == 0 and result.block_idx == 1
    assert result.hops == 2
    assert (b"aa", b"hello", 9) in list(decode_records(result.block))


def test_chase_shadow_matches_carry_command_count():
    rig, driver = make_rig()

    def flow():
        yield driver.install_push_program(chase_program([[0, 64]]))
        before = driver.stats.submitted
        info = yield driver.push_exec({
            "carry": False, "key": b"aa",
            "candidates": [{"index_lba": 0, "data_base": 1,
                            "shadow_ptr": 1, "hit": True}],
        })
        return info, driver.stats.submitted - before

    info, commands = drive(rig, flow())
    assert info.ok and commands == 1  # the whole lookup is one command
    result = info.data
    assert result.found and result.block_idx == 1 and result.hops == 2
    assert result.block is None  # shadow mode carries no bytes


def test_chase_skips_candidate_without_pointer():
    rig, driver = make_rig()

    def flow():
        yield driver.install_push_program(chase_program([[0, 64]]))
        info = yield driver.push_exec({
            "carry": False, "key": b"zz",
            "candidates": [{"index_lba": 0, "data_base": 1,
                            "shadow_ptr": None}],
        })
        return info

    info = drive(rig, flow())
    assert info.ok
    assert not info.data.found
    assert info.data.hops == 1  # index hop only, no data hop


def test_chase_respects_hop_budget():
    rig, driver = make_rig()

    def flow():
        yield driver.install_push_program(chase_program([[0, 64]], max_hops=2))
        cand = {"index_lba": 0, "data_base": 1, "shadow_ptr": 0, "hit": False}
        info = yield driver.push_exec({
            "carry": False, "key": b"k",
            "candidates": [dict(cand) for _ in range(5)],
        })
        return info

    info = drive(rig, flow())
    assert info.ok
    assert info.data.hops == 2  # a candidate that can't finish never starts
    assert not info.data.found


# -------------------------------------------------------------------- filter
def test_filter_carry_count_and_collect():
    rig, driver = make_rig()
    blob = (encode_record(b"a", b"1", 1) + encode_record(b"b", b"2", 2)
            + encode_record(b"c", b"3", 3))

    def flow():
        yield driver.install_push_program(filter_program([[0, 64]]))
        yield driver.write(3, 1, payload=block(blob))
        counted = yield driver.push_exec({
            "carry": True, "base_lba": 3, "nblocks": 1,
            "lo": b"b", "mode": "count",
        })
        collected = yield driver.push_exec({
            "carry": True, "base_lba": 3, "nblocks": 1,
            "lo": b"b", "hi": b"b", "mode": "collect",
        })
        return counted, collected

    counted, collected = drive(rig, flow())
    assert counted.ok and counted.data.count == 2
    assert collected.ok and collected.data.records == [(b"b", b"2", 2)]


def test_filter_rejects_fanout_above_bound():
    rig, driver = make_rig()

    def flow():
        yield driver.install_push_program(
            filter_program([[0, 64]], max_fanout=4))
        info = yield driver.push_exec(
            {"carry": False, "base_lba": 0, "nblocks": 5})
        return info

    info = drive(rig, flow())
    assert not info.ok
    assert info.status == int(StatusCode.INVALID_FIELD)


# ---------------------------------------------------------------- cond_write
def test_cond_write_commits_on_matching_seq():
    rig, driver = make_rig()

    def flow():
        yield driver.install_push_program(cond_write_program([[0, 64]]))
        yield driver.write(4, 1, payload=block(encode_record(b"k", b"old", 5)))
        stale = yield driver.push_exec({
            "carry": True, "lba": 4, "expected_seq": 7,
            "payload": block(encode_record(b"k", b"new", 8)),
        })
        fresh = yield driver.push_exec({
            "carry": True, "lba": 4, "expected_seq": 5,
            "payload": block(encode_record(b"k", b"new", 6)),
        })
        return stale, fresh

    stale, fresh = drive(rig, flow())
    assert stale.ok and not stale.data.committed  # lost the race, no write
    assert stale.data.stored_seq == 5 and stale.data.hops == 1
    assert fresh.ok and fresh.data.committed and fresh.data.hops == 2


# ------------------------------------------------------------------- sandbox
def test_runtime_sandbox_faults_out_of_window_io():
    rig, driver = make_rig(checks=False)
    manager = rig.engine.push_manager()
    manager.install("t", chase_program([[0, 8]]))

    def flow():
        info = yield driver.push_exec({
            "carry": False, "key": b"k",
            "candidates": [{"index_lba": 32, "data_base": 33,
                            "shadow_ptr": 0, "hit": True}],
        })
        return info

    info = drive(rig, flow())
    assert not info.ok
    assert info.status == int(StatusCode.PUSH_SANDBOX_FAULT)
    assert manager.stat("t")["sandbox_faults"] == 1


def test_push_checker_catches_escape_even_without_inline_gate():
    """The checker sees program I/O before the runtime gate, so an
    escaping access raises InvariantViolation rather than silently
    becoming a vendor error status (mutual revert detection)."""
    ctx = CheckContext(checkers=["push"])
    rig, driver = make_rig(checks=ctx)
    manager = rig.engine.push_manager()
    manager.install("t", chase_program([[0, 8]]))

    def flow():
        yield driver.push_exec({
            "carry": False, "key": b"k",
            "candidates": [{"index_lba": 32, "data_base": 33,
                            "shadow_ptr": 0, "hit": True}],
        })

    with pytest.raises(InvariantViolation, match="outside its declared"):
        drive(rig, flow())


def test_push_checker_rejects_unvalidated_escaping_install():
    ctx = CheckContext(checkers=["push"])
    rig, _driver = make_rig(checks=ctx)
    manager = rig.engine.push_manager()
    escaping = chase_program([[0, 1 << 40]])
    with pytest.raises(InvariantViolation, match="escapes the namespace"):
        manager.install("t", escaping, validate=False)


# ------------------------------------------------------------ install paths
def test_inband_install_rejects_escaping_program():
    rig, driver = make_rig()

    def flow():
        info = yield driver.install_push_program(chase_program([[0, 1 << 40]]))
        return info

    info = drive(rig, flow())
    assert not info.ok
    assert info.status == int(StatusCode.INVALID_FIELD)
    assert rig.engine.push is not None and not rig.engine.push.programs


def test_mi_console_install_stat_uninstall():
    rig, driver = make_rig()

    def flow():
        resp = yield rig.console.install_program("t", chase_program([[0, 64]]))
        assert resp.ok and resp.body["key"] == "t"
        info = yield driver.push_exec({
            "carry": False, "key": b"k",
            "candidates": [{"index_lba": 0, "data_base": 1,
                            "shadow_ptr": 1, "hit": True}],
        })
        assert info.ok
        one = yield rig.console.push_stat("t")
        every = yield rig.console.push_stat()
        gone = yield rig.console.uninstall_program("t")
        rejected = yield rig.console.install_program(
            "t", chase_program([[0, 1 << 40]]))
        return one, every, gone, rejected

    one, every, gone, rejected = drive(rig, flow())
    assert one.ok and one.body["execs"] == 1 and one.body["hops_saved"] == 1
    assert every.ok and [p["key"] for p in every.body["programs"]] == ["t"]
    assert gone.ok
    assert rig.engine.push is not None and not rig.engine.push.programs
    assert not rejected.ok
    assert rejected.status == int(MIStatus.INVALID_PARAMETER)


# ----------------------------------------------------------------- hot-remove
def test_push_exec_fails_cleanly_while_drive_removed():
    rig, driver = make_rig(num_ssds=2, seed=19)
    invocation = {
        "carry": False, "key": b"k",
        "candidates": [{"index_lba": 0, "data_base": 1,
                        "shadow_ptr": 1, "hit": True}],
    }

    def flow():
        yield driver.install_push_program(chase_program([[0, 64]]))
        removed = rig.engine.surprise_remove(0)
        broken = yield driver.push_exec(dict(invocation))
        rig.engine.adaptor.slot_for(0).attach_ssd(removed)
        healed = yield driver.push_exec(dict(invocation))
        return broken, healed

    broken, healed = drive(rig, flow())
    assert not broken.ok  # the host sees a plain error status, no hang
    assert healed.ok and healed.data.found
