"""SQE pool reclaim: timed-out commands must not leak ring entries.

A timed-out command releases its queue slot while its stale SQE still
sits in the ring (nothing fetches during a passthrough outage).  The
entry rejoins the pool free list at one of two provably-safe points:
its slot is overwritten by a later push, or the queue is re-attached
and the slot proven outside the live fetch window.  The soak test pins
the end-to-end property the pool stats exist for: the high-water mark
stabilizes across repeated fault storms instead of climbing.
"""

from repro.baselines import build_bmstore, build_native
from repro.faults import FaultPlan, get_preset
from repro.host.memory import HostMemory
from repro.nvme import SQE, SubmissionQueue
from repro.nvme.command import alloc_sqe, pool_stats
from repro.sim import Simulator
from repro.sim.units import MS, ms, us


def make_sq(depth=8):
    sim = Simulator()
    mem = HostMemory(sim, 1 << 20)
    return SubmissionQueue(mem, mem.alloc(depth * 64), depth, sqid=1)


# ------------------------------------------------------------ ring ledger
def test_push_overwrite_reclaims_leaked_slot():
    sq = make_sq(depth=8)
    reclaimed = []
    sq.on_reclaim = reclaimed.append
    for i in range(4):
        sq.push(SQE(opcode=2, cid=i, nsid=1))
    for _ in range(4):
        sq.consume_addr()
    # the command at slot 2 timed out: its entry is stranded
    sq.note_leaked(2, alloc_sqe(opcode=2, cid=99, nsid=1))
    outstanding_before = pool_stats()["sqe_outstanding"]
    # seven more pushes wrap the tail past slot 2
    for i in range(7):
        sq.push(SQE(opcode=2, cid=10 + i, nsid=1))
        sq.consume_addr()
    assert sq.leak_reclaims == 1
    assert reclaimed == [1]
    assert pool_stats()["sqe_outstanding"] == outstanding_before - 1


def test_reclaim_dead_slots_spares_the_live_window():
    sq = make_sq(depth=8)
    for i in range(6):
        sq.push(SQE(opcode=2, cid=i, nsid=1))
    for _ in range(4):
        sq.consume_addr()
    # live window is [4, 6): slot 5 may still be fetched, slot 1 cannot
    live = alloc_sqe(opcode=2, cid=50, nsid=1)
    dead = alloc_sqe(opcode=2, cid=51, nsid=1)
    sq.note_leaked(5, live)
    sq.note_leaked(1, dead)
    reclaimed = []
    sq.on_reclaim = reclaimed.append
    assert sq.reclaim_dead_slots() == 1
    assert reclaimed == [1]
    assert 5 in sq._leaked and 1 not in sq._leaked
    assert sq.reclaim_dead_slots() == 0  # idempotent on the survivor


def test_driver_counts_reclaims_after_timeout_storm():
    plan = (FaultPlan()
            .cmd_drop("nvme0", at_ns=0, count=3)
            .with_driver_policy(timeout_ns=ms(1), max_retries=4,
                                backoff_base_ns=us(100), backoff_cap_ns=us(400)))
    # one shallow ring so the retries wrap the tail past the leaked slots
    rig = build_native(1, faults=plan, queue_depth=4, num_io_queues=1)
    driver = rig.driver()

    def flow():
        for lba in range(6):
            info = yield driver.read(lba, 1)
            assert info.ok

    rig.sim.run(rig.sim.process(flow()))
    assert driver.stats.timeouts >= 3
    # every stranded entry was recovered once its slot wrapped
    assert driver.stats.sqe_reclaims == driver.stats.timeouts


# ------------------------------------------------------------------- soak
def _storm(depth=32):
    """One passthrough hot-remove storm on a shallow single ring.

    The yank strands ~ring-depth SQEs (nothing fetches during a
    passthrough outage); the re-seat plus the post-recovery traffic
    must recover every one of them through the two reclaim points.
    """
    rig = build_bmstore(num_ssds=1, seed=7,
                        faults=get_preset("pt-hot-remove"))
    fn = rig.provision("ns0", rig.engine.chunk_bytes, placement=[0])
    rig.engine.enable_passthrough("ns0")
    driver = rig.baremetal_driver(fn, queue_depth=depth, num_io_queues=1)

    def worker(tag):
        lba = tag * 131
        while rig.sim.now < 25 * MS:
            yield driver.read(lba % driver.num_blocks, 1)
            lba += 997

    procs = [rig.sim.process(worker(t), name=f"w{t}") for t in range(16)]
    for proc in procs:
        rig.sim.run(proc)
    return driver.stats


def test_soak_pool_high_water_mark_stabilizes():
    """Repeated hot-remove storms: without reclaim every storm leaks
    every timed-out SQE and the pool's outstanding count climbs by
    hundreds per run; with it each torn-down world leaves at most a
    ring's worth of stragglers (leaked entries whose slot stayed in
    the live window through teardown).  Pool counters are process-wide
    and monotonic, so the soak measures per-storm growth, not
    absolutes."""
    leftovers = []
    for n in range(3):
        before = pool_stats()["sqe_outstanding"]
        stats = _storm()
        leftovers.append(pool_stats()["sqe_outstanding"] - before)
        assert stats.timeouts > 0
        # every aborted attempt strands one SQE; everything beyond a
        # ring's worth of them was recovered before the world ended
        assert stats.sqe_reclaims > 0
        assert stats.sqe_reclaims >= stats.aborts - 32
    # high-water mark stabilizes: identical worlds leave identical,
    # ring-bounded residue instead of accumulating their timeouts
    assert leftovers[0] == leftovers[1] == leftovers[2]
    assert leftovers[0] <= 32
