"""Driver error paths: timeout -> Abort, backoff retries, exhaustion,
and hot-remove under load (no sim-kernel deadlock)."""

from repro.baselines import build_bmstore, build_native
from repro.faults import FaultPlan
from repro.nvme.spec import StatusCode
from repro.sim.units import ms, us


def _read(rig, driver, lba=0):
    out = {}

    def flow():
        out["info"] = yield driver.read(lba, 1)

    rig.sim.run(rig.sim.process(flow()))
    return out["info"]


def test_timeout_fires_abort_then_retry_succeeds():
    plan = (FaultPlan()
            .cmd_drop("nvme0", at_ns=0, count=1)
            .with_driver_policy(timeout_ns=ms(1), max_retries=2,
                                backoff_base_ns=us(100), backoff_cap_ns=us(400)))
    rig = build_native(1, faults=plan)
    driver = rig.driver()
    info = _read(rig, driver)
    assert info.ok
    assert driver.stats.timeouts == 1
    assert driver.stats.aborts == 1
    assert driver.stats.retries == 1
    assert driver.stats.retries_exhausted == 0
    # the timed-out attempt waited the full deadline before retrying
    assert info.latency_ns >= ms(1)


def test_retry_backoff_is_exponential_and_capped():
    plan = (FaultPlan()
            .cmd_drop("nvme0", at_ns=0, count=3)
            .with_driver_policy(timeout_ns=ms(1), max_retries=4,
                                backoff_base_ns=ms(2), backoff_cap_ns=ms(8)))
    rig = build_native(1, faults=plan)
    driver = rig.driver()
    info = _read(rig, driver)
    assert info.ok
    assert driver.stats.timeouts == 3
    assert driver.stats.retries == 3
    # three 1 ms deadlines + backoffs 2, 4, 8 ms
    assert info.latency_ns >= 3 * ms(1) + ms(2) + ms(4) + ms(8)
    assert info.latency_ns < ms(20)


def test_retry_exhaustion_surfaces_failed_completion():
    plan = (FaultPlan()
            .cmd_drop("nvme0", at_ns=0, count=10)
            .with_driver_policy(timeout_ns=ms(1), max_retries=2,
                                backoff_base_ns=us(100), backoff_cap_ns=us(200)))
    rig = build_native(1, faults=plan)
    driver = rig.driver()
    info = _read(rig, driver)
    assert not info.ok
    assert info.status == int(StatusCode.ABORTED_BY_REQUEST)
    assert driver.stats.retries_exhausted == 1
    assert driver.stats.timeouts == 3  # initial attempt + 2 retries


def test_zero_timeout_policy_still_retries_on_retryable_status():
    # timeout disabled: supervision reacts to completions only
    plan = FaultPlan().with_driver_policy(timeout_ns=0, max_retries=3,
                                          backoff_base_ns=us(50),
                                          backoff_cap_ns=us(100))
    rig = build_native(1, faults=plan)
    driver = rig.driver()
    assert _read(rig, driver).ok
    assert driver.stats.timeouts == 0


def test_hot_remove_mid_io_does_not_deadlock_without_policy():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns0", 64 << 30)
    driver = rig.baremetal_driver(fn)
    infos = []

    def worker(i):
        info = yield driver.read(i * 11, 1)
        infos.append(info)

    def chaos():
        yield rig.sim.timeout(us(20))  # land mid-flight
        rig.engine.surprise_remove(0)

    procs = [rig.sim.process(worker(i)) for i in range(16)]
    rig.sim.process(chaos())
    rig.sim.run(rig.sim.all_of(procs))  # must terminate: no deadlock
    assert len(infos) == 16
    failed = [i for i in infos if not i.ok]
    assert failed, "surprise removal must fail in-flight I/O"
    assert all(
        i.status == int(StatusCode.NAMESPACE_NOT_READY) for i in failed
    )
    assert driver._pending == {} or all(
        qid == 0 for qid, _cid in driver._pending
    )

    # re-seat the drive directly: service resumes
    slot = rig.engine.adaptor.slot_for(0)
    slot.attach_ssd(rig.ssds[0])
    final = {}

    def again():
        final["info"] = yield driver.read(5, 1)

    rig.sim.run(rig.sim.process(again()))
    assert final["info"].ok


def test_submissions_after_removal_fail_fast():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns0", 64 << 30)
    driver = rig.baremetal_driver(fn)
    rig.engine.surprise_remove(0)
    info = _read(rig, driver)
    assert not info.ok
    assert info.status == int(StatusCode.NAMESPACE_NOT_READY)
