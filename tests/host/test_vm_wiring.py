"""VirtualMachine wiring: overhead application and queue topology."""


from repro.baselines import build_bmstore
from repro.host import KERNEL_PROFILES, VirtualMachine, VMProfile
from repro.sim.units import GIB


def test_vm_driver_carries_injection_and_lock_overheads():
    rig = build_bmstore(num_ssds=1)
    profile = VMProfile(vcpus=2, irq_injection_ns=3000, submit_extra_ns=400,
                        lock_multiplier=2.0)
    vm = VirtualMachine(rig.host, "vm0", profile=profile)
    driver = rig.vm_driver(vm, rig.provision("ns", 64 * GIB))
    assert driver.extra_completion_ns == 3000
    assert driver.extra_submit_ns == 400
    assert driver.contended_lock_ns == driver.lock_ns * 2
    # one IO queue per vCPU by default
    assert len(driver.io_queue_ids) == 2
    assert vm.drivers == [driver]


def test_vm_guest_kernel_profile_is_honored():
    rig = build_bmstore(num_ssds=1)
    fedora = KERNEL_PROFILES["fedora33-5.8.15"]
    vm = VirtualMachine(rig.host, "vm0", guest_kernel=fedora)
    driver = rig.vm_driver(vm, rig.provision("ns", 64 * GIB))
    assert driver.kernel is fedora


def test_vm_io_is_slower_than_bare_metal_same_backend():
    rig = build_bmstore(num_ssds=1)
    bm_driver = rig.baremetal_driver(rig.provision("a", 64 * GIB))
    vm = VirtualMachine(rig.host, "vm0")
    vm_driver = rig.vm_driver(vm, rig.provision("b", 64 * GIB))

    def one(driver):
        info = yield driver.read(0, 1)
        return info.latency_ns

    bm = rig.sim.run(rig.sim.process(one(bm_driver)))
    vm_lat = rig.sim.run(rig.sim.process(one(vm_driver)))
    # irq injection + submit extra show up
    assert vm_lat > bm + 2000
