"""NVMe-driver edge cases: backpressure, cid management, concurrency."""


from repro.baselines import build_native


def test_queue_depth_backpressure_blocks_excess_submissions():
    rig = build_native(1, queue_depth=4, num_io_queues=1)
    driver = rig.driver()
    completions = []

    def worker(i):
        info = yield driver.read(i, 1)
        completions.append(i)

    # 12 concurrent submits against 3 usable slots: all must complete
    procs = [rig.sim.process(worker(i)) for i in range(12)]
    rig.sim.run(rig.sim.all_of(procs))
    assert sorted(completions) == list(range(12))


def test_round_robin_spreads_across_io_queues():
    rig = build_native(1, num_io_queues=4)
    driver = rig.driver()

    def flow():
        for i in range(16):
            yield driver.read(i, 1)

    rig.sim.run(rig.sim.process(flow()))
    # every IO queue fielded interrupts
    assert driver.stats.interrupts >= 4
    assert driver.stats.completed == 16


def test_cid_space_wraps_without_collision():
    rig = build_native(1, queue_depth=8, num_io_queues=1)
    driver = rig.driver()

    def flow():
        for i in range(300):  # far beyond one queue's depth
            info = yield driver.read(i % 64, 1)
            assert info.ok

    rig.sim.run(rig.sim.process(flow()))
    assert driver.stats.completed == 300
    assert not driver._pending  # nothing leaked


def test_interleaved_reads_and_writes_complete_independently():
    rig = build_native(1)
    driver = rig.driver()
    done = {"r": 0, "w": 0}

    def reader():
        for i in range(20):
            info = yield driver.read(i, 1)
            assert info.ok
            done["r"] += 1

    def writer():
        for i in range(20):
            info = yield driver.write(1000 + i, 1)
            assert info.ok
            done["w"] += 1

    p1 = rig.sim.process(reader())
    p2 = rig.sim.process(writer())
    rig.sim.run(rig.sim.all_of([p1, p2]))
    assert done == {"r": 20, "w": 20}


def test_latency_includes_submission_path():
    rig = build_native(1)
    driver = rig.driver()

    def flow():
        info = yield driver.read(0, 1)
        return info.latency_ns

    latency = rig.sim.run(rig.sim.process(flow()))
    floor = (
        driver.kernel.submit_overhead_ns
        + driver.lock_ns
        + rig.ssds[0].profile.read_access_ns
    )
    assert latency > floor


def test_buffer_pool_reuse_keeps_memory_bounded():
    rig = build_native(1)
    driver = rig.driver()

    def flow():
        for i in range(200):
            yield driver.read(i, 1)

    before = rig.host.memory.allocated
    rig.sim.run(rig.sim.process(flow()))
    first_round = rig.host.memory.allocated

    def flow2():
        for i in range(200):
            yield driver.read(i, 1)

    rig.sim.run(rig.sim.process(flow2()))
    # the second round recycles the first round's buffers entirely
    assert rig.host.memory.allocated == first_round
