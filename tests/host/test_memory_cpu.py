"""Host memory (scatter/gather, allocator) and CPU-pool tests."""

import pytest
from hypothesis import given, strategies as st

from repro.host import HostCPU, HostMemory, PAGE_SIZE
from repro.host.memory import BufferPool
from repro.sim import SimulationError, Simulator


def make_mem(size=1 << 30):
    return HostMemory(Simulator(), size)


# ----------------------------------------------------------------- memory
def test_alloc_is_aligned_and_monotonic():
    mem = make_mem()
    a = mem.alloc(100)
    b = mem.alloc(100)
    assert a % PAGE_SIZE == 0
    assert b > a
    assert mem.allocated >= 200


def test_alloc_exhaustion():
    mem = make_mem(size=2 * PAGE_SIZE)
    mem.alloc(PAGE_SIZE)
    with pytest.raises(SimulationError, match="out of memory"):
        mem.alloc(4 * PAGE_SIZE)


def test_alloc_rejects_nonpositive():
    mem = make_mem()
    with pytest.raises(SimulationError):
        mem.alloc(0)


def test_write_read_roundtrip_within_page():
    mem = make_mem()
    mem.mem_write(0x100, 4, b"abcd")
    assert mem.mem_read(0x100, 4) == b"abcd"


def test_scatter_across_page_boundary():
    mem = make_mem()
    data = bytes(range(200)) * 41  # 8200 bytes > 2 pages
    addr = PAGE_SIZE - 100
    mem.mem_write(addr, len(data), data)
    assert mem.mem_read(addr, len(data)) == data


def test_partial_overwrite_preserves_rest():
    mem = make_mem()
    mem.mem_write(0, PAGE_SIZE, b"\xaa" * PAGE_SIZE)
    mem.mem_write(100, 4, b"BBBB")
    got = mem.mem_read(0, PAGE_SIZE)
    assert got[100:104] == b"BBBB"
    assert got[:100] == b"\xaa" * 100


def test_unbacked_read_returns_none():
    mem = make_mem()
    assert mem.mem_read(0x5000_0000, 64) is None


def test_elided_write_counts_bytes_but_stores_nothing():
    mem = make_mem()
    mem.mem_write(0x1000, 4096, None)
    assert mem.bytes_written == 4096
    assert mem.mem_read(0x1000, 4096) is None


@given(st.binary(min_size=1, max_size=3 * PAGE_SIZE), st.integers(0, PAGE_SIZE))
def test_scatter_gather_roundtrip_property(data, offset):
    mem = make_mem()
    mem.mem_write(offset, len(data), data)
    assert mem.mem_read(offset, len(data)) == data


def test_object_store_and_mem_read_priority():
    mem = make_mem()
    mem.store_obj(0x2000, {"k": 1})
    assert mem.load_obj(0x2000) == {"k": 1}
    # mem_read at an object address returns the object (queue entries)
    assert mem.mem_read(0x2000, 64) == {"k": 1}
    assert mem.pop_obj(0x2000) == {"k": 1}
    assert mem.load_obj(0x2000) is None


def test_buffer_pool_recycles():
    mem = make_mem()
    pool = BufferPool(mem)
    a = pool.get(4096)
    pool.put(a, 4096)
    assert pool.get(4096) == a
    b = pool.get(8192)
    assert b != a


def test_put_rejects_foreign_address():
    """Regression: the old ``put`` pooled any address unchecked, handing
    garbage to the next ``get`` as if it were a valid DMA buffer."""
    mem = HostMemory(Simulator(), 1 << 20, base=0x1000_0000)
    pool = BufferPool(mem)
    with pytest.raises(SimulationError, match="foreign address"):
        pool.put(0xdead_beef_0000, 4096)


def test_put_rejects_double_free_while_pooled():
    """Regression: the old ``put`` appended the same address twice, so
    two later ``get`` calls shared one buffer."""
    mem = make_mem()
    pool = BufferPool(mem)
    a = pool.get(4096)
    pool.put(a, 4096)
    with pytest.raises(SimulationError, match="double free"):
        pool.put(a, 4096)


def test_refree_after_realloc_is_a_legal_recycle():
    # free -> get -> free again is the normal recycle cycle, not a
    # double free; the inline guard must only fire while still pooled
    mem = make_mem()
    pool = BufferPool(mem)
    a = pool.get(4096)
    pool.put(a, 4096)
    assert pool.get(4096) == a
    pool.put(a, 4096)


def test_mixed_size_requests_share_page_buckets():
    """Regression: exact-size buckets allocated fresh memory for every
    distinct request size; page-multiple rounding recycles across them."""
    mem = make_mem()
    pool = BufferPool(mem)
    # a long serial run of distinct PRP-list sizes (3..52 pages worth)
    for i in range(200):
        size = 8 * (i % 50 + 3)
        addr = pool.get(size)
        pool.put(addr, size)
    assert mem.allocated == PAGE_SIZE  # one recycled buffer served all


def test_allocated_stabilizes_on_mixed_fio_grid_soak():
    """Soak: a fio-grid-style stream of mixed transfer sizes must not
    grow ``chip_memory.allocated`` once the working set is warm (the
    bump allocator never reclaims, so unbounded growth means a long
    mixed run eventually dies on spurious out-of-memory)."""
    from repro.baselines import build_bmstore
    from repro.sim.units import MIB

    rig = build_bmstore(num_ssds=2, seed=11)
    fn = rig.provision("soak", 64 * MIB)
    driver = rig.baremetal_driver(fn)
    chip = rig.engine.chip_memory
    marks = []

    def proc():
        # rounds cycle through ever-new block counts (3..62 pages), the
        # exact pattern that fragmented exact-size buckets forever
        for round_no in range(6):
            for step in range(10):
                nblocks = 3 + round_no * 10 + step
                yield driver.read((step * 131) % 1024, nblocks)
            marks.append(chip.allocated)

    rig.sim.run(rig.sim.process(proc(), name="soak"))
    assert len(marks) == 6
    # warm after the first round: later rounds introduce 50 new sizes
    # but must not allocate another byte
    assert marks[1:] == [marks[0]] * 5


# --------------------------------------------------------------------- CPU
def test_cpu_dedication_accounting():
    cpu = HostCPU(Simulator(), num_cores=8)
    taken = cpu.dedicate(2, owner="vhost")
    assert len(taken) == 2
    assert cpu.dedicated_count == 2
    assert cpu.dedicated_by("vhost") == 2
    assert len(cpu.tenant_cores) == 6
    cpu.release_dedicated("vhost")
    assert cpu.dedicated_count == 0


def test_cpu_over_dedication_rejected():
    cpu = HostCPU(Simulator(), num_cores=2)
    cpu.dedicate(2, "a")
    with pytest.raises(SimulationError):
        cpu.dedicate(1, "b")


def test_core_run_occupies_and_tracks_utilization():
    sim = Simulator()
    cpu = HostCPU(sim, num_cores=1)
    core = cpu.cores[0]

    def proc():
        yield sim.process(core.run(500))

    sim.process(proc())
    sim.run(until=1000)
    assert core.utilization() == pytest.approx(0.5)


def test_zero_core_cpu_rejected():
    with pytest.raises(SimulationError):
        HostCPU(Simulator(), num_cores=0)
