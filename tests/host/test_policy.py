"""The SubmissionPolicy value object: parsing, validation, presets, and
the deprecated per-rig kwarg shims."""

import pytest

from repro.host.policy import (
    DEFAULT_POLICY,
    DMA_MODELS,
    DOORBELL_MODES,
    POLICY_PRESETS,
    SubmissionPolicy,
    _merge_deprecated_kwargs,
    parse_policy,
    resolve_policy,
)
from repro.sim import SimulationError


# ------------------------------------------------------------- validation
def test_default_policy_is_the_classic_path():
    assert DEFAULT_POLICY.doorbell == "immediate"
    assert DEFAULT_POLICY.coalesce_threshold == 1
    assert DEFAULT_POLICY.coalesce_timeout_ns == 0
    assert DEFAULT_POLICY.dma == "register"
    assert not DEFAULT_POLICY.coalescing
    assert DEFAULT_POLICY.is_default


@pytest.mark.parametrize("bad", [
    dict(doorbell="polled"),
    dict(dma="rdma"),
    dict(batch_depth=0),
    dict(batch_timeout_ns=-1),
    dict(coalesce_timeout_ns=-1),
    dict(coalesce_threshold=0),
    # a threshold with no timer would strand the tail of a shallow queue
    dict(coalesce_threshold=4, coalesce_timeout_ns=0),
])
def test_invalid_policies_rejected(bad):
    with pytest.raises(SimulationError):
        SubmissionPolicy(**bad)


def test_policy_is_frozen_and_hashable():
    p = SubmissionPolicy(doorbell="shadow")
    with pytest.raises(Exception):
        p.doorbell = "batched"
    assert p in {p}


# ---------------------------------------------------------------- parsing
def test_parse_preset_names():
    for name, policy in POLICY_PRESETS.items():
        assert parse_policy(name) == policy


def test_parse_bare_doorbell_modes():
    for mode in DOORBELL_MODES:
        # "batched" is both a preset and a mode; they must agree
        assert parse_policy(mode).doorbell == mode


def test_parse_mode_with_batch_depth():
    p = parse_policy("batched:16")
    assert p.doorbell == "batched"
    assert p.batch_depth == 16


def test_parse_key_value_list():
    p = parse_policy(
        "doorbell=shadow,coalesce=4,coalesce_timeout_ns=8000,dma=descriptor"
    )
    assert p == SubmissionPolicy(doorbell="shadow", coalesce_threshold=4,
                                 coalesce_timeout_ns=8_000, dma="descriptor")


def test_parse_empty_string_is_default():
    assert parse_policy("") is DEFAULT_POLICY


@pytest.mark.parametrize("bad", [
    "warp-speed",
    "batched:lots",
    "polled:4",
    "doorbell=",
    "speed=11",
    "batch=x",
    "coalesce=4",  # valid syntax, invalid policy (no timer)
])
def test_parse_rejects_bad_spellings(bad):
    with pytest.raises(ValueError):
        parse_policy(bad)


def test_spell_round_trips():
    for policy in POLICY_PRESETS.values():
        assert parse_policy(policy.spell()) == policy
    extra = SubmissionPolicy(doorbell="batched", batch_depth=32,
                             batch_timeout_ns=5_000, coalesce_threshold=8,
                             coalesce_timeout_ns=2_000, dma="descriptor")
    assert parse_policy(extra.spell()) == extra


def test_resolve_policy_types():
    p = SubmissionPolicy(doorbell="shadow")
    assert resolve_policy(None) is None
    assert resolve_policy(p) is p
    assert resolve_policy("shadow") == p
    with pytest.raises(TypeError):
        resolve_policy(42)


# ------------------------------------------------- deprecated kwarg shims
def test_deprecated_kwargs_map_onto_policy_fields():
    assert _merge_deprecated_kwargs(None) == DEFAULT_POLICY
    assert (_merge_deprecated_kwargs(None, doorbell_mode="shadow")
            == SubmissionPolicy(doorbell="shadow"))
    assert (_merge_deprecated_kwargs(None, batch_doorbells=16)
            == SubmissionPolicy(doorbell="batched", batch_depth=16))
    # a bare coalesce count gets the controller's default timer
    assert (_merge_deprecated_kwargs(None, coalesce=4)
            == SubmissionPolicy(coalesce_threshold=4,
                                coalesce_timeout_ns=8_000))
    assert (_merge_deprecated_kwargs(None, dma_model="descriptor")
            == SubmissionPolicy(dma="descriptor"))


def test_deprecated_kwargs_layer_over_an_explicit_policy():
    base = SubmissionPolicy(doorbell="shadow", dma="descriptor")
    merged = _merge_deprecated_kwargs(base, batch_doorbells=4)
    assert merged.doorbell == "batched"
    assert merged.batch_depth == 4
    assert merged.dma == "descriptor"  # untouched fields survive


def test_run_case_warns_on_deprecated_kwargs():
    from repro.experiments.common import run_case
    from repro.sim.units import MS
    from repro.workloads.fio import FioSpec

    spec = FioSpec("policy-probe", "randread", 4096, iodepth=4, numjobs=1,
                   runtime_ns=2 * MS, ramp_ns=MS // 2)
    with pytest.warns(DeprecationWarning, match="doorbell_mode"):
        old = run_case("native", spec, seed=3, doorbell_mode="shadow")
    new = run_case("native", spec, seed=3,
                   policy=SubmissionPolicy(doorbell="shadow"))
    assert old.fio.ios == new.fio.ios
    assert old.avg_latency_us == new.avg_latency_us
