"""Doorbell-mode and CQE-coalescing edge cases on the native rig:
batched flush on ring-full, shadow read-after-wrap, the coalescing
timer, and checker coverage of the new ring paths."""

from repro.baselines import build_native
from repro.checks import CheckContext
from repro.host.driver import NVMeDriver
from repro.host.environment import Host
from repro.host.policy import SubmissionPolicy
from repro.nvme.ssd import NVMeSSD
from repro.sim import Simulator, StreamFactory


def _drain(rig, driver, count, lbas=None):
    done = []

    def worker(i):
        info = yield driver.read((lbas[i] if lbas else i) % 64, 1)
        assert info.ok
        done.append(i)

    procs = [rig.sim.process(worker(i)) for i in range(count)]
    rig.sim.run(rig.sim.all_of(procs))
    return done


# ------------------------------------------------------------------ shadow
def test_shadow_mode_elides_doorbells_while_the_mmio_is_in_flight():
    # a zero-cost submission lock makes all pushes land back to back:
    # the first pays the MMIO, everyone racing behind it publishes the
    # tail for free and the device drains them all on one wakeup
    sim = Simulator()
    streams = StreamFactory(root_seed=7)
    host = Host(sim, streams)
    ssd = NVMeSSD(sim, host.fabric, streams, name="nvme0")
    driver = NVMeDriver(host, ssd, num_io_queues=1, lock_ns=0,
                        contended_lock_ns=0,
                        policy=SubmissionPolicy(doorbell="shadow"))
    done = []

    def worker(i):
        info = yield driver.read(i, 1)
        assert info.ok
        done.append(i)

    procs = [sim.process(worker(i)) for i in range(64)]
    sim.run(sim.all_of(procs))
    assert len(done) == 64
    assert driver.stats.completed == 64
    assert driver.stats.doorbell_elided > 0
    assert (driver.stats.doorbell_mmio + driver.stats.doorbell_elided) == 64


def test_shadow_mode_completes_everything_at_driver_timings():
    rig = build_native(1, num_io_queues=1,
                       policy=SubmissionPolicy(doorbell="shadow"))
    driver = rig.driver()
    assert len(_drain(rig, driver, 64)) == 64
    assert driver.stats.completed == 64
    # every submission either paid an MMIO or was elided — none lost
    assert (driver.stats.doorbell_mmio + driver.stats.doorbell_elided) == 64


def test_shadow_mode_survives_ring_wrap():
    # 300 commands through an 8-deep ring: the shadow tail wraps the
    # ring index dozens of times and the device must never miss a push
    rig = build_native(1, queue_depth=8, num_io_queues=1,
                       policy=SubmissionPolicy(doorbell="shadow"))
    driver = rig.driver()

    def flow():
        for i in range(300):
            info = yield driver.read(i % 64, 1)
            assert info.ok

    rig.sim.run(rig.sim.process(flow()))
    assert driver.stats.completed == 300
    assert not driver._pending


# ----------------------------------------------------------------- batched
def test_batched_mode_flushes_on_ring_full():
    # batch_depth larger than the ring and no deadline timer: only the
    # ring-full flush can make progress.  21 commands through 7 usable
    # slots = 3 full-ring batches, so completion proves the flush fires
    # (a count that is not a multiple of 7 would strand the tail, which
    # is exactly what batch_timeout_ns exists to prevent)
    rig = build_native(
        1, queue_depth=8, num_io_queues=1,
        policy=SubmissionPolicy(doorbell="batched", batch_depth=64,
                                batch_timeout_ns=0),
    )
    driver = rig.driver()
    assert len(_drain(rig, driver, 21)) == 21
    assert driver.stats.doorbell_mmio < 21
    assert driver.stats.doorbell_elided > 0
    assert not any(driver._unrung.values())  # nothing left stranded


def test_batched_mode_deadline_flushes_partial_batch():
    # a single submission never reaches batch_depth; without the
    # deterministic deadline it would wait forever
    rig = build_native(
        1, num_io_queues=1,
        policy=SubmissionPolicy(doorbell="batched", batch_depth=64,
                                batch_timeout_ns=20_000),
    )
    driver = rig.driver()

    def flow():
        info = yield driver.read(0, 1)
        assert info.ok
        return info.latency_ns

    latency = rig.sim.run(rig.sim.process(flow()))
    assert driver.stats.completed == 1
    # the command sat in the unrung batch until the deadline fired
    assert latency >= 20_000


def test_batched_mode_runs_to_completion_under_load():
    rig = build_native(
        1, num_io_queues=1,
        policy=SubmissionPolicy(doorbell="batched", batch_depth=8,
                                batch_timeout_ns=20_000),
    )
    driver = rig.driver()
    assert len(_drain(rig, driver, 100)) == 100
    assert driver.stats.doorbell_mmio < 100


# -------------------------------------------------------------- coalescing
def test_coalescing_timer_fires_before_threshold():
    # threshold far above the offered load: every IRQ comes from the
    # aggregation timer, and the last CQEs are never stranded
    rig = build_native(
        1, num_io_queues=1,
        policy=SubmissionPolicy(coalesce_threshold=32,
                                coalesce_timeout_ns=8_000),
    )
    driver = rig.driver()

    def flow():
        for i in range(3):
            info = yield driver.read(i, 1)
            assert info.ok

    rig.sim.run(rig.sim.process(flow()))
    assert driver.stats.completed == 3
    coalescers = [qp.cq._coalescer for qp in driver._qps.values()
                  if qp.cq._coalescer is not None]
    assert coalescers, "coalescing policy never engaged the CQ coalescer"
    assert sum(c.timer_fires for c in coalescers) >= 3
    assert sum(c.fired for c in coalescers) == driver.stats.interrupts


def test_coalescing_threshold_batches_interrupts():
    rig = build_native(
        1, num_io_queues=1,
        policy=SubmissionPolicy(coalesce_threshold=4,
                                coalesce_timeout_ns=50_000),
    )
    driver = rig.driver()
    assert len(_drain(rig, driver, 64)) == 64
    # 64 completions arrive in far fewer IRQs than completions
    assert driver.stats.interrupts < 64


# ------------------------------------------------------- checker coverage
def test_ring_checker_shadows_the_batched_and_coalesced_paths():
    ctx = CheckContext(checkers=["ring"])
    rig = build_native(
        1, num_io_queues=1, checks=ctx,
        policy=SubmissionPolicy(doorbell="batched", batch_depth=4,
                                batch_timeout_ns=20_000,
                                coalesce_threshold=4,
                                coalesce_timeout_ns=8_000),
    )
    driver = rig.driver()
    assert len(_drain(rig, driver, 32)) == 32
    assert ctx.summary()["ring"] > 0


def test_ring_checker_shadows_the_shadow_doorbell_path():
    ctx = CheckContext(checkers=["ring"])
    rig = build_native(1, num_io_queues=1, checks=ctx,
                       policy=SubmissionPolicy(doorbell="shadow"))
    driver = rig.driver()
    assert len(_drain(rig, driver, 32)) == 32
    assert ctx.summary()["ring"] > 0
