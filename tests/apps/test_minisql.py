"""MiniSQL tests: buffer pool, redo log, tables, transactions, WAL rule."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.blockfs import Extent
from repro.apps.minisql import (
    MiniSQL,
    MiniSQLConfig,
    PageStore,
    RedoLog,
    SortedKeyIndex,
    TableSchema,
)
from repro.apps.minisql.buffer_pool import BufferPool
from repro.baselines import build_native
from repro.sim import SimulationError

SCHEMA = TableSchema("t", "id", ("id", "v"), rows_per_page=8)
FAST_CFG = MiniSQLConfig(buffer_pool_pages=8, stmt_cpu_ns=0, row_cpu_ns=0)


def make_db(config=FAST_CFG):
    rig = build_native(1)
    db = MiniSQL(rig.sim, rig.driver(), config)
    db.create_table(SCHEMA)
    return rig, db


def drive(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


# --------------------------------------------------------------- sorted index
def test_sorted_index_operations():
    idx = SortedKeyIndex()
    for k in (5, 1, 9, 3):
        idx.put(k, k * 10)
    assert idx.get(3) == 30
    assert [k for k, _ in idx.items_from(3)] == [3, 5, 9]
    assert idx.pop(5) == 50
    assert idx.get(5) is None
    assert len(idx) == 3


# ---------------------------------------------------------------- buffer pool
def test_buffer_pool_hit_miss_eviction():
    rig = build_native(1)
    store = PageStore(base_lba=0, max_pages=100)
    pool = BufferPool(rig.sim, rig.driver(), store, capacity_pages=2)
    for _ in range(4):
        store.allocate_page()

    def flow():
        p0 = yield from pool.fetch(0)
        pool.unpin(p0)
        p0 = yield from pool.fetch(0)  # hit
        pool.unpin(p0)
        p1 = yield from pool.fetch(1)
        pool.unpin(p1)
        p2 = yield from pool.fetch(2)  # evicts LRU (page 0)
        pool.unpin(p2)

    drive(rig, flow())
    assert pool.stats.hits == 1
    assert pool.stats.misses == 3
    assert pool.stats.evictions == 1


def test_buffer_pool_dirty_eviction_writes_back():
    rig = build_native(1)
    store = PageStore(base_lba=0, max_pages=100)
    pool = BufferPool(rig.sim, rig.driver(), store, capacity_pages=2)
    for _ in range(3):
        store.allocate_page()

    def flow():
        page = yield from pool.fetch(0)
        page.rows[0] = {"id": 1}
        page.dirty = True
        pool.unpin(page)
        yield from pool.fetch(1)
        p2 = yield from pool.fetch(2)  # evicts dirty page 0
        # re-read page 0: the image must have survived
        p0 = yield from pool.fetch(0)
        return p0.rows

    # note: page1/page2 stay pinned; capacity 2 means fetch(0) must evict
    with pytest.raises(SimulationError, match="pinned"):
        drive(rig, flow())


def test_buffer_pool_writeback_then_reload_roundtrip():
    rig = build_native(1)
    store = PageStore(base_lba=0, max_pages=10)
    pool = BufferPool(rig.sim, rig.driver(), store, capacity_pages=2)
    store.allocate_page()
    store.allocate_page()
    store.allocate_page()

    def flow():
        page = yield from pool.fetch(0)
        page.rows[0] = {"id": 7, "v": "x"}
        page.dirty = True
        pool.unpin(page)
        for pid in (1, 2):  # force eviction of page 0
            p = yield from pool.fetch(pid)
            pool.unpin(p)
        p0 = yield from pool.fetch(0)
        try:
            return dict(p0.rows)
        finally:
            pool.unpin(p0)

    rows = drive(rig, flow())
    assert rows == {0: {"id": 7, "v": "x"}}
    assert pool.stats.dirty_writebacks == 1


def test_page_store_capacity():
    store = PageStore(base_lba=0, max_pages=1)
    store.allocate_page()
    with pytest.raises(SimulationError, match="full"):
        store.allocate_page()


# ------------------------------------------------------------------ redo log
def test_redo_group_commit_and_lsn_order():
    rig = build_native(1)
    redo = RedoLog(rig.sim, rig.driver(), Extent(0, 1024))
    done_at = []

    def committer(i):
        rec = redo.append(i, page_id=i, op="update", payload_bytes=100)
        yield redo.sync()
        assert redo.is_durable(rec.lsn)
        done_at.append(rig.sim.now)

    procs = [rig.sim.process(committer(i)) for i in range(10)]
    rig.sim.run(rig.sim.all_of(procs))
    assert redo.group_commits <= 2
    assert redo.durable_lsn == redo.last_lsn


def test_redo_ring_wrap():
    rig = build_native(1)
    redo = RedoLog(rig.sim, rig.driver(), Extent(0, 2))

    def flow():
        for i in range(6):
            redo.append(1, i, "update", 6000)
            yield redo.sync()

    drive(rig, flow())
    assert redo.durable_lsn == 6


# --------------------------------------------------------------- transactions
def test_insert_select_update_delete_cycle():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        for i in range(20):
            yield from txn.insert("t", {"id": i, "v": i})
        yield from txn.commit()
        txn = db.begin()
        row = yield from txn.select("t", 11)
        assert row == {"id": 11, "v": 11}
        assert (yield from txn.update("t", 11, {"v": -1}))
        assert (yield from txn.delete("t", 12))
        row11 = yield from txn.select("t", 11)
        row12 = yield from txn.select("t", 12)
        yield from txn.commit()
        return row11, row12

    row11, row12 = drive(rig, flow())
    assert row11["v"] == -1
    assert row12 is None


def test_duplicate_key_rejected():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": 0})
        try:
            yield from txn.insert("t", {"id": 1, "v": 1})
            return "inserted"
        except SimulationError:
            return "rejected"

    assert drive(rig, flow()) == "rejected"


def test_missing_column_rejected():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        try:
            yield from txn.insert("t", {"id": 1})
            return "inserted"
        except SimulationError:
            return "rejected"

    assert drive(rig, flow()) == "rejected"


def test_select_range_is_key_ordered():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        for i in (5, 3, 9, 1, 7):
            yield from txn.insert("t", {"id": i, "v": 0})
        yield from txn.commit()
        txn = db.begin()
        rows = yield from txn.select_range("t", 3, limit=3)
        yield from txn.commit()
        return [r["id"] for r in rows]

    assert drive(rig, flow()) == [3, 5, 7]


def test_commit_makes_redo_durable():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": 1})
        assert not db.redo.is_durable(txn.last_lsn)
        yield from txn.commit()
        assert db.redo.is_durable(txn.last_lsn)

    drive(rig, flow())


def test_readonly_commit_skips_log_write():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": 1})
        yield from txn.commit()
        before = db.redo.synced_blocks
        ro = db.begin()
        yield from ro.select("t", 1)
        yield from ro.commit()
        return before

    before = drive(rig, flow())
    assert db.redo.synced_blocks == before


def test_wal_rule_redo_precedes_page_writeback():
    """A dirty page must never reach the device ahead of its redo."""
    rig, db = make_db(MiniSQLConfig(buffer_pool_pages=2, stmt_cpu_ns=0, row_cpu_ns=0))

    def flow():
        txn = db.begin()
        # dirty page 0, do NOT commit, then force eviction via reads
        yield from txn.insert("t", {"id": 1, "v": 1})
        lsn = txn.last_lsn
        txn2 = db.begin()
        for i in range(100, 130):
            yield from txn2.insert("t", {"id": i, "v": i})
        return lsn

    lsn = drive(rig, flow())
    # whatever writebacks happened, redo covered them first
    for page_id, flushed_lsn in db.store.flushed_lsn.items():
        assert db.redo.durable_lsn >= flushed_lsn


def test_checkpointer_cleans_dirty_pages():
    rig, db = make_db(MiniSQLConfig(
        buffer_pool_pages=32, checkpoint_interval_ns=1_000_000,
        checkpoint_dirty_fraction=0.01, stmt_cpu_ns=0, row_cpu_ns=0,
    ))
    db.start_checkpointer()

    def flow():
        txn = db.begin()
        for i in range(64):
            yield from txn.insert("t", {"id": i, "v": i})
        yield from txn.commit()

    drive(rig, flow())
    assert db.pool.dirty_count > 0
    rig.sim.run(until=rig.sim.now + 50_000_000)
    assert db.pool.dirty_count == 0


def test_write_after_commit_rejected():
    rig, db = make_db()

    def flow():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": 1})
        yield from txn.commit()
        try:
            yield from txn.insert("t", {"id": 2, "v": 2})
            return "ok"
        except SimulationError:
            return "rejected"

    assert drive(rig, flow()) == "rejected"


@given(st.lists(st.integers(0, 50), min_size=1, max_size=60, unique=True))
@settings(max_examples=15, deadline=None)
def test_inserted_rows_all_retrievable_property(ids):
    rig, db = make_db(MiniSQLConfig(buffer_pool_pages=4, stmt_cpu_ns=0, row_cpu_ns=0))

    def flow():
        txn = db.begin()
        for i in ids:
            yield from txn.insert("t", {"id": i, "v": i * 3})
        yield from txn.commit()
        txn = db.begin()
        for i in ids:
            row = yield from txn.select("t", i)
            assert row == {"id": i, "v": i * 3}
        yield from txn.commit()

    drive(rig, flow())
