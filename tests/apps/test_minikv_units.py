"""Unit tests for MiniKV components: encoding, bloom, memtable, WAL,
SSTables, extent allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.blockfs import Extent, ExtentAllocator
from repro.apps.minikv import (
    BloomFilter,
    MemTable,
    SSTableWriter,
    TOMBSTONE,
    WriteAheadLog,
    decode_records,
    encode_record,
    record_size,
)
from repro.baselines import build_native
from repro.sim import SimulationError


# ------------------------------------------------------------------ encoding
def test_encode_decode_single_record():
    blob = encode_record(b"key", b"value", 42)
    assert list(decode_records(blob)) == [(b"key", b"value", 42)]
    assert len(blob) == record_size(b"key", b"value")


def test_decode_stops_at_zero_padding():
    blob = encode_record(b"k1", b"v1", 1) + bytes(64)
    assert list(decode_records(blob)) == [(b"k1", b"v1", 1)]


def test_decode_ignores_torn_tail():
    blob = encode_record(b"k1", b"v1", 1) + encode_record(b"k2", b"v2", 2)[:-3]
    assert list(decode_records(blob)) == [(b"k1", b"v1", 1)]


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        encode_record(b"", b"v", 1)


@given(st.lists(
    st.tuples(st.binary(min_size=1, max_size=40), st.binary(max_size=100),
              st.integers(0, 2**60)),
    min_size=0, max_size=30,
))
@settings(max_examples=30, deadline=None)
def test_record_stream_roundtrip(records):
    blob = b"".join(encode_record(k, v, s) for k, v, s in records)
    assert list(decode_records(blob)) == records


# -------------------------------------------------------------------- bloom
def test_bloom_no_false_negatives():
    bloom = BloomFilter(expected_items=500)
    keys = [f"key{i}".encode() for i in range(500)]
    for key in keys:
        bloom.add(key)
    assert all(bloom.might_contain(k) for k in keys)


def test_bloom_false_positive_rate_is_low():
    bloom = BloomFilter(expected_items=1000, bits_per_key=10)
    for i in range(1000):
        bloom.add(f"key{i}".encode())
    fp = sum(bloom.might_contain(f"other{i}".encode()) for i in range(2000))
    assert fp / 2000 < 0.05  # ~1% expected at 10 bits/key


# ----------------------------------------------------------------- memtable
def test_memtable_put_get_overwrite_sizes():
    mt = MemTable(flush_threshold_bytes=10_000)
    mt.put(b"a", b"1" * 100, 1)
    size1 = mt.bytes_used
    mt.put(b"a", b"2" * 100, 2)
    assert mt.bytes_used == size1  # overwrite does not grow
    assert mt.get(b"a") == (b"2" * 100, 2)
    assert len(mt) == 1


def test_memtable_delete_is_tombstone():
    mt = MemTable()
    mt.put(b"a", b"x", 1)
    mt.delete(b"a", 2)
    assert mt.get(b"a") == (TOMBSTONE, 2)


def test_memtable_sorted_iteration_and_scan():
    mt = MemTable()
    for key in (b"c", b"a", b"b", b"d"):
        mt.put(key, key.upper(), 1)
    assert [k for k, _, _ in mt.sorted_items()] == [b"a", b"b", b"c", b"d"]
    assert [k for k, _, _ in mt.scan(b"b", b"d")] == [b"b", b"c"]


def test_memtable_flush_threshold():
    mt = MemTable(flush_threshold_bytes=300)
    assert not mt.should_flush
    mt.put(b"k", b"v" * 300, 1)
    assert mt.should_flush


# ------------------------------------------------------------------ blockfs
def test_extent_allocator_bump_and_recycle():
    rig = build_native(1)
    alloc = ExtentAllocator(rig.driver(), base_lba=100)
    a = alloc.alloc(10)
    b = alloc.alloc(10)
    assert a.lba == 100 and b.lba == 112 or b.lba == 110  # alignment-free bump
    alloc.free(a)
    c = alloc.alloc(10)
    assert c.lba == a.lba  # recycled
    with pytest.raises(SimulationError):
        alloc.alloc(0)


def test_extent_allocator_exhaustion():
    rig = build_native(1)
    alloc = ExtentAllocator(rig.driver(), base_lba=0, limit_blocks=16)
    alloc.alloc(16)
    with pytest.raises(SimulationError, match="full"):
        alloc.alloc(1)


# ---------------------------------------------------------------------- WAL
def test_wal_group_commit_shares_one_write():
    rig = build_native(1)
    sim = rig.sim
    wal = WriteAheadLog(sim, rig.driver(), Extent(0, 1024))
    results = []

    def committer(i):
        wal.append(b"k%d" % i, b"v", i)
        yield wal.sync()
        results.append(sim.now)

    procs = [sim.process(committer(i)) for i in range(8)]
    sim.run(sim.all_of(procs))
    assert len(results) == 8
    # all 8 joined at most 2 group commits
    assert wal.group_commits <= 2
    assert wal.appended_records == 8


def test_wal_wraps_ring():
    rig = build_native(1)
    sim = rig.sim
    wal = WriteAheadLog(sim, rig.driver(), Extent(0, 4))

    def flow():
        for i in range(10):
            wal.append(b"key%d" % i, b"x" * 2000, i)
            yield wal.sync()

    sim.run(sim.process(flow()))
    assert wal.synced_blocks >= 10  # wrapped several times without error


def test_wal_carry_data_writes_real_bytes():
    rig = build_native(1)
    sim = rig.sim
    wal = WriteAheadLog(sim, rig.driver(), Extent(0, 64), carry_data=True)

    def flow():
        wal.append(b"kk", b"vv", 7)
        yield wal.sync()

    sim.run(sim.process(flow()))
    stored = rig.ssds[0].block_data(0)
    assert stored is not None
    assert list(decode_records(stored)) == [(b"kk", b"vv", 7)]


# ------------------------------------------------------------------ sstable
def make_table(rig, records, carry_data=False):
    alloc = ExtentAllocator(rig.driver(), base_lba=1024)
    writer = SSTableWriter(rig.sim, rig.driver(), alloc, table_id=1, level=0,
                           expected_records=len(records), carry_data=carry_data)
    for key, value, seq in records:
        writer.add(key, value, seq)

    def fin():
        table = yield from writer.finish()
        return table

    return rig.sim.run(rig.sim.process(fin()))


def test_sstable_metadata_and_block_index():
    rig = build_native(1)
    records = [(b"key%04d" % i, b"v" * 200, i) for i in range(100)]
    table = make_table(rig, records)
    assert table.min_key == b"key0000"
    assert table.max_key == b"key0099"
    assert table.num_records == 100
    assert table.num_blocks >= 5  # ~220B/record over 4K blocks
    # block_for points at a block whose first key <= key
    idx = table.block_for(b"key0050")
    assert table.first_keys[idx] <= b"key0050"
    assert table.block_for(b"zzz") is None


def test_sstable_rejects_out_of_order_adds():
    rig = build_native(1)
    alloc = ExtentAllocator(rig.driver(), base_lba=1024)
    writer = SSTableWriter(rig.sim, rig.driver(), alloc, 1, 0, 10)
    writer.add(b"b", b"x", 1)
    with pytest.raises(SimulationError, match="key order"):
        writer.add(b"a", b"x", 2)


def test_sstable_overlap_checks():
    rig = build_native(1)
    table = make_table(rig, [(b"m%02d" % i, b"v", i) for i in range(10)])
    assert table.overlaps(b"m00", b"m99")
    assert table.overlaps(b"a", b"m00")
    assert not table.overlaps(b"n", b"z")
