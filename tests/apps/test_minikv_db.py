"""MiniKV database-level tests: flush, compaction, consistency."""

from hypothesis import given, settings, strategies as st

from repro.apps.minikv import MiniKV, MiniKVConfig
from repro.baselines import build_native


def make_db(carry_data=True, memtable_bytes=8 * 1024, **kw):
    rig = build_native(1)
    db = MiniKV(rig.sim, rig.driver(),
                MiniKVConfig(carry_data=carry_data, memtable_bytes=memtable_bytes, **kw))
    return rig, db


def drive(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


def settle(rig, ns=100_000_000):
    rig.sim.run(until=rig.sim.now + ns)


def test_put_get_roundtrip_through_flushes():
    rig, db = make_db()

    def flow():
        for i in range(800):
            yield from db.put(b"k%05d" % i, b"val-%d" % i)
        out = []
        for i in (0, 1, 399, 799):
            v = yield from db.get(b"k%05d" % i)
            out.append(v)
        return out

    values = drive(rig, flow())
    assert values == [b"val-0", b"val-1", b"val-399", b"val-799"]
    assert db.stats.flushes >= 1  # data definitely crossed to disk


def test_overwrites_newest_wins_after_compaction():
    # small memtable: the 300-key working set spans several flushes
    rig, db = make_db(memtable_bytes=4 * 1024)

    def flow():
        for round_ in range(6):
            for i in range(300):
                yield from db.put(b"k%04d" % i, b"r%d-%d" % (round_, i))

    drive(rig, flow())
    settle(rig)
    assert db.stats.compactions >= 1

    def check():
        v = yield from db.get(b"k0042")
        return v

    assert drive(rig, check()) == b"r5-42"


def test_delete_survives_flush_and_compaction():
    rig, db = make_db()

    def flow():
        for i in range(600):
            yield from db.put(b"k%04d" % i, b"x" * 40)
        yield from db.delete(b"k0100")
        for i in range(600, 1200):
            yield from db.put(b"k%04d" % i, b"x" * 40)

    drive(rig, flow())
    settle(rig)

    def check():
        gone = yield from db.get(b"k0100")
        there = yield from db.get(b"k0101")
        return gone, there

    gone, there = drive(rig, check())
    assert gone is None
    assert there == b"x" * 40


def test_compaction_moves_tables_to_l1_and_frees_space():
    rig, db = make_db()

    def flow():
        for i in range(3000):
            yield from db.put(b"k%05d" % (i % 900), b"y" * 64)

    drive(rig, flow())
    settle(rig)
    assert db.stats.compactions >= 1
    assert len(db.levels[0]) < db.config.l0_compaction_trigger
    assert len(db.levels[1]) >= 1


def test_scan_merges_levels_and_memtable():
    rig, db = make_db()

    def flow():
        for i in range(500):
            yield from db.put(b"k%04d" % i, b"old")
        # overwrite a few so memtable + SSTs disagree
        for i in range(10, 20):
            yield from db.put(b"k%04d" % i, b"new")
        rows = yield from db.scan(b"k0005", b"k0025", limit=100)
        return rows

    rows = drive(rig, flow())
    keys = [k for k, _ in rows]
    assert keys == [b"k%04d" % i for i in range(5, 25)]
    by_key = dict(rows)
    assert by_key[b"k0012"] == b"new"
    assert by_key[b"k0005"] == b"old"


def test_bloom_filters_skip_most_absent_lookups():
    rig, db = make_db()

    def flow():
        for i in range(800):
            yield from db.put(b"k%05d" % i, b"z" * 32)
        for i in range(200):
            yield from db.get(b"absent%04d" % i)

    drive(rig, flow())
    assert db.stats.bloom_skips > 0
    # absent keys should rarely touch disk
    assert db.stats.block_reads < 40


def test_unsynced_writes_do_not_touch_wal_device():
    rig, db = make_db(carry_data=False)
    db.config = db.config.__class__(sync_writes=False, carry_data=False)

    def flow():
        for i in range(50):
            yield from db.put(b"k%d" % i, b"v")
        v = yield from db.get(b"k7")
        return v

    assert drive(rig, flow()) == b"v"
    assert db.wal.synced_blocks == 0


def test_write_stall_accounted_when_flush_contended():
    rig, db = make_db(carry_data=False, memtable_bytes=8 * 1024)

    def writer(tag):
        for i in range(300):
            yield from db.put(b"%d-k%04d" % (tag, i), b"w" * 64)

    procs = [rig.sim.process(writer(t)) for t in range(4)]
    rig.sim.run(rig.sim.all_of(procs))
    assert db.stats.flushes >= 2


@given(st.lists(
    st.tuples(
        st.integers(0, 80),
        st.binary(min_size=1, max_size=24).filter(lambda v: v != b"\x00__tombstone__\x00"),
    ),
    min_size=1, max_size=150,
))
@settings(max_examples=15, deadline=None)
def test_model_equivalence_property(ops):
    """MiniKV behaves exactly like a dict for any put sequence."""
    rig, db = make_db(memtable_bytes=2 * 1024)
    model = {}

    def flow():
        for key_idx, value in ops:
            key = b"key%03d" % key_idx
            model[key] = value
            yield from db.put(key, value)
        for key in {b"key%03d" % idx for idx, _ in ops}:
            got = yield from db.get(key)
            assert got == model[key], key

    drive(rig, flow())
