"""Crash-recovery tests: ARIES-lite for MiniSQL, WAL replay for MiniKV.

The durability contract under test:
* every COMMITTED transaction survives a crash, flushed pages or not;
* no UNCOMMITTED change survives, even if its dirty page leaked to disk;
* for the LSM store, synced puts survive and the unsynced tail is lost.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.minikv import MiniKV, MiniKVConfig, crash_and_recover_kv
from repro.apps.minisql import (
    MiniSQL,
    MiniSQLConfig,
    RecoveryReport,
    TableSchema,
    crash_and_recover,
)
from repro.apps.minisql.recovery import RecoveryReport
from repro.baselines import build_native

SCHEMA = TableSchema("t", "id", ("id", "v"), rows_per_page=8)
CFG = MiniSQLConfig(buffer_pool_pages=8, stmt_cpu_ns=0, row_cpu_ns=0)


def sql_world():
    rig = build_native(1)
    db = MiniSQL(rig.sim, rig.driver(), CFG)
    db.create_table(SCHEMA)
    return rig, db


def drive(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


# ------------------------------------------------------------------ MiniSQL
def test_committed_rows_survive_crash_without_page_flush():
    rig, db = sql_world()

    def before():
        txn = db.begin()
        for i in range(10):
            yield from txn.insert("t", {"id": i, "v": i * 2})
        yield from txn.commit()
        # no checkpoint: pages are dirty in the pool only

    drive(rig, before())
    assert db.pool.dirty_count > 0

    def after():
        report = RecoveryReport()
        recovered = yield from crash_and_recover(db, report)
        txn = recovered.begin()
        rows = []
        for i in range(10):
            rows.append((yield from txn.select("t", i)))
        yield from txn.commit()
        return recovered, report, rows

    recovered, report, rows = drive(rig, after())
    assert all(rows[i] == {"id": i, "v": i * 2} for i in range(10))
    assert report.redone == 10
    assert report.winners and not report.losers


def test_uncommitted_changes_do_not_survive():
    rig, db = sql_world()

    def before():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": 1})
        yield from txn.commit()
        open_txn = db.begin()
        yield from open_txn.insert("t", {"id": 2, "v": 2})
        yield from open_txn.update("t", 1, {"v": -99})
        # crash with open_txn never committed

    drive(rig, before())

    def after():
        recovered = yield from crash_and_recover(db)
        txn = recovered.begin()
        row1 = yield from txn.select("t", 1)
        row2 = yield from txn.select("t", 2)
        yield from txn.commit()
        return row1, row2

    row1, row2 = drive(rig, after())
    assert row1 == {"id": 1, "v": 1}  # loser update invisible
    assert row2 is None  # loser insert invisible


def test_leaked_loser_pages_are_undone():
    """A dirty page carrying uncommitted data reaches disk via eviction
    (the write barrier makes its redo durable); recovery must undo it."""
    rig, db = sql_world()

    def before():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": "original"})
        yield from txn.commit()
        yield from db.pool.flush_all()  # id=1 on disk, clean
        loser = db.begin()
        yield from loser.update("t", 1, {"v": "leaked"})
        yield from db.pool.flush_all()  # leak the dirty page (+ its redo)
        # crash before loser commits

    drive(rig, before())
    assert db.store._images  # the leak is on disk

    def after():
        report = RecoveryReport()
        recovered = yield from crash_and_recover(db, report)
        txn = recovered.begin()
        row = yield from txn.select("t", 1)
        yield from txn.commit()
        return report, row

    report, row = drive(rig, after())
    assert row == {"id": 1, "v": "original"}
    assert report.undone >= 1


def test_deletes_replay_and_undo_correctly():
    rig, db = sql_world()

    def before():
        txn = db.begin()
        for i in range(6):
            yield from txn.insert("t", {"id": i, "v": i})
        yield from txn.commit()
        txn = db.begin()
        yield from txn.delete("t", 3)  # committed delete
        yield from txn.commit()
        loser = db.begin()
        yield from loser.delete("t", 4)  # uncommitted delete
        yield from db.pool.flush_all()  # leak it

    drive(rig, before())

    def after():
        recovered = yield from crash_and_recover(db)
        txn = recovered.begin()
        gone = yield from txn.select("t", 3)
        restored = yield from txn.select("t", 4)
        yield from txn.commit()
        return gone, restored

    gone, restored = drive(rig, after())
    assert gone is None
    assert restored == {"id": 4, "v": 4}


def test_recovered_engine_is_fully_usable():
    rig, db = sql_world()

    def flow():
        txn = db.begin()
        yield from txn.insert("t", {"id": 1, "v": 1})
        yield from txn.commit()
        recovered = yield from crash_and_recover(db)
        txn = recovered.begin()
        yield from txn.insert("t", {"id": 2, "v": 2})
        yield from txn.commit()
        rows = yield from recovered.begin().select_range("t", 0, limit=10)
        return [r["id"] for r in rows]

    assert drive(rig, flow()) == [1, 2]


@given(st.lists(
    st.tuples(st.booleans(), st.integers(0, 20), st.integers(-5, 5)),
    min_size=1, max_size=40,
))
@settings(max_examples=10, deadline=None)
def test_recovery_equals_committed_state_property(ops):
    """Recovery reproduces exactly the committed-transaction state."""
    rig, db = sql_world()
    model = {}

    def before():
        pending = {}
        txn = db.begin()
        for commit_now, key, val in ops:
            existing = model.get(key, pending.get(key))
            if existing is None and key not in pending:
                yield from txn.insert("t", {"id": key, "v": val})
                pending[key] = {"id": key, "v": val}
            else:
                yield from txn.update("t", key, {"v": val})
                base = dict(model.get(key) or pending.get(key))
                base["v"] = val
                pending[key] = base
            if commit_now:
                yield from txn.commit()
                model.update(pending)
                pending.clear()
                txn = db.begin()
        # final txn left uncommitted -> must vanish

    drive(rig, before())

    def after():
        recovered = yield from crash_and_recover(db)
        txn = recovered.begin()
        out = {}
        for key in set(model) | {k for _, k, _ in ops}:
            row = yield from txn.select("t", key)
            if row is not None:
                out[key] = row
        yield from txn.commit()
        return out

    out = drive(rig, after())
    assert out == model


# ------------------------------------------------------------------- MiniKV
def kv_world(sync=True):
    rig = build_native(1)
    db = MiniKV(rig.sim, rig.driver(),
                MiniKVConfig(memtable_bytes=4 * 1024, sync_writes=sync,
                             carry_data=True))
    return rig, db


def test_kv_synced_puts_survive_crash():
    rig, db = kv_world()

    def before():
        for i in range(300):  # spans several flushes
            yield from db.put(b"k%04d" % i, b"v%d" % i)

    drive(rig, before())
    assert db.stats.flushes >= 1

    def after():
        recovered = yield from crash_and_recover_kv(db)
        out = []
        for i in (0, 150, 299):
            out.append((yield from recovered.get(b"k%04d" % i)))
        return out

    assert drive(rig, after()) == [b"v0", b"v150", b"v299"]


def test_kv_unsynced_tail_is_lost():
    rig, db = kv_world(sync=False)

    def before():
        for i in range(5):
            yield from db.put(b"s%d" % i, b"x")
        yield db.wal.sync()  # first five durable
        for i in range(5, 9):
            yield from db.put(b"s%d" % i, b"x")  # never synced

    drive(rig, before())

    def after():
        recovered = yield from crash_and_recover_kv(db)
        survived = []
        for i in range(9):
            v = yield from recovered.get(b"s%d" % i)
            if v is not None:
                survived.append(i)
        return survived

    assert drive(rig, after()) == [0, 1, 2, 3, 4]


def test_kv_replay_skips_flushed_records():
    rig, db = kv_world()

    def before():
        for i in range(300):
            yield from db.put(b"k%04d" % i, b"v")

    drive(rig, before())
    from repro.apps.minikv import KVRecoveryReport

    def after():
        report = KVRecoveryReport()
        recovered = yield from crash_and_recover_kv(db, report)
        return report, recovered

    report, recovered = drive(rig, after())
    assert report.wal_records_replayed < report.wal_records_scanned
    assert report.tables_restored >= 1
    assert report.wal_blocks_read > 0


def test_kv_deletes_survive_recovery():
    rig, db = kv_world()

    def before():
        for i in range(50):
            yield from db.put(b"d%02d" % i, b"v")
        yield from db.delete(b"d10")

    drive(rig, before())

    def after():
        recovered = yield from crash_and_recover_kv(db)
        gone = yield from recovered.get(b"d10")
        there = yield from recovered.get(b"d11")
        return gone, there

    gone, there = drive(rig, after())
    assert gone is None and there == b"v"


def test_kv_recovered_store_remains_usable():
    rig, db = kv_world()

    def flow():
        yield from db.put(b"a", b"1")
        recovered = yield from crash_and_recover_kv(db)
        yield from recovered.put(b"b", b"2")
        va = yield from recovered.get(b"a")
        vb = yield from recovered.get(b"b")
        return va, vb

    assert drive(rig, flow()) == (b"1", b"2")
