"""MCTP fragmentation/reassembly and NVMe-MI serialization tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mgmt import MCTP_BTU, MCTPEndpoint, MCTPPacket, MIRequest, MIResponse, MIStatus
from repro.sim import SimulationError, Simulator


def loopback_pair(sim):
    """Two endpoints wired directly to each other."""
    endpoints = {}

    def make_transmit(dst_name):
        def transmit(dst_eid, raw):
            ev = sim.event()

            def deliver(_e):
                endpoints[dst_eid].receive_packet(raw)
                ev.succeed()

            sim.timeout(100).callbacks.append(deliver)
            return ev

        return transmit

    a = MCTPEndpoint(sim, 1, make_transmit("b"), per_packet_ns=10, name="a")
    b = MCTPEndpoint(sim, 2, make_transmit("a"), per_packet_ns=10, name="b")
    endpoints[1] = a
    endpoints[2] = b
    return a, b


def test_small_message_single_packet():
    sim = Simulator()
    a, b = loopback_pair(sim)
    got = []
    b.on_message(0x04, lambda src, msg: got.append((src, msg)))
    a.send_message(2, 0x04, b"hi")
    sim.run()
    assert got == [(1, b"hi")]
    assert a.packets_sent == 1
    assert b.messages_delivered == 1


def test_large_message_fragments_and_reassembles():
    sim = Simulator()
    a, b = loopback_pair(sim)
    got = []
    b.on_message(0x04, lambda src, msg: got.append(msg))
    message = bytes(range(256)) * 3  # 768 bytes -> 12 packets at BTU=64
    a.send_message(2, 0x04, message)
    sim.run()
    assert got == [message]
    assert a.packets_sent == -(-len(message) // MCTP_BTU)


def test_empty_message_still_delivers():
    sim = Simulator()
    a, b = loopback_pair(sim)
    got = []
    b.on_message(0x04, lambda src, msg: got.append(msg))
    a.send_message(2, 0x04, b"")
    sim.run()
    assert got == [b""]


def test_interleaved_messages_from_two_sources():
    sim = Simulator()
    endpoints = {}

    def transmit(dst_eid, raw):
        ev = sim.event()
        sim.timeout(50).callbacks.append(
            lambda _e: (endpoints[dst_eid].receive_packet(raw), ev.succeed())
        )
        return ev

    rx = MCTPEndpoint(sim, 9, transmit, per_packet_ns=10)
    tx1 = MCTPEndpoint(sim, 1, transmit, per_packet_ns=13)
    tx2 = MCTPEndpoint(sim, 2, transmit, per_packet_ns=17)
    endpoints.update({9: rx, 1: tx1, 2: tx2})
    got = []
    rx.on_message(0x04, lambda src, msg: got.append((src, msg)))
    m1 = b"A" * 300
    m2 = b"B" * 300
    tx1.send_message(9, 0x04, m1)
    tx2.send_message(9, 0x04, m2)
    sim.run()
    assert sorted(got) == [(1, m1), (2, m2)]


def test_wrong_destination_eid_rejected():
    sim = Simulator()
    a, b = loopback_pair(sim)
    packet = MCTPPacket(src_eid=1, dst_eid=99, msg_tag=0, som=True, eom=True,
                        seq=0, msg_type=4, payload=b"x")
    with pytest.raises(SimulationError, match="EID"):
        b.receive_packet(packet.to_bytes())


def test_out_of_sequence_fragment_drops_message():
    sim = Simulator()
    a, b = loopback_pair(sim)
    got = []
    b.on_message(0x04, lambda src, msg: got.append(msg))
    p1 = MCTPPacket(1, 2, msg_tag=5, som=True, eom=False, seq=0, msg_type=4, payload=b"aa")
    p_bad = MCTPPacket(1, 2, msg_tag=5, som=False, eom=True, seq=3, msg_type=4, payload=b"bb")
    b.receive_packet(p1.to_bytes())
    b.receive_packet(p_bad.to_bytes())
    assert got == []


def test_fragment_without_som_is_dropped():
    sim = Simulator()
    a, b = loopback_pair(sim)
    got = []
    b.on_message(0x04, lambda src, msg: got.append(msg))
    stray = MCTPPacket(1, 2, msg_tag=7, som=False, eom=True, seq=1, msg_type=4, payload=b"zz")
    b.receive_packet(stray.to_bytes())
    assert got == []


@given(st.binary(min_size=0, max_size=1000))
@settings(max_examples=30, deadline=None)
def test_packet_serialization_roundtrip(payload):
    pkt = MCTPPacket(src_eid=3, dst_eid=4, msg_tag=2, som=True, eom=False,
                     seq=1, msg_type=0x04, payload=payload)
    assert MCTPPacket.from_bytes(pkt.to_bytes()) == pkt


# ----------------------------------------------------------------- NVMe-MI
def test_mi_request_roundtrip():
    req = MIRequest(opcode=0x20, request_id=7, params={"key": "ns0", "size_bytes": 123})
    assert MIRequest.from_bytes(req.to_bytes()) == req


def test_mi_response_roundtrip_and_ok():
    resp = MIResponse(request_id=7, status=int(MIStatus.SUCCESS), body={"a": 1})
    parsed = MIResponse.from_bytes(resp.to_bytes())
    assert parsed == resp and parsed.ok
    bad = MIResponse(request_id=7, status=int(MIStatus.INTERNAL_ERROR))
    assert not bad.ok
