"""Concurrent out-of-band requests: correlation and ordering."""


from repro.baselines import build_bmstore
from repro.sim.units import GIB


def test_pipelined_mi_requests_correlate_correctly():
    """Many in-flight NVMe-MI requests; every response matches its
    request (the MCTP tag + request-id machinery under load)."""
    rig = build_bmstore(num_ssds=2)
    outcomes = {}

    def requester(i):
        resp = yield rig.console.create_namespace(f"ns{i}", 64 * GIB,
                                                  placement=[i % 2])
        outcomes[i] = resp.ok and resp.body.get("key") == f"ns{i}"

    procs = [rig.sim.process(requester(i)) for i in range(12)]
    rig.sim.run(rig.sim.all_of(procs))
    assert all(outcomes.values())
    assert len(rig.engine.namespaces) == 12


def test_mixed_command_types_interleave_safely():
    rig = build_bmstore(num_ssds=1)
    results = {}

    def health():
        resp = yield rig.console.health()
        results["health"] = resp.ok and resp.body["num_ssds"] == 1

    def inventory():
        resp = yield rig.console.controller_list()
        results["inv"] = resp.ok and resp.body["virtual_functions"] == 124

    def provision():
        resp = yield rig.console.create_namespace("a", 64 * GIB)
        results["prov"] = resp.ok

    procs = [rig.sim.process(g()) for g in (health, inventory, provision)]
    rig.sim.run(rig.sim.all_of(procs))
    assert results == {"health": True, "inv": True, "prov": True}


def test_duplicate_namespace_creation_fails_second_request():
    rig = build_bmstore(num_ssds=1)
    oks = []

    def requester():
        resp = yield rig.console.create_namespace("same", 64 * GIB)
        oks.append(resp.ok)

    p1 = rig.sim.process(requester())
    p2 = rig.sim.process(requester())
    rig.sim.run(rig.sim.all_of([p1, p2]))
    assert sorted(oks) == [False, True]
