"""BMS-Controller + remote console integration: the full out-of-band
management surface (paper §IV-D), including hot-upgrade and hot-plug."""

import pytest

from repro.baselines import build_bmstore
from repro.mgmt import MIOpcode, MIStatus
from repro.nvme import NVMeSSD
from repro.sim.units import GIB, sec


def run(rig, gen):
    return rig.sim.run(rig.sim.process(gen))


def test_health_poll_reports_all_drives():
    rig = build_bmstore(num_ssds=4)

    def flow():
        resp = yield rig.console.health()
        return resp

    resp = run(rig, flow())
    assert resp.ok
    assert resp.body["num_ssds"] == 4
    assert len(resp.body["drives"]) == 4
    assert all("firmware" in d for d in resp.body["drives"])


def test_controller_list_reports_sriov_inventory():
    rig = build_bmstore(num_ssds=1)

    def flow():
        resp = yield rig.console.controller_list()
        return resp

    resp = run(rig, flow())
    assert resp.body == {"physical_functions": 4, "virtual_functions": 124}


def test_oob_namespace_lifecycle():
    rig = build_bmstore(num_ssds=2)

    def flow():
        resp = yield rig.console.create_namespace("tenant1", 128 * GIB)
        assert resp.ok
        resp = yield rig.console.bind_namespace("tenant1", 6)
        assert resp.ok
        resp = yield rig.console.request(MIOpcode.UNBIND_NAMESPACE, key="tenant1")
        assert resp.ok
        resp = yield rig.console.delete_namespace("tenant1")
        return resp

    resp = run(rig, flow())
    assert resp.ok
    assert "tenant1" not in rig.engine.namespaces


def test_oob_create_with_qos_limits():
    rig = build_bmstore(num_ssds=1)

    def flow():
        resp = yield rig.console.create_namespace(
            "limited", 64 * GIB, max_iops=50_000, max_mbps=500,
        )
        return resp

    resp = run(rig, flow())
    assert resp.ok
    limits = rig.engine.qos.limits_for("limited")
    assert limits.max_iops == 50_000
    assert limits.max_bytes_per_sec == 500e6


def test_invalid_request_returns_error_response():
    rig = build_bmstore(num_ssds=1)

    def flow():
        resp = yield rig.console.bind_namespace("ghost", 5)
        return resp

    resp = run(rig, flow())
    assert not resp.ok
    assert resp.status == int(MIStatus.INVALID_PARAMETER)


def test_unsupported_opcode():
    rig = build_bmstore(num_ssds=1)

    def flow():
        resp = yield rig.console.request(MIOpcode.CONTROLLER_LIST)
        assert resp.ok
        resp = yield rig.console.request(0x7F)
        return resp

    resp = run(rig, flow())
    assert resp.status == int(MIStatus.UNSUPPORTED)


def test_io_stats_via_oob_match_engine_counters():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn)

    def flow():
        for _ in range(5):
            yield driver.read(0, 1)
        resp = yield rig.console.io_stats(fn.fn_id)
        return resp

    resp = run(rig, flow())
    assert resp.body["read_ops"] == 5
    assert resp.body["read_bytes"] == 5 * 4096


def test_hot_upgrade_reports_paper_timing_shape():
    rig = build_bmstore(num_ssds=1)

    def flow():
        resp = yield rig.console.hot_upgrade(0, version="NEWFW", activation_s=6.5)
        return resp

    resp = run(rig, flow())
    assert resp.ok
    body = resp.body
    # Table IX shape: total 6-9 s, BM-Store processing ~100 ms
    assert 6.0 <= body["total_s"] <= 9.0
    assert body["processing_ms"] == pytest.approx(100, rel=0.01)
    assert body["io_pause_s"] <= body["total_s"]
    assert rig.ssds[0].firmware.active.version == "NEWFW"


def test_hot_upgrade_under_io_never_errors(capfd=None):
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn)
    stats = {"ios": 0, "errors": 0}
    stop = {"flag": False}

    def io_loop():
        while not stop["flag"]:
            info = yield driver.read(0, 1)
            stats["ios"] += 1
            if not info.ok:
                stats["errors"] += 1

    def orchestrate():
        yield rig.sim.timeout(sec(0.01))
        resp = yield rig.console.hot_upgrade(0, version="V9", activation_s=1.0)
        assert resp.ok
        yield rig.sim.timeout(sec(0.01))
        stop["flag"] = True

    for _ in range(4):
        rig.sim.process(io_loop())
    done = rig.sim.process(orchestrate())
    rig.sim.run(done)
    rig.sim.run(until=rig.sim.now + sec(0.2))
    assert stats["errors"] == 0
    assert stats["ios"] > 0


def test_hot_plug_preserves_front_end_identity():
    rig = build_bmstore(num_ssds=2)
    fn = rig.provision("ns", 64 * GIB, placement=[0])
    driver = rig.baremetal_driver(fn)
    replacement = NVMeSSD(rig.sim, rig.engine.backend_fabric, rig.streams,
                          name="replacement")
    rig.controller.stage_replacement(0, replacement)

    def flow():
        info = yield driver.read(0, 1)
        assert info.ok
        resp = yield rig.console.hot_plug_replace(0)
        assert resp.ok
        assert resp.body["front_end_preserved"]
        # same driver, same logical drive — no rescan, no redeploy
        info = yield driver.read(0, 1)
        return info

    info = run(rig, flow())
    assert info.ok
    assert rig.engine.adaptor.slot_for(0).ssd is replacement
    assert replacement.stats.read_ops == 1


def test_hot_plug_without_staged_drive_is_noop():
    rig = build_bmstore(num_ssds=1)

    def flow():
        resp = yield rig.console.hot_plug_replace(0)
        return resp

    resp = run(rig, flow())
    assert not resp.ok


def test_upgrade_report_history_via_oob():
    rig = build_bmstore(num_ssds=2)

    def flow():
        yield rig.console.hot_upgrade(0, version="A", activation_s=1.0)
        yield rig.console.hot_upgrade(1, version="B", activation_s=1.0)
        resp = yield rig.console.upgrade_reports()
        return resp

    resp = run(rig, flow())
    versions = [r["version"] for r in resp.body["reports"]]
    assert versions == ["A", "B"]


def test_io_monitor_background_sampling():
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn)
    rig.controller.start_monitor(period_ns=1_000_000, fn_ids=[fn.fn_id])

    def flow():
        for _ in range(10):
            yield driver.read(0, 1)

    done = rig.sim.process(flow())
    rig.sim.run(done)
    rig.sim.run(until=rig.sim.now + 5_000_000)
    history = rig.controller.monitor_history
    assert len(history) >= 3
    assert history[-1]["fns"][fn.fn_id]["read_ops"] == 10


def test_inband_vendor_admin_rejected():
    """Tenants cannot reach management functions in-band."""
    rig = build_bmstore(num_ssds=1)
    fn = rig.provision("ns", 64 * GIB)
    driver = rig.baremetal_driver(fn)
    from repro.nvme import AdminOpcode

    def flow():
        info = yield driver.admin(AdminOpcode.NS_MANAGEMENT)
        return info

    info = run(rig, flow())
    assert not info.ok
