"""The bench regression gate as a unit: compare()/compare_meta() failure
and warning modes on synthetic snapshots, best-of-N repeats, and the CI
step-summary trend table."""

import json

from repro import bench, bench_summary
from repro.cli import main


def _snapshot(events_per_sec=100_000, sim_events=50_000, *,
              scheme="bmstore", case="rand-r-128", time_scale=0.3,
              python="3.12.0", machine="x86_64", git_sha="a" * 40):
    return {
        "kind": "repro-bench",
        "obs_mode": "counters",
        "time_scale": time_scale,
        "python": python,
        "machine": machine,
        "repeats": 1,
        "git_sha": git_sha,
        "runs": [{
            "scheme": scheme, "case": case, "seed": 7,
            "wall_s": round(sim_events / events_per_sec, 4),
            "sim_events": sim_events,
            "events_per_sec": events_per_sec,
            "ios": 1000, "iops": 123.4,
        }],
        "totals": {
            "wall_s": round(sim_events / events_per_sec, 4),
            "sim_events": sim_events,
            "events_per_sec": events_per_sec,
        },
    }


# ------------------------------------------------------------- compare()
def test_compare_passes_identical_snapshots():
    snap = _snapshot()
    assert bench.compare(snap, snap) == []


def test_compare_flags_event_count_drift_even_when_faster():
    """sim_events drift is behaviour drift: a hard failure regardless of
    throughput direction."""
    baseline = _snapshot(sim_events=50_000)
    current = _snapshot(events_per_sec=500_000, sim_events=50_001)
    failures = bench.compare(current, baseline)
    assert any("event count changed" in f for f in failures)


def test_compare_flags_throughput_regression_past_tolerance():
    baseline = _snapshot(events_per_sec=100_000)
    current = _snapshot(events_per_sec=74_000)
    failures = bench.compare(current, baseline, tolerance=0.25)
    assert any("events/s" in f for f in failures)
    # just inside the cliff passes
    assert bench.compare(_snapshot(events_per_sec=76_000), baseline,
                         tolerance=0.25) == []


def test_compare_flags_scale_mismatch_before_anything_else():
    baseline = _snapshot(time_scale=1.0)
    current = _snapshot(time_scale=0.3, sim_events=1)
    failures = bench.compare(current, baseline)
    assert failures == [failures[0]]
    assert "time_scale mismatch" in failures[0]


def test_compare_flags_cells_missing_on_either_side():
    baseline = _snapshot(case="rand-r-128")
    current = _snapshot(case="rand-r-1")
    failures = bench.compare(current, baseline)
    assert any("no baseline entry" in f for f in failures)
    assert any("in baseline but not run" in f for f in failures)


# -------------------------------------------------------- compare_meta()
def test_compare_meta_warns_on_python_and_machine_mismatch():
    baseline = _snapshot(python="3.11.7", machine="x86_64")
    current = _snapshot(python="3.12.0", machine="aarch64")
    warnings = bench.compare_meta(current, baseline)
    assert len(warnings) == 2
    assert any("python mismatch" in w for w in warnings)
    assert any("machine mismatch" in w for w in warnings)


def test_compare_meta_is_advisory_not_a_compare_failure():
    baseline = _snapshot(python="3.11.7")
    current = _snapshot(python="3.12.0")
    assert bench.compare_meta(current, baseline)
    assert bench.compare(current, baseline) == []


def test_cli_meta_mismatch_warns_but_exits_zero(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_TIME_SCALE", "0.05")
    out = tmp_path / "bench.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out)]) == 0
    snap = json.loads(out.read_text())
    snap["python"] = "2.7.18"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(snap))
    out2 = tmp_path / "bench2.json"
    assert main(["bench", "--cases", "rand-w-1", "--schemes", "native",
                 "--out", str(out2), "--check", str(baseline)]) == 0
    err = capsys.readouterr().err
    assert "warning: python mismatch" in err


# --------------------------------------------------------------- repeats
def test_repeats_keeps_best_wall_and_identical_payload(monkeypatch):
    monkeypatch.setenv("REPRO_TIME_SCALE", "0.05")
    once = bench.run_bench(("native",), ("rand-w-1",), repeats=1)
    best = bench.run_bench(("native",), ("rand-w-1",), repeats=3)
    assert best["repeats"] == 3
    # determinism: repeating never changes the simulated results
    for key in ("sim_events", "ios", "iops"):
        assert best["runs"][0][key] == once["runs"][0][key]


def test_repeats_floor_is_one():
    snap_meta = bench.run_bench((), (), repeats=0)
    assert snap_meta["repeats"] == 1 and snap_meta["runs"] == []


def test_snapshot_embeds_git_sha(monkeypatch):
    monkeypatch.setenv("GITHUB_SHA", "f" * 40)
    assert bench.run_bench((), ())["git_sha"] == "f" * 40


# ---------------------------------------------------------- trend table
def test_trend_table_reports_delta_per_cell():
    baseline = _snapshot(events_per_sec=100_000)
    current = _snapshot(events_per_sec=120_000, git_sha="b" * 40)
    table = bench_summary.trend_table(current, baseline)
    assert "| bmstore | rand-r-128 | 100,000 | 120,000 | +20.0% |" in table
    assert "`bbbbbbbbbbbb`" in table and "`aaaaaaaaaaaa`" in table
    assert "**total**" in table


def test_trend_table_handles_missing_baseline_cell_and_warns():
    baseline = _snapshot(case="rand-r-1", python="3.11.7")
    current = _snapshot(case="rand-r-128")
    table = bench_summary.trend_table(current, baseline)
    assert "| n/a | 100,000 | n/a |" in table
    assert ":warning: python mismatch" in table


def test_trend_table_cli_entry_point(tmp_path, capsys):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_snapshot()))
    assert bench_summary.main([str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("### Kernel bench trend")
    assert "+0.0%" in out
    assert bench_summary.main([str(path)]) == 2
