"""Discrete-event simulation substrate.

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Process`, :class:`Timeout`,
  :class:`Interrupt` — the kernel.
* :class:`Resource`, :class:`Store`, :class:`BandwidthLink`,
  :class:`TokenBucket` — contention primitives.
* :class:`RandomStream`, :class:`StreamFactory` — deterministic randomness.
* :mod:`repro.sim.units` — ns/byte unit helpers.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .random import RandomStream, StreamFactory
from .resources import BandwidthLink, Resource, Store, TokenBucket
from .tracing import SeriesRecorder, Trace, TraceEvent
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "RandomStream",
    "StreamFactory",
    "BandwidthLink",
    "Resource",
    "Store",
    "TokenBucket",
    "SeriesRecorder",
    "Trace",
    "TraceEvent",
    "units",
]
