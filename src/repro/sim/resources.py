"""Shared-resource primitives for the simulation kernel.

These model the contention points of the hardware: finite servers
(:class:`Resource`), mailboxes/queues (:class:`Store`), serialized
bandwidth pipes (:class:`BandwidthLink`), and rate limiters
(:class:`TokenBucket`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Optional

from .kernel import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "BandwidthLink", "TokenBucket"]


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue.

    Usage from a process::

        grant = yield resource.acquire()
        ...
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._acquire_name = "acquire:" + name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # busy-time integral for utilization accounting
        self._busy_area = 0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self, since: int = 0) -> float:
        """Average fraction of capacity busy over [since, now]."""
        self._account()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def acquire(self) -> Event:
        # grant events are pooled: callers yield them immediately and
        # never hold them past dispatch (see kernel pooling invariant)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            return self.sim.fired_event(self, name=self._acquire_name)
        ev = self.sim.pooled_event(name=self._acquire_name)
        self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name}")
        if self._waiters:
            # Hand the server straight to the next waiter; in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._account()
            self._in_use -= 1


class Store:
    """An unbounded (or bounded) FIFO queue of items.

    ``put`` never blocks when unbounded; ``get`` returns an event that
    fires with the next item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = "put:" + name
        self._get_name = "get:" + name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        sim = self.sim
        if self._getters:
            self._getters.popleft().succeed(item)
            return sim.fired_event(item, name=self._put_name)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return sim.fired_event(item, name=self._put_name)
        ev = sim.pooled_event(name=self._put_name)
        self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        if self._items:
            ev = self.sim.fired_event(self._items.popleft(), name=self._get_name)
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(item)
            return ev
        ev = self.sim.pooled_event(name=self._get_name)
        self._getters.append(ev)
        return ev


class BandwidthLink:
    """A serialized pipe with finite bandwidth and propagation delay.

    Models a PCIe link direction, an SSD's internal data bus, or a DRAM
    channel.  Transfers are serialized FIFO at ``bytes_per_ns``; each
    transfer additionally incurs ``propagation_ns`` of latency that is
    pipelined (does not occupy the link).

    ``transfer(nbytes)`` returns an event firing when the last byte
    arrives at the far end.
    """

    def __init__(
        self,
        sim: Simulator,
        bytes_per_sec: float,
        propagation_ns: int = 0,
        name: str = "link",
    ):
        if bytes_per_sec <= 0:
            raise SimulationError("link bandwidth must be positive")
        self.sim = sim
        self.bytes_per_sec = float(bytes_per_sec)
        self.propagation_ns = int(propagation_ns)
        self.name = name
        self._xfer_name = "xfer:" + name
        # Time at which the link becomes free to start a new serialization.
        self._free_at = sim.now
        self._bytes_moved = 0
        # serialization times repeat over a handful of transfer sizes;
        # invalidated by set_rate()
        self._ser_cache: dict[int, int] = {}

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved

    def serialization_ns(self, nbytes: int) -> int:
        ns = self._ser_cache.get(nbytes)
        if ns is None:
            # ceiling, not rounding: a transfer must never finish early,
            # or short transfers would beat the configured line rate
            ns = math.ceil(nbytes * 1e9 / self.bytes_per_sec)
            self._ser_cache[nbytes] = ns
        return ns

    def transfer(self, nbytes: int, value: Any = None) -> Event:
        """Move ``nbytes`` through the link; event fires at arrival time."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        ns = self._ser_cache.get(nbytes)
        if ns is None:
            ns = math.ceil(nbytes * 1e9 / self.bytes_per_sec)
            self._ser_cache[nbytes] = ns
        now = self.sim.now
        start = now if now > self._free_at else self._free_at
        done_serializing = start + ns
        self._free_at = done_serializing
        self._bytes_moved += nbytes
        # pooled timeout: a transfer is exactly "fire at T with value",
        # so it rides the recycled-Timeout fast path
        return self.sim.timeout(done_serializing + self.propagation_ns - now, value)

    def busy_until(self) -> int:
        return self._free_at

    def stall(self, duration_ns: int) -> None:
        """Hold the link busy for ``duration_ns`` from now (fault
        injection: link down / retraining).  In-flight serializations
        are unaffected; new transfers queue behind the stall."""
        if duration_ns < 0:
            raise SimulationError(f"negative stall duration {duration_ns}")
        self._free_at = max(self._free_at, self.sim.now + int(duration_ns))

    def set_rate(self, bytes_per_sec: float) -> None:
        """Change the line rate (fault injection: width degrade)."""
        if bytes_per_sec <= 0:
            raise SimulationError("link bandwidth must be positive")
        self.bytes_per_sec = float(bytes_per_sec)
        self._ser_cache.clear()

    def throughput(self, since: int = 0) -> float:
        """Average bytes/sec moved over [since, now]."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._bytes_moved * 1e9 / elapsed


class TokenBucket:
    """A token-bucket rate limiter (QoS building block).

    Tokens accrue at ``rate_per_sec`` up to ``burst``.  ``consume(n)``
    returns an event that fires once ``n`` tokens are available, FIFO.
    A rate of ``None`` means unlimited (events fire immediately).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_per_sec: Optional[float],
        burst: float,
        name: str = "bucket",
    ):
        self.sim = sim
        self.rate_per_sec = rate_per_sec
        self.burst = float(burst)
        self.name = name
        self._tokens_name = "tokens:" + name
        self._tokens = float(burst)
        self._last_refill = sim.now
        self._waiters: Deque[tuple[Event, float]] = deque()
        self._drain_active = False

    @property
    def unlimited(self) -> bool:
        return self.rate_per_sec is None

    def _refill(self) -> None:
        now = self.sim.now
        if self.rate_per_sec:
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._last_refill) * self.rate_per_sec / 1e9,
            )
        self._last_refill = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def would_block(self, amount: float) -> bool:
        """True if a consume(amount) now would have to wait."""
        if self.unlimited:
            return False
        return bool(self._waiters) or self.tokens < amount

    def consume(self, amount: float) -> Event:
        if self.unlimited:
            return self.sim.fired_event(name=self._tokens_name)
        self._refill()
        if not self._waiters and self._tokens >= amount:
            self._tokens -= amount
            return self.sim.fired_event(name=self._tokens_name)
        ev = self.sim.pooled_event(name=self._tokens_name)
        self._waiters.append((ev, amount))
        self._arm_drain()
        return ev

    def _arm_drain(self) -> None:
        if self._drain_active or not self._waiters:
            return
        self._drain_active = True
        _, amount = self._waiters[0]
        self._refill()
        deficit = max(0.0, amount - self._tokens)
        assert self.rate_per_sec is not None
        delay = int(deficit * 1e9 / self.rate_per_sec) + 1
        wake = self.sim.timeout(delay)
        wake.callbacks.append(self._drain)

    def _drain(self, _ev: Event) -> None:
        self._drain_active = False
        self._refill()
        while self._waiters:
            ev, amount = self._waiters[0]
            if self._tokens >= amount:
                self._tokens -= amount
                self._waiters.popleft()
                ev.succeed()
            else:
                break
        self._arm_drain()
