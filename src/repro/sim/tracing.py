"""Lightweight tracing / statistics collection for simulation runs.

A :class:`Trace` records (time, category, payload) tuples; a
:class:`SeriesRecorder` bins a counter into fixed windows to produce
time series (used e.g. for the hot-upgrade IOPS timeline of Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .kernel import Simulator

__all__ = ["TraceEvent", "Trace", "SeriesRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace entry: time, category, payload."""
    time_ns: int
    category: str
    payload: Any = None


class Trace:
    """An append-only event log, filterable by category."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, category: str, payload: Any = None) -> None:
        if self.enabled:
            self.events.append(TraceEvent(self.sim.now, category, payload))

    def select(self, category: str) -> list[TraceEvent]:
        return [ev for ev in self.events if ev.category == category]

    def count(self, category: str) -> int:
        return sum(1 for ev in self.events if ev.category == category)

    def clear(self) -> None:
        self.events.clear()


@dataclass
class SeriesRecorder:
    """Bins occurrences into fixed time windows.

    ``tick()`` adds one occurrence (optionally weighted) at the current
    simulated time.  ``series()`` returns per-window rates.
    """

    sim: Simulator
    window_ns: int
    _bins: dict[int, float] = field(default_factory=dict)

    def tick(self, weight: float = 1.0) -> None:
        idx = self.sim.now // self.window_ns
        self._bins[idx] = self._bins.get(idx, 0.0) + weight

    def series(self, start_ns: int = 0, end_ns: Optional[int] = None) -> list[tuple[int, float]]:
        """[(window_start_ns, rate_per_sec), ...] covering the range."""
        end = end_ns if end_ns is not None else self.sim.now
        first = start_ns // self.window_ns
        last = max(first, (end - 1) // self.window_ns) if end > start_ns else first
        out = []
        for idx in range(first, last + 1):
            count = self._bins.get(idx, 0.0)
            out.append((idx * self.window_ns, count * 1e9 / self.window_ns))
        return out

    def total(self) -> float:
        return sum(self._bins.values())
