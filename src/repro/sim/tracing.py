"""Lightweight tracing / statistics collection for simulation runs.

A :class:`Trace` records (time, category, payload) tuples; a
:class:`SeriesRecorder` bins a counter into fixed windows to produce
time series (used e.g. for the hot-upgrade IOPS timeline of Fig. 15).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from .kernel import Simulator

__all__ = ["TraceEvent", "Trace", "SeriesRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace entry: time, category, payload."""
    time_ns: int
    category: str
    payload: Any = None


class Trace:
    """An append-only event log, filterable by category.

    Events are indexed per category as they arrive, so ``select`` and
    ``count`` cost O(matches) / O(1) instead of a scan of everything
    ever recorded.  ``max_events`` optionally bounds the log: when full,
    the oldest event is evicted (from the log and its category index)
    and ``dropped`` counts the evictions.
    """

    def __init__(self, sim: Simulator, enabled: bool = True,
                 max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.sim = sim
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        self._events: deque[TraceEvent] = deque()
        self._by_category: dict[str, deque[TraceEvent]] = {}

    @property
    def events(self) -> list[TraceEvent]:
        """Every retained event, oldest first (a copy)."""
        return list(self._events)

    def record(self, category: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            oldest = self._events.popleft()
            self._by_category[oldest.category].popleft()
            self.dropped += 1
        ev = TraceEvent(self.sim.now, category, payload)
        self._events.append(ev)
        self._by_category.setdefault(category, deque()).append(ev)

    def select(self, category: str) -> list[TraceEvent]:
        return list(self._by_category.get(category, ()))

    def count(self, category: str) -> int:
        return len(self._by_category.get(category, ()))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._by_category.clear()
        self.dropped = 0


@dataclass
class SeriesRecorder:
    """Bins occurrences into fixed time windows.

    ``tick()`` adds one occurrence (optionally weighted) at the current
    simulated time.  ``series()`` returns per-window rates.
    """

    sim: Simulator
    window_ns: int
    _bins: dict[int, float] = field(default_factory=dict)

    def tick(self, weight: float = 1.0) -> None:
        idx = self.sim.now // self.window_ns
        self._bins[idx] = self._bins.get(idx, 0.0) + weight

    def series(self, start_ns: int = 0, end_ns: Optional[int] = None) -> list[tuple[int, float]]:
        """[(window_start_ns, rate_per_sec), ...] covering the range."""
        end = end_ns if end_ns is not None else self.sim.now
        first = start_ns // self.window_ns
        last = max(first, (end - 1) // self.window_ns) if end > start_ns else first
        out = []
        for idx in range(first, last + 1):
            count = self._bins.get(idx, 0.0)
            out.append((idx * self.window_ns, count * 1e9 / self.window_ns))
        return out

    def total(self) -> float:
        return sum(self._bins.values())
