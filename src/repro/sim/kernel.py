"""Discrete-event simulation kernel.

This is the substrate every hardware model in the reproduction runs on.
It is a small, deterministic, generator-based event loop in the style of
SimPy: *processes* are Python generators that ``yield`` events; the
kernel resumes a process when the event it waits on fires.

Simulated time is an integer number of **nanoseconds**.  Using integers
keeps event ordering exact and runs reproducible.

Fast path
---------
The per-event cost of this loop is the wall-clock of the whole repo, so
the dispatch machinery is deliberately flat:

* **Now-bucket**: the majority of schedules are zero-delay (completion
  deliveries, process bootstraps, replays).  Those bypass the heap into
  a FIFO *bucket for the current instant*; only genuinely future events
  pay the ``heapq`` push/pop.  Ordering stays exactly ``(time, seq)``:
  when the heap head shares the current timestamp the dispatcher picks
  whichever side holds the lower sequence number.
* **Inlined dispatch**: :meth:`Simulator.run` and
  :meth:`Simulator.step` run callbacks inline rather than bouncing
  through per-event helper calls.
* **Timeout pooling**: processed :class:`Timeout` objects created via
  :meth:`Simulator.timeout` are recycled through a free list, so the
  dominant ``yield sim.timeout(d)`` pattern stops allocating.  Events
  referenced by conditions or by ``run(until=event)`` are pinned and
  never recycled.  Holding a timeout object *after* it fired and
  inspecting it later is not supported for pooled timeouts (pin it
  with ``t.pin()`` if you must).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]

#: recycled-Timeout free list cap per simulator (bounds idle memory)
_TIMEOUT_POOL_CAP = 512


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it; once the kernel pops it from the event
    queue its callbacks run and any waiting processes resume.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_defunct", "_pinned", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defunct = False
        self._pinned = False
        self.name = name

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def defunct(self) -> bool:
        """True once the event was cancelled; its callbacks never run."""
        return self._defunct

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule this event to fire successfully after ``delay`` ns."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        if delay == 0:
            sim._nowq.append((sim._seq, self))
        else:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            heapq.heappush(sim._heap, (sim._now + int(delay), sim._seq, self))
        return self

    def fail(self, exc: Any, delay: int = 0) -> "Event":
        """Schedule this event to fire as a failure.

        ``exc`` is usually an exception instance; any other value is
        legal and is wrapped in :class:`SimulationError` at the point
        it must be *raised* (a waiting process, ``run(until=...)``), so
        a plain-value failure reads as a clean simulation error instead
        of ``TypeError: exceptions must derive from BaseException``.
        """
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        sim = self.sim
        sim._seq += 1
        if delay == 0:
            sim._nowq.append((sim._seq, self))
        else:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            heapq.heappush(sim._heap, (sim._now + int(delay), sim._seq, self))
        return self

    def cancel(self) -> None:
        """Mark this event defunct: when popped, its callbacks are
        skipped instead of run.  Cancelling is idempotent and may happen
        before or after triggering (but not once processed)."""
        if self._processed:
            raise SimulationError(f"cannot cancel processed event {self!r}")
        self._defunct = True

    def pin(self) -> "Event":
        """Exempt this event from kernel recycling (see module docs)."""
        self._pinned = True
        return self

    def _run_callbacks(self) -> None:
        # kept for API compatibility; the dispatch loops inline this
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        if self._defunct:
            state = "defunct"
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Instances handed out by :meth:`Simulator.timeout` are pooled: after
    the timeout fires and its callbacks run, the object may be recycled
    to back a later ``timeout()`` call.  Conditions pin their members,
    and ``run(until=...)`` pins its target, so the ordinary patterns
    are safe; call :meth:`Event.pin` to keep one alive for inspection.
    """

    __slots__ = ("_delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # inlined Event.__init__ + succeed(): this runs for every
        # simulated latency hop, so it must not pay two super() calls
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defunct = False
        self._pinned = False
        self._delay = delay
        self.name = "Timeout"
        sim._seq += 1
        if delay == 0:
            sim._nowq.append((sim._seq, self))
        else:
            heapq.heappush(sim._heap, (sim._now + int(delay), sim._seq, self))

    @property
    def delay(self) -> int:
        return self._delay


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`Event` instances.  When a yielded event
    fires OK, the generator resumes with ``event.value``; when it fires
    failed, the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current time (a pooled
        # zero-delay timeout doubles as the init poke).
        init = sim.timeout(0)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.sim, name="interrupt")
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause))

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                err = trigger._value
                if not isinstance(err, BaseException):
                    err = SimulationError(
                        f"event failed with non-exception value {err!r}"
                    )
                target = self._generator.throw(err)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if self.callbacks or not sim.strict:
                # someone is waiting (or the user opted out of strict
                # crash-on-unobserved): deliver the failure to them
                self.fail(exc)
                return
            raise
        sim._active_process = None

        if not isinstance(target, Event):
            self._generator.close()
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield Event instances"
            )
        if target.sim is not sim:
            raise SimulationError("cannot wait on an event from a different simulator")
        if target._processed:
            # Already fired: resume immediately (at the current instant).
            if target._ok:
                poke: Event = sim.timeout(0, value=target._value)
            else:
                poke = Event(sim, name="replay")
                poke.fail(target._value)
            poke.callbacks.append(self._resume)
            self._waiting_on = poke
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.sim is not self.sim:
                raise SimulationError("condition spans multiple simulators")
            # the condition reads member state after they fire: exempt
            # them from timeout recycling
            ev._pinned = True
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _results(self) -> dict:
        return {ev: ev._value for ev in self._events if ev._processed and ev.ok}

    def _check(self, ev: Event) -> None:
        raise NotImplementedError

    def __reduce__(self):  # pragma: no cover - conditions are transient
        raise TypeError(f"{type(self).__name__} is not picklable")


class AnyOf(_Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._results())


class Simulator:
    """The event loop: a now-bucket FIFO + a priority queue of
    (time, sequence, event).

    Parameters
    ----------
    strict:
        When True (default), an uncaught exception inside a process
        fails the process event instead of propagating, unless nothing
        waits on it.

    Attributes
    ----------
    events_processed:
        Count of dispatched events since construction — the numerator
        of the ``repro bench`` events/sec figure.
    """

    def __init__(self, strict: bool = True):
        self._now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        #: zero-delay events at the current instant: (seq, event) FIFO
        self._nowq: deque[tuple[int, Event]] = deque()
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []
        self.events_processed = 0
        self.strict = strict
        #: bound CheckContext (kernel checker); None = dormant, zero-cost
        self.checks = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories --------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            t = pool.pop()
            t._value = value
            t._ok = True
            t._triggered = True
            t._processed = False
            t._defunct = False
            t._delay = delay
            self._seq += 1
            if delay == 0:
                self._nowq.append((self._seq, t))
            else:
                heapq.heappush(self._heap, (self._now + int(delay), self._seq, t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        if delay == 0:
            self._nowq.append((self._seq, event))
        else:
            heapq.heappush(self._heap, (self._now + int(delay), self._seq, event))

    def _pop_next(self) -> Optional[Event]:
        """The next live event in (time, seq) order, advancing the
        clock; None when nothing is scheduled.  Defunct events are
        discarded without running their callbacks."""
        heap, nowq = self._heap, self._nowq
        while True:
            if nowq:
                if heap and heap[0][0] <= self._now and heap[0][1] < nowq[0][0]:
                    _, _, event = heapq.heappop(heap)
                else:
                    _, event = nowq.popleft()
            elif heap:
                when, _, event = heapq.heappop(heap)
                self._now = when
            else:
                return None
            if event._defunct:
                continue
            return event

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`SimulationError` when nothing is scheduled;
        cancelled (defunct) events are skipped, not dispatched.
        """
        event = self._pop_next()
        if event is None:
            raise SimulationError("cannot step: no events are scheduled")
        if self.checks is not None:
            self.checks.on_event_dispatch(self, event)
        self.events_processed += 1
        event._processed = True
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for cb in callbacks:
                cb(event)
        if type(event) is Timeout and not event._pinned:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_CAP:
                pool.append(event)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if none is queued."""
        if self._nowq:
            return self._now
        return self._heap[0][0] if self._heap else None

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), an
        integer time, or an :class:`Event` (run until it fires, and
        return / raise its value).
        """
        stop: Optional[Event] = None
        horizon: Optional[int] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                stop._pinned = True
            else:
                horizon = int(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"cannot run until {horizon} < now {self._now}"
                    )

        # The hot loop.  This is Simulator.step() inlined — every
        # function call removed here is removed a million times per
        # reproduced figure.
        heap, nowq = self._heap, self._nowq
        heappop = heapq.heappop
        pool = self._timeout_pool
        checks = self.checks
        dispatched = 0
        try:
            while True:
                if stop is not None and stop._processed:
                    break
                if nowq:
                    head = heap[0] if heap else None
                    if head is not None and head[0] <= self._now and head[1] < nowq[0][0]:
                        _, _, event = heappop(heap)
                    else:
                        _, event = nowq.popleft()
                elif heap:
                    when = heap[0][0]
                    if horizon is not None and when > horizon:
                        break
                    _, _, event = heappop(heap)
                    self._now = when
                else:
                    if stop is not None:
                        raise SimulationError(
                            f"simulation ran out of events before {stop!r} fired"
                        )
                    break
                if event._defunct:
                    continue
                if checks is not None:
                    checks.on_event_dispatch(self, event)
                dispatched += 1
                event._processed = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                if type(event) is Timeout and not event._pinned:
                    if len(pool) < _TIMEOUT_POOL_CAP:
                        pool.append(event)
        finally:
            self.events_processed += dispatched

        if horizon is not None:
            self._now = horizon
            return None
        if stop is not None:
            if stop._ok:
                return stop._value
            err = stop._value
            if isinstance(err, BaseException):
                raise err
            # a process can fail its event with a bare value through
            # Event internals; surface it as a kernel error instead of
            # "TypeError: exceptions must derive from BaseException"
            raise SimulationError(
                f"event {stop!r} failed with non-exception value {err!r}"
            )
        return None
