"""Discrete-event simulation kernel.

This is the substrate every hardware model in the reproduction runs on.
It is a small, deterministic, generator-based event loop in the style of
SimPy: *processes* are Python generators that ``yield`` events; the
kernel resumes a process when the event it waits on fires.

Simulated time is an integer number of **nanoseconds**.  Using integers
keeps event ordering exact and runs reproducible.

Schedulers
----------
Two interchangeable event queues implement the same total order
``(time, seq)``; select with ``REPRO_SCHED=heap|wheel`` (default
``wheel``) or ``Simulator(sched=...)``:

* ``heap`` — the reference implementation: one binary heap of
  ``(time, seq, event)`` tuples.  Simple, obviously correct, kept
  forever as the oracle the wheel is byte-compared against in CI.
* ``wheel`` — a calendar queue tuned to the simulator's bimodal delay
  distribution.  Near-term events (pipeline stages, doorbells, link
  serialization — almost always within a few microseconds) land in
  128 ns-wide slots inside a bounded calendar window; each occupied
  slot is one dict bucket, and a small heap of slot numbers replaces
  the big event heap.  Far-future events (flash service tails,
  firmware activation timers) overflow into a plain heap and cascade
  into the window in batches as the clock reaches them.  Ordering is
  exactly ``(time, seq)``: the slot being drained is kept as a wee
  heap so same-slot inserts stay ordered.

Fast path
---------
The per-event cost of this loop is the wall-clock of the whole repo, so
the dispatch machinery is deliberately flat:

* **Now-bucket**: the majority of schedules are zero-delay (completion
  deliveries, process bootstraps, replays).  Those bypass the scheduler
  into a FIFO *bucket for the current instant* holding bare events
  (the sequence number rides on ``event._seq``); only genuinely future
  events pay the scheduler insert.
* **Inlined dispatch**: :meth:`Simulator.run` and
  :meth:`Simulator.step` run callbacks inline rather than bouncing
  through per-event helper calls.
* **Object pooling**: processed :class:`Timeout` objects (the dominant
  ``yield sim.timeout(d)`` pattern), generic events handed out by
  :meth:`Simulator.pooled_event` / :meth:`Simulator.fired_event`, and
  fire-and-forget processes started with :meth:`Simulator.spawn` are
  all recycled through per-simulator free lists, so steady-state
  dispatch allocates nothing.  The pooling invariant: **a pooled
  object must not be referenced after its event is dispatched** — no
  reading ``.value`` later, no late ``cancel()``, no stashing it in a
  container that outlives the dispatch.  Events referenced by
  conditions or by ``run(until=event)`` are pinned and never recycled;
  call :meth:`Event.pin` to keep one alive for inspection.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]

#: recycled-object free list caps per simulator (bound idle memory)
_TIMEOUT_POOL_CAP = 512
_EVENT_POOL_CAP = 1024
_PROCESS_POOL_CAP = 512

#: calendar-queue geometry: 128 ns slots, 4096-slot window (~524 us)
_WHEEL_SHIFT = 7
_WHEEL_SLOTS = 4096


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it; once the kernel pops it from the event
    queue its callbacks run and any waiting processes resume.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_defunct", "_pinned", "_recycle", "_seq",
                 "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defunct = False
        self._pinned = False
        self._recycle = 0
        self.name = name

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def defunct(self) -> bool:
        """True once the event was cancelled; its callbacks never run."""
        return self._defunct

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule this event to fire successfully after ``delay`` ns."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        if delay == 0:
            sim._seq = seq = sim._seq + 1
            self._seq = seq
            sim._nowq.append(self)
        else:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            sim._insert(sim.now + int(delay), self)
        return self

    def fail(self, exc: Any, delay: int = 0) -> "Event":
        """Schedule this event to fire as a failure.

        ``exc`` is usually an exception instance; any other value is
        legal and is wrapped in :class:`SimulationError` at the point
        it must be *raised* (a waiting process, ``run(until=...)``), so
        a plain-value failure reads as a clean simulation error instead
        of ``TypeError: exceptions must derive from BaseException``.
        """
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        sim = self.sim
        if delay == 0:
            sim._seq = seq = sim._seq + 1
            self._seq = seq
            sim._nowq.append(self)
        else:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            sim._insert(sim.now + int(delay), self)
        return self

    def cancel(self) -> None:
        """Mark this event defunct: when popped, its callbacks are
        skipped instead of run.  Cancelling is idempotent and may happen
        before or after triggering (but not once processed)."""
        if self._processed:
            raise SimulationError(f"cannot cancel processed event {self!r}")
        self._defunct = True

    def pin(self) -> "Event":
        """Exempt this event from kernel recycling (see module docs)."""
        self._pinned = True
        return self

    def _run_callbacks(self) -> None:
        # kept for API compatibility; the dispatch loops inline this
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        if self._defunct:
            state = "defunct"
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Instances handed out by :meth:`Simulator.timeout` are pooled: after
    the timeout fires and its callbacks run, the object may be recycled
    to back a later ``timeout()`` call.  Conditions pin their members,
    and ``run(until=...)`` pins its target, so the ordinary patterns
    are safe; call :meth:`Event.pin` to keep one alive for inspection.
    """

    __slots__ = ("_delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # inlined Event.__init__ + succeed(): this runs for every
        # simulated latency hop, so it must not pay two super() calls
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defunct = False
        self._pinned = False
        self._recycle = 1
        self._delay = delay
        self.name = "Timeout"
        if delay == 0:
            sim._seq = seq = sim._seq + 1
            self._seq = seq
            sim._nowq.append(self)
        else:
            sim._insert(sim.now + int(delay), self)

    @property
    def delay(self) -> int:
        return self._delay


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`Event` instances.  When a yielded event
    fires OK, the generator resumes with ``event.value``; when it fires
    failed, the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_waiting_on", "_rcb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # one bound-method allocation for the lifetime of the process
        # (every wait re-uses it as the callback)
        self._rcb = self._resume
        # Bootstrap: resume once at the current time (a pooled
        # zero-delay timeout doubles as the init poke).
        init = sim.timeout(0)
        init.callbacks.append(self._rcb)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._rcb)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.sim, name="interrupt")
        poke.callbacks.append(self._rcb)
        poke.fail(Interrupt(cause))

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                err = trigger._value
                if not isinstance(err, BaseException):
                    err = SimulationError(
                        f"event failed with non-exception value {err!r}"
                    )
                target = self._generator.throw(err)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks or not sim.strict:
                # someone is waiting (or the user opted out of strict
                # crash-on-unobserved): deliver the failure to them
                self.fail(exc)
                return
            raise

        if not isinstance(target, Event):
            self._generator.close()
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield Event instances"
            )
        if target.sim is not sim:
            raise SimulationError("cannot wait on an event from a different simulator")
        if target._processed:
            # Already fired: resume immediately (at the current instant).
            if target._ok:
                poke: Event = sim.timeout(0, value=target._value)
            else:
                poke = Event(sim, name="replay")
                poke.fail(target._value)
            poke.callbacks.append(self._rcb)
            self._waiting_on = poke
        else:
            self._waiting_on = target
            target.callbacks.append(self._rcb)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.sim is not self.sim:
                raise SimulationError("condition spans multiple simulators")
            # the condition reads member state after they fire: exempt
            # them from recycling
            ev._pinned = True
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _results(self) -> dict:
        return {ev: ev._value for ev in self._events if ev._processed and ev.ok}

    def _check(self, ev: Event) -> None:
        raise NotImplementedError

    def __reduce__(self):  # pragma: no cover - conditions are transient
        raise TypeError(f"{type(self).__name__} is not picklable")


class AnyOf(_Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._results())


class Simulator:
    """The event loop: a now-bucket FIFO plus a scheduler for future
    events (calendar queue by default, binary heap as the reference).

    Parameters
    ----------
    strict:
        When True (default), an uncaught exception inside a process
        fails the process event instead of propagating, unless nothing
        waits on it.
    sched:
        ``"heap"`` or ``"wheel"``; defaults to the ``REPRO_SCHED``
        environment variable, then ``"wheel"``.

    Attributes
    ----------
    events_processed:
        Count of dispatched events since construction — the numerator
        of the ``repro bench`` events/sec figure.
    now:
        Current simulated time in nanoseconds (read-only by convention;
        only the dispatch loop advances it).
    """

    def __init__(self, strict: bool = True, sched: Optional[str] = None):
        if sched is None:
            sched = os.environ.get("REPRO_SCHED", "wheel")
        if sched not in ("heap", "wheel"):
            raise SimulationError(
                f"unknown scheduler {sched!r}; REPRO_SCHED must be 'heap' or 'wheel'"
            )
        self.sched = sched
        self.now: int = 0
        #: zero-delay events at the current instant, FIFO (seq on event)
        self._nowq: deque[Event] = deque()
        self._seq = 0
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self._process_pool: list[Process] = []
        self.events_processed = 0
        self.strict = strict
        #: bound CheckContext (kernel checker); None = dormant, zero-cost
        self.checks = None
        if sched == "wheel":
            #: occupied calendar slots: absolute slot number -> entry list
            self._buckets: dict[int, list] = {}
            #: heap of occupied slot numbers (each pushed exactly once)
            self._slot_heap: list[int] = []
            #: far-future events beyond the calendar window
            self._overflow: list[tuple[int, int, Event]] = []
            #: the slot currently being drained, as a (time, seq, event)
            #: heap so same-slot inserts keep exact order; persistent
            #: list object (the run loop holds a local reference)
            self._active: list[tuple[int, int, Event]] = []
            self._active_slot = -1
            self._wheel_limit = _WHEEL_SLOTS
            self._insert = self._insert_wheel
            self._heap = None
        else:
            self._heap: list[tuple[int, int, Event]] = []
            self._insert = self._insert_heap

    # `now` is a plain attribute for speed; `_now` remains as a
    # compatibility alias for checkers and tests
    @property
    def _now(self) -> int:
        return self.now

    @_now.setter
    def _now(self, value: int) -> None:
        self.now = value

    # -- event factories --------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def pooled_event(self, name: str = "") -> Event:
        """An :class:`Event` that is recycled after dispatch.

        For kernel-internal and resource-layer use: the caller must
        guarantee nothing references the event once its callbacks have
        run (see the module pooling invariant)."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._value = None
            ev._ok = True
            ev._triggered = False
            ev._processed = False
            ev.name = name
            return ev
        ev = Event(self, name)
        ev._recycle = 2
        return ev

    def fired_event(self, value: Any = None, name: str = "") -> Event:
        """A pooled event already scheduled to succeed at the current
        instant — the one-call form of ``pooled_event().succeed(v)``."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._ok = True
            ev.name = name
        else:
            ev = Event(self, name)
            ev._recycle = 2
        ev._value = value
        ev._triggered = True
        ev._processed = False
        self._seq = seq = self._seq + 1
        ev._seq = seq
        self._nowq.append(ev)
        return ev

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            t = pool.pop()
            # minimal reset: pool entries are processed timeouts, so
            # _ok/_defunct/_pinned/_triggered are already in the right
            # state and callbacks is already the empty list
            t._value = value
            t._processed = False
            t._delay = delay
            if delay == 0:
                self._seq = seq = self._seq + 1
                t._seq = seq
                self._nowq.append(t)
            else:
                self._insert(self.now + int(delay), t)
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def spawn(self, generator: Generator, name: str = "") -> None:
        """Start a fire-and-forget process whose bookkeeping object is
        recycled when it finishes.

        Unlike :meth:`process` this returns no handle — by design: the
        process object goes back to a free list the moment its
        completion event is dispatched, so no reference may outlive it
        (no ``interrupt``, no ``yield``-ing it, no reading ``.value``).
        """
        pool = self._process_pool
        if pool:
            p = pool.pop()
            p._value = None
            p._ok = True
            p._triggered = False
            p._processed = False
            p.name = name
        else:
            p = Process.__new__(Process)
            p.sim = self
            p.callbacks = []
            p._value = None
            p._ok = True
            p._triggered = False
            p._processed = False
            p._defunct = False
            p._pinned = False
            p._recycle = 3
            p.name = name
            p._rcb = p._resume
        p._generator = generator
        p._waiting_on = None
        init = self.timeout(0)
        init.callbacks.append(p._rcb)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if delay == 0:
            self._seq = seq = self._seq + 1
            event._seq = seq
            self._nowq.append(event)
        else:
            self._insert(self.now + int(delay), event)

    def _insert_heap(self, when: int, event: Event) -> None:
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (when, seq, event))

    def _insert_wheel(self, when: int, event: Event) -> None:
        self._seq = seq = self._seq + 1
        s = when >> _WHEEL_SHIFT
        if s <= self._active_slot:
            # insert into the slot currently being drained: keep order
            # by pushing into the active mini-heap
            heapq.heappush(self._active, (when, seq, event))
        elif s < self._wheel_limit:
            buckets = self._buckets
            b = buckets.get(s)
            if b is None:
                buckets[s] = [(when, seq, event)]
                heapq.heappush(self._slot_heap, s)
            else:
                b.append((when, seq, event))
        else:
            heapq.heappush(self._overflow, (when, seq, event))

    def _refill_wheel(self) -> bool:
        """Advance to the next occupied calendar slot, cascading a
        window of overflow events in first if the calendar is empty.
        Returns False when nothing at all is scheduled."""
        sh = self._slot_heap
        if not sh:
            ov = self._overflow
            if not ov:
                return False
            # cascade: re-anchor the window at the earliest overflow
            # event and pull everything now inside it into the calendar
            base = ov[0][0] >> _WHEEL_SHIFT
            limit = base + _WHEEL_SLOTS
            self._wheel_limit = limit
            buckets = self._buckets
            heappush, heappop = heapq.heappush, heapq.heappop
            while ov and (ov[0][0] >> _WHEEL_SHIFT) < limit:
                entry = heappop(ov)
                s = entry[0] >> _WHEEL_SHIFT
                b = buckets.get(s)
                if b is None:
                    buckets[s] = [entry]
                    heappush(sh, s)
                else:
                    b.append(entry)
        s = heapq.heappop(sh)
        active = self._active
        active += self._buckets.pop(s)
        heapq.heapify(active)
        self._active_slot = s
        return True

    def _pop_next(self) -> Optional[Event]:
        """The next live event in (time, seq) order, advancing the
        clock; None when nothing is scheduled.  Defunct events are
        discarded without running their callbacks."""
        nowq = self._nowq
        if self.sched == "wheel":
            active = self._active
            while True:
                if nowq:
                    if active and active[0][0] <= self.now and active[0][1] < nowq[0]._seq:
                        event = heapq.heappop(active)[2]
                    else:
                        event = nowq.popleft()
                elif active:
                    when = active[0][0]
                    event = heapq.heappop(active)[2]
                    self.now = when
                else:
                    if not self._refill_wheel():
                        return None
                    continue
                if event._defunct:
                    continue
                return event
        heap = self._heap
        while True:
            if nowq:
                if heap and heap[0][0] <= self.now and heap[0][1] < nowq[0]._seq:
                    event = heapq.heappop(heap)[2]
                else:
                    event = nowq.popleft()
            elif heap:
                when = heap[0][0]
                event = heapq.heappop(heap)[2]
                self.now = when
            else:
                return None
            if event._defunct:
                continue
            return event

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`SimulationError` when nothing is scheduled;
        cancelled (defunct) events are skipped, not dispatched.
        """
        event = self._pop_next()
        if event is None:
            raise SimulationError("cannot step: no events are scheduled")
        if self.checks is not None:
            self.checks.on_event_dispatch(self, event)
        self.events_processed += 1
        event._processed = True
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for cb in callbacks:
                cb(event)
        r = event._recycle
        if r and not event._pinned:
            if r == 1:
                pool = self._timeout_pool
                if len(pool) < _TIMEOUT_POOL_CAP:
                    pool.append(event)
            elif r == 2:
                pool = self._event_pool
                if len(pool) < _EVENT_POOL_CAP:
                    pool.append(event)
            else:
                event._generator = None
                pool = self._process_pool
                if len(pool) < _PROCESS_POOL_CAP:
                    pool.append(event)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if none is queued."""
        if self._nowq:
            return self.now
        if self.sched == "wheel":
            if self._active:
                return self._active[0][0]
            if self._slot_heap:
                return min(self._buckets[self._slot_heap[0]])[0]
            if self._overflow:
                return self._overflow[0][0]
            return None
        return self._heap[0][0] if self._heap else None

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), an
        integer time, or an :class:`Event` (run until it fires, and
        return / raise its value).
        """
        stop: Optional[Event] = None
        horizon: Optional[int] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                stop._pinned = True
            else:
                horizon = int(until)
                if horizon < self.now:
                    raise SimulationError(
                        f"cannot run until {horizon} < now {self.now}"
                    )

        # The hot loop.  This is Simulator.step() inlined — every
        # function call removed here is removed a million times per
        # reproduced figure.
        nowq = self._nowq
        heappop = heapq.heappop
        tpool = self._timeout_pool
        epool = self._event_pool
        ppool = self._process_pool
        checks = self.checks
        wheel = self.sched == "wheel"
        active = self._active if wheel else self._heap
        refill = self._refill_wheel if wheel else None
        now = self.now
        dispatched = 0
        try:
            while True:
                if stop is not None and stop._processed:
                    break
                if nowq:
                    if active and active[0][0] <= now and active[0][1] < nowq[0]._seq:
                        event = heappop(active)[2]
                    else:
                        event = nowq.popleft()
                elif active:
                    when = active[0][0]
                    if horizon is not None and when > horizon:
                        break
                    event = heappop(active)[2]
                    self.now = now = when
                elif wheel and refill():
                    continue
                else:
                    if stop is not None:
                        raise SimulationError(
                            f"simulation ran out of events before {stop!r} fired"
                        )
                    break
                if event._defunct:
                    continue
                if checks is not None:
                    checks.on_event_dispatch(self, event)
                dispatched += 1
                event._processed = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                r = event._recycle
                if r and not event._pinned:
                    if r == 1:
                        if len(tpool) < _TIMEOUT_POOL_CAP:
                            tpool.append(event)
                    elif r == 2:
                        if len(epool) < _EVENT_POOL_CAP:
                            epool.append(event)
                    else:
                        event._generator = None
                        if len(ppool) < _PROCESS_POOL_CAP:
                            ppool.append(event)
        finally:
            self.events_processed += dispatched

        if horizon is not None:
            self.now = horizon
            return None
        if stop is not None:
            if stop._ok:
                return stop._value
            err = stop._value
            if isinstance(err, BaseException):
                raise err
            # a process can fail its event with a bare value through
            # Event internals; surface it as a kernel error instead of
            # "TypeError: exceptions must derive from BaseException"
            raise SimulationError(
                f"event {stop!r} failed with non-exception value {err!r}"
            )
        return None
