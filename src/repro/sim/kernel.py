"""Discrete-event simulation kernel.

This is the substrate every hardware model in the reproduction runs on.
It is a small, deterministic, generator-based event loop in the style of
SimPy: *processes* are Python generators that ``yield`` events; the
kernel resumes a process when the event it waits on fires.

Simulated time is an integer number of **nanoseconds**.  Using integers
keeps event ordering exact and runs reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it; once the kernel pops it from the event
    heap its callbacks run and any waiting processes resume.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self.name = name

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule this event to fire successfully after ``delay`` ns."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Schedule this event to fire with an exception."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.succeed(value, delay=int(delay))


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`Event` instances.  When a yielded event
    fires OK, the generator resumes with ``event.value``; when it fires
    failed, the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        init = Event(sim, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause))

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if trigger.ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if self.callbacks or not self.sim.strict:
                # someone is waiting (or the user opted out of strict
                # crash-on-unobserved): deliver the failure to them
                self.fail(exc)
                return
            raise
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            self._generator.close()
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield Event instances"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from a different simulator")
        self._waiting_on = target
        if target._processed:
            # Already fired: resume immediately (at the current instant).
            poke = Event(self.sim, name=f"replay:{self.name}")
            poke.callbacks.append(self._resume)
            if target.ok:
                poke.succeed(target._value)
            else:
                poke.fail(target._value)
            self._waiting_on = poke
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.sim is not self.sim:
                raise SimulationError("condition spans multiple simulators")
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _results(self) -> dict:
        return {ev: ev._value for ev in self._events if ev._processed and ev.ok}

    def _check(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._results())


class Simulator:
    """The event loop: a priority queue of (time, sequence, event).

    Parameters
    ----------
    strict:
        When True (default), an uncaught exception inside a process
        fails the process event instead of propagating, unless nothing
        waits on it.
    """

    def __init__(self, strict: bool = True):
        self._now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.strict = strict

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories --------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + int(delay), self._seq, event))

    def step(self) -> None:
        """Process the single next event."""
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("event heap corrupted: time went backwards")
        self._now = when
        event._run_callbacks()

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), an
        integer time, or an :class:`Event` (run until it fires, and
        return / raise its value).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._heap:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} fired"
                    )
                self.step()
            if stop.ok:
                return stop._value
            raise stop._value

        horizon = int(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now {self._now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
