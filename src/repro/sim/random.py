"""Deterministic random streams for the simulation.

Every stochastic model component draws from its own named stream so
that adding a component never perturbs the draws of another — runs stay
reproducible and comparable across schemes.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional

__all__ = ["RandomStream", "StreamFactory"]

#: memoized lognormal parameters keyed by (base_ns, cv) — pure math,
#: shared safely across streams and simulators
_JITTER_CACHE: dict = {}


class RandomStream:
    """A named, seeded wrapper around :class:`random.Random`."""

    def __init__(self, seed: int, name: str = ""):
        self.name = name
        self._rng = random.Random(seed)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def random(self) -> float:
        return self._rng.random()

    def zipf_index(self, n: int, theta: float = 0.99) -> int:
        """Draw an index in [0, n) with a Zipfian (hot-spot) skew.

        Uses the quick inverse-CDF approximation common in YCSB-style
        generators; exact Zipf is unnecessary for workload shaping.
        """
        if n <= 0:
            raise ValueError("zipf_index needs n >= 1")
        u = self._rng.random()
        # power-law transform: small u -> hot keys at the front
        idx = int(n * (u ** (1.0 / (1.0 - theta + 1e-9))) ) if theta < 1.0 else 0
        return min(idx, n - 1)

    def jitter_ns(self, base_ns: float, cv: float) -> int:
        """A non-negative latency sample around ``base_ns``.

        ``cv`` is the coefficient of variation; samples are drawn from a
        lognormal matched to (mean=base, cv) so the tail is realistic.
        """
        if base_ns <= 0:
            return 0
        if cv <= 0:
            return int(base_ns)
        # the (mu, sigma) transform is pure math over a handful of
        # distinct (base, cv) pairs; caching it keeps the RNG stream
        # untouched while skipping two logs and a sqrt per sample
        params = _JITTER_CACHE.get((base_ns, cv))
        if params is None:
            sigma2 = math.log(1.0 + cv * cv)
            mu = math.log(base_ns) - sigma2 / 2.0
            params = (mu, math.sqrt(sigma2))
            if len(_JITTER_CACHE) < 4096:
                _JITTER_CACHE[(base_ns, cv)] = params
        sample = int(self._rng.lognormvariate(params[0], params[1]))
        return sample if sample > 0 else 0


class StreamFactory:
    """Creates independent :class:`RandomStream` objects by name."""

    def __init__(self, root_seed: int = 0x5EED):
        self.root_seed = root_seed

    def stream(self, name: str, extra: Optional[int] = None) -> RandomStream:
        material = f"{self.root_seed}:{name}:{extra if extra is not None else ''}"
        digest = hashlib.sha256(material.encode()).digest()
        seed = int.from_bytes(digest[:8], "little")
        return RandomStream(seed, name=name)
