"""Unit helpers: all simulation time is integer nanoseconds."""

from __future__ import annotations

__all__ = [
    "NS", "US", "MS", "SEC",
    "KB", "MB", "GB", "KIB", "MIB", "GIB",
    "us", "ms", "sec", "to_us", "to_ms", "to_sec",
    "mb_per_sec", "gb_per_sec", "PAGE_SIZE",
]

NS = 1

#: memory/PRP page granularity shared by host memory and NVMe
PAGE_SIZE = 4096
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# decimal (storage-vendor) sizes
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
# binary sizes
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def us(x: float) -> int:
    """Microseconds -> ns."""
    return int(round(x * US))


def ms(x: float) -> int:
    """Milliseconds -> ns."""
    return int(round(x * MS))


def sec(x: float) -> int:
    """Seconds -> ns."""
    return int(round(x * SEC))


def to_us(t_ns: float) -> float:
    """ns -> microseconds."""
    return t_ns / US


def to_ms(t_ns: float) -> float:
    """ns -> milliseconds."""
    return t_ns / MS


def to_sec(t_ns: float) -> float:
    """ns -> seconds."""
    return t_ns / SEC


def mb_per_sec(x: float) -> float:
    """MB/s -> bytes/s."""
    return x * MB


def gb_per_sec(x: float) -> float:
    """GB/s -> bytes/s."""
    return x * GB
