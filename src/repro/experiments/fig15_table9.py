"""Fig. 15 + Table IX — availability: firmware hot-upgrade under I/O.

fio 4K random read (and write) runs against a BM-Store namespace while
the remote console triggers two SSD firmware hot-upgrades.  Outputs the
IOPS time series (the Fig. 15 dips), the upgrade total time, the I/O
pause time, and the BM-Store processing time — with zero I/O errors.
"""

from __future__ import annotations

from ..baselines import build_bmstore
from ..sim import SeriesRecorder
from ..sim.units import MS, sec
from .common import BM_NAMESPACE_BYTES, ExperimentResult

__all__ = ["run"]


def _one_direction(op: str, seed: int, activation_s: float) -> dict:
    rig = build_bmstore(num_ssds=1, seed=seed)
    fn = rig.provision("ns0", BM_NAMESPACE_BYTES)
    driver = rig.baremetal_driver(fn)
    sim = rig.sim
    series = SeriesRecorder(sim, window_ns=100 * MS)
    stats = {"ios": 0, "errors": 0}
    stop = {"flag": False}
    # paced workers: the figure needs a visible IOPS signal across ~9 s
    # of simulated time, not a saturating load (event-count budget)
    pace_ns = 2 * MS

    def io_worker(tag):
        lba = tag * 997
        while not stop["flag"]:
            if op == "read":
                info = yield driver.read(lba % (1 << 20), 1)
            else:
                info = yield driver.write(lba % (1 << 20), 1)
            lba += 7919
            stats["ios"] += 1
            series.tick()
            if not info.ok:
                stats["errors"] += 1
            yield sim.timeout(pace_ns)

    def orchestrate():
        yield sim.timeout(sec(0.5))
        resp1 = yield rig.console.hot_upgrade(0, version="FW-A",
                                              activation_s=activation_s)
        yield sim.timeout(sec(1.0))
        resp2 = yield rig.console.hot_upgrade(0, version="FW-B",
                                              activation_s=activation_s)
        yield sim.timeout(sec(0.5))
        stop["flag"] = True
        return resp1, resp2

    for tag in range(8):
        sim.process(io_worker(tag), name=f"io{tag}")
    resp1, resp2 = sim.run(sim.process(orchestrate(), name="orch"))
    sim.run(until=sim.now + sec(0.1))
    reports = [resp1.body, resp2.body]
    ts = series.series(0, sim.now)
    zero_windows = sum(1 for _, rate in ts if rate == 0.0)
    return {
        "op": op,
        "ios": stats["ios"],
        "errors": stats["errors"],
        "upgrades": reports,
        "avg_total_s": sum(r["total_s"] for r in reports) / 2,
        "avg_pause_s": sum(r["io_pause_s"] for r in reports) / 2,
        "processing_ms": reports[0]["processing_ms"],
        "series": ts,
        "paused_windows": zero_windows,
    }


def run(seed: int = 7, activation_s: float = 6.5) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig15+table9", "SSD firmware hot-upgrade under 4K random I/O"
    )
    for op in ("read", "write"):
        data = _one_direction(op, seed, activation_s)
        result.add(
            op=data["op"],
            ios=data["ios"],
            errors=data["errors"],
            avg_upgrade_total_s=round(data["avg_total_s"], 2),
            avg_io_pause_s=round(data["avg_pause_s"], 2),
            bmstore_processing_ms=round(data["processing_ms"], 1),
            paused_100ms_windows=data["paused_windows"],
        )
        result.notes.append(
            f"{op}: IOPS series has {data['paused_windows']} zeroed 100ms "
            f"windows across two upgrades (the Fig. 15 dips)"
        )
    result.notes.append(
        "paper: total 6-9 s, BM-Store processing ~100 ms, no I/O errors"
    )
    return result
