"""Fig. 1 — SPDK vhost bandwidth vs number of bound polling cores.

Four SSDs, fio seq read 128K qd256 x 4 jobs through vhost vdevs;
sweep the dedicated core count.  The paper's point: polling needs ~8
cores to reach only ~80% of the four drives' native bandwidth.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import build_native, build_spdk
from ..sim.units import GIB, MS
from ..workloads.fio import FioRun, FioSpec
from .common import ExperimentResult, scaled

__all__ = ["run"]

SEQ_SPEC = FioSpec("seq-r-256", "read", 128 * 1024, iodepth=256, numjobs=4)


def _native_4ssd_bandwidth(seed: int) -> float:
    rig = build_native(num_ssds=4, seed=seed)
    spec = scaled(SEQ_SPEC, 150 * MS, 40 * MS)
    run = FioRun(rig.sim, rig.drivers, spec, rig.streams)
    rig.sim.run(run.finished)
    return run.result().bandwidth_bps


def run(core_counts: Sequence[int] = (1, 2, 4, 6, 8, 10), seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig1", "SPDK vhost bandwidth vs dedicated CPU cores (4 SSDs, seq-r 128K)"
    )
    native_bw = _native_4ssd_bandwidth(seed)
    spec = scaled(SEQ_SPEC, 150 * MS, 40 * MS)
    for cores in core_counts:
        rig = build_spdk(
            num_ssds=4, num_cores=cores, num_vdevs=4,
            vdev_blocks=1024 * GIB // 4096, seed=seed,
        )
        run_ = FioRun(rig.sim, rig.vdevs, spec, rig.streams)
        rig.sim.run(run_.finished)
        res = run_.result()
        result.add(
            cores=cores,
            bandwidth_gbps=res.bandwidth_bps / 1e9,
            pct_of_native=100.0 * res.bandwidth_bps / native_bw,
            vhost_cpu_util=round(rig.target.cpu_utilization(), 3),
        )
    result.add(cores=0, bandwidth_gbps=native_bw / 1e9, pct_of_native=100.0,
               vhost_cpu_util=0.0)
    result.notes.append(
        "cores=0 row is the native 4-SSD baseline; paper: 8 cores reach ~80%"
    )
    return result
