"""Volumes demo: golden image -> snapshot -> thin clones -> CoW faults.

The CoW volume layer driven end to end over the out-of-band path: the
remote console snapshots a golden image and cuts thin clones of it over
NVMe-MI (no data copied — the clones share the golden image's physical
chunks through per-chunk refcounts), then tenant writes through the
standard NVMe front end fault the shared chunks apart one first-write
at a time.  Each cell is a self-contained seeded world, so fanning the
cells over :func:`repro.runner.parallel_map` workers returns payloads
byte-identical to a sequential loop — the determinism property the CI
job pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ..baselines import build_bmstore
from ..core.lba_mapping import CHUNK_BYTES
from ..runner import parallel_map
from .common import ExperimentResult

__all__ = ["VolumeCell", "run_cell", "run"]


@dataclass(frozen=True)
class VolumeCell:
    """One seeded snapshot/clone/CoW scenario (picklable)."""

    name: str
    seed: int
    chunks: int = 2      # golden-image size in mapping chunks
    clones: int = 2
    writes: int = 6      # paced writes per clone; the first per chunk faults


def run_cell(cell: VolumeCell) -> dict:
    """Run one cell in a fresh world; returns its JSON-able payload.

    Module-level (not a closure) so multiprocessing can import it by
    name in spawned workers.
    """
    rig = build_bmstore(num_ssds=2, seed=cell.seed)
    sim, console = rig.sim, rig.console

    rig.provision("golden", cell.chunks * CHUNK_BYTES)
    clone_fns: dict[str, object] = {}

    def admin():
        resp = yield console.create_snapshot("golden", "golden@base")
        if not resp.ok:
            raise RuntimeError(f"create_snapshot failed: {resp.body}")
        for i in range(cell.clones):
            fn_id = 10 + i
            resp = yield console.clone_volume("golden@base", f"clone{i}",
                                              fn=fn_id)
            if not resp.ok:
                raise RuntimeError(f"clone_volume failed: {resp.body}")
            clone_fns[f"clone{i}"] = rig.engine.sriov.function_by_id(fn_id)

    sim.run(sim.process(admin(), name=f"{cell.name}.admin"))
    volumes = rig.engine.volumes
    faults_before_write = volumes.cow_faults

    drivers = {key: rig.baremetal_driver(fn)
               for key, fn in sorted(clone_fns.items())}

    def writer(driver, tag: int):
        span = max(8, driver.num_blocks - 8)
        for k in range(cell.writes):
            # stride across the whole volume so every shared chunk
            # takes its first-write fault, not just chunk 0
            lba = (k * span // cell.writes + (tag + 1) * 9973) % span
            info = yield driver.write(lba, 8)
            if not info.ok:
                raise RuntimeError(f"clone write failed: status {info.status}")

    def drive_all():
        procs = [sim.process(writer(drivers[key], i), name=f"{key}.w")
                 for i, key in enumerate(sorted(drivers))]
        for proc in procs:
            yield proc

    sim.run(sim.process(drive_all(), name=f"{cell.name}.writers"))

    stat: dict = {}

    def fetch_stat():
        resp = yield console.volume_stat()
        if not resp.ok:
            raise RuntimeError(f"volume_stat failed: {resp.body}")
        stat.update(resp.body)

    sim.run(sim.process(fetch_stat(), name=f"{cell.name}.stat"))
    return {
        "cell": cell.name,
        "seed": cell.seed,
        "cow_faults_before_write": faults_before_write,
        "cow_faults": volumes.cow_faults,
        "shared_chunks": volumes.shared_chunk_count(),
        "clones": volumes.clones_created,
        "snapshots": volumes.snapshots_created,
        "stat": stat,
        # the byte-compared artifact: VOLUME_STAT for every volume and
        # snapshot, serialized with sorted keys
        "payload": json.dumps(stat, sort_keys=True),
        "sim_events": sim.events_processed,
    }


def run(seed: int = 7, cells: int = 4,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    specs = tuple(VolumeCell(name=f"cell{i}", seed=seed * 1_000_003 + i)
                  for i in range(cells))
    payloads = parallel_map(run_cell, specs, workers=workers)

    result = ExperimentResult(
        "volumes",
        "golden image -> snapshot -> thin clones -> CoW faults "
        f"({cells} seeded cells over NVMe-MI)",
    )
    for payload in payloads:
        result.add(
            cell=payload["cell"],
            snapshots=payload["snapshots"],
            clones=payload["clones"],
            cow_faults_pre=payload["cow_faults_before_write"],
            cow_faults=payload["cow_faults"],
            shared_chunks=payload["shared_chunks"],
            volumes=len(payload["stat"].get("volumes", [])),
            sim_events=payload["sim_events"],
        )
    zero_copy = all(p["cow_faults_before_write"] == 0 for p in payloads)
    result.notes.append(
        "thin-clone provisioning copied "
        + ("no" if zero_copy else "SOME")
        + " chunks: every CoW fault happened on first write, "
        f"{sum(p['cow_faults'] for p in payloads)} faults total across "
        f"{sum(p['clones'] for p in payloads)} clones"
    )
    return result
