"""Fig. 14 — mixed workloads in multiple VMs.

Two VMs run YCSB on RocksDB (MiniKV) while two VMs run Sysbench on
MySQL (MiniSQL), all sharing the same storage scheme (4 drives for
BM-Store/SPDK; VFIO gives each VM its own drive).  Reports per-VM
RocksDB throughput and MySQL latency.  Paper shape: BM-Store keeps
near-native performance and per-VM isolation under the mix.
"""

from __future__ import annotations

from dataclasses import replace

from ..apps.minikv import MiniKV, MiniKVConfig
from ..apps.minisql import MiniSQL, MiniSQLConfig
from ..sim.units import MS
from ..workloads.sysbench import SysbenchRun, SysbenchSpec
from ..workloads.ycsb import YCSBRun, YCSB_WORKLOADS
from .common import ExperimentResult, VM_SCHEMES, build_vm_targets, time_scale

__all__ = ["run"]

KV_SPEC = replace(YCSB_WORKLOADS["A"], record_count=30_000, threads=8,
                  runtime_ns=40 * MS, ramp_ns=4 * MS)
SQL_SPEC = SysbenchSpec(table_size=16000, threads=8,
                        runtime_ns=40 * MS, ramp_ns=4 * MS)


def run(seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig14", "Mixed YCSB(RocksDB) + Sysbench(MySQL) in 4 VMs"
    )
    factor = time_scale()
    kv_spec = replace(KV_SPEC, runtime_ns=int(KV_SPEC.runtime_ns * factor),
                      ramp_ns=int(KV_SPEC.ramp_ns * factor))
    sql_spec = replace(SQL_SPEC, runtime_ns=int(SQL_SPEC.runtime_ns * factor),
                       ramp_ns=int(SQL_SPEC.ramp_ns * factor))
    for scheme in VM_SCHEMES:
        sim, streams, targets = build_vm_targets(scheme, 4, seed=seed, num_ssds=4)
        # RocksDB's default WAL mode does not fsync each write; puts are
        # bounded by flush/compaction bandwidth and reads by SST lookups
        kv_dbs = [
            MiniKV(sim, targets[i], MiniKVConfig(sync_writes=False))
            for i in (0, 1)
        ]
        sql_dbs = [
            MiniSQL(sim, targets[i], MiniSQLConfig(buffer_pool_pages=80))
            for i in (2, 3)
        ]
        kv_runs = [
            YCSBRun(sim, db, kv_spec, streams, tag=f"{scheme}.kv{i}")
            for i, db in enumerate(kv_dbs)
        ]
        sql_runs = [
            SysbenchRun(sim, db, sql_spec, streams, tag=f"{scheme}.sql{i}")
            for i, db in enumerate(sql_dbs)
        ]
        # sequential load phases, then simultaneous timed runs
        for r in kv_runs:
            sim.run(sim.process(r.load(), name="kvload"))
        for r in sql_runs:
            sim.run(sim.process(r.prepare(), name="sqlprep"))
        for db in sql_dbs:
            db.start_checkpointer()
        for r in kv_runs:
            r.start()
        for r in sql_runs:
            r.start()
        sim.run(sim.all_of([r.finished for r in (*kv_runs, *sql_runs)]))
        kv_results = [r.result() for r in kv_runs]
        sql_results = [r.result() for r in sql_runs]
        result.add(
            scheme=scheme,
            rocksdb_kops=[round(r.throughput_ops / 1e3, 1) for r in kv_results],
            mysql_lat_ms=[round(r.avg_latency_ms, 2) for r in sql_results],
            mysql_tps=[round(r.tps) for r in sql_results],
        )
    result.notes.append(
        "paper: BM-Store near-native under the mix, consistent across VMs"
    )
    return result
