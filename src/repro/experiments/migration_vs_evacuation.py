"""Migration vs evacuation: what a tenant sees during each reaction.

The same small fleet takes the same surprise hot-removal twice; the only
difference is the control plane's reaction.  Under **drain** the
affected tenants stop at detection time and stay dark for the whole
cold copy (outage grows with volume size).  Under **migrate** they keep
serving through the iterative pre-copy rounds and go dark only for the
brief stop-and-copy cutover (outage is a size-independent constant).
The per-tenant rows compare dark availability windows and scheduled
outage directly — the measured numbers the walkthrough chapter quotes.
"""

from __future__ import annotations

from typing import Optional

from ..fleet import FleetRunConfig, build_fleet, make_tenants, run_fleet
from ..sim.units import MS
from .common import ExperimentResult

__all__ = ["run", "quick_config"]

NUM_SERVERS = 4
NUM_RACKS = 2
NUM_TENANTS = 6


def quick_config(reaction: str) -> FleetRunConfig:
    """The CI-sized fleet run with the given hot-removal reaction."""
    return FleetRunConfig(start_ns=100 * MS, spacing_ns=350 * MS,
                          tail_ns=100 * MS, activation_s=0.05,
                          reaction=reaction)


def _tenant_outcomes(report: dict, config: FleetRunConfig) -> list[dict]:
    """Per-migrated-tenant dark windows + protocol numbers."""
    window_ns = config.window_ns
    by_move = {mv["tenant"]: mv for mv in report["maintenance"]["moves"]}
    rows = []
    for trow in report["tenants"]:
        move = by_move.get(trow["tenant"])
        if move is None or "windows" not in trow:
            continue
        windows = trow["windows"]  # merged source+destination series
        dark = sum(1 for r in windows if r == 0.0)
        precopy_ok = None
        if move["mode"] == "migrate":
            # the windows fully inside the pre-copy phase: I/O must
            # flow in every one — the tenant only stops for cutover
            lo = -(-move["start_ns"] // window_ns)
            hi = (move["start_ns"]
                  + config.precopy_rounds * config.precopy_round_ns
                  ) // window_ns
            precopy = windows[lo:hi]
            precopy_ok = bool(precopy) and all(r > 0.0 for r in precopy)
        outage_ns = (move["handover_ns"] - move["start_ns"]
                     if move["mode"] == "drain"
                     else config.cutover_ns)
        rows.append({
            "tenant": trow["tenant"],
            "mode": move["mode"],
            "from": move["from"],
            "to": move["to"],
            "chunks": move.get("chunks", 0),
            "outage_ms": outage_ns / 1e6,
            "dark_windows": dark,
            "io_in_every_precopy_window": precopy_ok,
            "availability": trow["availability"],
            "ios": trow["ios"],
        })
    return rows


def run(seed: int = 7, workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    fleet_kw = dict(num_servers=NUM_SERVERS, num_racks=NUM_RACKS)
    reports = {}
    for reaction in ("drain", "migrate"):
        reports[reaction] = run_fleet(
            build_fleet(**fleet_kw), make_tenants(NUM_TENANTS, seed=seed),
            faults="hot-remove", seed=seed, workers=workers,
            config=quick_config(reaction))

    result = ExperimentResult(
        "migration-vs-evacuation",
        f"surprise hot-removal on a {NUM_SERVERS}-server fleet: "
        "drain (stop + cold copy) vs live migration (pre-copy + cutover)",
    )
    outcome_rows: dict[str, list[dict]] = {}
    for reaction, report in reports.items():
        rows = _tenant_outcomes(report, quick_config(reaction))
        outcome_rows[reaction] = rows
        for row in rows:
            result.add(
                reaction=reaction,
                tenant=row["tenant"],
                moved=f"{row['from']}->{row['to']}",
                chunks=row["chunks"],
                outage_ms=round(row["outage_ms"], 1),
                dark_windows=row["dark_windows"],
                io_in_every_precopy_window=row["io_in_every_precopy_window"],
                availability_pct=round(100 * row["availability"], 2),
                ios=row["ios"],
            )

    drain_dark = sum(r["dark_windows"] or 0 for r in outcome_rows["drain"])
    mig_dark = sum(r["dark_windows"] or 0 for r in outcome_rows["migrate"])
    drain_out = max((r["outage_ms"] for r in outcome_rows["drain"]), default=0)
    mig_out = max((r["outage_ms"] for r in outcome_rows["migrate"]), default=0)
    result.notes.append(
        f"availability dip: migrate {mig_dark} dark window(s) vs drain "
        f"{drain_dark}; worst outage migrate {mig_out:.0f} ms vs drain "
        f"{drain_out:.0f} ms")
    s_m, s_d = (reports["migrate"]["summary"], reports["drain"]["summary"])
    result.notes.append(
        f"fleet availability migrate {s_m['fleet_availability']:.2%} vs "
        f"drain {s_d['fleet_availability']:.2%}; migrate kept I/O flowing "
        "through every pre-copy round"
        if all(r["io_in_every_precopy_window"]
               for r in outcome_rows["migrate"]) else
        f"fleet availability migrate {s_m['fleet_availability']:.2%} vs "
        f"drain {s_d['fleet_availability']:.2%}")
    return result
