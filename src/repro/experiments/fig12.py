"""Fig. 12 — tail-latency closeness across four concurrent VMs.

Four VMs on BM-Store (4 SSDs) run the same fio case concurrently; the
paper shows each VM's latency distribution lying on top of the others
— no VM is starved.  We report per-VM p50/p99/p99.9 and the relative
spread of p99 across VMs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.metrics import LatencyStats
from ..baselines import build_bmstore
from ..host.vm import VirtualMachine
from ..sim.units import GIB, MS
from ..workloads.fio import FioRun, TABLE_IV_CASES
from .common import ExperimentResult, scaled

__all__ = ["run"]

_WINDOWS = {
    "rand-r-1": (20 * MS, 3 * MS),
    "rand-r-128": (12 * MS, 3 * MS),
    "rand-w-1": (15 * MS, 3 * MS),
    "rand-w-16": (12 * MS, 3 * MS),
    "seq-r-256": (120 * MS, 30 * MS),
    "seq-w-256": (200 * MS, 60 * MS),
}

DEFAULT_CASES = ("rand-r-1", "rand-r-128", "rand-w-16", "seq-r-256")


def run(cases: Optional[Sequence[str]] = None, num_vms: int = 4, seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig12", f"Tail latency of {num_vms} concurrent VMs on BM-Store"
    )
    for name in cases or DEFAULT_CASES:
        spec = scaled(TABLE_IV_CASES[name], *_WINDOWS[name])
        rig = build_bmstore(num_ssds=4, seed=seed)
        runs = []
        for v in range(num_vms):
            fn = rig.provision(f"vm{v}", 256 * GIB)
            vm = VirtualMachine(rig.host, f"vm{v}")
            driver = rig.vm_driver(vm, fn)
            runs.append(FioRun(rig.sim, [driver], spec, rig.streams, tag=f"f{v}"))
        rig.sim.run(rig.sim.all_of([r.finished for r in runs]))
        stats = [LatencyStats.from_samples(r.latencies()) for r in runs]
        p99s = [s.p99_ns for s in stats]
        result.add(
            case=name,
            p50_us=[round(s.p50_ns / 1e3, 1) for s in stats],
            p99_us=[round(s.p99_ns / 1e3, 1) for s in stats],
            p999_us=[round(s.p999_ns / 1e3, 1) for s in stats],
            p99_spread=(max(p99s) - min(p99s)) / max(p99s),
        )
    result.notes.append("paper: per-VM distributions nearly coincide")
    return result
