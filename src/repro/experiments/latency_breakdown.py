"""Per-stage latency breakdown of the BMS-Engine path (Fig. 6 steps).

Where the "about 3 us" of §V-B actually goes: derived from the
:class:`~repro.obs.IOSpan` records every observed command carries
through doorbell/fetch -> map+QoS pipeline -> back-end (adaptor + SSD +
zero-copy DMA) -> CQE relay, compared against the native path's total.
"""

from __future__ import annotations

from ..baselines import build_bmstore, build_native
from ..obs import MetricsRegistry
from .common import BM_NAMESPACE_BYTES, ExperimentResult

__all__ = ["run"]

#: (row label, span start stage, span end stage)
STEPS = (
    ("fetch", "doorbell", "fetch"),
    ("map+qos pipeline", "fetch", "qos"),
    ("forward to adaptor", "qos", "forward"),
    ("backend (SSD + zero-copy DMA)", "forward", "backend_done"),
    ("CQE relay to host", "backend_done", "complete"),
)


def _mean_us(spans, a: str, b: str) -> float:
    deltas = [d for d in (s.duration_ns(a, b) for s in spans) if d is not None]
    return sum(deltas) / len(deltas) / 1e3 if deltas else 0.0


def run(samples: int = 300, seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "latency-breakdown", "BMS-Engine per-stage latency (4K read, qd1)"
    )

    # native reference total
    nat = build_native(1, seed=seed)

    def native_flow():
        total = 0
        for i in range(samples):
            info = yield nat.driver().read((i * 977) % (1 << 20), 1)
            total += info.latency_ns
        return total / samples

    native_total_ns = nat.sim.run(nat.sim.process(native_flow()))

    # BM-Store with span recording
    obs = MetricsRegistry()
    rig = build_bmstore(num_ssds=1, seed=seed, obs=obs)
    driver = rig.baremetal_driver(rig.provision("ns0", BM_NAMESPACE_BYTES))

    def bms_flow():
        total = 0
        for i in range(samples):
            info = yield driver.read((i * 977) % (1 << 20), 1)
            total += info.latency_ns
        return total / samples

    bms_total_ns = rig.sim.run(rig.sim.process(bms_flow()))
    spans = obs.spans.complete()

    for label, a, b in STEPS:
        result.add(stage=label, mean_us=round(_mean_us(spans, a, b), 3))
    engine_span = _mean_us(spans, "doorbell", "complete")
    result.add(stage="engine span (doorbell->host CQE)",
               mean_us=round(engine_span, 3))
    result.add(stage="BM-Store end-to-end", mean_us=round(bms_total_ns / 1e3, 3))
    result.add(stage="native end-to-end", mean_us=round(native_total_ns / 1e3, 3))
    result.add(stage="extra vs native",
               mean_us=round((bms_total_ns - native_total_ns) / 1e3, 3))
    result.notes.append(
        'the paper\'s "about 3 us extra latency" decomposed over Fig. 6 steps'
    )
    return result
