"""Fig. 13(a) — TPC-C on MySQL in a VM, normalized transactions.

TPC-C (scale-reduced; DESIGN.md) drives MiniSQL inside a VM backed by
each scheme.  Paper shape: BM-Store near VFIO-native; BM-Store up to
13.4% more transactions than SPDK vhost.
"""

from __future__ import annotations

from dataclasses import replace

from ..apps.minisql import MiniSQL, MiniSQLConfig
from ..sim.units import MS
from ..workloads.tpcc import TPCCSpec, run_tpcc
from .common import ExperimentResult, VM_SCHEMES, build_vm_targets, time_scale

__all__ = ["run", "DEFAULT_SPEC"]

DEFAULT_SPEC = TPCCSpec(warehouses=2, threads=24, customers_per_district=100,
                        stock_per_warehouse=6000, runtime_ns=450 * MS, ramp_ns=20 * MS)


def run(spec: TPCCSpec = DEFAULT_SPEC, seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig13a", "TPC-C on MySQL (MiniSQL) in a VM: normalized transactions"
    )
    spec = replace(
        spec,
        runtime_ns=int(spec.runtime_ns * time_scale()),
        ramp_ns=int(spec.ramp_ns * time_scale()),
    )
    baseline_tpmc = None
    for scheme in VM_SCHEMES:
        sim, streams, targets = build_vm_targets(scheme, 1, seed=seed)
        db = MiniSQL(sim, targets[0], MiniSQLConfig(buffer_pool_pages=64))
        res = run_tpcc(sim, db, spec, streams, tag=f"tpcc-{scheme}")
        if baseline_tpmc is None:
            baseline_tpmc = res.tpmc
        result.add(
            scheme=scheme,
            tpmc=res.tpmc,
            tps=res.tps,
            normalized=res.tpmc / baseline_tpmc if baseline_tpmc else 0.0,
            avg_txn_us=res.latency.mean_us if res.latency else 0.0,
        )
    result.notes.append(
        "normalized to VFIO; paper: BM-Store ~= native, +13.4% over SPDK "
        "in the best case"
    )
    return result
