"""Burst absorption: fixed on-card DRAM vs the CXL-extended buffer tier.

Each cell runs the same seeded Fig. 14-style mixed burst twice — two
tenants patterned after the fig14 mix (a YCSB-like tenant issuing large
128 KiB reads next to a Sysbench-like tenant issuing 16 KiB mixed
read/write) slamming an engine whose on-card DRAM budget is deliberately
sized just above its setup footprint.  The ``fixed`` arm has nowhere to
put the burst's PRP lists and dies on ``out of memory``; the ``cxl`` arm
spills them into the CXL window, borrows slot buffer when the window
overflows, and completes.  A steady phase after the burst shows the
promote path handing spilled and borrowed capacity back.

Hot-remove cells surprise-remove backend slot 1 — a lender — mid-burst,
pinning the borrow-revocation path's determinism, then re-attach it and
finish the run.

Cells are self-contained seeded worlds, so fanning them over
:func:`repro.runner.parallel_map` workers returns payloads
byte-identical to a sequential loop — the property the CI determinism
job byte-compares.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ..baselines import build_bmstore
from ..core.cxl import CXLTimings
from ..runner import parallel_map
from ..sim import SimulationError
from ..sim.units import MIB
from .common import ExperimentResult

__all__ = ["BurstCell", "run_cell", "run"]


@dataclass(frozen=True)
class BurstCell:
    """One seeded burst scenario (picklable)."""

    name: str
    seed: int
    hot_remove: bool = False
    #: on-card headroom above the rig's setup footprint — the burst's
    #: PRP-list working set is sized to overflow this
    headroom_kib: int = 96
    #: engine-private CXL window; small enough that the burst also
    #: overflows into borrowed slot buffer
    window_kib: int = 128
    #: idle buffer DRAM per backend slot (half of it lendable), small
    #: enough that borrowing spans both slots
    slot_buffer_kib: int = 128
    kv_workers: int = 48
    kv_ops: int = 12
    sql_workers: int = 32
    sql_ops: int = 16
    steady_workers: int = 8
    steady_ops: int = 12


def _setup_bytes(cell: BurstCell) -> int:
    """The rig's chip-memory footprint before any I/O (self-calibrating:
    rings and the firmware image buffer move, the experiment follows)."""
    probe = build_bmstore(num_ssds=2, seed=cell.seed)
    return probe.engine.chip_memory.allocated


def _run_arm(cell: BurstCell, setup_bytes: int, cxl: bool) -> dict:
    """One world, one buffer configuration; returns the arm's payload."""
    rig = build_bmstore(
        num_ssds=2, seed=cell.seed,
        chip_memory_bytes=setup_bytes + cell.headroom_kib * 1024,
    )
    sim = rig.sim
    if cxl:
        rig.engine.cxl_tier(CXLTimings(
            window_bytes=cell.window_kib * 1024,
            slot_buffer_bytes=cell.slot_buffer_kib * 1024,
        ))
    fn_kv = rig.provision("kv", 128 * MIB)
    fn_sql = rig.provision("sql", 64 * MIB)
    drv_kv = rig.baremetal_driver(fn_kv)
    drv_sql = rig.baremetal_driver(fn_sql)

    arm: dict = {"arm": "cxl" if cxl else "fixed"}
    stats = {"ios": 0, "errors": 0}
    outstanding = {"n": 0}

    def worker(driver, tag: int, ops: int, blocks: int, write_every: int):
        lba = (tag * 7919 * blocks) % max(blocks, driver.num_blocks - blocks)
        for k in range(ops):
            if write_every and k % write_every == 0:
                info = yield driver.write(lba, blocks)
            else:
                info = yield driver.read(lba, blocks)
            stats["ios"] += 1
            if not info.ok:
                stats["errors"] += 1
            lba = (lba + 7919 * blocks) % (driver.num_blocks - blocks)
        outstanding["n"] -= 1

    def spawn(driver, count, ops, blocks, write_every, label):
        for tag in range(count):
            outstanding["n"] += 1
            sim.process(worker(driver, tag, ops, blocks, write_every),
                        name=f"{label}{tag}")

    def drain():
        while outstanding["n"] > 0:
            yield sim.timeout(50_000)

    def burst():
        # the whole mixed burst lands at once: 128 KiB YCSB-like reads
        # (32 pages -> one PRP list each) next to 16 KiB Sysbench-like
        # mixed I/O, far more in-flight lists than on-card headroom
        spawn(drv_kv, cell.kv_workers, cell.kv_ops, 32, 0, "kv")
        spawn(drv_sql, cell.sql_workers, cell.sql_ops, 4, 3, "sql")
        if cell.hot_remove:
            yield sim.timeout(200_000)
            removed = rig.engine.surprise_remove(1)
            arm["removed_lender"] = removed is not None
            yield sim.timeout(400_000)
            rig.engine.adaptor.slot_for(1).attach_ssd(removed)
        yield from drain()
        if cxl:
            # burst just drained: nothing has been handed back yet, so
            # the tier's current borrow level is the cell's peak
            arm["borrowed_peak_bytes"] = rig.engine.cxl.borrowed_bytes
            arm["spills_at_burst_end"] = rig.engine.cxl.spills
        # steady phase: the shrunken working set fits the recycled
        # on-card buffers again; promotes hand spilled capacity back
        spawn(drv_kv, cell.steady_workers, cell.steady_ops, 32, 0, "st")
        yield from drain()

    try:
        sim.run(sim.process(burst(), name=f"{cell.name}.burst"))
        arm["completed"] = True
    except SimulationError as exc:
        # the fixed-DRAM arm dies here: nowhere to put the burst's
        # PRP lists once the bump allocator hits its budget
        arm["completed"] = False
        arm["error"] = str(exc)
    arm["ios"] = stats["ios"]
    arm["errors"] = stats["errors"]
    arm["sim_events"] = sim.events_processed
    if cxl:
        arm["tier"] = rig.engine.cxl.stat()
    return arm


def run_cell(cell: BurstCell) -> dict:
    """Run both arms of one cell; returns its JSON-able payload.

    Module-level (not a closure) so multiprocessing can import it by
    name in spawned workers.
    """
    setup_bytes = _setup_bytes(cell)
    fixed = _run_arm(cell, setup_bytes, cxl=False)
    cxl = _run_arm(cell, setup_bytes, cxl=True)
    payload = {
        "cell": cell.name,
        "seed": cell.seed,
        "hot_remove": cell.hot_remove,
        "setup_bytes": setup_bytes,
        "headroom_kib": cell.headroom_kib,
        "fixed": fixed,
        "cxl": cxl,
    }
    payload["payload"] = json.dumps(payload, sort_keys=True)
    payload["sim_events"] = fixed["sim_events"] + cxl["sim_events"]
    return payload


def run(seed: int = 7, cells: int = 4,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    specs = tuple(
        BurstCell(name=f"cell{i}", seed=seed * 1_000_003 + i,
                  hot_remove=(i % 2 == 1))
        for i in range(cells)
    )
    payloads = parallel_map(run_cell, specs, workers=workers)

    result = ExperimentResult(
        "burst-absorption",
        "CXL buffer tier vs fixed on-card DRAM under a Fig. 14-style "
        f"mixed burst ({cells} seeded cells)",
    )
    for payload in payloads:
        f, c = payload["fixed"], payload["cxl"]
        tier = c["tier"]
        result.add(
            cell=payload["cell"],
            hot_remove=payload["hot_remove"],
            fixed_completed=f["completed"],
            fixed_ios=f["ios"],
            cxl_completed=c["completed"],
            cxl_ios=c["ios"],
            spills=tier["spills"],
            hit_ratio=tier["hit_ratio"],
            borrowed_peak_kib=c.get("borrowed_peak_bytes", 0) // 1024,
            promotes=tier["promotes"],
            revocations=tier["revocations"],
            sim_events=payload["sim_events"],
        )
    survived = sum(1 for p in payloads if p["cxl"]["completed"])
    died = sum(1 for p in payloads if not p["fixed"]["completed"])
    result.notes.append(
        f"the fixed-DRAM configuration dies on out-of-memory in {died}/"
        f"{len(payloads)} cells while the CXL tier completes {survived}/"
        f"{len(payloads)}; hot-remove cells pin borrow revocation when "
        "the lending slot is surprise-removed mid-burst"
    )
    return result
