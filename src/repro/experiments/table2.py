"""Table II — FPGA resource utilization per attached-SSD count."""

from __future__ import annotations

from ..core.fpga_resources import FPGAResourceModel
from .common import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult("table2", "FPGA resource utilization for BM-Store")
    model = FPGAResourceModel()
    for row in model.table_rows():
        result.add(
            ssds=row["ssds"],
            luts=f"{row['luts']} ({row['luts_pct']}%)",
            registers=f"{row['registers']} ({row['registers_pct']}%)",
            brams=f"{row['brams']:.0f} ({row['brams_pct']}%)",
            urams=f"{row['urams']:.1f} ({row['urams_pct']}%)",
            clock=f"{row['clock_mhz']}MHz",
        )
    result.notes.append(
        f"headroom: up to {model.max_supported_ssds()} SSDs fit the ZU19EG"
    )
    return result
