"""Experiment harness: one module per paper table/figure.

Each module's ``run()`` returns an :class:`ExperimentResult`; the
``benchmarks/`` tree regenerates every artifact from these, and
``examples/reproduce_paper.py`` prints them all.
"""

from . import (
    ablations,
    extensions,
    fig1,
    fig8_table5,
    fig9_table7,
    fig10,
    fig11,
    fig12,
    fig13a,
    fig13b_table8,
    fig14,
    fig15_table9,
    latency_breakdown,
    table1,
    table2,
    table6,
    tco_analysis,
)
from .common import (
    BM_NAMESPACE_BYTES,
    ExperimentResult,
    build_vm_targets,
    quick_cases,
    run_case_bmstore,
    run_case_bmstore_vm,
    run_case_native,
    run_case_spdk_vm,
    run_case_vfio_vm,
    scaled,
    time_scale,
)

__all__ = [
    "ablations",
    "extensions",
    "fig1",
    "fig8_table5",
    "fig9_table7",
    "fig10",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b_table8",
    "fig14",
    "fig15_table9",
    "latency_breakdown",
    "table1",
    "table2",
    "table6",
    "tco_analysis",
    "BM_NAMESPACE_BYTES",
    "ExperimentResult",
    "build_vm_targets",
    "quick_cases",
    "run_case_bmstore",
    "run_case_bmstore_vm",
    "run_case_native",
    "run_case_spdk_vm",
    "run_case_vfio_vm",
    "scaled",
    "time_scale",
]
