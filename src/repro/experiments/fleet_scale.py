"""Fleet scale — the Fig. 15 / Table IX story from one card to a fleet.

A 24-server / 6-rack fleet of seeded BM-Store worlds hosts 48 tenants
(profiles composed from the Table IV / YCSB / TPC-C tables), then rides
a failure-domain-aware rolling firmware hot-upgrade: every server is
upgraded exactly once, at most one per rack per wave, under live tenant
I/O.  The output is fleet-wide availability per wave plus the SLO /
error-budget ledger — the paper's large-scale-deployment claim made
measurable.
"""

from __future__ import annotations

from typing import Optional

from ..fleet import FleetRunConfig, build_fleet, make_tenants, run_fleet
from .common import ExperimentResult

__all__ = ["run"]

NUM_SERVERS = 24
NUM_RACKS = 6
NUM_TENANTS = 48


def run(seed: int = 7, policy: str = "spread", faults: Optional[str] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    fleet = build_fleet(num_servers=NUM_SERVERS, num_racks=NUM_RACKS)
    tenants = make_tenants(NUM_TENANTS, seed=seed)
    report = run_fleet(fleet, tenants, policy=policy, faults=faults,
                       seed=seed, workers=workers,
                       config=FleetRunConfig.quick())

    result = ExperimentResult(
        "fleet-scale",
        f"rolling hot-upgrade across {NUM_SERVERS} servers "
        f"({NUM_RACKS} failure domains, {NUM_TENANTS} tenants, {policy})",
    )
    for wave in report["waves"]:
        result.add(
            wave=wave["wave"],
            servers=len(wave["servers"]),
            domains=len(wave["domains"]),
            fleet_availability_pct=round(100 * wave["fleet_availability"], 2),
            avg_upgrade_total_s=round(wave["avg_upgrade_total_s"], 3),
            avg_io_pause_s=round(wave["avg_io_pause_s"], 3),
            upgrades_ok=wave["upgrades_ok"],
        )
    summary = report["summary"]
    result.notes.append(
        f"fleet availability {summary['fleet_availability']:.2%} incl. "
        f"planned pauses; {summary['ios']} tenant I/Os, "
        f"{summary['errors']} errors; "
        f"{summary['servers_upgraded']}/{NUM_SERVERS} servers upgraded"
    )
    result.notes.append(
        f"SLO (maintenance excluded): "
        f"{summary['slo_availability_violations']} availability and "
        f"{summary['slo_p99_violations']} p99 violations across "
        f"{len(report['tenants'])} tenants"
    )
    result.notes.append(
        "paper Fig. 15/Table IX measures one card's upgrade pause; this "
        "extends it to fleet-wide availability per failure-domain wave"
    )
    if faults:
        m = report["maintenance"]
        result.notes.append(
            f"faults={faults}: drained {len(m['drained'])} server(s), "
            f"re-placed {len(m['moves'])} tenant(s)"
        )
    return result
