"""Fig. 9 + Table VII — single-VM performance: VFIO vs BM-Store vs SPDK.

All six fio cases inside one VM (4 vCPU / 4 GB), each scheme on one
backing drive; SPDK additionally burns one host polling core.  Paper
shape: BM-Store at 95.6-102.7% of VFIO (81.2% on rand-w-1); SPDK at
63-96% of VFIO, with seq-r-256 the worst case (BM-Store 62.9% faster).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runner import RunSpec, run_specs
from .common import ExperimentResult, quick_cases

__all__ = ["run", "PAPER_LATENCY_US"]

#: Table VII reference (us): case -> (VFIO, BM-Store, SPDK vhost)
PAPER_LATENCY_US = {
    "rand-r-1": (79.7, 83.7, 82.7),
    "rand-r-128": (1647.0, 1666.0, 1893.4),
    "rand-w-1": (14.9, 19.6, 19.2),
    "rand-w-16": (264.7, 275.5, 305.3),
    "seq-r-256": (40990.4, 40075.6, 65197.1),
    "seq-w-256": (98819.2, 100615.0, 112245.7),
}


def run(cases: Optional[Sequence[str]] = None, seed: int = 7,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult.

    ``workers`` fans the (scheme x case) grid over processes (default:
    REPRO_WORKERS or sequential); results are identical either way.
    """
    result = ExperimentResult(
        "fig9+table7", "Single-VM performance with one disk: VFIO / BM-Store / SPDK vhost"
    )
    specs = quick_cases(cases)
    schemes = ("vfio-vm", "bmstore-vm", "spdk-vm")
    grid = run_specs(
        [RunSpec(scheme=scheme, case=spec.name, seed=seed)
         for spec in specs for scheme in schemes],
        workers=workers,
    )
    by_cell = {(p["scheme"], p["case"]): p for p in grid}
    for spec in specs:
        vfio = by_cell[("vfio-vm", spec.name)]
        bms = by_cell[("bmstore-vm", spec.name)]
        spdk = by_cell[("spdk-vm", spec.name)]
        paper = PAPER_LATENCY_US.get(spec.name, (None, None, None))
        result.add(
            case=spec.name,
            vfio_kiops=vfio["iops"] / 1e3,
            bmstore_kiops=bms["iops"] / 1e3,
            spdk_kiops=spdk["iops"] / 1e3,
            bmstore_vs_vfio=bms["iops"] / vfio["iops"] if vfio["iops"] else 0.0,
            spdk_vs_vfio=spdk["iops"] / vfio["iops"] if vfio["iops"] else 0.0,
            vfio_lat_us=vfio["avg_latency_us"],
            bmstore_lat_us=bms["avg_latency_us"],
            spdk_lat_us=spdk["avg_latency_us"],
            paper_lat_us=paper,
        )
    result.notes.append(
        "SPDK also dedicates one host core (the 25% extra CPU the paper cites)"
    )
    return result
