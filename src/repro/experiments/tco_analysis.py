"""§VI-C — TCO analysis: SPDK vhost vs BM-Store per-server economics."""

from __future__ import annotations

from ..analysis.tco import BufferEconomics, TCOModel
from .common import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "tco", "TCO analysis (128 HT / 1024 GB / 16 SSD server)"
    )
    model = TCOModel()
    comparison = model.compare()
    for report in (comparison["baseline"], comparison["candidate"]):
        result.add(
            scheme=report.scheme,
            sellable_instances=report.sellable_instances,
            stranded_ht=report.stranded_hyperthreads,
            stranded_mem_gb=report.stranded_memory_gb,
            stranded_ssds=report.stranded_ssds,
            tco_per_instance=round(report.tco_per_instance, 1),
        )
    result.add(
        scheme="delta",
        sellable_instances=f"+{comparison['extra_instances_pct']:.1f}%",
        stranded_ht="",
        stranded_mem_gb="",
        stranded_ssds="",
        tco_per_instance=f"-{comparison['tco_reduction_pct']:.1f}%",
    )
    result.notes.append("paper: sell 14.3% more instances, >= 11.3% TCO reduction")

    buffers = BufferEconomics()
    economics = buffers.compare()
    result.add(
        scheme="stranded buffer (tenants/rack)",
        sellable_instances=economics["stranded_tenants_per_rack"],
        stranded_ht="",
        stranded_mem_gb="",
        stranded_ssds="",
        tco_per_instance="",
    )
    result.add(
        scheme="shared buffer (tenants/rack)",
        sellable_instances=economics["shared_tenants_per_rack"],
        stranded_ht="",
        stranded_mem_gb="",
        stranded_ssds="",
        tco_per_instance=f"+{economics['extra_tenants_pct']:.0f}%",
    )
    result.notes.append(
        "beyond the paper: with the CXL buffer tier + inter-SSD sharing a "
        "tenant reserves only its steady buffer on-card and bursts hit the "
        f"rack pool, packing {economics['shared_tenants_per_rack']} tenants "
        f"per rack vs {economics['stranded_tenants_per_rack']} when every "
        "tenant strands its peak on its own card"
    )
    return result
