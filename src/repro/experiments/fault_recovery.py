"""Fault recovery — availability timeline under injected failures.

For each fault class, a BM-Store world runs a paced 4K random-read
load while one deterministic fault fires mid-run (the fig15 recipe:
paced workers + a :class:`~repro.sim.SeriesRecorder` so the IOPS dip
is visible).  The output is an availability report per class: the
steady-state IOPS before the fault, the depth of the dip, and how
long the service took to climb back above 80% of baseline.

Every class must report a *finite* recovery time: faults that never
dip the paced load (e.g. a lane-width degrade under light traffic)
legitimately report 0 ms.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..baselines import build_bmstore
from ..faults import FaultPlan
from ..obs import MetricsRegistry
from ..runner import parallel_map
from ..sim import SeriesRecorder
from ..sim.units import MS, ms, sec, to_ms
from .common import BM_NAMESPACE_BYTES, ExperimentResult

__all__ = ["run", "FAULT_CLASS_NAMES"]

#: when the fault fires / how long the world is observed
FAULT_AT = sec(1.0)
RUN_NS = sec(2.2)
WINDOW_NS = 50 * MS
#: a window below this fraction of baseline counts as "dipped"
HEALTHY_FRACTION = 0.8


def _policy(**overrides) -> dict:
    """Generous supervision: recovery, not retry-exhaustion, is under test."""
    knobs = dict(timeout_ns=ms(60), max_retries=10,
                 backoff_base_ns=ms(5), backoff_cap_ns=ms(100))
    knobs.update(overrides)
    return knobs


def _fw_orchestrate(rig) -> Iterator:
    """Trigger the firmware upgrade whose activation the plan stalls."""
    yield rig.sim.timeout(FAULT_AT - rig.sim.now)
    yield rig.console.hot_upgrade(0, version="FW-X", activation_s=0.1)


def _classes() -> list[tuple[str, FaultPlan, Optional[Callable]]]:
    return [
        ("media-error",
         FaultPlan()
         .media_error("bssd0", at_ns=FAULT_AT, duration_ns=250 * MS, op="any")
         .with_driver_policy(**_policy()),
         None),
        ("die-stall",
         FaultPlan()
         .die_stall("bssd0", at_ns=FAULT_AT, duration_ns=250 * MS,
                    stall_ns=ms(10))
         .with_driver_policy(**_policy()),
         None),
        ("cmd-drop",
         FaultPlan()
         .cmd_drop("bssd0", at_ns=FAULT_AT, count=8)
         .with_driver_policy(**_policy(timeout_ns=ms(20))),
         None),
        ("link-flap",
         FaultPlan()
         .link_flap("bssd0", at_ns=FAULT_AT, duration_ns=250 * MS)
         .with_driver_policy(**_policy()),
         None),
        ("width-degrade",
         FaultPlan()
         .width_degrade("bssd0", at_ns=FAULT_AT, lanes=1,
                        duration_ns=400 * MS),
         None),
        ("hot-remove",
         FaultPlan()
         .hot_remove(0, at_ns=FAULT_AT, reattach_after_ns=250 * MS)
         .with_driver_policy(**_policy()),
         None),
        # the activation pause is a *legitimate* outage: the timeout must
        # outlast it or the driver fights the upgrade with aborts
        ("fw-stall",
         FaultPlan()
         .firmware_stall("bssd0", extra_ns=400 * MS)
         .with_driver_policy(**_policy(timeout_ns=sec(2.0))),
         _fw_orchestrate),
    ]


FAULT_CLASS_NAMES = tuple(name for name, _plan, _orch in _classes())


def _counter_total(obs: MetricsRegistry, name: str) -> int:
    return int(sum(c.value for c in obs.counters(name).values()))


def _availability(ts: list[tuple[int, float]]) -> dict[str, Any]:
    """Baseline / dip / recovery from one IOPS time series."""
    pre = [r for t, r in ts if 200 * MS <= t < FAULT_AT]
    baseline = sum(pre) / len(pre) if pre else 0.0
    post = [(t, r) for t, r in ts if t >= FAULT_AT]
    threshold = HEALTHY_FRACTION * baseline
    dipped = [t for t, r in post if r < threshold]
    if dipped:
        last_dip = dipped[-1]
        recovery_ms = to_ms(last_dip + WINDOW_NS - FAULT_AT)
        recovered = any(t > last_dip and r >= threshold for t, r in post)
    else:
        recovery_ms = 0.0
        recovered = True
    return {
        "baseline_iops": baseline,
        "dip_iops": min((r for _, r in post), default=0.0),
        "recovery_ms": recovery_ms,
        "recovered": recovered,
    }


def _run_class(name: str, plan: FaultPlan, orchestrate: Optional[Callable],
               seed: int) -> dict[str, Any]:
    obs = MetricsRegistry()
    rig = build_bmstore(num_ssds=1, seed=seed, obs=obs, faults=plan)
    fn = rig.provision("ns0", BM_NAMESPACE_BYTES)
    driver = rig.baremetal_driver(fn)
    sim = rig.sim
    series = SeriesRecorder(sim, window_ns=WINDOW_NS)
    stats = {"ios": 0, "errors": 0}
    stop = {"flag": False}
    pace_ns = 2 * MS

    def io_worker(tag):
        lba = tag * 997
        while not stop["flag"]:
            info = yield driver.read(lba % (1 << 20), 1)
            lba += 7919
            stats["ios"] += 1
            if info.ok:
                series.tick()
            else:
                stats["errors"] += 1
            yield sim.timeout(pace_ns)

    def observe():
        if orchestrate is not None:
            yield from orchestrate(rig)
        if sim.now < RUN_NS:
            yield sim.timeout(RUN_NS - sim.now)
        stop["flag"] = True

    for tag in range(8):
        sim.process(io_worker(tag), name=f"io{tag}")
    sim.run(sim.process(observe(), name="observe"))
    # drain in-flight retries; bounded because the watchdog never stops
    sim.run(until=sim.now + 200 * MS)

    out = {"fault": name, "ios": stats["ios"], "errors": stats["errors"]}
    out.update(_availability(series.series(0, RUN_NS)))
    out["injected"] = rig.faults.injected if rig.faults is not None else 0
    out["retries"] = _counter_total(obs, "driver_retries")
    out["timeouts"] = _counter_total(obs, "driver_timeouts")
    out["aborts"] = _counter_total(obs, "driver_aborts")
    out["bmsc_recoveries"] = _counter_total(obs, "bmsc_recoveries")
    return out


def _run_class_by_name(args: tuple[str, int]) -> dict[str, Any]:
    """Worker entry: rebuild the (unpicklable) plan from its class name."""
    name, seed = args
    for cls_name, plan, orchestrate in _classes():
        if cls_name == name:
            return _run_class(name, plan, orchestrate, seed)
    raise ValueError(f"unknown fault class {name!r}")


def run(seed: int = 7, only: Optional[str] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult.

    ``workers`` fans the fault classes over processes (default:
    REPRO_WORKERS or sequential); each class builds its own world, so
    the report is identical either way.
    """
    result = ExperimentResult(
        "fault-recovery", "availability under injected faults (bmstore)"
    )
    names = [name for name in FAULT_CLASS_NAMES if not only or only in name]
    for data in parallel_map(
        _run_class_by_name, [(name, seed) for name in names], workers=workers
    ):
        result.add(
            fault=data["fault"],
            baseline_kiops=round(data["baseline_iops"] / 1e3, 2),
            dip_kiops=round(data["dip_iops"] / 1e3, 2),
            recovery_ms=round(data["recovery_ms"], 1),
            recovered=data["recovered"],
            ios=data["ios"],
            errors=data["errors"],
            injected=data["injected"],
            retries=data["retries"],
            timeouts=data["timeouts"],
            aborts=data["aborts"],
            bmsc_recoveries=data["bmsc_recoveries"],
        )
    result.notes.append(
        f"fault fires at t={to_ms(FAULT_AT):.0f} ms; recovery = last "
        f"{to_ms(WINDOW_NS):.0f} ms window below "
        f"{HEALTHY_FRACTION:.0%} of pre-fault IOPS"
    )
    result.notes.append(
        "width-degrade does not dip a paced load (recovery 0 ms is the "
        "expected finite answer); hot-remove recovery includes the "
        "BMS-Controller watchdog re-attach"
    )
    return result
