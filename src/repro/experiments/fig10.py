"""Fig. 10 — BM-Store total bandwidth vs number of back-end SSDs.

Bare-metal seq-r-256 on one BM-Store namespace striped round-robin
over 1..4 drives.  The paper's claim: bandwidth scales linearly and
saturates all four drives (~12.9 GB/s of P4510 sequential read).
"""

from __future__ import annotations

from typing import Sequence

from ..sim.units import MS
from ..workloads.fio import FioSpec
from .common import ExperimentResult, run_case, scaled

__all__ = ["run"]

SPEC = FioSpec("seq-r-256", "read", 128 * 1024, iodepth=256, numjobs=4)


def run(ssd_counts: Sequence[int] = (1, 2, 3, 4), seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig10", "BM-Store total bandwidth vs number of SSDs (bare metal, seq-r-256)"
    )
    spec = scaled(SPEC, 150 * MS, 40 * MS)
    single = None
    for n in ssd_counts:
        res = run_case("bmstore", spec, seed=seed, num_ssds=n)
        bw = res.bandwidth_bps
        if single is None:
            single = bw
        result.add(
            ssds=n,
            bandwidth_gbps=bw / 1e9,
            scaling=bw / single,
            per_ssd_gbps=bw / n / 1e9,
        )
    result.notes.append("paper: linear scaling, 4 SSDs saturated at ~12.9 GB/s")
    return result
