"""Fig. 13(b) + Table VIII — Sysbench OLTP on MySQL in a VM.

Queries/transactions (normalized to VFIO) and average transaction
latency per scheme.  Paper shape: BM-Store within ~2.6% of native
latency and ~8.1% more queries than SPDK; SPDK adds ~11.2% latency.
"""

from __future__ import annotations

from dataclasses import replace

from ..apps.minisql import MiniSQL, MiniSQLConfig
from ..sim.units import MS
from ..workloads.sysbench import SysbenchSpec, run_sysbench
from .common import ExperimentResult, VM_SCHEMES, build_vm_targets, time_scale

__all__ = ["run", "DEFAULT_SPEC", "PAPER_LATENCY_RATIOS"]

DEFAULT_SPEC = SysbenchSpec(table_size=24000, threads=16,
                            runtime_ns=50 * MS, ramp_ns=5 * MS)

#: Table VIII: latency overhead vs VFIO
PAPER_LATENCY_RATIOS = {"bmstore": 1.026, "spdk": 1.112}


def run(spec: SysbenchSpec = DEFAULT_SPEC, seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig13b+table8", "Sysbench OLTP on MySQL (MiniSQL) in a VM"
    )
    spec = replace(
        spec,
        runtime_ns=int(spec.runtime_ns * time_scale()),
        ramp_ns=int(spec.ramp_ns * time_scale()),
    )
    baseline = None
    for scheme in VM_SCHEMES:
        sim, streams, targets = build_vm_targets(scheme, 1, seed=seed)
        db = MiniSQL(sim, targets[0], MiniSQLConfig(buffer_pool_pages=96))
        res = run_sysbench(sim, db, spec, streams, tag=f"sb-{scheme}")
        if baseline is None:
            baseline = res
        result.add(
            scheme=scheme,
            qps=res.qps,
            tps=res.tps,
            norm_queries=res.qps / baseline.qps if baseline.qps else 0.0,
            avg_lat_ms=res.avg_latency_ms,
            lat_vs_vfio=(
                res.latency.mean_ns / baseline.latency.mean_ns
                if baseline.latency and res.latency else 0.0
            ),
        )
    result.notes.append(
        "paper: BM-Store +2.6% latency / -2.59% queries vs native; "
        "SPDK +11.2% latency"
    )
    return result
