"""Fig. 8 + Table V — bare-metal single-disk performance.

All six Table IV fio cases on the native disk, on a BM-Store namespace
(1536 GB from one backend drive, bound to a VF), and on the same
namespace in I/O-queue passthrough mode (guest rings mapped straight
onto the backend drive, engine out of the data path).  Reports IOPS,
bandwidth, and average latency; the paper's shape is BM-Store at
96.2-101.4% of native everywhere except rand-w-1 (~82.5%) and a ~3 us
constant latency adder.  Passthrough should land between the two:
faster than the mediated engine, still behind raw native.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runner import RunSpec, run_specs
from .common import ExperimentResult, quick_cases

__all__ = ["run", "PAPER_LATENCY_US"]

#: Table V reference values (us)
PAPER_LATENCY_US = {
    "rand-r-1": (77.2, 80.4),
    "rand-r-128": (786.7, 792.6),
    "rand-w-1": (11.6, 14.5),
    "rand-w-16": (179.8, 179.9),
    "seq-r-256": (40579.3, 40041.3),
    "seq-w-256": (92502.3, 95030.0),
}


def run(cases: Optional[Sequence[str]] = None, seed: int = 7,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult.

    ``workers`` fans the (scheme x case) grid over processes (default:
    REPRO_WORKERS or sequential); results are identical either way.
    """
    result = ExperimentResult(
        "fig8+table5",
        "Bare-metal performance with 1 disk: Native vs BM-Store vs passthrough"
    )
    specs = quick_cases(cases)
    grid = run_specs(
        [RunSpec(scheme=scheme, case=spec.name, seed=seed)
         for spec in specs
         for scheme in ("native", "bmstore", "passthrough")],
        workers=workers,
    )
    by_cell = {(p["scheme"], p["case"]): p for p in grid}
    for spec in specs:
        native = by_cell[("native", spec.name)]
        bms = by_cell[("bmstore", spec.name)]
        pt = by_cell[("passthrough", spec.name)]
        paper = PAPER_LATENCY_US.get(spec.name, (None, None))
        result.add(
            case=spec.name,
            native_kiops=native["iops"] / 1e3,
            bmstore_kiops=bms["iops"] / 1e3,
            passthrough_kiops=pt["iops"] / 1e3,
            native_mbps=native["bandwidth_mbps"],
            bmstore_mbps=bms["bandwidth_mbps"],
            iops_ratio=bms["iops"] / native["iops"] if native["iops"] else 0.0,
            pt_vs_bmstore=pt["iops"] / bms["iops"] if bms["iops"] else 0.0,
            native_lat_us=native["avg_latency_us"],
            bmstore_lat_us=bms["avg_latency_us"],
            passthrough_lat_us=pt["avg_latency_us"],
            paper_native_lat_us=paper[0],
            paper_bmstore_lat_us=paper[1],
        )
    result.notes.append("paper shape: ratio 0.96-1.01 except rand-w-1 ~0.825")
    result.notes.append(
        "pt_vs_bmstore > 1.0 everywhere: passthrough skips the engine's "
        "7-step per-command path")
    return result
