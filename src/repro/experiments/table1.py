"""Table I — feature matrix of local-storage schemes."""

from __future__ import annotations

from ..baselines.features import FEATURE_COLUMNS, feature_matrix
from .common import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult("table1", "Features of existing local storage techniques")
    for scheme, features in feature_matrix().items():
        result.add(scheme=scheme, **{
            col: ("yes" if features[col] else "-") for col in FEATURE_COLUMNS
        })
    result.notes.append(
        "derived from structural scheme properties (cores, drivers, devices)"
    )
    return result
