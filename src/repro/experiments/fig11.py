"""Fig. 11 — multi-VM total bandwidth and fairness on 4 SSDs.

1/2/4/8/16/26 VMs, each bound to a 256 GB namespace carved round-robin
from four drives (26 is the paper's production per-server VM maximum).
Each VM runs seq-r-256.  Shape: total bandwidth scales with VM count to
the four-drive ceiling (~12.4 GB/s at 16 VMs) and per-VM bandwidth
stays balanced (Jain fairness ~1.0).
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.metrics import fairness_index
from ..baselines import build_bmstore
from ..host.vm import VirtualMachine
from ..sim.units import GIB, MS
from ..workloads.fio import FioRun, FioSpec
from .common import ExperimentResult, scaled

__all__ = ["run"]

# per-VM load: a rate-capped sequential 128K stream of 775 MB/s (the
# paper does not give per-VM fio parameters; this provisioned demand
# makes the aggregate scale linearly and saturate the four drives at
# 16 VMs, matching the reported 12.4 GB/s).
SPEC = FioSpec("seq-r-vm", "read", 128 * 1024, iodepth=4, numjobs=1,
               rate_mbps=775.0)


def run(vm_counts: Sequence[int] = (1, 2, 4, 8, 16, 26), seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "fig11", "BM-Store total bandwidth with multiple VMs on 4 SSDs"
    )
    spec = scaled(SPEC, 120 * MS, 30 * MS)
    for count in vm_counts:
        rig = build_bmstore(num_ssds=4, seed=seed)
        runs = []
        for v in range(count):
            # round-robin placement staggered per VM, so sequential
            # streams start on different drives (paper §V-D layout)
            placement = [(v + i) % 4 for i in range(4)]
            fn = rig.provision(f"vm{v}", 256 * GIB, placement=placement)
            vm = VirtualMachine(rig.host, f"vm{v}")
            driver = rig.vm_driver(vm, fn)
            runs.append(FioRun(rig.sim, [driver], spec, rig.streams, tag=f"fio{v}"))
        rig.sim.run(rig.sim.all_of([r.finished for r in runs]))
        per_vm = [r.result().bandwidth_bps for r in runs]
        result.add(
            vms=count,
            total_gbps=sum(per_vm) / 1e9,
            min_vm_gbps=min(per_vm) / 1e9,
            max_vm_gbps=max(per_vm) / 1e9,
            fairness=fairness_index(per_vm),
        )
    result.notes.append(
        "paper: linear scaling to ~12.4 GB/s at 16 VMs; balanced shares"
    )
    return result
