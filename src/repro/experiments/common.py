"""Shared experiment harness: result records and scheme runners.

Every table/figure reproduction returns an :class:`ExperimentResult`
(id, rows, notes) that benchmarks print and EXPERIMENTS.md quotes.
Runtime windows are simulation-time; they are chosen so steady-state
rates converge while benchmark wall time stays in seconds.

Scheme runners: :data:`SCHEMES` maps a scheme name ("native",
"bmstore", "passthrough", "vfio-vm", "bmstore-vm", "spdk-vm") to a
builder that runs one fio case in a freshly built world.  :func:`run_case` is the single
entry point; it attaches a :class:`~repro.obs.MetricsRegistry` to the
world and returns a :class:`CaseResult` bundling the fio measurement
with the observability snapshot.  The old ``run_case_*`` functions
remain as deprecated wrappers.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence

from ..baselines import (
    BMStoreRig,
    build_bmstore,
    build_native,
    build_spdk,
    build_vfio,
)
from ..baselines.registry import runnable_schemes
from ..checks import CheckContext, resolve_checks
from ..faults import FaultPlan
from ..host.driver import NVMeDriver
from ..host.kernel_profile import DEFAULT_KERNEL, KernelProfile
from ..host.policy import SubmissionPolicy, _merge_deprecated_kwargs, resolve_policy
from ..host.vm import VirtualMachine
from ..obs import MetricsRegistry
from ..sim.units import GIB, MS
from ..workloads.fio import FioResult, FioRun, FioSpec, TABLE_IV_CASES

__all__ = [
    "ExperimentResult",
    "time_scale",
    "scaled",
    "quick_cases",
    "CaseResult",
    "SCHEMES",
    "run_case",
    "run_case_native",
    "run_case_bmstore",
    "run_case_vfio_vm",
    "run_case_bmstore_vm",
    "run_case_spdk_vm",
    "BM_NAMESPACE_BYTES",
]

#: the paper binds a 1536 GB namespace from one backend SSD
BM_NAMESPACE_BYTES = 1536 * GIB

#: sentinel distinguishing "no default given" from ``default=None``
_RAISE = object()


def time_scale() -> float:
    """REPRO_TIME_SCALE stretches every measurement window (default 1)."""
    return float(os.environ.get("REPRO_TIME_SCALE", "1.0"))


def scaled(spec: FioSpec, runtime_ns: int, ramp_ns: int) -> FioSpec:
    """A copy of the spec with REPRO_TIME_SCALE applied to its windows."""
    factor = time_scale()
    return replace(spec, runtime_ns=int(runtime_ns * factor), ramp_ns=int(ramp_ns * factor))


#: Table IV cases with benchmark-friendly windows (rates converge in
#: a few ms of simulated time; seq cases need longer for deep queues).
_WINDOWS = {
    "rand-r-1": (30 * MS, 4 * MS),
    "rand-r-128": (25 * MS, 5 * MS),
    "rand-w-1": (25 * MS, 4 * MS),
    "rand-w-16": (25 * MS, 4 * MS),
    "seq-r-256": (220 * MS, 60 * MS),
    "seq-w-256": (400 * MS, 120 * MS),
}


def quick_cases(names: Optional[Sequence[str]] = None) -> list[FioSpec]:
    """Table IV specs with benchmark-friendly measurement windows.

    ``None`` means every Table IV case; an explicit empty sequence means
    no cases (so callers can filter down to zero without silently
    getting the full grid back).
    """
    names = list(TABLE_IV_CASES) if names is None else list(names)
    unknown = [n for n in names if n not in TABLE_IV_CASES]
    if unknown:
        known = ", ".join(TABLE_IV_CASES)
        raise KeyError(f"unknown case name(s) {unknown} (known: {known})")
    return [
        scaled(TABLE_IV_CASES[name], *_WINDOWS[name]) for name in names
    ]


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, key: str, default: Any = _RAISE) -> list[Any]:
        """Values of one column across all rows.

        Rows may be ragged (rows added later can carry extra columns).
        With no ``default``, a missing key raises a ``KeyError`` naming
        the offending row instead of a bare index blow-up; passing
        ``default`` fills the holes.
        """
        if default is not _RAISE:
            return [row.get(key, default) for row in self.rows]
        out = []
        for i, row in enumerate(self.rows):
            try:
                out.append(row[key])
            except KeyError:
                raise KeyError(
                    f"[{self.experiment_id}] row {i} has no column {key!r} "
                    f"(row keys: {sorted(row)}); pass default= to tolerate "
                    "ragged rows"
                ) from None
        return out

    def row_for(self, **match: Any) -> dict[str, Any]:
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")

    def table(self) -> str:
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}: (no rows)"
        # union of keys over all rows, in first-seen order (rows added
        # later may carry extra columns)
        keys: list[str] = []
        for row in self.rows:
            for k in row:
                if k not in keys:
                    keys.append(k)
        widths = {
            k: max(len(k), *(len(_fmt(r.get(k))) for r in self.rows)) for k in keys
        }
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.append("  " + " | ".join(k.ljust(widths[k]) for k in keys))
        lines.append("  " + "-+-".join("-" * widths[k] for k in keys))
        for row in self.rows:
            lines.append(
                "  " + " | ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys)
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


# ---------------------------------------------------------------------------
# scheme runners: one fio case on one scheme, freshly built worlds
# ---------------------------------------------------------------------------

@dataclass
class CaseResult:
    """One fio case on one scheme: measurement + observability.

    ``fio`` is the throughput/latency measurement; ``obs`` is the live
    registry the world wrote into (spans, stage histograms, per-ns
    counters) and ``snapshot`` its JSON-able dump taken right after the
    run.  The common FioResult accessors are forwarded for convenience.
    """

    scheme: str
    spec: FioSpec
    fio: FioResult
    obs: MetricsRegistry
    snapshot: dict[str, Any]
    #: the armed CheckContext (invariant coverage counts), or None
    checks: Optional[CheckContext] = None

    @property
    def iops(self) -> float:
        return self.fio.iops

    @property
    def bandwidth_bps(self) -> float:
        return self.fio.bandwidth_bps

    @property
    def bandwidth_mbps(self) -> float:
        return self.fio.bandwidth_mbps

    @property
    def avg_latency_us(self) -> float:
        return self.fio.avg_latency_us

    @property
    def latency(self):
        return self.fio.latency

    @property
    def errors(self) -> int:
        """I/Os that completed with a non-success NVMe status."""
        return getattr(self.fio, "errors", 0)


def _finish(sim, run: FioRun) -> FioResult:
    sim.run(run.finished)
    result = run.result()
    result.sim_events = sim.events_processed
    return result


def _scheme_native(spec: FioSpec, *, seed: int, kernel: KernelProfile,
                   obs: MetricsRegistry, num_ssds: int = 1,
                   faults: Optional[FaultPlan] = None,
                   checks=None, policy=None) -> FioResult:
    """Bare-metal: the host NVMe driver directly on physical drives."""
    rig = build_native(num_ssds=num_ssds, seed=seed, kernel=kernel, obs=obs,
                       faults=faults, checks=checks, policy=policy)
    return _finish(rig.sim, FioRun(rig.sim, rig.drivers, spec, rig.streams))


def _apply_dma_model(rig: BMStoreRig, key: str, policy) -> None:
    if policy is not None and policy.dma != "register":
        rig.engine.set_dma_model(key, policy.dma)


def _bmstore_baremetal(num_ssds: int, seed: int, kernel: KernelProfile,
                       obs: Optional[MetricsRegistry] = None,
                       policy=None,
                       **rig_kwargs) -> tuple[BMStoreRig, NVMeDriver]:
    rig = build_bmstore(num_ssds=num_ssds, seed=seed, kernel=kernel, obs=obs,
                        **rig_kwargs)
    size = min(BM_NAMESPACE_BYTES, num_ssds * 28 * 64 * GIB)
    fn = rig.provision("ns0", size)
    _apply_dma_model(rig, "ns0", policy)
    return rig, rig.baremetal_driver(fn, policy=policy)


def _scheme_bmstore(spec: FioSpec, *, seed: int, kernel: KernelProfile,
                    obs: MetricsRegistry, num_ssds: int = 1,
                    policy=None, **rig_kwargs) -> FioResult:
    """Bare-metal BM-Store: host driver on an engine PF/VF namespace."""
    rig, driver = _bmstore_baremetal(num_ssds, seed, kernel, obs=obs,
                                     policy=policy, **rig_kwargs)
    return _finish(rig.sim, FioRun(rig.sim, [driver], spec, rig.streams))


def _scheme_passthrough(spec: FioSpec, *, seed: int, kernel: KernelProfile,
                        obs: MetricsRegistry, num_ssds: int = 1,
                        policy=None, **rig_kwargs) -> FioResult:
    """Bare-metal BM-Store with I/O-queue passthrough: the engine maps
    the function's SQ/CQ pairs straight onto the backing SSD and only
    relays doorbells — no per-command interposition (arXiv 2304.05148
    style).  Needs a single-SSD namespace (one contiguous extent)."""
    rig = build_bmstore(num_ssds=num_ssds, seed=seed, kernel=kernel, obs=obs,
                        **rig_kwargs)
    size = min(BM_NAMESPACE_BYTES, 28 * 64 * GIB)
    fn = rig.provision("ns0", size, placement=[0] * -(-size // rig.engine.chunk_bytes))
    rig.engine.enable_passthrough("ns0")
    _apply_dma_model(rig, "ns0", policy)
    driver = rig.baremetal_driver(fn, policy=policy)
    return _finish(rig.sim, FioRun(rig.sim, [driver], spec, rig.streams))


def _scheme_vfio_vm(spec: FioSpec, *, seed: int, kernel: KernelProfile,
                    obs: MetricsRegistry,
                    faults: Optional[FaultPlan] = None,
                    checks=None, policy=None) -> FioResult:
    """In-VM on a VFIO-assigned whole drive."""
    rig = build_vfio(num_vms=1, seed=seed, kernel=kernel, guest_kernel=kernel,
                     obs=obs, faults=faults, checks=checks, policy=policy)
    return _finish(rig.sim, FioRun(rig.sim, [rig.driver()], spec, rig.streams))


def _scheme_bmstore_vm(spec: FioSpec, *, seed: int, kernel: KernelProfile,
                       obs: MetricsRegistry, num_ssds: int = 1,
                       faults: Optional[FaultPlan] = None,
                       checks=None, policy=None) -> FioResult:
    """In-VM on a BM-Store VF."""
    rig = build_bmstore(num_ssds=num_ssds, seed=seed, kernel=kernel, obs=obs,
                        faults=faults, checks=checks)
    vm = VirtualMachine(rig.host, "vm0", guest_kernel=kernel)
    fn = rig.provision("ns0", BM_NAMESPACE_BYTES)
    _apply_dma_model(rig, "ns0", policy)
    driver = rig.vm_driver(vm, fn, policy=policy)
    return _finish(rig.sim, FioRun(rig.sim, [driver], spec, rig.streams))


def _scheme_spdk_vm(spec: FioSpec, *, seed: int, kernel: KernelProfile,
                    obs: MetricsRegistry, num_cores: int = 1,
                    faults: Optional[FaultPlan] = None,
                    checks=None, policy=None) -> FioResult:
    """In-VM on an SPDK vhost virtio disk."""
    if policy is not None and not policy.is_default:
        # the registry declares it: vhost submission is virtio, not NVMe
        raise ValueError("spdk-vm does not honour submission policies")
    rig = build_spdk(
        num_ssds=1, num_cores=num_cores, num_vdevs=1,
        vdev_blocks=BM_NAMESPACE_BYTES // 4096, seed=seed, kernel=kernel,
        obs=obs, faults=faults, checks=checks,
    )
    return _finish(rig.sim, FioRun(rig.sim, [rig.vdev()], spec, rig.streams))


#: scheme name -> runner; the *capabilities* of each scheme are declared
#: in :mod:`repro.baselines.registry` — add a SchemeDef there first,
#: then the runner here, and every experiment plus ``python -m repro
#: fio/stats`` picks it up
SCHEMES: dict[str, Callable[..., FioResult]] = {
    "native": _scheme_native,
    "bmstore": _scheme_bmstore,
    "passthrough": _scheme_passthrough,
    "vfio-vm": _scheme_vfio_vm,
    "bmstore-vm": _scheme_bmstore_vm,
    "spdk-vm": _scheme_spdk_vm,
}

# the runner map must cover exactly the registry's runnable schemes
assert set(SCHEMES) == set(runnable_schemes()), (
    "scheme runners out of sync with baselines.registry: "
    f"{sorted(set(SCHEMES) ^ set(runnable_schemes()))}"
)


#: run_case kwargs superseded by ``policy=``; kept as deprecated shims
_DEPRECATED_POLICY_KWARGS = ("doorbell_mode", "batch_doorbells", "coalesce",
                             "dma_model")


def run_case(
    scheme: str,
    spec: FioSpec,
    *,
    seed: int = 7,
    kernel: KernelProfile = DEFAULT_KERNEL,
    obs: Optional[MetricsRegistry] = None,
    obs_mode: str = "full",
    span_sample: int = 16,
    checks: Any = None,
    policy: Any = None,
    **scheme_kwargs: Any,
) -> CaseResult:
    """Run one fio case on one scheme in a freshly built world.

    ``obs`` is attached to every instrumented layer of that world (pass
    your own registry to control span capacity, or let this create
    one).  ``obs_mode``/``span_sample`` configure the created registry
    ("full", "sampled", or "counters" — see
    :class:`~repro.obs.MetricsRegistry`) and are ignored when ``obs``
    is supplied.  ``checks`` arms runtime invariant checkers ("all", a
    comma list of checker names, a :class:`~repro.checks.CheckContext`,
    or ``None`` to follow the ``REPRO_CHECKS`` environment variable —
    see :func:`~repro.checks.resolve_checks`); the armed context rides
    back on ``CaseResult.checks``.  ``policy`` is a
    :class:`~repro.host.policy.SubmissionPolicy` (or its string
    spelling, e.g. ``"shadow"`` or ``"batched:16"``) selecting the
    doorbell mode, CQE coalescing, and engine DMA model; ``None`` is
    the byte-identical classic path.  Extra keyword arguments go to the
    scheme runner (e.g.  ``num_ssds=4`` for "native"/"bmstore",
    ``zero_copy=False`` for "bmstore", ``num_cores=2`` for "spdk-vm",
    ``faults=FaultPlan(...)`` for any scheme to arm deterministic fault
    injection).
    """
    runner = SCHEMES.get(scheme)
    if runner is None:
        known = ", ".join(sorted(SCHEMES))
        raise ValueError(f"unknown scheme {scheme!r} (known: {known})")
    pol = resolve_policy(policy)
    deprecated = {k: scheme_kwargs.pop(k) for k in _DEPRECATED_POLICY_KWARGS
                  if k in scheme_kwargs}
    if deprecated:
        warnings.warn(
            f"run_case kwargs {sorted(deprecated)} are deprecated; pass "
            "policy=SubmissionPolicy(...) (or its string spelling) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        pol = _merge_deprecated_kwargs(pol, **deprecated)
    if obs is None:
        obs = MetricsRegistry(mode=obs_mode, span_sample=span_sample)
    ctx = resolve_checks(checks, obs)
    # pass False (not None) when disarmed so builders don't re-consult
    # the environment and arm a second, unreported context
    fio = runner(spec, seed=seed, kernel=kernel, obs=obs,
                 checks=ctx if ctx is not None else False, policy=pol,
                 **scheme_kwargs)
    return CaseResult(scheme=scheme, spec=spec, fio=fio, obs=obs,
                      snapshot=obs.snapshot(), checks=ctx)


# ------------------------------------------------------- deprecated wrappers
def _deprecated(old: str, scheme: str) -> None:
    warnings.warn(
        f"{old}() is deprecated; use run_case({scheme!r}, spec).fio",
        DeprecationWarning,
        stacklevel=3,
    )


def run_case_native(spec: FioSpec, num_ssds: int = 1, seed: int = 7,
                    kernel: KernelProfile = DEFAULT_KERNEL) -> FioResult:
    """Deprecated: use ``run_case("native", spec)``."""
    _deprecated("run_case_native", "native")
    return run_case("native", spec, seed=seed, kernel=kernel,
                    num_ssds=num_ssds).fio


def run_case_bmstore(spec: FioSpec, num_ssds: int = 1, seed: int = 7,
                     kernel: KernelProfile = DEFAULT_KERNEL,
                     **rig_kwargs) -> FioResult:
    """Deprecated: use ``run_case("bmstore", spec)``."""
    _deprecated("run_case_bmstore", "bmstore")
    return run_case("bmstore", spec, seed=seed, kernel=kernel,
                    num_ssds=num_ssds, **rig_kwargs).fio


def run_case_vfio_vm(spec: FioSpec, seed: int = 7,
                     kernel: KernelProfile = DEFAULT_KERNEL) -> FioResult:
    """Deprecated: use ``run_case("vfio-vm", spec)``."""
    _deprecated("run_case_vfio_vm", "vfio-vm")
    return run_case("vfio-vm", spec, seed=seed, kernel=kernel).fio


def run_case_bmstore_vm(spec: FioSpec, seed: int = 7,
                        kernel: KernelProfile = DEFAULT_KERNEL) -> FioResult:
    """Deprecated: use ``run_case("bmstore-vm", spec)``."""
    _deprecated("run_case_bmstore_vm", "bmstore-vm")
    return run_case("bmstore-vm", spec, seed=seed, kernel=kernel).fio


def run_case_spdk_vm(spec: FioSpec, seed: int = 7,
                     kernel: KernelProfile = DEFAULT_KERNEL,
                     num_cores: int = 1) -> FioResult:
    """Deprecated: use ``run_case("spdk-vm", spec)``."""
    _deprecated("run_case_spdk_vm", "spdk-vm")
    return run_case("spdk-vm", spec, seed=seed, kernel=kernel,
                    num_cores=num_cores).fio


VM_SCHEMES = ("vfio", "bmstore", "spdk")


def build_vm_targets(scheme: str, num_targets: int = 1, seed: int = 7,
                     num_ssds: int = 1, ns_bytes: int = 256 * GIB):
    """One world with ``num_targets`` VM-visible disks of one scheme.

    Returns (sim, streams, [BlockTarget]).  The application experiments
    (Figs. 13/14) run the mini databases on these.
    """
    if scheme == "vfio":
        rig = build_vfio(num_vms=num_targets, seed=seed)
        return rig.sim, rig.streams, list(rig.drivers)
    if scheme == "bmstore":
        rig = build_bmstore(num_ssds=max(num_ssds, 1), seed=seed)
        targets = []
        for v in range(num_targets):
            fn = rig.provision(f"app{v}", ns_bytes)
            vm = VirtualMachine(rig.host, f"vm{v}")
            targets.append(rig.vm_driver(vm, fn))
        return rig.sim, rig.streams, targets
    if scheme == "spdk":
        rig = build_spdk(
            num_ssds=max(num_ssds, 1), num_cores=1, num_vdevs=num_targets,
            vdev_blocks=ns_bytes // 4096, seed=seed,
        )
        return rig.sim, rig.streams, list(rig.vdevs)
    raise ValueError(f"unknown scheme {scheme!r}")
