"""Pushdown ablation: mediated vs in-engine point lookups on MiniKV.

Each cell runs the same seeded MiniKV workload twice — once with
mediated reads (index block + data block per candidate table, two NVMe
commands each) and once with the chase program installed (one vendor
``PUSH_EXEC`` per lookup) — and reports host<->engine commands per
lookup plus p50/p99 lookup latency.  Hot-remove cells surprise-remove a
backend drive mid-run, record the error status the host observes, and
re-attach the drive, pinning the failure path's determinism.

Cells are self-contained seeded worlds, so fanning them over
:func:`repro.runner.parallel_map` workers returns payloads
byte-identical to a sequential loop — the property the CI determinism
job byte-compares.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from ..apps.minikv import MiniKV, MiniKVConfig
from ..baselines import build_bmstore
from ..runner import parallel_map
from ..sim.units import MIB
from .common import ExperimentResult

__all__ = ["PushdownCell", "run_cell", "run"]


@dataclass(frozen=True)
class PushdownCell:
    """One seeded lookup scenario (picklable)."""

    name: str
    seed: int
    keys: int = 600
    lookups: int = 48
    hot_remove: bool = False


def _percentile(sorted_ns: list, frac: float) -> int:
    if not sorted_ns:
        return 0
    return sorted_ns[min(len(sorted_ns) - 1, int(len(sorted_ns) * frac))]


def _run_arm(cell: PushdownCell, pushdown: bool) -> dict:
    """One world, one read path; returns the arm's JSON-able payload."""
    rig = build_bmstore(num_ssds=2, seed=cell.seed)
    sim = rig.sim
    fn = rig.provision("kv", 256 * MIB)
    driver = rig.baremetal_driver(fn)
    config = MiniKVConfig(
        memtable_bytes=24 * 1024, wal_ring_blocks=64,
        indexed_tables=True, pushdown_reads=pushdown,
    )
    kv = MiniKV(sim, driver, config)
    arm: dict = {"arm": "pushdown" if pushdown else "mediated"}
    values: list = []
    latencies: list = []

    def lookup_keys():
        # stay in the flushed front of the keyspace so every measured
        # lookup misses the memtable and actually reaches the device
        span = cell.keys * 6 // 10
        return [f"k{(i * span // cell.lookups):06d}".encode()
                for i in range(cell.lookups)]

    def do_lookups(keys):
        before = driver.stats.submitted
        for key in keys:
            t0 = sim.now
            value = yield from kv.get(key)
            latencies.append(sim.now - t0)
            values.append((key, value))
        return driver.stats.submitted - before

    def proc():
        for i in range(cell.keys):
            yield from kv.put(f"k{i:06d}".encode(), f"v{i:04d}".encode() * 12)
        if pushdown:
            info = yield from kv.install_pushdown()
            if not info.ok:
                raise RuntimeError(f"install failed: status {info.status}")
        keys = lookup_keys()
        split = len(keys) // 2 if cell.hot_remove else len(keys)
        commands = yield from do_lookups(keys[:split])
        if cell.hot_remove:
            removed = rig.engine.surprise_remove(0)
            # the host sees the vendor command fail like any other I/O
            # while the drive is gone — the app falls back to mediated
            if pushdown:
                info = yield driver.push_exec(
                    {"carry": False, "key": b"k", "candidates": [
                        {"index_lba": 64, "data_base": 65}]})
            else:
                info = yield driver.read(64, 1)
            arm["remove_status"] = int(info.status)
            arm["remove_ok"] = bool(info.ok)
            rig.engine.adaptor.slot_for(0).attach_ssd(removed)
            commands += yield from do_lookups(keys[split:])
        arm["commands"] = commands

    sim.run(sim.process(proc(), name=f"{cell.name}.arm"))

    digest = hashlib.sha256(repr(values).encode()).hexdigest()
    latencies.sort()
    arm.update({
        "values_digest": digest,
        "lookups": len(latencies),
        "found": sum(1 for _, v in values if v is not None),
        "commands_per_lookup": arm["commands"] / max(1, len(latencies)),
        "p50_ns": _percentile(latencies, 0.50),
        "p99_ns": _percentile(latencies, 0.99),
        "sim_events": sim.events_processed,
    })
    if pushdown:
        stat = rig.engine.push.stat("kv")
        arm["program"] = {k: stat[k] for k in
                         ("execs", "backend_reads", "hops_saved",
                          "sandbox_faults")}
        arm["fallbacks"] = kv.stats.pushdown_fallbacks
    return arm


def run_cell(cell: PushdownCell) -> dict:
    """Run both arms of one cell; returns its JSON-able payload.

    Module-level (not a closure) so multiprocessing can import it by
    name in spawned workers.
    """
    mediated = _run_arm(cell, pushdown=False)
    pushdown = _run_arm(cell, pushdown=True)
    if mediated["values_digest"] != pushdown["values_digest"]:
        raise RuntimeError(f"{cell.name}: pushdown changed lookup results")
    ratio = mediated["commands_per_lookup"] / max(
        1e-9, pushdown["commands_per_lookup"])
    payload = {
        "cell": cell.name,
        "seed": cell.seed,
        "hot_remove": cell.hot_remove,
        "mediated": mediated,
        "pushdown": pushdown,
        "command_ratio": round(ratio, 4),
    }
    payload["payload"] = json.dumps(payload, sort_keys=True)
    payload["sim_events"] = mediated["sim_events"] + pushdown["sim_events"]
    return payload


def run(seed: int = 7, cells: int = 4,
        workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    specs = tuple(
        PushdownCell(name=f"cell{i}", seed=seed * 1_000_003 + i,
                     hot_remove=(i % 2 == 1))
        for i in range(cells)
    )
    payloads = parallel_map(run_cell, specs, workers=workers)

    result = ExperimentResult(
        "pushdown",
        "computational pushdown ablation: mediated vs in-engine "
        f"minikv point lookups ({cells} seeded cells)",
    )
    for payload in payloads:
        m, p = payload["mediated"], payload["pushdown"]
        result.add(
            cell=payload["cell"],
            hot_remove=payload["hot_remove"],
            med_cmds_per_get=round(m["commands_per_lookup"], 2),
            push_cmds_per_get=round(p["commands_per_lookup"], 2),
            ratio=payload["command_ratio"],
            med_p50_us=round(m["p50_ns"] / 1e3, 1),
            push_p50_us=round(p["p50_ns"] / 1e3, 1),
            med_p99_us=round(m["p99_ns"] / 1e3, 1),
            push_p99_us=round(p["p99_ns"] / 1e3, 1),
            hops_saved=p["program"]["hops_saved"],
            sim_events=payload["sim_events"],
        )
    worst = min(p["command_ratio"] for p in payloads)
    result.notes.append(
        f"pushdown issues {worst:.1f}x fewer host<->engine NVMe commands "
        "per point lookup than the mediated index+data path (worst cell); "
        "hot-remove cells pin the fallback path's determinism"
    )
    return result
