"""Extension experiments: SATA back ends (§VI-A) and remote storage (§VI-D).

Not paper evaluation artifacts — they exercise the compatibility and
future-work claims of the discussion section: the same front-end NVMe
interface over mechanically different back ends.
"""

from __future__ import annotations

from ..baselines import build_bmstore
from ..remote import RDMA_25GBE, RDMA_100GBE, NetworkLink, RemoteStorageTarget
from ..sata import HDD_7200_PROFILE, SATA_SSD_PROFILE, SATADisk
from ..sim.units import GIB, MS
from ..workloads.fio import FioRun, FioSpec
from .common import ExperimentResult, scaled

__all__ = ["run_sata_tiers", "run_remote_tiers"]

RAND_DEEP = FioSpec("rand-r-32", "randread", 4096, iodepth=32, numjobs=4)
SEQ = FioSpec("seq-r", "read", 128 * 1024, iodepth=64, numjobs=2)


def _fio_on_slot(rig, placement, spec, tag):
    fn = rig.provision(f"ns-{tag}", 64 * GIB, placement=placement)
    driver = rig.baremetal_driver(fn)
    run = FioRun(rig.sim, [driver], spec, rig.streams, tag=tag)
    rig.sim.run(run.finished)
    return run.result()


def run_sata_tiers(seed: int = 7) -> ExperimentResult:
    """NVMe vs SATA-SSD vs HDD behind the same front-end interface."""
    result = ExperimentResult(
        "ext-sata", "One NVMe front end over NVMe / SATA-SSD / HDD back ends"
    )
    rand = scaled(RAND_DEEP, 60 * MS, 10 * MS)
    rig = build_bmstore(num_ssds=1, seed=seed)
    sata_ssd = SATADisk(rig.sim, SATA_SSD_PROFILE,
                        rig.streams.stream("sata-ssd"), name="sata-ssd")
    hdd = SATADisk(rig.sim, HDD_7200_PROFILE,
                   rig.streams.stream("hdd"), name="hdd")
    rig.engine.attach_sata(sata_ssd)
    rig.engine.attach_sata(hdd)
    for tag, placement in (("nvme", [0]), ("sata-ssd", [1]), ("hdd", [2])):
        res = _fio_on_slot(rig, placement, rand, tag)
        result.add(
            backend=tag,
            kiops=res.iops / 1e3,
            avg_lat_us=res.avg_latency_us,
            p99_us=res.latency.p99_us if res.latency else 0.0,
        )
    result.notes.append(
        "identical standard-NVMe tenant interface; the back-end tier sets "
        "the service time (paper §VI-A compatibility)"
    )
    return result


def run_remote_tiers(seed: int = 7) -> ExperimentResult:
    """Local drive vs remote volumes over 25/100 GbE."""
    result = ExperimentResult(
        "ext-remote", "Local vs remote back ends (NVMe-oF-style, §VI-D)"
    )
    seq = scaled(SEQ, 50 * MS, 10 * MS)
    rig = build_bmstore(num_ssds=1, seed=seed)
    for name, profile in (("25gbe", RDMA_25GBE), ("100gbe", RDMA_100GBE)):
        target = RemoteStorageTarget(rig.sim, rig.streams, name=f"tgt-{name}")
        rig.engine.attach_remote(target, NetworkLink(rig.sim, profile,
                                                     name=f"net-{name}"))
    rows = (("local", [0]), ("25gbe", [1]), ("100gbe", [2]))
    for tag, placement in rows:
        res = _fio_on_slot(rig, placement, seq, tag)
        result.add(
            backend=tag,
            bandwidth_gbps=res.bandwidth_bps / 1e9,
            avg_lat_ms=res.avg_latency_us / 1e3,
        )
    result.notes.append(
        "25 GbE caps below the drive; 100 GbE returns the media bottleneck"
    )
    return result
