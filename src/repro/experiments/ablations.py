"""Ablations of BM-Store design choices (DESIGN.md §6).

* zero-copy DMA routing vs store-and-forward through FPGA DRAM
* QoS on vs off under an aggressor namespace
* FPGA datapath vs ARM-offloaded datapath (LeapIO-like, §III-B)
"""

from __future__ import annotations

from dataclasses import replace

from ..baselines import build_bmstore
from ..core.engine import EngineTimings
from ..core.qos import QoSLimits
from ..sim.units import GIB, MS
from ..workloads.fio import FioRun, FioSpec
from .common import ExperimentResult, run_case, scaled

__all__ = ["run_zero_copy", "run_qos_isolation", "run_arm_offload", "ARM_OFFLOAD_TIMINGS"]

SEQ = FioSpec("seq-r-256", "read", 128 * 1024, iodepth=256, numjobs=4)
RAND = FioSpec("rand-r-128", "randread", 4096, iodepth=128, numjobs=4)

#: LeapIO-like datapath: every command crosses ARM cores instead of the
#: FPGA pipeline — microseconds of per-command software time and a
#: serialized issue stage, which is what capped LeapIO at ~68% of a
#: single native drive.
ARM_OFFLOAD_TIMINGS = EngineTimings(
    doorbell_ns=600,
    pipeline_ns=18_000,
    issue_ns=2_300,  # one ARM core's per-command handling, serialized
    adaptor_push_ns=400,
    cqe_relay_ns=1_200,
    cut_through_ns=900,
)


def run_zero_copy(seed: int = 7) -> ExperimentResult:
    """Zero-copy on/off: sequential bandwidth through one drive."""
    result = ExperimentResult(
        "ablation-zerocopy", "DMA request routing: zero-copy vs store-and-forward"
    )
    spec = scaled(SEQ, 150 * MS, 40 * MS)
    for zero_copy in (True, False):
        # four drives: the aggregate 12.9 GB/s is far beyond what the
        # FPGA DRAM (in + out) could buffer, which is the paper's point
        res = run_case("bmstore", spec, seed=seed, num_ssds=4, zero_copy=zero_copy)
        result.add(
            zero_copy=zero_copy,
            bandwidth_gbps=res.bandwidth_bps / 1e9,
            avg_lat_ms=res.avg_latency_us / 1e3,
        )
    on = result.rows[0]["bandwidth_gbps"]
    off = result.rows[1]["bandwidth_gbps"]
    result.notes.append(
        f"store-and-forward loses {100 * (1 - off / on):.0f}% of sequential "
        "bandwidth to the FPGA DRAM round trip"
    )
    return result


def run_qos_isolation(seed: int = 7) -> ExperimentResult:
    """An aggressor namespace with and without a QoS cap."""
    result = ExperimentResult(
        "ablation-qos", "QoS isolation: victim vs aggressor on one drive"
    )
    spec = scaled(RAND, 25 * MS, 5 * MS)
    for qos_capped in (False, True):
        rig = build_bmstore(num_ssds=1, seed=seed)
        limits = QoSLimits(max_iops=100_000.0) if qos_capped else None
        aggressor = rig.baremetal_driver(
            rig.provision("aggressor", 256 * GIB, limits=limits)
        )
        victim = rig.baremetal_driver(rig.provision("victim", 256 * GIB))
        runs = [
            FioRun(rig.sim, [aggressor], spec, rig.streams, tag="agg"),
            FioRun(rig.sim, [victim], replace(spec, iodepth=4), rig.streams, tag="vic"),
        ]
        rig.sim.run(rig.sim.all_of([r.finished for r in runs]))
        agg, vic = (r.result() for r in runs)
        result.add(
            qos_capped=qos_capped,
            aggressor_kiops=agg.iops / 1e3,
            victim_kiops=vic.iops / 1e3,
            victim_lat_us=vic.avg_latency_us,
        )
    result.notes.append("capping the aggressor restores the victim's latency")
    return result


def run_arm_offload(seed: int = 7) -> ExperimentResult:
    """FPGA datapath vs ARM-offloaded datapath (LeapIO-like)."""
    result = ExperimentResult(
        "ablation-arm", "Datapath placement: FPGA engine vs ARM offload (LeapIO-like)"
    )
    spec = scaled(RAND, 25 * MS, 5 * MS)
    fpga = run_case("bmstore", spec, seed=seed)
    arm = run_case("bmstore", spec, seed=seed, timings=ARM_OFFLOAD_TIMINGS)
    result.add(datapath="FPGA (BM-Store)", kiops=fpga.iops / 1e3,
               lat_us=fpga.avg_latency_us, vs_fpga=1.0)
    result.add(datapath="ARM offload (LeapIO-like)", kiops=arm.iops / 1e3,
               lat_us=arm.avg_latency_us,
               vs_fpga=arm.iops / fpga.iops if fpga.iops else 0.0)
    result.notes.append(
        "paper §III-B: ARM-offloaded LeapIO reached only ~68% of one native disk"
    )
    return result
