"""Table VI — BM-Store across host OS / kernel versions.

4K random read, iodepth=16, numjobs=8 on a BM-Store namespace under
each of the paper's five OS+kernel combinations.  The transparency
claim: BM-Store runs unmodified everywhere; IOPS stay flat across
CentOS kernels and dip a few percent on Fedora's different
completion path.
"""

from __future__ import annotations

from ..host.kernel_profile import KERNEL_PROFILES
from ..sim.units import MS
from ..workloads.fio import FioSpec
from .common import ExperimentResult, run_case, scaled

__all__ = ["run", "PAPER_ROWS"]

#: (os, kernel) -> (KIOPS, BW MB/s, AL us) from the paper
PAPER_ROWS = {
    "centos7-3.10.0": (642, 2629, 394.4),
    "centos7-4.19.127": (642, 2629, 395.9),
    "centos7-5.4.3": (642, 2630, 396.1),
    "fedora33-4.9.296": (603, 2468, 207.0),
    "fedora33-5.8.15": (607, 2487, 206.4),
}

SPEC = FioSpec("rand-r-16x8", "randread", 4096, iodepth=16, numjobs=8)


def run(seed: int = 7) -> ExperimentResult:
    """Regenerate this artifact; returns the ExperimentResult."""
    result = ExperimentResult(
        "table6", "BM-Store I/O performance across OS / kernel versions"
    )
    spec = scaled(SPEC, 25 * MS, 5 * MS)
    for key, profile in KERNEL_PROFILES.items():
        res = run_case("bmstore", spec, seed=seed, kernel=profile)
        paper = PAPER_ROWS[key]
        result.add(
            os=profile.os_name,
            kernel=profile.kernel,
            kiops=res.iops / 1e3,
            bw_mbps=res.bandwidth_mbps,
            lat_us=res.avg_latency_us,
            paper_kiops=paper[0],
            paper_lat_us=paper[2],
        )
    result.notes.append(
        "paper's CentOS latency column (394 us at 642K IOPS with 128 "
        "outstanding) is not Little's-law consistent; we report the "
        "simulator's consistent latencies and match the IOPS shape"
    )
    return result
