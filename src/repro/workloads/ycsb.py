"""YCSB workload generator driving MiniKV (the paper's RocksDB role).

Implements the standard core workloads (A-F): zipfian key choice,
read/update/insert/scan/read-modify-write mixes, a load phase, and a
timed run phase with closed-loop client threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.metrics import LatencyStats
from ..apps.minikv import MiniKV
from ..sim import Event, RandomStream, SimulationError, Simulator, StreamFactory
from ..sim.units import MS

__all__ = ["YCSBSpec", "YCSB_WORKLOADS", "YCSBResult", "YCSBRun", "run_ycsb"]


@dataclass(frozen=True)
class YCSBSpec:
    """One YCSB workload configuration."""

    name: str
    read: float
    update: float
    insert: float
    scan: float
    rmw: float
    record_count: int = 10_000
    value_bytes: int = 100
    threads: int = 8
    runtime_ns: int = 40 * MS
    ramp_ns: int = 4 * MS
    zipf_theta: float = 0.99
    scan_length: int = 20

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(f"YCSB mix of {self.name} sums to {total}")


YCSB_WORKLOADS: dict[str, YCSBSpec] = {
    "A": YCSBSpec("A", read=0.5, update=0.5, insert=0.0, scan=0.0, rmw=0.0),
    "B": YCSBSpec("B", read=0.95, update=0.05, insert=0.0, scan=0.0, rmw=0.0),
    "C": YCSBSpec("C", read=1.0, update=0.0, insert=0.0, scan=0.0, rmw=0.0),
    "D": YCSBSpec("D", read=0.95, update=0.0, insert=0.05, scan=0.0, rmw=0.0),
    "E": YCSBSpec("E", read=0.0, update=0.0, insert=0.05, scan=0.95, rmw=0.0),
    "F": YCSBSpec("F", read=0.5, update=0.0, insert=0.0, scan=0.0, rmw=0.5),
}


def _key(index: int) -> bytes:
    return b"user%012d" % index


@dataclass
class YCSBResult:
    """Measured YCSB output: ops, per-op mix, latency distribution."""
    spec: YCSBSpec
    ops: int
    window_ns: int
    latency: Optional[LatencyStats]
    per_op: dict[str, int] = field(default_factory=dict)
    failed_reads: int = 0

    @property
    def throughput_ops(self) -> float:
        return self.ops * 1e9 / self.window_ns if self.window_ns else 0.0


class YCSBRun:
    """Load + timed run against one MiniKV instance."""

    def __init__(
        self,
        sim: Simulator,
        db: MiniKV,
        spec: YCSBSpec,
        streams: StreamFactory,
        tag: str = "ycsb",
    ):
        self.sim = sim
        self.db = db
        self.spec = spec
        self.streams = streams
        self.tag = tag
        self._ops = 0
        self._latencies: list[int] = []
        self._per_op: dict[str, int] = {}
        self._failed_reads = 0
        self._inserted = spec.record_count
        self.finished: Event = sim.event(name=f"{tag}.finished")
        self._live = 0
        self._window_start = 0
        self._window_end = 0

    # ------------------------------------------------------------------ load
    def load(self):
        """Process generator: the YCSB load phase."""
        rng = self.streams.stream(f"{self.tag}.load")
        for i in range(self.spec.record_count):
            value = self._value(rng)
            yield from self.db.put(_key(i), value)

    def _value(self, rng: RandomStream) -> bytes:
        return bytes(rng.randint(1, 255) for _ in range(min(16, self.spec.value_bytes))).ljust(
            self.spec.value_bytes, b"v"
        )

    # ------------------------------------------------------------------- run
    def start(self) -> None:
        self._window_start = self.sim.now + self.spec.ramp_ns
        self._window_end = self._window_start + self.spec.runtime_ns
        for t in range(self.spec.threads):
            self._live += 1
            rng = self.streams.stream(f"{self.tag}.t{t}", extra=t)
            self.sim.process(self._client(rng), name=f"{self.tag}.c{t}")

    def _pick_op(self, rng: RandomStream) -> str:
        x = rng.random()
        spec = self.spec
        for op, p in (
            ("read", spec.read), ("update", spec.update), ("insert", spec.insert),
            ("scan", spec.scan), ("rmw", spec.rmw),
        ):
            if x < p:
                return op
            x -= p
        return "read"

    def _client(self, rng: RandomStream):
        spec = self.spec
        while self.sim.now < self._window_end:
            op = self._pick_op(rng)
            start = self.sim.now
            idx = rng.zipf_index(self._inserted, spec.zipf_theta)
            if op == "read":
                value = yield from self.db.get(_key(idx))
                if value is None:
                    self._failed_reads += 1
            elif op == "update":
                yield from self.db.put(_key(idx), self._value(rng))
            elif op == "insert":
                self._inserted += 1
                yield from self.db.put(_key(self._inserted - 1), self._value(rng))
            elif op == "scan":
                yield from self.db.scan(
                    _key(idx), _key(min(self._inserted, idx + 1000)),
                    limit=spec.scan_length,
                )
            elif op == "rmw":
                yield from self.db.get(_key(idx))
                yield from self.db.put(_key(idx), self._value(rng))
            finish = self.sim.now
            if self._window_start <= finish <= self._window_end:
                self._ops += 1
                self._latencies.append(finish - start)
                self._per_op[op] = self._per_op.get(op, 0) + 1
        self._live -= 1
        if self._live == 0:
            self.finished.succeed()

    def result(self) -> YCSBResult:
        return YCSBResult(
            spec=self.spec,
            ops=self._ops,
            window_ns=self.spec.runtime_ns,
            latency=LatencyStats.from_samples(self._latencies) if self._latencies else None,
            per_op=dict(self._per_op),
            failed_reads=self._failed_reads,
        )


def run_ycsb(
    sim: Simulator,
    db: MiniKV,
    spec: YCSBSpec,
    streams: StreamFactory,
    tag: str = "ycsb",
) -> YCSBResult:
    """Load, run to completion, and return the result."""
    run = YCSBRun(sim, db, spec, streams, tag=tag)
    loaded = sim.process(run.load(), name=f"{tag}.load")
    sim.run(loaded)
    run.start()
    sim.run(run.finished)
    return run.result()
