"""Trace-driven workloads: synthetic block traces and a timed replayer.

Production storage evaluation often replays block traces (the
MSR-Cambridge style).  This module generates synthetic traces with the
knobs that matter — arrival burstiness, read/write mix, spatial skew,
size distribution — and replays them *open loop* against any
BlockTarget, reporting completion latency including queueing behind
bursts (where scheme differences compound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.metrics import LatencyStats
from ..host.block import BlockTarget
from ..sim import RandomStream, SimulationError, Simulator
from ..sim.units import MS

__all__ = [
    "TraceRecord",
    "TraceProfile",
    "TRACE_PROFILES",
    "generate_trace",
    "TraceResult",
    "replay_trace",
]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: arrival time, direction, LBA extent."""
    timestamp_ns: int
    op: str  # "read" | "write"
    lba: int
    nblocks: int


@dataclass(frozen=True)
class TraceProfile:
    """Shape of one synthetic workload class."""

    name: str
    read_fraction: float
    #: mean arrival rate inside a burst / between bursts (IOPS)
    burst_iops: float
    idle_iops: float
    burst_ms: float = 2.0
    idle_ms: float = 4.0
    #: fraction of accesses landing in the hot region
    hot_fraction: float = 0.8
    hot_region_fraction: float = 0.1
    #: request sizes in blocks with weights
    sizes: tuple[tuple[int, float], ...] = ((1, 0.6), (2, 0.2), (8, 0.15), (32, 0.05))


TRACE_PROFILES: dict[str, TraceProfile] = {
    # front-end web tier: read-heavy, small, bursty
    "web": TraceProfile("web", read_fraction=0.95, burst_iops=120_000.0,
                        idle_iops=8_000.0),
    # OLTP data files: mixed, strongly skewed
    "oltp": TraceProfile("oltp", read_fraction=0.70, burst_iops=80_000.0,
                         idle_iops=20_000.0, hot_fraction=0.9,
                         hot_region_fraction=0.05),
    # backup/ingest: large sequentialish writes
    "backup": TraceProfile("backup", read_fraction=0.05, burst_iops=12_000.0,
                           idle_iops=4_000.0, hot_fraction=0.2,
                           hot_region_fraction=0.5,
                           sizes=((32, 0.7), (8, 0.2), (1, 0.1))),
}


def generate_trace(
    profile: TraceProfile,
    duration_ns: int,
    region_blocks: int,
    rng: RandomStream,
) -> list[TraceRecord]:
    """Synthesize an on/off-bursty arrival trace over ``duration_ns``."""
    records: list[TraceRecord] = []
    t = 0
    hot_blocks = max(1, int(region_blocks * profile.hot_region_fraction))
    sizes, weights = zip(*profile.sizes)
    total_w = sum(weights)
    while t < duration_ns:
        in_burst = (t // MS) % int(profile.burst_ms + profile.idle_ms) < profile.burst_ms
        rate = profile.burst_iops if in_burst else profile.idle_iops
        gap = max(100, int(rng.expovariate(rate) * 1e9))
        t += gap
        if t >= duration_ns:
            break
        x = rng.random() * total_w
        nblocks = sizes[-1]
        for size, weight in profile.sizes:
            if x < weight:
                nblocks = size
                break
            x -= weight
        if rng.random() < profile.hot_fraction:
            lba = rng.randint(0, max(0, hot_blocks - nblocks))
        else:
            lba = rng.randint(0, max(0, region_blocks - nblocks))
        op = "read" if rng.random() < profile.read_fraction else "write"
        records.append(TraceRecord(t, op, lba, nblocks))
    return records


@dataclass
class TraceResult:
    """Replay outcome: completion counts and latency distributions."""
    issued: int
    completed: int
    errors: int
    latency: Optional[LatencyStats]
    read_latency: Optional[LatencyStats]
    write_latency: Optional[LatencyStats]
    elapsed_ns: int

    @property
    def iops(self) -> float:
        return self.completed * 1e9 / self.elapsed_ns if self.elapsed_ns else 0.0


def replay_trace(
    sim: Simulator,
    target: BlockTarget,
    records: Sequence[TraceRecord],
    tag: str = "trace",
) -> TraceResult:
    """Open-loop replay: issue each record at its timestamp, collect
    completion latencies (queueing behind bursts included)."""
    if not records:
        raise SimulationError("empty trace")
    lat_all: list[int] = []
    lat_read: list[int] = []
    lat_write: list[int] = []
    state = {"completed": 0, "errors": 0}
    t0 = sim.now
    finished = sim.event(name=f"{tag}.done")
    total = len(records)

    def on_done(record: TraceRecord, issue_ns: int, info) -> None:
        state["completed"] += 1
        if not info.ok:
            state["errors"] += 1
        latency = sim.now - issue_ns
        lat_all.append(latency)
        (lat_read if record.op == "read" else lat_write).append(latency)
        if state["completed"] == total:
            finished.succeed()

    def issuer():
        for record in records:
            due = t0 + record.timestamp_ns
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            issue_ns = sim.now
            if record.op == "read":
                ev = target.read(record.lba, record.nblocks)
            else:
                ev = target.write(record.lba, record.nblocks)
            ev.callbacks.append(
                lambda e, r=record, t=issue_ns: on_done(r, t, e.value)
            )

    sim.process(issuer(), name=f"{tag}.issuer")
    sim.run(finished)
    return TraceResult(
        issued=total,
        completed=state["completed"],
        errors=state["errors"],
        latency=LatencyStats.from_samples(lat_all) if lat_all else None,
        read_latency=LatencyStats.from_samples(lat_read) if lat_read else None,
        write_latency=LatencyStats.from_samples(lat_write) if lat_write else None,
        elapsed_ns=sim.now - t0,
    )
