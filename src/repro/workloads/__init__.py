"""Workload generators: fio test cases and application benchmarks."""

from .fio import TABLE_IV_CASES, FioResult, FioRun, FioSpec, run_fio
from .sysbench import SysbenchResult, SysbenchRun, SysbenchSpec, run_sysbench
from .tpcc import TPCC_TABLES, TPCCResult, TPCCRun, TPCCSpec, run_tpcc
from .trace import (
    TRACE_PROFILES,
    TraceProfile,
    TraceRecord,
    TraceResult,
    generate_trace,
    replay_trace,
)
from .ycsb import YCSB_WORKLOADS, YCSBResult, YCSBRun, YCSBSpec, run_ycsb

__all__ = [
    "TABLE_IV_CASES",
    "FioResult",
    "FioRun",
    "FioSpec",
    "run_fio",
    "SysbenchResult",
    "SysbenchRun",
    "SysbenchSpec",
    "run_sysbench",
    "TPCC_TABLES",
    "TPCCResult",
    "TPCCRun",
    "TPCCSpec",
    "run_tpcc",
    "TRACE_PROFILES",
    "TraceProfile",
    "TraceRecord",
    "TraceResult",
    "generate_trace",
    "replay_trace",
    "YCSB_WORKLOADS",
    "YCSBResult",
    "YCSBRun",
    "YCSBSpec",
    "run_ycsb",
]
