"""TPC-C workload driving MiniSQL (the paper's Fig. 13(a) benchmark).

A structurally faithful, scale-reduced TPC-C: the nine tables, the five
transaction profiles at the standard mix (New-Order 45%, Payment 43%,
Order-Status 4%, Delivery 4%, Stock-Level 4%), per-warehouse data
layout, and ~10 order lines per new order.  Row-count scale factors are
configurable so simulated runs stay tractable; access *patterns* (the
thing the storage schemes see) are preserved.  Reports tpmC (new-order
transactions per minute) and the overall transaction rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.metrics import LatencyStats
from ..apps.minisql import MiniSQL, TableSchema
from ..sim import Event, RandomStream, Simulator, StreamFactory
from ..sim.units import MS

__all__ = ["TPCCSpec", "TPCCResult", "TPCCRun", "run_tpcc", "TPCC_TABLES"]

TPCC_TABLES = {
    "warehouse": TableSchema("warehouse", "w_id", ("w_id", "w_name", "w_ytd"), avg_row_bytes=90),
    "district": TableSchema("district", "d_key", ("d_key", "w_id", "d_id", "d_next_o_id", "d_ytd"), avg_row_bytes=95),
    "customer": TableSchema("customer", "c_key", ("c_key", "w_id", "d_id", "c_id", "c_balance", "c_ytd", "c_data"), avg_row_bytes=280),
    "item": TableSchema("item", "i_id", ("i_id", "i_name", "i_price"), avg_row_bytes=82),
    "stock": TableSchema("stock", "s_key", ("s_key", "w_id", "i_id", "s_quantity", "s_ytd"), avg_row_bytes=130),
    "orders": TableSchema("orders", "o_key", ("o_key", "w_id", "d_id", "o_id", "c_id", "o_ol_cnt", "o_carrier_id"), avg_row_bytes=60),
    "new_order": TableSchema("new_order", "no_key", ("no_key", "w_id", "d_id", "o_id"), avg_row_bytes=16),
    "order_line": TableSchema("order_line", "ol_key", ("ol_key", "w_id", "d_id", "o_id", "ol_number", "i_id", "ol_quantity", "ol_amount"), avg_row_bytes=70),
    "history": TableSchema("history", "h_key", ("h_key", "w_id", "d_id", "c_id", "h_amount"), avg_row_bytes=46),
}

DISTRICTS_PER_WAREHOUSE = 10


@dataclass(frozen=True)
class TPCCSpec:
    """Scale knobs of one TPC-C run (warehouses, row counts, terminals)."""
    warehouses: int = 4
    #: scale-reduced per-district/table row counts (standard: 3000
    #: customers/district, 100k items, 100k stock/warehouse)
    customers_per_district: int = 60
    items: int = 2000
    stock_per_warehouse: int = 2000
    threads: int = 32
    runtime_ns: int = 60 * MS
    ramp_ns: int = 6 * MS
    order_lines_mean: int = 10


@dataclass
class TPCCResult:
    """Measured TPC-C output: new-order count, totals, latency, mix."""
    spec: TPCCSpec
    new_orders: int
    total_txns: int
    window_ns: int
    latency: Optional[LatencyStats]
    per_type: dict[str, int]

    @property
    def tpmc(self) -> float:
        """New-order transactions per (simulated) minute."""
        return self.new_orders * 60e9 / self.window_ns if self.window_ns else 0.0

    @property
    def tps(self) -> float:
        return self.total_txns * 1e9 / self.window_ns if self.window_ns else 0.0


class TPCCRun:
    """Load + timed run of TPC-C terminals against one MiniSQL engine."""
    def __init__(
        self,
        sim: Simulator,
        db: MiniSQL,
        spec: TPCCSpec,
        streams: StreamFactory,
        tag: str = "tpcc",
    ):
        self.sim = sim
        self.db = db
        self.spec = spec
        self.streams = streams
        self.tag = tag
        self._new_orders = 0
        self._txns = 0
        self._per_type: dict[str, int] = {}
        self._latencies: list[int] = []
        self._next_o_id: dict[tuple[int, int], int] = {}
        self._oldest_no: dict[tuple[int, int], int] = {}
        self.finished: Event = sim.event(name=f"{tag}.finished")
        self._live = 0
        self._window_start = 0
        self._window_end = 0

    # ------------------------------------------------------------------ load
    def load(self):
        """Process generator: populate all nine tables."""
        for schema in TPCC_TABLES.values():
            if schema.name not in self.db.tables:
                self.db.create_table(schema)
        spec = self.spec
        txn = self.db.begin()
        count = 0

        def maybe_commit():
            nonlocal txn, count
            count += 1
            if count % 400 == 0:
                return True
            return False

        for w in range(spec.warehouses):
            yield from txn.insert("warehouse", {"w_id": w, "w_name": f"W{w}", "w_ytd": 0.0})
            for d in range(DISTRICTS_PER_WAREHOUSE):
                yield from txn.insert("district", {
                    "d_key": (w, d), "w_id": w, "d_id": d,
                    "d_next_o_id": 0, "d_ytd": 0.0,
                })
                self._next_o_id[(w, d)] = 0
                self._oldest_no[(w, d)] = 0
                for c in range(spec.customers_per_district):
                    yield from txn.insert("customer", {
                        "c_key": (w, d, c), "w_id": w, "d_id": d, "c_id": c,
                        "c_balance": 0.0, "c_ytd": 0.0, "c_data": "x" * 64,
                    })
                    if maybe_commit():
                        yield from txn.commit()
                        txn = self.db.begin()
            for s in range(spec.stock_per_warehouse):
                yield from txn.insert("stock", {
                    "s_key": (w, s), "w_id": w, "i_id": s,
                    "s_quantity": 100, "s_ytd": 0,
                })
                if maybe_commit():
                    yield from txn.commit()
                    txn = self.db.begin()
        for i in range(spec.items):
            yield from txn.insert("item", {"i_id": i, "i_name": f"item{i}", "i_price": 9.99})
            if maybe_commit():
                yield from txn.commit()
                txn = self.db.begin()
        yield from txn.commit()

    # ------------------------------------------------------------------- run
    def start(self) -> None:
        self._window_start = self.sim.now + self.spec.ramp_ns
        self._window_end = self._window_start + self.spec.runtime_ns
        for t in range(self.spec.threads):
            self._live += 1
            rng = self.streams.stream(f"{self.tag}.t{t}", extra=t)
            self.sim.process(self._terminal(rng), name=f"{self.tag}.c{t}")

    def _pick_type(self, rng: RandomStream) -> str:
        x = rng.random()
        if x < 0.45:
            return "new_order"
        if x < 0.88:
            return "payment"
        if x < 0.92:
            return "order_status"
        if x < 0.96:
            return "delivery"
        return "stock_level"

    def _terminal(self, rng: RandomStream):
        handlers = {
            "new_order": self._new_order,
            "payment": self._payment,
            "order_status": self._order_status,
            "delivery": self._delivery,
            "stock_level": self._stock_level,
        }
        while self.sim.now < self._window_end:
            kind = self._pick_type(rng)
            start = self.sim.now
            yield from handlers[kind](rng)
            finish = self.sim.now
            if self._window_start <= finish <= self._window_end:
                self._txns += 1
                self._per_type[kind] = self._per_type.get(kind, 0) + 1
                if kind == "new_order":
                    self._new_orders += 1
                self._latencies.append(finish - start)
        self._live -= 1
        if self._live == 0:
            self.finished.succeed()

    # --------------------------------------------------------- transactions
    def _pick_wdc(self, rng: RandomStream) -> tuple[int, int, int]:
        w = rng.randint(0, self.spec.warehouses - 1)
        d = rng.randint(0, DISTRICTS_PER_WAREHOUSE - 1)
        c = rng.randint(0, self.spec.customers_per_district - 1)
        return w, d, c

    def _new_order(self, rng: RandomStream):
        w, d, c = self._pick_wdc(rng)
        txn = self.db.begin()
        yield from txn.select("warehouse", w)
        o_id = self._next_o_id[(w, d)]
        self._next_o_id[(w, d)] = o_id + 1
        yield from txn.update("district", (w, d), {"d_next_o_id": o_id + 1})
        yield from txn.select("customer", (w, d, c))
        ol_cnt = max(5, min(15, self.spec.order_lines_mean + rng.randint(-3, 3)))
        yield from txn.insert("orders", {
            "o_key": (w, d, o_id), "w_id": w, "d_id": d, "o_id": o_id,
            "c_id": c, "o_ol_cnt": ol_cnt, "o_carrier_id": None,
        })
        yield from txn.insert("new_order", {
            "no_key": (w, d, o_id), "w_id": w, "d_id": d, "o_id": o_id,
        })
        for ol in range(ol_cnt):
            i_id = rng.randint(0, self.spec.items - 1)
            yield from txn.select("item", i_id)
            s_id = i_id % self.spec.stock_per_warehouse
            stock = yield from txn.select("stock", (w, s_id))
            quantity = (stock or {}).get("s_quantity", 100)
            yield from txn.update("stock", (w, s_id), {
                "s_quantity": quantity - 1 if quantity > 10 else quantity + 91,
            })
            yield from txn.insert("order_line", {
                "ol_key": (w, d, o_id, ol), "w_id": w, "d_id": d, "o_id": o_id,
                "ol_number": ol, "i_id": i_id,
                "ol_quantity": rng.randint(1, 10), "ol_amount": 9.99,
            })
        yield from txn.commit()

    def _payment(self, rng: RandomStream):
        w, d, c = self._pick_wdc(rng)
        amount = rng.uniform(1.0, 5000.0)
        txn = self.db.begin()
        wh = yield from txn.select("warehouse", w)
        yield from txn.update("warehouse", w, {"w_ytd": (wh or {}).get("w_ytd", 0.0) + amount})
        dist = yield from txn.select("district", (w, d))
        yield from txn.update("district", (w, d), {"d_ytd": (dist or {}).get("d_ytd", 0.0) + amount})
        cust = yield from txn.select("customer", (w, d, c))
        yield from txn.update("customer", (w, d, c), {
            "c_balance": (cust or {}).get("c_balance", 0.0) - amount,
            "c_ytd": (cust or {}).get("c_ytd", 0.0) + amount,
        })
        h_key = (w, d, c, self.sim.now, rng.randint(0, 1 << 30))
        yield from txn.insert("history", {
            "h_key": h_key, "w_id": w, "d_id": d, "c_id": c, "h_amount": amount,
        })
        yield from txn.commit()

    def _order_status(self, rng: RandomStream):
        w, d, c = self._pick_wdc(rng)
        txn = self.db.begin()
        yield from txn.select("customer", (w, d, c))
        last_o = self._next_o_id[(w, d)] - 1
        if last_o >= 0:
            order = yield from txn.select("orders", (w, d, last_o))
            for ol in range((order or {}).get("o_ol_cnt", 0)):
                yield from txn.select("order_line", (w, d, last_o, ol))
        yield from txn.commit()

    def _delivery(self, rng: RandomStream):
        w = rng.randint(0, self.spec.warehouses - 1)
        txn = self.db.begin()
        for d in range(DISTRICTS_PER_WAREHOUSE):
            o_id = self._oldest_no[(w, d)]
            if o_id >= self._next_o_id[(w, d)]:
                continue
            deleted = yield from txn.delete("new_order", (w, d, o_id))
            if not deleted:
                self._oldest_no[(w, d)] = o_id + 1
                continue
            self._oldest_no[(w, d)] = o_id + 1
            yield from txn.update("orders", (w, d, o_id), {"o_carrier_id": 7})
            order = yield from txn.select("orders", (w, d, o_id))
            c = (order or {}).get("c_id", 0)
            cust = yield from txn.select("customer", (w, d, c))
            yield from txn.update("customer", (w, d, c), {
                "c_balance": (cust or {}).get("c_balance", 0.0) + 10.0,
            })
        yield from txn.commit()

    def _stock_level(self, rng: RandomStream):
        w = rng.randint(0, self.spec.warehouses - 1)
        d = rng.randint(0, DISTRICTS_PER_WAREHOUSE - 1)
        txn = self.db.begin()
        yield from txn.select("district", (w, d))
        last_o = self._next_o_id[(w, d)]
        checked = set()
        for o_id in range(max(0, last_o - 20), last_o):
            order = yield from txn.select("orders", (w, d, o_id))
            for ol in range((order or {}).get("o_ol_cnt", 0)):
                line = yield from txn.select("order_line", (w, d, o_id, ol))
                if line is None:
                    continue
                s_id = line["i_id"] % self.spec.stock_per_warehouse
                if s_id not in checked:
                    checked.add(s_id)
                    yield from txn.select("stock", (w, s_id))
        yield from txn.commit()

    def result(self) -> TPCCResult:
        return TPCCResult(
            spec=self.spec,
            new_orders=self._new_orders,
            total_txns=self._txns,
            window_ns=self.spec.runtime_ns,
            latency=LatencyStats.from_samples(self._latencies) if self._latencies else None,
            per_type=dict(self._per_type),
        )


def run_tpcc(
    sim: Simulator,
    db: MiniSQL,
    spec: TPCCSpec,
    streams: StreamFactory,
    tag: str = "tpcc",
) -> TPCCResult:
    """Load the TPC-C schema, run the terminals, return the result."""
    run = TPCCRun(sim, db, spec, streams, tag=tag)
    sim.run(sim.process(run.load(), name=f"{tag}.load"))
    db.start_checkpointer()
    run.start()
    sim.run(run.finished)
    return run.result()
