"""Sysbench OLTP workload driving MiniSQL (the paper's MySQL role).

Implements ``oltp_read_write`` and ``oltp_read_only``: each transaction
is the classic statement bundle (10 point selects, 1 range select,
2 updates, 1 delete + 1 re-insert), executed by closed-loop threads
against the ``sbtest`` table.  Reports queries/s, transactions/s, and
average transaction latency — the Fig. 13(b) / Table VIII metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.metrics import LatencyStats
from ..apps.minisql import MiniSQL, TableSchema
from ..sim import Event, RandomStream, Simulator, StreamFactory
from ..sim.units import MS

__all__ = ["SysbenchSpec", "SysbenchResult", "SysbenchRun", "run_sysbench"]

SBTEST_SCHEMA = TableSchema(
    name="sbtest1",
    key_column="id",
    columns=("id", "k", "c", "pad"),
    rows_per_page=64,
    avg_row_bytes=220,
)


@dataclass(frozen=True)
class SysbenchSpec:
    """One Sysbench OLTP configuration (table size, threads, statement bundle)."""
    name: str = "oltp_read_write"
    table_size: int = 20_000
    threads: int = 16
    runtime_ns: int = 60 * MS
    ramp_ns: int = 6 * MS
    point_selects: int = 10
    range_selects: int = 1
    range_size: int = 100
    index_updates: int = 1
    non_index_updates: int = 1
    delete_inserts: int = 1
    read_only: bool = False


@dataclass
class SysbenchResult:
    """Measured Sysbench output: transactions, queries, latency."""
    spec: SysbenchSpec
    transactions: int
    queries: int
    window_ns: int
    latency: Optional[LatencyStats]

    @property
    def tps(self) -> float:
        return self.transactions * 1e9 / self.window_ns if self.window_ns else 0.0

    @property
    def qps(self) -> float:
        return self.queries * 1e9 / self.window_ns if self.window_ns else 0.0

    @property
    def avg_latency_ms(self) -> float:
        return self.latency.mean_ns / 1e6 if self.latency else 0.0


class SysbenchRun:
    """Prepare + timed run against one MiniSQL instance."""

    def __init__(
        self,
        sim: Simulator,
        db: MiniSQL,
        spec: SysbenchSpec,
        streams: StreamFactory,
        tag: str = "sysbench",
    ):
        self.sim = sim
        self.db = db
        self.spec = spec
        self.streams = streams
        self.tag = tag
        self._txns = 0
        self._queries = 0
        self._latencies: list[int] = []
        self._next_id = spec.table_size
        self.finished: Event = sim.event(name=f"{tag}.finished")
        self._live = 0
        self._window_start = 0
        self._window_end = 0

    # ---------------------------------------------------------------- prepare
    def prepare(self):
        """Process generator: create + fill sbtest1."""
        if SBTEST_SCHEMA.name not in self.db.tables:
            self.db.create_table(SBTEST_SCHEMA)
        rng = self.streams.stream(f"{self.tag}.prepare")
        txn = self.db.begin()
        for i in range(self.spec.table_size):
            yield from txn.insert(
                SBTEST_SCHEMA.name,
                {"id": i, "k": rng.randint(0, self.spec.table_size - 1),
                 "c": f"c-{i}", "pad": "x" * 16},
            )
            if i % 500 == 499:
                yield from txn.commit()
                txn = self.db.begin()
        yield from txn.commit()

    # -------------------------------------------------------------------- run
    def start(self) -> None:
        self._window_start = self.sim.now + self.spec.ramp_ns
        self._window_end = self._window_start + self.spec.runtime_ns
        for t in range(self.spec.threads):
            self._live += 1
            rng = self.streams.stream(f"{self.tag}.t{t}", extra=t)
            self.sim.process(self._client(rng), name=f"{self.tag}.c{t}")

    def _client(self, rng: RandomStream):
        while self.sim.now < self._window_end:
            start = self.sim.now
            queries = yield from self._one_transaction(rng)
            finish = self.sim.now
            if self._window_start <= finish <= self._window_end:
                self._txns += 1
                self._queries += queries
                self._latencies.append(finish - start)
        self._live -= 1
        if self._live == 0:
            self.finished.succeed()

    def _one_transaction(self, rng: RandomStream):
        spec = self.spec
        table = SBTEST_SCHEMA.name
        txn = self.db.begin()
        queries = 0
        for _ in range(spec.point_selects):
            yield from txn.select(table, rng.randint(0, spec.table_size - 1))
            queries += 1
        for _ in range(spec.range_selects):
            start_key = rng.randint(0, max(0, spec.table_size - spec.range_size))
            yield from txn.select_range(table, start_key, limit=spec.range_size)
            queries += 1
        if not (spec.read_only or self.spec.name == "oltp_read_only"):
            for _ in range(spec.index_updates + spec.non_index_updates):
                yield from txn.update(
                    table, rng.randint(0, spec.table_size - 1),
                    {"k": rng.randint(0, spec.table_size - 1)},
                )
                queries += 1
            for _ in range(spec.delete_inserts):
                victim = rng.randint(0, spec.table_size - 1)
                deleted = yield from txn.delete(table, victim)
                queries += 1
                new_id = victim if deleted else self._alloc_id()
                try:
                    yield from txn.insert(
                        table,
                        {"id": new_id, "k": rng.randint(0, spec.table_size - 1),
                         "c": "re", "pad": "x" * 16},
                    )
                except Exception:
                    pass  # duplicate under concurrency, as sysbench tolerates
                queries += 1
        yield from txn.commit()
        return queries

    def _alloc_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def result(self) -> SysbenchResult:
        return SysbenchResult(
            spec=self.spec,
            transactions=self._txns,
            queries=self._queries,
            window_ns=self.spec.runtime_ns,
            latency=LatencyStats.from_samples(self._latencies) if self._latencies else None,
        )


def run_sysbench(
    sim: Simulator,
    db: MiniSQL,
    spec: SysbenchSpec,
    streams: StreamFactory,
    tag: str = "sysbench",
) -> SysbenchResult:
    """Prepare sbtest1, run the OLTP clients, return the result."""
    run = SysbenchRun(sim, db, spec, streams, tag=tag)
    sim.run(sim.process(run.prepare(), name=f"{tag}.prep"))
    db.start_checkpointer()
    run.start()
    sim.run(run.finished)
    return run.result()
