"""fio-like synthetic workload engine.

Reproduces the paper's Table IV test cases: closed-loop jobs
(``numjobs``) each keeping ``iodepth`` requests in flight against a
:class:`~repro.host.block.BlockTarget`, random or sequential, read or
write, with a ramp window excluded from measurement — the libaio
closed-loop model fio implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.metrics import LatencyStats
from ..host.block import BlockTarget
from ..sim import Event, RandomStream, SimulationError, Simulator, StreamFactory
from ..sim.units import MS

__all__ = ["FioSpec", "FioResult", "FioRun", "run_fio", "TABLE_IV_CASES"]


@dataclass(frozen=True)
class FioSpec:
    """One fio test case."""

    name: str
    op: str  # "randread" | "randwrite" | "read" | "write"
    block_bytes: int = 4096
    iodepth: int = 1
    numjobs: int = 4
    runtime_ns: int = 50 * MS
    ramp_ns: int = 5 * MS
    region_blocks: Optional[int] = None  # None = whole device
    #: open-loop rate cap per job (fio's rate= option); None = closed loop
    rate_mbps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in ("randread", "randwrite", "read", "write"):
            raise SimulationError(f"unknown fio op {self.op!r}")
        if self.iodepth < 1 or self.numjobs < 1:
            raise SimulationError("iodepth and numjobs must be >= 1")

    @property
    def is_read(self) -> bool:
        return self.op in ("randread", "read")

    @property
    def is_random(self) -> bool:
        return self.op.startswith("rand")

    @property
    def nblocks(self) -> int:
        return max(1, self.block_bytes // 4096)


#: The paper's Table IV (runtime scaled to simulation budgets; the
#: steady-state rates these cases measure converge within tens of ms).
TABLE_IV_CASES: dict[str, FioSpec] = {
    "rand-r-1": FioSpec("rand-r-1", "randread", 4096, iodepth=1, numjobs=4),
    "rand-r-128": FioSpec("rand-r-128", "randread", 4096, iodepth=128, numjobs=4),
    "rand-w-1": FioSpec("rand-w-1", "randwrite", 4096, iodepth=1, numjobs=4),
    "rand-w-16": FioSpec("rand-w-16", "randwrite", 4096, iodepth=16, numjobs=4),
    "seq-r-256": FioSpec(
        "seq-r-256", "read", 128 * 1024, iodepth=256, numjobs=4,
        runtime_ns=400 * MS, ramp_ns=80 * MS,
    ),
    "seq-w-256": FioSpec(
        "seq-w-256", "write", 128 * 1024, iodepth=256, numjobs=4,
        runtime_ns=600 * MS, ramp_ns=120 * MS,
    ),
}


@dataclass
class FioResult:
    """Measured output of one fio run (measurement window only)."""

    spec: FioSpec
    ios: int
    bytes_moved: int
    window_ns: int
    latency: Optional[LatencyStats]
    errors: int = 0
    per_target_ios: dict[int, int] = field(default_factory=dict)
    #: kernel events processed over the whole run (stamped by the
    #: experiment harness; the bench harness divides by wall time)
    sim_events: int = 0

    @property
    def iops(self) -> float:
        return self.ios * 1e9 / self.window_ns if self.window_ns else 0.0

    @property
    def bandwidth_bps(self) -> float:
        return self.bytes_moved * 1e9 / self.window_ns if self.window_ns else 0.0

    @property
    def bandwidth_mbps(self) -> float:
        return self.bandwidth_bps / 1e6

    @property
    def avg_latency_us(self) -> float:
        return self.latency.mean_us if self.latency else 0.0


class FioRun:
    """A running fio instance; collect with :meth:`result` after sim.run."""

    def __init__(
        self,
        sim: Simulator,
        targets: Sequence[BlockTarget],
        spec: FioSpec,
        streams: StreamFactory,
        start_ns: Optional[int] = None,
        tag: str = "fio",
    ):
        if not targets:
            raise SimulationError("fio needs at least one target")
        self.sim = sim
        self.targets = list(targets)
        self.spec = spec
        self.tag = tag
        self._start = start_ns if start_ns is not None else sim.now
        self._window_start = self._start + spec.ramp_ns
        self._window_end = self._start + spec.ramp_ns + spec.runtime_ns
        self._latencies: list[int] = []
        self._ios = 0
        self._errors = 0
        self._per_target: dict[int, int] = {}
        self.finished: Event = sim.event(name=f"{tag}.finished")
        self._live_jobs = 0
        self._pace_next: dict[int, int] = {}
        for job in range(spec.numjobs):
            target = self.targets[job % len(self.targets)]
            rng = streams.stream(f"{tag}.job{job}", extra=job)
            for worker in range(spec.iodepth):
                self._live_jobs += 1
                sim.process(
                    self._worker(job, worker, target, rng),
                    name=f"{tag}.j{job}w{worker}",
                )

    def _region(self, target: BlockTarget) -> int:
        region = self.spec.region_blocks or target.num_blocks
        return max(self.spec.nblocks, min(region, target.num_blocks))

    def _worker(self, job: int, worker: int, target: BlockTarget, rng: RandomStream):
        spec = self.spec
        region = self._region(target)
        nblocks = spec.nblocks
        # sequential workers stride through a per-worker slice, as fio
        # offsets multiple jobs to avoid re-reading one another's data
        seq_span = max(nblocks, region // max(1, spec.numjobs * spec.iodepth))
        seq_base = ((job * spec.iodepth + worker) * seq_span) % max(1, region - nblocks + 1)
        seq_off = 0
        pace_interval = 0
        if spec.rate_mbps:
            pace_interval = int(spec.block_bytes * 1e9 / (spec.rate_mbps * 1e6))
        while self.sim.now < self._window_end:
            if pace_interval:
                slot = max(self.sim.now, self._pace_next.get(job, 0))
                self._pace_next[job] = slot + pace_interval
                if slot > self.sim.now:
                    yield self.sim.timeout(slot - self.sim.now)
            if spec.is_random:
                lba = rng.randint(0, max(0, region - nblocks))
            else:
                lba = seq_base + seq_off
                seq_off += nblocks
                if lba + nblocks > region or seq_off >= seq_span:
                    seq_off = 0
                    lba = seq_base
            if spec.is_read:
                info = yield target.read(lba, nblocks)
            else:
                info = yield target.write(lba, nblocks)
            finish = self.sim.now
            if self._window_start <= finish <= self._window_end:
                self._ios += 1
                self._latencies.append(info.latency_ns)
                idx = self.targets.index(target)
                self._per_target[idx] = self._per_target.get(idx, 0) + 1
                if not info.ok:
                    self._errors += 1
        self._live_jobs -= 1
        if self._live_jobs == 0:
            self.finished.succeed()

    @property
    def end_time_ns(self) -> int:
        return self._window_end

    def result(self) -> FioResult:
        window = self.spec.runtime_ns
        return FioResult(
            spec=self.spec,
            ios=self._ios,
            bytes_moved=self._ios * self.spec.block_bytes,
            window_ns=window,
            latency=LatencyStats.from_samples(self._latencies) if self._latencies else None,
            errors=self._errors,
            per_target_ios=dict(self._per_target),
        )

    def latencies(self) -> list[int]:
        return list(self._latencies)


def run_fio(
    sim: Simulator,
    targets: Sequence[BlockTarget],
    spec: FioSpec,
    streams: StreamFactory,
    tag: str = "fio",
) -> FioResult:
    """Start a run and drive the simulation to its completion."""
    run = FioRun(sim, targets, spec, streams, tag=tag)
    sim.run(run.finished)
    return run.result()
