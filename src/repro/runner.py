"""Parallel experiment runner: a (scheme x case) grid over worker processes.

Every run builds a *fresh* world inside its worker from nothing but the
:class:`RunSpec` fields (scheme, case name, seed, fault preset name),
and every random stream in that world is seeded from the run's own
seed.  Workers therefore share no state, and a grid executed on N
processes returns byte-identical payloads to the same grid executed
sequentially — parallelism is purely a wall-clock optimisation, never a
result perturbation.

The payloads are plain JSON-able dicts (full-precision floats, no
rounding), so ``json.dumps(..., sort_keys=True)`` of a grid is a stable
determinism probe: CI runs the same grid with ``--workers 1`` and
``--workers 4`` and byte-compares the files.

``REPRO_WORKERS`` sets the default worker count for every entry point
that does not pass one explicitly (experiments, the benchmark suite).
"""

from __future__ import annotations

import gc
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["RunSpec", "run_grid", "run_specs", "default_workers", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid, picklable by construction.

    ``faults`` is a canned-plan *name* (see :data:`repro.faults.PRESETS`)
    rather than a live :class:`FaultPlan`, so a spec can cross a process
    boundary and still arm the identical deterministic plan.  For the
    same reason ``checks`` is a *string* spec ("all", "ring,qos", "off",
    or ``None`` to follow ``REPRO_CHECKS``), not a live CheckContext,
    and ``policy`` is a submission-policy *spelling* ("shadow",
    "batched:16", "doorbell=shadow,coalesce=4,...") parsed by
    :func:`repro.host.policy.parse_policy`, not a live object.
    ``scheme_kwargs`` go to the scheme runner (``num_ssds=4``, ...).
    """

    scheme: str
    case: str
    seed: int = 7
    faults: Optional[str] = None
    obs_mode: str = "full"
    span_sample: int = 16
    checks: Optional[str] = None
    policy: Optional[str] = None
    scheme_kwargs: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        tag = f"{self.scheme}/{self.case}@{self.seed}"
        if self.faults:
            tag = f"{tag}+{self.faults}"
        if self.policy:
            tag = f"{tag}~{self.policy}"
        return tag


def default_workers() -> int:
    """Worker count when the caller does not choose: REPRO_WORKERS or 1."""
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}") from None
    return 1


def run_one(spec: RunSpec) -> dict[str, Any]:
    """Execute one grid cell in this process; returns its payload dict.

    Module-level (not a closure) so multiprocessing can import it by
    name in spawned workers.  Floats are kept at full precision: the
    sequential and parallel paths must serialize identically.
    """
    from .experiments.common import quick_cases, run_case

    (fio_spec,) = quick_cases([spec.case])
    kwargs = dict(spec.scheme_kwargs)
    if spec.faults:
        from .faults import get_preset

        kwargs["faults"] = get_preset(spec.faults)
    # the hot path recycles its per-I/O objects through free lists, so
    # cyclic garbage barely accumulates during a run; pausing the
    # collector avoids full-heap scans mid-simulation (results are
    # payload-identical — GC timing never influences event order)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        case = run_case(spec.scheme, fio_spec, seed=spec.seed,
                        obs_mode=spec.obs_mode, span_sample=spec.span_sample,
                        checks=spec.checks, policy=spec.policy, **kwargs)
    finally:
        if gc_was_enabled:
            gc.enable()
    lat = case.latency
    return {
        "scheme": spec.scheme,
        "case": spec.case,
        "seed": spec.seed,
        "faults": spec.faults,
        "policy": spec.policy,
        "obs_mode": spec.obs_mode,
        "ios": case.fio.ios,
        "errors": case.errors,
        "sim_events": case.fio.sim_events,
        "iops": case.iops,
        "bandwidth_mbps": case.bandwidth_mbps,
        "avg_latency_us": case.avg_latency_us,
        "p99_us": lat.p99_us if lat else None,
        "snapshot": case.snapshot,
    }


def parallel_map(fn: Callable[[_T], _R], items: Sequence[_T],
                 workers: Optional[int] = None) -> list[_R]:
    """Ordered map over worker processes; ``workers<=1`` stays inline.

    ``fn`` must be a module-level callable and ``items`` picklable.
    Results come back in input order regardless of completion order, so
    output never depends on scheduling.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), len(items) or 1))
    if workers == 1:
        return [fn(item) for item in items]
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    with mp.get_context(method).Pool(workers) as pool:
        return pool.map(fn, items)


def run_specs(specs: Iterable[RunSpec],
              workers: Optional[int] = None) -> list[dict[str, Any]]:
    """Run every spec, fanning out over ``workers`` processes."""
    return parallel_map(run_one, list(specs), workers=workers)


def run_grid(
    schemes: Sequence[str],
    cases: Sequence[str],
    *,
    seed: int = 7,
    faults: Optional[str] = None,
    obs_mode: str = "full",
    span_sample: int = 16,
    checks: Optional[str] = None,
    policy: Optional[str] = None,
    workers: Optional[int] = None,
    **scheme_kwargs: Any,
) -> list[dict[str, Any]]:
    """The (scheme x case) product, case-major so one table's rows stay
    adjacent; returns payload dicts in grid order."""
    specs = [
        RunSpec(scheme=scheme, case=case, seed=seed, faults=faults,
                obs_mode=obs_mode, span_sample=span_sample, checks=checks,
                policy=policy, scheme_kwargs=dict(scheme_kwargs))
        for case in cases
        for scheme in schemes
    ]
    return run_specs(specs, workers=workers)
