"""TCO analysis — paper §VI-C.

The paper's argument: a typical server (128 HT / 1024 GB / 16 SSDs)
sells 8-HT/64-GB/1-SSD instances.  SPDK vhost dedicates 16 host cores
to polling, stranding resource fragments (128 GB of RAM and 2 SSDs
cannot be sold); BM-Store adds ~3% server cost (4 cards) but sells the
full 16 instances — 14.3% more instances and >= 11.3% lower TCO per
sellable instance once lifetime opex (power, IDC, network) is included.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerConfig", "InstanceShape", "SchemeCost", "TCOModel", "TCOReport"]


@dataclass(frozen=True)
class ServerConfig:
    """Paper's typical server."""

    hyperthreads: int = 128
    memory_gb: int = 1024
    ssds: int = 16
    capex: float = 100_000.0  # normalized currency units
    #: lifetime operating cost (power, IDC, network) relative to capex
    opex_ratio: float = 1.19


@dataclass(frozen=True)
class InstanceShape:
    """The sellable unit."""

    hyperthreads: int = 8
    memory_gb: int = 64
    ssds: int = 1


@dataclass(frozen=True)
class SchemeCost:
    """How a storage scheme changes what a server can sell."""

    name: str
    dedicated_hyperthreads: int = 0  # polling cores removed from sale
    reserved_memory_gb: int = 0
    hardware_cost_fraction: float = 0.0  # extra capex (cards)


SPDK_SCHEME = SchemeCost(name="SPDK vhost", dedicated_hyperthreads=16)
BMSTORE_SCHEME = SchemeCost(name="BM-Store", hardware_cost_fraction=0.03)


@dataclass(frozen=True)
class TCOReport:
    """Per-scheme economics: sellable instances, stranded resources, TCO."""
    scheme: str
    sellable_instances: int
    stranded_hyperthreads: int
    stranded_memory_gb: int
    stranded_ssds: int
    server_tco: float
    tco_per_instance: float


class TCOModel:
    """Computes sellable instances and per-instance TCO per scheme."""

    def __init__(
        self,
        server: ServerConfig = ServerConfig(),
        shape: InstanceShape = InstanceShape(),
    ):
        self.server = server
        self.shape = shape

    def sellable_instances(self, scheme: SchemeCost) -> int:
        ht = self.server.hyperthreads - scheme.dedicated_hyperthreads
        mem = self.server.memory_gb - scheme.reserved_memory_gb
        return min(
            ht // self.shape.hyperthreads,
            mem // self.shape.memory_gb,
            self.server.ssds // self.shape.ssds,
        )

    def report(self, scheme: SchemeCost) -> TCOReport:
        n = self.sellable_instances(scheme)
        # opex (power, IDC, network) is driven by the base server, not
        # by the storage cards, so the hardware adder applies to capex only
        capex = self.server.capex * (1.0 + scheme.hardware_cost_fraction)
        tco = capex + self.server.capex * self.server.opex_ratio
        return TCOReport(
            scheme=scheme.name,
            sellable_instances=n,
            stranded_hyperthreads=(
                self.server.hyperthreads
                - scheme.dedicated_hyperthreads
                - n * self.shape.hyperthreads
            ),
            stranded_memory_gb=self.server.memory_gb - n * self.shape.memory_gb,
            stranded_ssds=self.server.ssds - n * self.shape.ssds,
            server_tco=tco,
            tco_per_instance=tco / n if n else float("inf"),
        )

    def compare(self, baseline: SchemeCost = SPDK_SCHEME,
                candidate: SchemeCost = BMSTORE_SCHEME) -> dict:
        base = self.report(baseline)
        cand = self.report(candidate)
        return {
            "baseline": base,
            "candidate": cand,
            "extra_instances_pct": 100.0 * (
                cand.sellable_instances / base.sellable_instances - 1.0
            ),
            "tco_reduction_pct": 100.0 * (
                1.0 - cand.tco_per_instance / base.tco_per_instance
            ),
        }
