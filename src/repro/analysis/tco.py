"""TCO analysis — paper §VI-C.

The paper's argument: a typical server (128 HT / 1024 GB / 16 SSDs)
sells 8-HT/64-GB/1-SSD instances.  SPDK vhost dedicates 16 host cores
to polling, stranding resource fragments (128 GB of RAM and 2 SSDs
cannot be sold); BM-Store adds ~3% server cost (4 cards) but sells the
full 16 instances — 14.3% more instances and >= 11.3% lower TCO per
sellable instance once lifetime opex (power, IDC, network) is included.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ServerConfig", "InstanceShape", "SchemeCost", "TCOModel", "TCOReport",
    "BufferEconomics",
]


@dataclass(frozen=True)
class ServerConfig:
    """Paper's typical server."""

    hyperthreads: int = 128
    memory_gb: int = 1024
    ssds: int = 16
    capex: float = 100_000.0  # normalized currency units
    #: lifetime operating cost (power, IDC, network) relative to capex
    opex_ratio: float = 1.19


@dataclass(frozen=True)
class InstanceShape:
    """The sellable unit."""

    hyperthreads: int = 8
    memory_gb: int = 64
    ssds: int = 1


@dataclass(frozen=True)
class SchemeCost:
    """How a storage scheme changes what a server can sell."""

    name: str
    dedicated_hyperthreads: int = 0  # polling cores removed from sale
    reserved_memory_gb: int = 0
    hardware_cost_fraction: float = 0.0  # extra capex (cards)


SPDK_SCHEME = SchemeCost(name="SPDK vhost", dedicated_hyperthreads=16)
BMSTORE_SCHEME = SchemeCost(name="BM-Store", hardware_cost_fraction=0.03)


@dataclass(frozen=True)
class TCOReport:
    """Per-scheme economics: sellable instances, stranded resources, TCO."""
    scheme: str
    sellable_instances: int
    stranded_hyperthreads: int
    stranded_memory_gb: int
    stranded_ssds: int
    server_tco: float
    tco_per_instance: float


@dataclass(frozen=True)
class BufferEconomics:
    """Tenants-per-rack under stranded vs shared burst buffer.

    The fixed-card design strands buffer DRAM: every tenant must
    reserve its *peak* (steady + burst) on its own card, even though
    only a fraction of tenants burst at once.  With the CXL buffer tier
    and inter-SSD sharing, a tenant reserves only its steady share
    on-card and bursts are absorbed by a rack-level pool sized for the
    concurrent-burst fraction — the statistical-multiplexing win the
    burst-absorption ablation measures per card.
    """

    #: on-card buffer DRAM per engine card
    card_buffer_gb: float = 4.0
    #: buffer a tenant holds at steady state
    tenant_steady_gb: float = 0.5
    #: extra buffer a tenant demands while bursting
    tenant_burst_gb: float = 1.5
    cards_per_server: int = 4
    servers_per_rack: int = 16
    #: shared CXL pool provisioned per rack (shared scheme only)
    cxl_pool_gb_per_rack: float = 256.0
    #: fraction of tenants bursting concurrently (multiplexing factor)
    burst_concurrency: float = 0.25

    @property
    def cards_per_rack(self) -> int:
        return self.cards_per_server * self.servers_per_rack

    def tenants_per_rack(self, shared: bool) -> int:
        if not shared:
            # stranded: full peak reserved per tenant on its own card
            per_card = int(self.card_buffer_gb
                           // (self.tenant_steady_gb + self.tenant_burst_gb))
            return per_card * self.cards_per_rack
        per_card = int(self.card_buffer_gb // self.tenant_steady_gb)
        card_bound = per_card * self.cards_per_rack
        # the pool must cover the concurrent-burst demand of the rack
        pool_bound = int(self.cxl_pool_gb_per_rack
                         // (self.tenant_burst_gb * self.burst_concurrency))
        return min(card_bound, pool_bound)

    def compare(self) -> dict:
        stranded = self.tenants_per_rack(shared=False)
        shared = self.tenants_per_rack(shared=True)
        return {
            "stranded_tenants_per_rack": stranded,
            "shared_tenants_per_rack": shared,
            "extra_tenants_pct": 100.0 * (shared / stranded - 1.0)
            if stranded else float("inf"),
        }


class TCOModel:
    """Computes sellable instances and per-instance TCO per scheme."""

    def __init__(
        self,
        server: ServerConfig = ServerConfig(),
        shape: InstanceShape = InstanceShape(),
    ):
        self.server = server
        self.shape = shape

    def sellable_instances(self, scheme: SchemeCost) -> int:
        ht = self.server.hyperthreads - scheme.dedicated_hyperthreads
        mem = self.server.memory_gb - scheme.reserved_memory_gb
        return min(
            ht // self.shape.hyperthreads,
            mem // self.shape.memory_gb,
            self.server.ssds // self.shape.ssds,
        )

    def report(self, scheme: SchemeCost) -> TCOReport:
        n = self.sellable_instances(scheme)
        # opex (power, IDC, network) is driven by the base server, not
        # by the storage cards, so the hardware adder applies to capex only
        capex = self.server.capex * (1.0 + scheme.hardware_cost_fraction)
        tco = capex + self.server.capex * self.server.opex_ratio
        return TCOReport(
            scheme=scheme.name,
            sellable_instances=n,
            stranded_hyperthreads=(
                self.server.hyperthreads
                - scheme.dedicated_hyperthreads
                - n * self.shape.hyperthreads
            ),
            stranded_memory_gb=self.server.memory_gb - n * self.shape.memory_gb,
            stranded_ssds=self.server.ssds - n * self.shape.ssds,
            server_tco=tco,
            tco_per_instance=tco / n if n else float("inf"),
        )

    def compare(self, baseline: SchemeCost = SPDK_SCHEME,
                candidate: SchemeCost = BMSTORE_SCHEME) -> dict:
        base = self.report(baseline)
        cand = self.report(candidate)
        return {
            "baseline": base,
            "candidate": cand,
            "extra_instances_pct": 100.0 * (
                cand.sellable_instances / base.sellable_instances - 1.0
            ),
            "tco_reduction_pct": 100.0 * (
                1.0 - cand.tco_per_instance / base.tco_per_instance
            ),
        }
