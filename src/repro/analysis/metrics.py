"""Latency/throughput statistics for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["LatencyStats", "percentile", "fairness_index"]


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile on pre-sorted data (p in [0, 100])."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} out of range")
    rank = max(1, math.ceil(p / 100 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (nanoseconds)."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    p999_ns: float
    min_ns: float
    max_ns: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyStats":
        data = sorted(samples)
        if not data:
            raise ValueError("no latency samples")
        return cls(
            count=len(data),
            mean_ns=sum(data) / len(data),
            p50_ns=percentile(data, 50),
            p90_ns=percentile(data, 90),
            p99_ns=percentile(data, 99),
            p999_ns=percentile(data, 99.9),
            min_ns=data[0],
            max_ns=data[-1],
        )

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1000.0


def fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    if not values:
        raise ValueError("fairness of empty data")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
