"""Report rendering: markdown reports and terminal bar charts.

``python -m repro reproduce --output report.md`` collects every
regenerated artifact into one document; the ASCII charts give the
figure-shaped experiments (Figs. 1/10/11/15) a visual in plain
terminals.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["ascii_bar_chart", "render_markdown"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    if remainder > 0 and full < width:
        bar += _BLOCKS[int(remainder * 8)]
    return bar


def ascii_bar_chart(
    rows: Sequence[dict],
    x_key: str,
    y_key: str,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart of ``y_key`` per ``x_key`` row."""
    if not rows:
        raise ValueError("no rows to chart")
    values = []
    for row in rows:
        value = row.get(y_key)
        if isinstance(value, (int, float)):
            values.append(float(value))
        else:
            values.append(0.0)
    peak = max(values) if max(values) > 0 else 1.0
    label_w = max(len(str(row.get(x_key))) for row in rows)
    lines = []
    if title:
        lines.append(title)
    for row, value in zip(rows, values):
        label = str(row.get(x_key)).ljust(label_w)
        lines.append(f"  {label} |{_bar(value / peak, width).ljust(width)}| {value:,.3g}")
    return "\n".join(lines)


#: experiments whose rows chart naturally: id-prefix -> (x, y) keys
_CHARTABLE = {
    "fig1": ("cores", "bandwidth_gbps"),
    "fig10": ("ssds", "bandwidth_gbps"),
    "fig11": ("vms", "total_gbps"),
    "ext-sata": ("backend", "kiops"),
    "ext-remote": ("backend", "bandwidth_gbps"),
}


def render_markdown(results: Sequence[Any], header: str = "") -> str:
    """One markdown document for a list of ExperimentResult objects."""
    lines = ["# BM-Store reproduction report", ""]
    if header:
        lines += [header, ""]
    for result in results:
        lines.append(f"## [{result.experiment_id}] {result.title}")
        lines.append("")
        if result.rows:
            keys = list(result.rows[0])
            lines.append("| " + " | ".join(keys) + " |")
            lines.append("|" + "---|" * len(keys))
            for row in result.rows:
                lines.append(
                    "| " + " | ".join(_fmt(row.get(k)) for k in keys) + " |"
                )
        for exp_prefix, (x_key, y_key) in _CHARTABLE.items():
            if result.experiment_id.startswith(exp_prefix) and result.rows:
                lines.append("")
                lines.append("```")
                lines.append(ascii_bar_chart(result.rows, x_key, y_key))
                lines.append("```")
                break
        for note in result.notes:
            lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
