"""Result analysis: latency statistics, fairness, TCO model."""

from .metrics import LatencyStats, fairness_index, percentile
from .report import ascii_bar_chart, render_markdown

__all__ = ["LatencyStats", "fairness_index", "percentile", "ascii_bar_chart", "render_markdown"]
