"""Static determinism audit: AST scan of ``src/repro`` for hazards.

The simulation's headline property is byte-identical replay: same seed,
same bytes, sequential or parallel.  Three source-level patterns break
that silently, so ``python -m repro check --static`` (and the CI lint
job) fails on any of them:

``unseeded-random``
    Importing the global :mod:`random` module outside
    ``sim/random.py``.  All randomness must flow through seeded
    :class:`~repro.sim.random.RandomStream` objects.

``wall-clock``
    Reading host time (``time.time``, ``perf_counter``,
    ``datetime.now``, ...) outside the CLI and benchmark front ends.
    Simulation code must only read ``sim.now``.

``unordered-iteration``
    Iterating a ``set``/``frozenset`` (literal, comprehension, or
    constructor call) in a ``for`` statement or comprehension without a
    ``sorted(...)`` wrapper, or walking a directory listing unsorted
    (``os.listdir``, ``glob``, ``iterdir``, ``scandir``).  Dicts are
    insertion-ordered in Python 3.7+ and are not flagged; set iteration
    order is salted per process and leaks straight into event order.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

__all__ = ["Finding", "audit_file", "audit_tree", "render_findings"]

#: modules whose import means unseeded global randomness
_RANDOM_ALLOWED = ("sim/random.py",)

#: wall-clock reads are a CLI/benchmark concern, never a simulation one
_WALLCLOCK_ALLOWED = ("cli.py", "bench.py")

_TIME_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
_LISTING_FUNCS = {"listdir", "glob", "iglob", "iterdir", "scandir"}
_SET_CALLS = {"set", "frozenset"}


@dataclass(frozen=True)
class Finding:
    """One determinism hazard at a source location."""

    path: str  # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CALLS
    return False


def _is_listing_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LISTING_FUNCS
    if isinstance(func, ast.Name):
        return func.id in _LISTING_FUNCS
    return False


class _Auditor(ast.NodeVisitor):
    def __init__(self, rel_path: str):
        self.rel_path = rel_path
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.rel_path, getattr(node, "lineno", 0), rule, message)
        )

    # ---------------------------------------------------- unseeded-random
    def visit_Import(self, node: ast.Import) -> None:
        if self.rel_path not in _RANDOM_ALLOWED:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    self._flag(node, "unseeded-random",
                               "import of the global random module; use "
                               "repro.sim.random streams")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # level > 0 is a relative import (e.g. ``from .random import``
        # inside repro.sim) — a sibling module, not the stdlib.
        if (node.level == 0 and node.module == "random"
                and self.rel_path not in _RANDOM_ALLOWED):
            self._flag(node, "unseeded-random",
                       "import from the global random module; use "
                       "repro.sim.random streams")
        self.generic_visit(node)

    # --------------------------------------------------------- wall-clock
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self.rel_path not in _WALLCLOCK_ALLOWED
        ):
            base, attr = func.value.id, func.attr
            if base == "time" and attr in _TIME_FUNCS:
                self._flag(node, "wall-clock",
                           f"time.{attr}() outside cli/bench; simulation "
                           "code must read sim.now")
            elif base in ("datetime", "date") and attr in _DATETIME_FUNCS:
                self._flag(node, "wall-clock",
                           f"{base}.{attr}() outside cli/bench")
        self.generic_visit(node)

    # ------------------------------------------------ unordered-iteration
    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node):
            self._flag(iter_node, "unordered-iteration",
                       "iterating a set; wrap in sorted(...) so event "
                       "order cannot depend on hash salting")
        elif _is_listing_call(iter_node):
            self._flag(iter_node, "unordered-iteration",
                       "iterating a directory listing; wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def audit_file(path: str, rel_path: str) -> list[Finding]:
    """Audit one source file; ``rel_path`` is package-relative."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rel_path, exc.lineno or 0, "syntax-error", str(exc))]
    auditor = _Auditor(rel_path)
    auditor.visit(tree)
    return auditor.findings


def audit_tree(root: str = "") -> list[Finding]:
    """Audit the whole ``repro`` package (default: the installed tree)."""
    if not root:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings: list[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            findings.extend(audit_file(path, rel))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def render_findings(findings: list[Finding]) -> str:
    if not findings:
        return "static determinism audit: clean"
    lines = [f"static determinism audit: {len(findings)} finding(s)"]
    lines.extend(f"  {finding}" for finding in findings)
    return "\n".join(lines)
