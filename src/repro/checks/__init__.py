"""Runtime invariant checkers + static determinism audit.

Two halves:

* :mod:`repro.checks.runtime` — opt-in :class:`CheckContext` armed at
  the same component seams the fault injector uses; named checkers
  (ring, prp, lba, qos, kernel) raise :class:`InvariantViolation` at
  the point of violation and count their coverage in ``repro.obs``.
  Arm per run with ``run_case(..., checks="all")`` / a builder's
  ``checks=`` argument, or globally with ``REPRO_CHECKS=1``.
* :mod:`repro.checks.static` — an AST audit of the source tree for
  nondeterminism hazards (unseeded ``random``, wall-clock reads,
  unordered-set iteration), run by ``python -m repro check --static``.

Checkers are pure observers: a checked run's simulation payload is
byte-identical to an unchecked run.
"""

from .runtime import (
    CHECKER_NAMES,
    CheckContext,
    InvariantViolation,
    resolve_checks,
)
from .static import Finding, audit_file, audit_tree, render_findings

__all__ = [
    "CHECKER_NAMES",
    "CheckContext",
    "InvariantViolation",
    "resolve_checks",
    "Finding",
    "audit_file",
    "audit_tree",
    "render_findings",
]
