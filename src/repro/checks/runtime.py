"""Runtime invariant checkers for the simulated datapath.

The checking layer mirrors the fault layer's binding pattern: components
carry a dormant ``self.checks`` attribute (``None`` — one attribute
test, no allocation) and a :class:`CheckContext` arms the hook points it
covers.  Checkers are **pure observers**: they never create simulation
events, never draw randomness, and never mutate component state, so a
checked run is byte-identical to an unchecked run — the only output is
``repro.obs`` coverage counters and, on a violation, a raised
:class:`InvariantViolation`.

==========  ============================================================
checker     invariants (hook points)
==========  ============================================================
``ring``    NVMe ring state machine: head/tail bounds, one-step tail
            advance, SQ/CQ overflow, device/host phase-bit sequencing
            (``nvme.queues`` push/consume/post/poll)
``prp``     PRP chain validity: non-first entries page-aligned, chain
            length covers the transfer, no page inside a freed DMA
            buffer, no double-free (``nvme.ssd``, ``core.engine``,
            ``host.memory.BufferPool``)
``lba``     Fig. 4a mapping: chunk-granular translation, 2-bit SSD id,
            injective valid entries, cleared entries read back as zero
            (``core.lba_mapping``); CoW refcount shadow: no shared
            chunk freed while references remain (``core.volumes``)
``qos``     Fig. 5 conservation: per-namespace FIFO admission order,
            token non-negativity, buffered = admitted - fast-passed,
            passed accounting (``core.qos``)
``kernel``  sim-kernel sanity: clock monotonicity, no event dispatched
            twice (``sim.kernel`` dispatch loop)
``push``    pushdown sandbox confinement: every backend I/O a program
            issues stays inside the LBA windows it was installed with
            and inside the namespace (``push.manager``)
==========  ============================================================
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Iterable, Optional, Union

from ..sim import SimulationError
from ..sim.units import PAGE_SIZE

__all__ = [
    "CHECKER_NAMES",
    "CheckContext",
    "InvariantViolation",
    "resolve_checks",
]

#: every named checker, in documentation order
CHECKER_NAMES = ("ring", "prp", "lba", "qos", "kernel", "push")

#: spellings of "no checkers" accepted by :func:`resolve_checks`
_OFF_VALUES = ("", "0", "off", "none", "false")
#: spellings of "every checker"
_ALL_VALUES = ("1", "all", "on", "true")


class InvariantViolation(SimulationError):
    """A runtime invariant failed; carries the IOSpan context when known.

    Attributes
    ----------
    checker:
        Which named checker tripped (one of :data:`CHECKER_NAMES`).
    span:
        The in-flight :class:`~repro.obs.spans.IOSpan` at the violation
        point, or ``None`` when the hook has no command context.
    context:
        Hook-specific key/value details (ring indices, addresses, ...).
    """

    def __init__(self, checker: str, message: str, span=None, **context: Any):
        self.checker = checker
        self.message = message
        self.span = span
        self.context = context
        super().__init__(str(self))

    def __str__(self) -> str:
        parts = [f"[{self.checker}] {self.message}"]
        if self.context:
            detail = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
            parts.append(f"({detail})")
        if self.span is not None:
            stamps = ", ".join(
                f"{stage}@{t}" for stage, t in self.span.ordered_stamps()
            )
            parts.append(
                f"span[op={self.span.op} origin={self.span.origin} {stamps}]"
            )
        return " ".join(parts)


class _RingState:
    """Checker-owned shadow of one ring's indices and phases."""

    __slots__ = ("expected_tail", "expected_head", "unconsumed",
                 "device_phase", "host_phase")

    def __init__(self, ring):
        self.expected_tail = ring.tail
        self.expected_head = ring.head
        self.unconsumed = (ring.tail - ring.head) % ring.depth
        self.device_phase = getattr(ring, "_device_phase", 1)
        self.host_phase = getattr(ring, "_host_phase", 1)


class _QoSState:
    """Per-namespace admission ledger."""

    __slots__ = ("next_seq", "outstanding", "admitted", "granted", "fast")

    def __init__(self):
        self.next_seq = 0
        self.outstanding: deque[int] = deque()
        self.admitted = 0
        self.granted = 0
        self.fast = 0


class _FreedRanges:
    """Freed DMA-buffer ranges of one memory space (pure bookkeeping)."""

    __slots__ = ("ranges",)

    def __init__(self):
        self.ranges: dict[int, int] = {}  # start -> nbytes

    def free(self, addr: int, nbytes: int) -> bool:
        """Record a free; returns False on double-free."""
        if addr in self.ranges:
            return False
        self.ranges[addr] = nbytes
        return True

    def alloc(self, addr: int) -> None:
        self.ranges.pop(addr, None)

    def covering(self, addr: int) -> Optional[tuple[int, int]]:
        """The freed range containing ``addr``, or None.

        Freed sets stay small (pools recycle), so a linear scan keeps
        the structure trivially observation-only.
        """
        for start, nbytes in self.ranges.items():
            if start <= addr < start + nbytes:
                return start, nbytes
        return None


class CheckContext:
    """Armed invariant checkers; bind it to a world like a FaultInjector.

    ``checkers`` selects a subset of :data:`CHECKER_NAMES` (``None`` =
    all).  Every check invocation increments the per-checker
    ``invariant_checks{checker=...}`` counter on ``obs`` (when given)
    plus the local :attr:`counts`, so clean runs can prove the hooks
    actually executed.
    """

    def __init__(self, checkers: Optional[Iterable[str]] = None, obs=None):
        names = tuple(CHECKER_NAMES) if checkers is None else tuple(checkers)
        unknown = [n for n in names if n not in CHECKER_NAMES]
        if unknown:
            raise ValueError(
                f"unknown checker(s) {unknown} (known: {', '.join(CHECKER_NAMES)})"
            )
        self.enabled = frozenset(names)
        self.obs = obs
        self.ring = "ring" in self.enabled
        self.prp = "prp" in self.enabled
        self.lba = "lba" in self.enabled
        self.qos = "qos" in self.enabled
        self.kernel = "kernel" in self.enabled
        self.push = "push" in self.enabled
        self.counts: dict[str, int] = {name: 0 for name in names}
        self.violations = 0
        self._counters = {}
        if obs is not None:
            for name in names:
                self._counters[name] = obs.counter("invariant_checks", checker=name)
        self._rings: dict[int, _RingState] = {}
        self._ring_objs: list = []  # keep rings alive so ids stay unique
        self._qos_states: dict[int, _QoSState] = {}
        self._qos_objs: list = []
        self._lba_fwd: dict[int, dict[int, tuple[int, int]]] = {}
        self._lba_rev: dict[int, dict[tuple[int, int], int]] = {}
        self._lba_objs: list = []
        #: VolumeManager id -> shadow refcounts (ssd_id, chunk) -> count
        self._vol_refs: dict[int, dict[tuple[int, int], int]] = {}
        self._vol_objs: list = []
        #: PushManager id -> key -> (windows, namespace blocks), recorded
        #: at install time so the I/O-time check is independent of the
        #: manager's own (possibly tampered) program copy
        self._push_progs: dict[int, dict[str, tuple[tuple, int]]] = {}
        self._push_objs: list = []
        self._freed: dict[str, _FreedRanges] = {}
        self._last_now = 0

    # ------------------------------------------------------------- plumbing
    def _note(self, checker: str) -> None:
        self.counts[checker] += 1
        c = self._counters.get(checker)
        if c is not None:
            c.inc()

    def _fail(self, checker: str, message: str, span=None, **context) -> None:
        self.violations += 1
        raise InvariantViolation(checker, message, span=span, **context)

    # -------------------------------------------------------------- binding
    def bind_sim(self, sim) -> None:
        if self.kernel:
            sim.checks = self

    def bind_ring(self, ring) -> None:
        """Arm one SQ or CQ (both expose ``checks``)."""
        if self.ring:
            ring.checks = self

    def bind_ssd(self, ssd) -> None:
        if self.prp:
            ssd.checks = self

    def bind_engine(self, engine) -> None:
        if self.prp:
            engine.checks = self

    def bind_table(self, table) -> None:
        if self.lba:
            table.checks = self

    def bind_qos(self, nsq) -> None:
        """Arm one per-namespace QoS stage (called by QoSModule)."""
        if self.qos:
            nsq.checks = self

    def bind_volumes(self, vm) -> None:
        """Arm one VolumeManager's refcount shadow (lba checker)."""
        if self.lba:
            vm.checks = self

    def bind_push(self, manager) -> None:
        """Arm one PushManager's sandbox shadow (called on construction)."""
        if self.push:
            manager.checks = self

    def bind_pool(self, pool) -> None:
        if self.prp:
            pool.checks = self
            self._freed.setdefault(pool.memory.name, _FreedRanges())

    # ------------------------------------------------------- state accessors
    def _ring_state(self, ring) -> _RingState:
        state = self._rings.get(id(ring))
        if state is None:
            state = self._rings[id(ring)] = _RingState(ring)
            self._ring_objs.append(ring)
        return state

    def _qos_state(self, nsq) -> _QoSState:
        state = self._qos_states.get(id(nsq))
        if state is None:
            state = self._qos_states[id(nsq)] = _QoSState()
            self._qos_objs.append(nsq)
        return state

    # ------------------------------------------------------- hooks: ring
    def on_sq_push(self, sq, span=None) -> None:
        """Pre-mutation hook in :meth:`SubmissionQueue.push`."""
        self._note("ring")
        state = self._ring_state(sq)
        depth = sq.depth
        if not (0 <= sq.tail < depth and 0 <= sq.head < depth):
            self._fail("ring", f"SQ{sq.sqid} index out of bounds", span=span,
                       head=sq.head, tail=sq.tail, depth=depth)
        if sq.tail != state.expected_tail:
            self._fail("ring", f"SQ{sq.sqid} tail moved without a push", span=span,
                       tail=sq.tail, expected=state.expected_tail)
        if (sq.tail - sq.head) % depth >= depth - 1:
            self._fail("ring", f"SQ{sq.sqid} overflow: push into a full ring",
                       span=span, head=sq.head, tail=sq.tail, depth=depth)
        state.expected_tail = (sq.tail + 1) % depth

    def on_sq_consume(self, sq) -> None:
        """Pre-mutation hook in :meth:`SubmissionQueue.consume_addr`."""
        self._note("ring")
        state = self._ring_state(sq)
        depth = sq.depth
        if (sq.tail - sq.head) % depth == 0:
            self._fail("ring", f"SQ{sq.sqid} underflow: consume from an empty ring",
                       head=sq.head, tail=sq.tail, depth=depth)
        state.expected_head = (sq.head + 1) % depth

    def on_cq_post(self, cq, cqe) -> None:
        """Pre-mutation hook in :meth:`CompletionQueue.post_slot`.

        Runs *before* the CQ-full guard, so it independently detects the
        silent-overwrite bug even if that guard is removed.
        """
        self._note("ring")
        state = self._ring_state(cq)
        depth = cq.depth
        if not (0 <= cq.tail < depth and 0 <= cq.head < depth):
            self._fail("ring", f"CQ{cq.cqid} index out of bounds",
                       head=cq.head, tail=cq.tail, depth=depth)
        if state.unconsumed >= depth - 1:
            self._fail(
                "ring",
                f"CQ{cq.cqid} overflow: posting over an unconsumed completion",
                head=cq.head, tail=cq.tail, depth=depth,
                unconsumed=state.unconsumed,
            )
        if cq._device_phase != state.device_phase:
            self._fail("ring", f"CQ{cq.cqid} device phase out of sequence",
                       phase=cq._device_phase, expected=state.device_phase)
        state.unconsumed += 1
        if (cq.tail + 1) % depth == 0:
            state.device_phase ^= 1

    def on_cq_poll(self, cq, cqe) -> None:
        """Post-success hook in :meth:`CompletionQueue.poll`."""
        self._note("ring")
        state = self._ring_state(cq)
        if state.unconsumed <= 0:
            self._fail("ring",
                       f"CQ{cq.cqid} consumed a completion that was never posted",
                       head=cq.head, tail=cq.tail)
        if cqe.phase != state.host_phase:
            self._fail("ring", f"CQ{cq.cqid} polled a stale-phase completion",
                       phase=cqe.phase, expected=state.host_phase)
        state.unconsumed -= 1
        if (cq.head + 1) % cq.depth == 0:
            state.host_phase ^= 1

    def on_db_flush(self, sq, batched: int) -> None:
        """Doorbell-flush hook: a shadow/batched MMIO ring covering
        ``batched`` accumulated submissions (the shadow tail must have
        caught up with the real tail when the MMIO finally fires)."""
        self._note("ring")
        if not 1 <= batched <= sq.depth:
            self._fail("ring",
                       f"SQ{sq.sqid} doorbell flush of {batched} entries "
                       f"outside 1..{sq.depth}",
                       head=sq.head, tail=sq.tail, depth=sq.depth)
        if sq.shadow_mode and sq.shadow_tail != sq.tail:
            self._fail("ring",
                       f"SQ{sq.sqid} shadow tail {sq.shadow_tail} stale at "
                       f"doorbell time (tail {sq.tail})",
                       head=sq.head, tail=sq.tail)

    def on_cq_coalesce(self, cq, pending: int) -> None:
        """CQE-coalescing hook: completions held back awaiting the
        threshold/timer must never cover the whole ring — that would
        mean an IRQ the host cannot be owed."""
        self._note("ring")
        if not 1 <= pending < cq.depth:
            self._fail("ring",
                       f"CQ{cq.cqid} coalescer holding {pending} CQEs "
                       f"(ring depth {cq.depth})",
                       head=cq.head, tail=cq.tail, depth=cq.depth)
        if pending > cq.coalesce_threshold:
            self._fail("ring",
                       f"CQ{cq.cqid} coalescer overshot threshold "
                       f"{cq.coalesce_threshold} with {pending} pending",
                       head=cq.head, tail=cq.tail)

    # -------------------------------------------------------- hooks: prp
    def on_prp_chain(self, pages: list, length: int, span=None,
                     memory_name: Optional[str] = None, where: str = "") -> None:
        """Validate a resolved PRP chain (SSD or engine side).

        Page-alignment holds for global PRPs too: the Fig. 4b tag lives
        in bits [63:56], a multiple of the page size, so ``% PAGE_SIZE``
        sees only the host offset bits.
        """
        self._note("prp")
        if not pages:
            self._fail("prp", f"{where}: empty PRP chain for {length}B", span=span)
        first_off = pages[0] % PAGE_SIZE
        expected = max(1, (first_off + length + PAGE_SIZE - 1) // PAGE_SIZE)
        if len(pages) != expected:
            self._fail("prp",
                       f"{where}: PRP chain does not cover the transfer",
                       span=span, pages=len(pages), expected=expected,
                       length=length)
        for entry in pages[1:]:
            if entry % PAGE_SIZE:
                self._fail("prp",
                           f"{where}: non-first PRP entry is not page-aligned",
                           span=span, entry=hex(entry))
        freed = self._freed.get(memory_name) if memory_name else None
        if freed is not None and freed.ranges:
            for entry in pages:
                hit = freed.covering(entry)
                if hit is not None:
                    self._fail("prp",
                               f"{where}: PRP entry points into freed memory",
                               span=span, entry=hex(entry),
                               freed=(hex(hit[0]), hit[1]))

    @staticmethod
    def _pool_owner(pool, addr: int) -> str:
        """The memory a pooled buffer lives in.

        Pools backed by a CXL tier hand out addresses from several
        memories (chip, CXL window, borrowed slot buffers); freed-range
        bookkeeping must follow the buffer to its owning space or a
        spilled double-free would be tracked against the wrong ranges.
        """
        owner = getattr(pool, "owner_name", None)
        if owner is not None:
            return owner(addr)
        return pool.memory.name

    def on_buffer_alloc(self, pool, addr: int, nbytes: int) -> None:
        freed = self._freed.get(self._pool_owner(pool, addr))
        if freed is not None:
            freed.alloc(addr)

    def on_buffer_free(self, pool, addr: int, nbytes: int) -> None:
        self._note("prp")
        owner = self._pool_owner(pool, addr)
        freed = self._freed.setdefault(owner, _FreedRanges())
        if not freed.free(addr, nbytes):
            self._fail("prp", "double free of a DMA buffer",
                       addr=hex(addr), nbytes=nbytes,
                       memory=owner)

    # -------------------------------------------------------- hooks: lba
    def _lba_maps(self, table):
        fwd = self._lba_fwd.get(id(table))
        if fwd is None:
            fwd = self._lba_fwd[id(table)] = {}
            self._lba_rev[id(table)] = {}
            self._lba_objs.append(table)
        return fwd, self._lba_rev[id(table)]

    def on_lba_set(self, table, index: int, entry) -> None:
        """Hook in :meth:`MappingTable.set_entry`: injectivity (Fig. 4a)."""
        self._note("lba")
        fwd, rev = self._lba_maps(table)
        key = (entry.ssd_id, entry.base_chunk)
        claimed = rev.get(key)
        if claimed is not None and claimed != index:
            self._fail("lba",
                       "mapping not injective: physical chunk mapped twice",
                       ssd_id=entry.ssd_id, base_chunk=entry.base_chunk,
                       chunk_index=index, already=claimed)
        old = fwd.get(index)
        if old is not None:
            rev.pop(old, None)
        fwd[index] = key
        rev[key] = index

    def on_lba_clear(self, table, index: int) -> None:
        fwd, rev = self._lba_maps(table)
        old = fwd.pop(index, None)
        if old is not None:
            rev.pop(old, None)

    def on_lba_invalid_read(self, table, host_lba: int, raw: int) -> None:
        """Hook in :meth:`MappingTable.translate` just before the
        invalid-entry fault: a cleared entry must read back as zero, or
        a later re-validation of the row resurrects a dead mapping."""
        self._note("lba")
        if raw != 0:
            self._fail("lba",
                       "invalid mapping entry holds a stale packed value",
                       host_lba=host_lba, raw=hex(raw))

    # --------------------------------------------- hooks: lba (CoW refcounts)
    def _vol_shadow(self, vm) -> dict:
        shadow = self._vol_refs.get(id(vm))
        if shadow is None:
            shadow = self._vol_refs[id(vm)] = {}
            self._vol_objs.append(vm)
        return shadow

    def on_chunk_incref(self, vm, phys: tuple, count: int) -> None:
        """Hook after a VolumeManager refcount bump; ``count`` is the
        manager's new value, which the shadow must agree with."""
        self._note("lba")
        shadow = self._vol_shadow(vm)
        shadow[phys] = shadow.get(phys, 0) + 1
        if shadow[phys] != count:
            self._fail("lba", "chunk refcount drifted from shadow on incref",
                       phys=phys, shadow=shadow[phys], actual=count)

    def on_chunk_decref(self, vm, phys: tuple, count: int) -> None:
        """Hook before a VolumeManager refcount drop (``count`` = value
        after the drop)."""
        self._note("lba")
        shadow = self._vol_shadow(vm)
        have = shadow.get(phys, 0)
        if have <= 0:
            self._fail("lba", "decref of a chunk with no shadow references",
                       phys=phys)
        shadow[phys] = have - 1
        if shadow[phys] != count:
            self._fail("lba", "chunk refcount drifted from shadow on decref",
                       phys=phys, shadow=shadow[phys], actual=count)

    def on_chunk_free(self, vm, phys: tuple) -> None:
        """Hook when a chunk returns to the engine free list: it must
        hold zero shadow references — freeing a chunk a snapshot or
        clone still maps would corrupt that volume."""
        self._note("lba")
        shadow = self._vol_shadow(vm)
        if shadow.get(phys, 0) != 0:
            self._fail("lba", "shared chunk freed while refcount > 0",
                       phys=phys, shadow=shadow.get(phys, 0))
        shadow.pop(phys, None)

    def on_lba_translate(self, table, host_lba: int, ssd_id: int,
                         plba: int) -> None:
        """Hook in :meth:`MappingTable.translate`: eqns (1)-(4) output."""
        self._note("lba")
        cs = table.chunk_blocks
        if plba % cs != host_lba % cs:
            self._fail("lba", "translation is not chunk-granular",
                       host_lba=host_lba, physical_lba=plba, chunk_blocks=cs)
        if not 0 <= ssd_id < 4:
            self._fail("lba", "SSD id exceeds the 2-bit mapping-entry field",
                       host_lba=host_lba, ssd_id=ssd_id)
        if plba < 0:
            self._fail("lba", "negative physical LBA",
                       host_lba=host_lba, physical_lba=plba)

    # -------------------------------------------------------- hooks: qos
    def on_qos_admit(self, nsq, span=None) -> int:
        """Hook at :meth:`_NamespaceQoS.admit` entry; returns the seq."""
        state = self._qos_state(nsq)
        seq = state.next_seq
        state.next_seq += 1
        state.admitted += 1
        state.outstanding.append(seq)
        return seq

    def on_qos_grant(self, nsq, seq: int, fast: bool, span=None) -> None:
        """Hook just before a gate succeeds (fast path or dispatcher)."""
        self._note("qos")
        state = self._qos_state(nsq)
        if not state.outstanding or state.outstanding[0] != seq:
            oldest = state.outstanding[0] if state.outstanding else None
            self._fail("qos",
                       f"{nsq.ns_key}: command granted out of admission order",
                       span=span, granted_seq=seq, oldest_outstanding=oldest,
                       fast_path=fast)
        state.outstanding.popleft()
        state.granted += 1
        if fast:
            state.fast += 1
        # raw token fields: the ``tokens`` property refills (mutates),
        # which an observer must never trigger
        if nsq.iops_bucket._tokens < -1e-9 or nsq.bw_bucket._tokens < -1e-9:
            self._fail("qos", f"{nsq.ns_key}: token bucket went negative",
                       span=span, iops_tokens=nsq.iops_bucket._tokens,
                       bw_tokens=nsq.bw_bucket._tokens)
        if nsq.passed_total != state.granted:
            self._fail("qos", f"{nsq.ns_key}: passed accounting drifted",
                       span=span, passed_total=nsq.passed_total,
                       granted=state.granted)
        if nsq.buffered_total != state.admitted - state.fast:
            self._fail("qos",
                       f"{nsq.ns_key}: buffered != admitted - fast-passed",
                       span=span, buffered_total=nsq.buffered_total,
                       admitted=state.admitted, fast_passed=state.fast)

    # ------------------------------------------------------ hooks: kernel
    def on_event_dispatch(self, sim, event) -> None:
        """Per-event hook in the kernel dispatch loop (step + run)."""
        self._note("kernel")
        now = sim._now
        if now < self._last_now:
            self._fail("kernel", "simulation clock moved backwards",
                       now=now, last=self._last_now, event=event.name)
        self._last_now = now
        if event._processed:
            self._fail("kernel", "event dispatched twice",
                       event=event.name, now=now)

    # -------------------------------------------------------- hooks: push
    def _push_shadow(self, manager) -> dict:
        shadow = self._push_progs.get(id(manager))
        if shadow is None:
            shadow = self._push_progs[id(manager)] = {}
            self._push_objs.append(manager)
        return shadow

    def on_push_install(self, manager, key: str, program, ns_blocks: int) -> None:
        """Hook in :meth:`PushManager.install`: snapshot the declared LBA
        windows so every later program-issued I/O can be replayed against
        the *installed* confinement, not the manager's live copy."""
        self._note("push")
        shadow = self._push_shadow(manager)
        windows = tuple(tuple(w) for w in program.windows)
        for start, count in windows:
            if start < 0 or count < 1 or start + count > ns_blocks:
                self._fail("push",
                           f"{key}: installed window escapes the namespace",
                           window=(start, count), ns_blocks=ns_blocks)
        shadow[key] = (windows, ns_blocks)

    def on_push_io(self, manager, key: str, lba: int, nblocks: int,
                   span=None) -> None:
        """Hook before every backend read/write a pushdown program issues
        (runs *before* the interpreter's own ``admits`` gate, so either
        enforcement point catches the removal of the other)."""
        self._note("push")
        shadow = self._push_shadow(manager).get(key)
        if shadow is None:
            self._fail("push",
                       f"{key}: program I/O without a recorded install",
                       span=span, lba=lba, nblocks=nblocks)
        windows, ns_blocks = shadow
        if lba < 0 or nblocks < 1 or lba + nblocks > ns_blocks:
            self._fail("push",
                       f"{key}: program I/O escapes the namespace",
                       span=span, lba=lba, nblocks=nblocks,
                       ns_blocks=ns_blocks)
        for start, count in windows:
            if start <= lba and lba + nblocks <= start + count:
                return
        self._fail("push",
                   f"{key}: program I/O outside its declared LBA windows",
                   span=span, lba=lba, nblocks=nblocks, windows=windows)

    # -------------------------------------------------------------- report
    def summary(self) -> dict[str, int]:
        """Coverage counts per enabled checker (JSON-able)."""
        return dict(self.counts)


def resolve_checks(
    checks: Union[None, bool, str, Iterable[str], CheckContext],
    obs=None,
) -> Optional[CheckContext]:
    """Normalize a ``checks=`` argument into a context (or None = off).

    ``None`` consults the ``REPRO_CHECKS`` environment variable ("1" /
    "all" arms everything, a comma list arms a subset, unset/"0"
    disarms).  ``True``/"all" arms everything; ``False``/"off" disarms;
    an iterable of names arms that subset; an existing
    :class:`CheckContext` passes through unchanged (its own ``obs``
    wins).
    """
    if isinstance(checks, CheckContext):
        return checks
    if checks is None:
        checks = os.environ.get("REPRO_CHECKS", "")
    if checks is False:
        return None
    if checks is True:
        return CheckContext(obs=obs)
    if isinstance(checks, str):
        lowered = checks.strip().lower()
        if lowered in _OFF_VALUES:
            return None
        if lowered in _ALL_VALUES:
            return CheckContext(obs=obs)
        names = [part.strip() for part in checks.split(",") if part.strip()]
        return CheckContext(checkers=names, obs=obs)
    names = list(checks)
    if not names:
        return None
    return CheckContext(checkers=names, obs=obs)
