"""SATA disk model (HDD and SATA-SSD profiles).

Paper §VI-A: BM-Store's compatibility story includes SATA devices —
"we have to add the logic of the SATA controller to the Host Adaptor
... then develop a module in BMS-Controller to process SATA protocol".
This module is the device those attach to: an NCQ-depth-limited drive
with a mechanical service model (seek distance + rotational latency +
media transfer) for HDDs, or a flat flash profile for SATA SSDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Event, RandomStream, Resource, Simulator
from ..sim.units import ms, us

__all__ = ["SATAProfile", "HDD_7200_PROFILE", "SATA_SSD_PROFILE", "SATADisk"]

LBA_BYTES = 4096


@dataclass(frozen=True)
class SATAProfile:
    """Calibration constants for one SATA device."""

    name: str
    capacity_bytes: int
    #: mechanical seek: base + span * sqrt(distance_fraction); 0 for SSDs
    seek_base_ns: int
    seek_span_ns: int
    rotational_rpm: int  # 0 for SSDs
    transfer_bytes_per_sec: float
    ncq_depth: int = 32
    command_overhead_ns: int = 20_000  # SATA FIS / link overhead


#: a nearline 7200rpm HDD (e.g. the capacity tier of local storage)
HDD_7200_PROFILE = SATAProfile(
    name="sata-hdd-7200",
    capacity_bytes=8_000_000_000_000,
    seek_base_ns=ms(0.8),
    seek_span_ns=ms(7.5),
    rotational_rpm=7200,
    transfer_bytes_per_sec=220e6,
)

#: a SATA SSD (flat access, 550/520 MB/s class, interface-bound)
SATA_SSD_PROFILE = SATAProfile(
    name="sata-ssd",
    capacity_bytes=1_920_000_000_000,
    seek_base_ns=us(55),
    seek_span_ns=0,
    rotational_rpm=0,
    transfer_bytes_per_sec=540e6,
    command_overhead_ns=12_000,
)


class SATACompletion:
    """Result of one SATA command: status + optional data."""
    __slots__ = ("ok", "data")

    def __init__(self, ok: bool, data: Optional[bytes] = None):
        self.ok = ok
        self.data = data


class SATADisk:
    """One SATA device behind the engine's SATA host-adaptor logic."""

    def __init__(
        self,
        sim: Simulator,
        profile: SATAProfile,
        rng: RandomStream,
        name: str = "sata0",
    ):
        self.sim = sim
        self.profile = profile
        self.rng = rng
        self.name = name
        self._ncq = Resource(sim, profile.ncq_depth, name=f"{name}.ncq")
        self._actuator = Resource(sim, 1, name=f"{name}.arm")
        from ..sim import BandwidthLink

        #: the SATA interface (and flash array) data path for SSDs
        self._bus = BandwidthLink(sim, profile.transfer_bytes_per_sec,
                                  name=f"{name}.bus")
        self._last_lba = 0
        self._blocks: dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0

    @property
    def num_blocks(self) -> int:
        return self.profile.capacity_bytes // LBA_BYTES

    # ------------------------------------------------------------- commands
    def submit(
        self,
        op: str,
        lba: int,
        nblocks: int,
        payload: Optional[bytes] = None,
        want_data: bool = False,
    ) -> Event:
        """Queue one command; the event fires with a SATACompletion."""
        done = self.sim.event(name=f"{self.name}.cmd")
        self.sim.process(
            self._execute(op, lba, nblocks, payload, want_data, done),
            name=f"{self.name}.exec",
        )
        return done

    @property
    def is_mechanical(self) -> bool:
        return self.profile.rotational_rpm > 0

    def _mechanical_service_ns(self, lba: int, nblocks: int) -> int:
        profile = self.profile
        distance = abs(lba - self._last_lba) / max(1, self.num_blocks)
        service = profile.command_overhead_ns
        service += int(profile.seek_base_ns + profile.seek_span_ns * distance ** 0.5)
        half_turn_ns = int(60e9 / profile.rotational_rpm / 2)
        service += self.rng.randint(0, 2 * half_turn_ns)
        service += int(nblocks * LBA_BYTES * 1e9 / profile.transfer_bytes_per_sec)
        return service

    def _execute(self, op, lba, nblocks, payload, want_data, done: Event):
        if lba < 0 or lba + nblocks > self.num_blocks:
            done.succeed(SATACompletion(ok=False))
            return
        yield self._ncq.acquire()
        try:
            if self.is_mechanical:
                # one actuator: seek + rotation + media transfer, serialized
                yield self._actuator.acquire()
                try:
                    yield self.sim.timeout(self._mechanical_service_ns(lba, nblocks))
                    self._last_lba = lba + nblocks
                finally:
                    self._actuator.release()
            else:
                # flash: NCQ-parallel access, shared SATA interface bus
                yield self.sim.timeout(
                    self.profile.command_overhead_ns + self.profile.seek_base_ns
                )
                yield self._bus.transfer(nblocks * LBA_BYTES)
        finally:
            self._ncq.release()
        data = None
        if op == "write":
            self.writes += 1
            self.write_bytes += nblocks * LBA_BYTES
            if payload is not None:
                for i in range(nblocks):
                    self._blocks[lba + i] = payload[
                        i * LBA_BYTES : (i + 1) * LBA_BYTES
                    ].ljust(LBA_BYTES, b"\0")
        elif op == "read":
            self.reads += 1
            self.read_bytes += nblocks * LBA_BYTES
            if want_data or any((lba + i) in self._blocks for i in range(nblocks)):
                data = b"".join(
                    self._blocks.get(lba + i, bytes(LBA_BYTES))
                    for i in range(nblocks)
                )
        elif op == "flush":
            pass  # mechanical drives: handled by the seek/transfer model
        else:
            done.succeed(SATACompletion(ok=False))
            return
        done.succeed(SATACompletion(ok=True, data=data))

    def block_data(self, lba: int) -> Optional[bytes]:
        return self._blocks.get(lba)
