"""SATA device substrate (paper §VI-A compatibility extension)."""

from .disk import HDD_7200_PROFILE, SATA_SSD_PROFILE, SATADisk, SATAProfile

__all__ = ["HDD_7200_PROFILE", "SATA_SSD_PROFILE", "SATADisk", "SATAProfile"]
