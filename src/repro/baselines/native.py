"""Native-disk baseline.

The paper's bare-metal baseline is simply the host NVMe driver on the
physical drive; :func:`repro.baselines.rigs.build_native` constructs
it.  This module holds the scheme-level description used in reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NATIVE_SCHEME"]


@dataclass(frozen=True)
class _NativeScheme:
    name: str = "Native Disk"
    shareable: bool = False
    virtualized: bool = False
    dedicated_cores: int = 0
    description: str = (
        "Physical NVMe drive bound by the standard host driver; the "
        "performance ceiling every virtualization scheme is measured "
        "against."
    )


NATIVE_SCHEME = _NativeScheme()
