"""Feature matrix of local-storage schemes — paper Table I.

Each scheme is described by the capabilities the paper compares:
host efficiency, compatibility, transparency, performance,
deployability, manageability — derived from structural properties
(does it need host cores? custom drivers? special devices?) rather
than hand-entered booleans, so the table is a *consequence* of the
scheme models.  The structural inputs themselves now live in the
declarative scheme registry (:mod:`repro.baselines.registry`); this
module keeps the derivation and the classic ``SCHEMES`` export.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SchemeProperties", "FEATURE_COLUMNS", "SCHEMES", "feature_matrix"]

FEATURE_COLUMNS = (
    "host_efficiency",
    "compatibility",
    "transparency",
    "performance",
    "deployability",
    "manageability",
)


@dataclass(frozen=True)
class SchemeProperties:
    """Structural properties of one virtualization scheme."""

    name: str
    dedicated_host_cores: int  # polling/emulation cores required
    requires_custom_driver: bool  # host/guest driver or QEMU changes
    requires_special_device: bool  # e.g. SR-IOV-capable SSDs only
    single_disk_throughput: float  # fraction of native (paper-reported)
    architecture: str  # "software" | "p2p" | "direct-attached" | "device"
    out_of_band_management: bool

    # -- derived Table I columns -------------------------------------------
    @property
    def host_efficiency(self) -> bool:
        return self.dedicated_host_cores == 0

    @property
    def compatibility(self) -> bool:
        """Works with commodity NVMe drives from any vendor."""
        return not self.requires_special_device

    @property
    def transparency(self) -> bool:
        """No software installed in the tenant's host OS."""
        return not self.requires_custom_driver

    @property
    def performance(self) -> bool:
        """Near-native single-disk throughput (>= 80%)."""
        return self.single_disk_throughput >= 0.80

    @property
    def deployability(self) -> bool:
        """Deployable at scale on bare-metal instances.

        Software schemes deploy trivially where the vendor controls the
        host; P2P hardware schemes need host-side drivers, which
        bare-metal tenants will not install.
        """
        return self.architecture != "p2p"

    @property
    def manageability(self) -> bool:
        return self.out_of_band_management

    def row(self) -> dict[str, bool]:
        return {col: getattr(self, col) for col in FEATURE_COLUMNS}


def _from_registry() -> dict[str, SchemeProperties]:
    """Derive the Table I rows from the declarative scheme registry."""
    from .registry import table1_schemes

    return {
        title: SchemeProperties(
            name=title,
            dedicated_host_cores=d.dedicated_host_cores,
            requires_custom_driver=d.requires_custom_driver,
            requires_special_device=d.requires_special_device,
            single_disk_throughput=d.single_disk_throughput,
            architecture=d.architecture,
            out_of_band_management=d.out_of_band_management,
        )
        for title, d in table1_schemes().items()
    }


SCHEMES: dict[str, SchemeProperties] = _from_registry()


def feature_matrix() -> dict[str, dict[str, bool]]:
    """Table I: scheme -> {feature: supported}."""
    return {name: scheme.row() for name, scheme in SCHEMES.items()}
