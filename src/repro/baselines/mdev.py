"""MDev-NVMe baseline: mediated pass-through with active polling.

The Table I row the paper cites ([32], USENIX ATC'18): a host kernel
module mediates a physical NVMe controller into per-VM virtual
controllers.  The *fast path* is near-passthrough — guest queues map
onto shadow queues on the physical drive, with host LBA translation per
command — but a dedicated host polling core drives submission/completion
mediation, and a host kernel module must be installed (no transparency,
no bare-metal deployability).

Model: one polling core mediates all guest queues; per-command
mediation costs are far smaller than vhost's data handling (no virtio
descriptor layer, no segment processing) so performance stays close to
native, which is exactly MDev-NVMe's published result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..host.block import CompletionInfo
from ..host.environment import Host
from ..host.memory import BufferPool
from ..nvme.command import SQE
from ..nvme.prp import build_prps
from ..nvme.queues import CompletionQueue, SubmissionQueue
from ..nvme.spec import IOOpcode, LBA_BYTES, StatusCode
from ..nvme.ssd import NVMeSSD
from ..sim import Event, SimulationError, Simulator

__all__ = ["MDevConfig", "MDevNVMeTarget", "MDevVirtualDisk"]

MDEV_QID = 9


@dataclass(frozen=True)
class MDevConfig:
    """Per-command mediation costs on the polling core."""

    submit_ns: int = 900  # shadow-queue copy + LBA translation
    completion_ns: int = 500
    poll_interval_ns: int = 500
    guest_submit_ns: int = 700
    guest_irq_ns: int = 2500


@dataclass
class _MDevRequest:
    opcode: int
    lba: int
    nblocks: int
    payload: Optional[bytes]
    want_data: bool
    done: Event
    start_ns: int
    vdisk: "MDevVirtualDisk"


class MDevVirtualDisk:
    """The mediated NVMe device one VM sees (an LBA-translated slice)."""

    def __init__(self, target: "MDevNVMeTarget", name: str, lba_base: int,
                 num_blocks: int):
        self.target = target
        self.sim = target.sim
        self.name = name
        self.lba_base = lba_base
        self._num_blocks = num_blocks
        self.queue: list[_MDevRequest] = []

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def block_bytes(self) -> int:
        return LBA_BYTES

    def read(self, lba: int, nblocks: int, want_data: bool = False) -> Event:
        return self._enqueue(int(IOOpcode.READ), lba, nblocks, None, want_data)

    def write(self, lba: int, nblocks: int, payload: Optional[bytes] = None) -> Event:
        return self._enqueue(int(IOOpcode.WRITE), lba, nblocks, payload, False)

    def flush(self) -> Event:
        return self._enqueue(int(IOOpcode.FLUSH), 0, 0, None, False)

    def _enqueue(self, opcode, lba, nblocks, payload, want_data) -> Event:
        done = self.sim.event(name=f"{self.name}.io")
        req = _MDevRequest(opcode, lba, nblocks, payload, want_data, done,
                           self.sim.now, self)

        def guest_submit():
            yield self.sim.timeout(self.target.config.guest_submit_ns)
            self.queue.append(req)

        self.sim.process(guest_submit(), name=f"{self.name}.gsub")
        return done


class MDevNVMeTarget:
    """The host kernel module: one polling core mediating one drive."""

    def __init__(self, host: Host, ssd: NVMeSSD,
                 config: MDevConfig = MDevConfig(), name: str = "mdev"):
        self.sim: Simulator = host.sim
        self.host = host
        self.ssd = ssd
        self.config = config
        self.name = name
        self.cores = host.cpu.dedicate(1, owner=name)
        self.vdisks: list[MDevVirtualDisk] = []
        self._pool = BufferPool(host.memory)
        self._pending: dict[int, tuple[_MDevRequest, int, int]] = {}
        self._next_cid = 0
        mem = host.memory
        depth = 1024
        sq = SubmissionQueue(mem, mem.alloc(depth * 64), depth, sqid=MDEV_QID)
        cq = CompletionQueue(mem, mem.alloc(depth * 16), depth, cqid=MDEV_QID)
        self._qp = ssd.attach_queue_pair(MDEV_QID, sq, cq)
        cq.irq_vector = None  # active polling, the module's signature
        self._busy_ns = 0
        self._started = False

    def create_vdisk(self, name: str, lba_base: int, num_blocks: int) -> MDevVirtualDisk:
        if (lba_base + num_blocks) > self.ssd.namespaces[1].num_blocks:
            raise SimulationError("mdev slice beyond the physical drive")
        vdisk = MDevVirtualDisk(self, name, lba_base, num_blocks)
        self.vdisks.append(vdisk)
        return vdisk

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.process(self._poll_loop(), name=f"{self.name}.core")

    def _poll_loop(self):
        cfg = self.config
        while True:
            did = False
            for vdisk in self.vdisks:
                while vdisk.queue and not self._qp.sq.is_full:
                    req = vdisk.queue.pop(0)
                    did = True
                    self._busy_ns += cfg.submit_ns
                    yield self.sim.timeout(cfg.submit_ns)
                    self._mediate_submit(req)
            while True:
                cqe = self._qp.cq.poll()
                if cqe is None:
                    break
                did = True
                self._busy_ns += cfg.completion_ns
                yield self.sim.timeout(cfg.completion_ns)
                self._mediate_complete(cqe)
            if not did:
                yield self.sim.timeout(cfg.poll_interval_ns)

    def _mediate_submit(self, req: _MDevRequest) -> None:
        length = req.nblocks * LBA_BYTES
        buf = prp1 = prp2 = 0
        if length:
            buf = self._pool.get(length)
            if req.payload is not None:
                self.host.memory.mem_write(buf, length, req.payload)
            prp1, prp2 = build_prps(self.host.memory, buf, length)
        self._next_cid = (self._next_cid + 1) % 0xFFFF
        cid = self._next_cid
        sqe = SQE(opcode=req.opcode, cid=cid, nsid=1,
                  slba=req.vdisk.lba_base + req.lba,
                  nlb=max(0, req.nblocks - 1),
                  prp1=prp1, prp2=prp2, payload=req.payload,
                  submit_time_ns=req.start_ns)
        self._qp.sq.push(sqe)
        self._pending[cid] = (req, buf, length)
        self.host.fabric.cpu_write(self._qp.sq_doorbell, 4)

    def _mediate_complete(self, cqe) -> None:
        entry = self._pending.pop(cqe.cid, None)
        if entry is None:
            return
        req, buf, length = entry

        def guest_side():
            yield self.sim.timeout(self.config.guest_irq_ns)
            ok = cqe.status == int(StatusCode.SUCCESS)
            data = None
            if req.want_data and length:
                data = self.host.memory.mem_read(buf, length)
            if buf:
                self._pool.put(buf, length)
            req.done.succeed(
                CompletionInfo(ok, cqe.status, data, self.sim.now - req.start_ns)
            )

        self.sim.process(guest_side(), name=f"{self.name}.girq")

    def cpu_utilization(self, since: int = 0) -> float:
        elapsed = self.sim.now - since
        return self._busy_ns / elapsed if elapsed > 0 else 0.0
