"""Declarative scheme registry.

One place declares every storage scheme the repo knows about — both the
*runnable* schemes (the ``repro.experiments`` runners and the bench
matrix) and the *paper* schemes compared in Table I.  Each entry states
its capabilities structurally:

* where the data path is interposed (``interposition``),
* which :class:`~repro.host.policy.SubmissionPolicy` knobs it honours
  (``doorbell_modes``/``dma_models``),
* which QoS / fault-injection / runtime-checker seams exist,
* and the structural Table-I properties (host cores, driver and device
  requirements, reported throughput, architecture, management path).

Downstream tables are *consequences* of this registry:
:mod:`repro.baselines.features` derives the paper's Table I from the
``table1`` entries, and :mod:`repro.experiments.common` asserts its
runner map covers exactly the ``runnable`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SchemeDef",
    "SCHEME_DEFS",
    "runnable_schemes",
    "table1_schemes",
    "scheme_def",
]

#: interposition levels, from "the host driver owns the drive" to "every
#: command crosses an emulation layer"
INTERPOSITION_LEVELS = ("none", "doorbell", "full", "software")


@dataclass(frozen=True)
class SchemeDef:
    """Capabilities and structural properties of one storage scheme."""

    #: runnable registry key (``run_case`` scheme name); None = paper-only
    key: Optional[str]
    #: Table-I row label; None = not a paper-compared scheme
    title: Optional[str]
    #: where the per-command data path is interposed
    interposition: str = "none"
    #: SubmissionPolicy doorbell modes the scheme's driver honours
    doorbell_modes: tuple = ("immediate", "shadow", "batched")
    #: SubmissionPolicy DMA models the scheme's engine honours
    dma_models: tuple = ("register",)
    #: the engine QoS module gates this scheme's commands
    qos_seam: bool = False
    #: fault-injection seams the scheme's rig wires up
    fault_seams: tuple = ()
    #: runtime invariant checkers with coverage on this scheme's path
    check_seams: tuple = ()

    # -- structural Table-I inputs (paper-reported; see features.py) ------
    dedicated_host_cores: int = 0
    requires_custom_driver: bool = False
    requires_special_device: bool = False
    single_disk_throughput: float = 1.0
    architecture: str = "direct-attached"
    out_of_band_management: bool = False

    def __post_init__(self) -> None:
        if self.interposition not in INTERPOSITION_LEVELS:
            raise ValueError(
                f"interposition {self.interposition!r} not one of "
                f"{INTERPOSITION_LEVELS}"
            )
        if self.key is None and self.title is None:
            raise ValueError("a scheme needs a runnable key or a Table-I title")

    @property
    def runnable(self) -> bool:
        return self.key is not None

    @property
    def table1(self) -> bool:
        return self.title is not None


_DRIVER_CHECKS = ("ring", "prp", "kernel")
_ENGINE_CHECKS = ("ring", "prp", "lba", "qos", "kernel")

SCHEME_DEFS: tuple[SchemeDef, ...] = (
    # ---- runnable schemes (the run_case/bench registry) ----------------
    SchemeDef(
        key="native", title=None, interposition="none",
        fault_seams=("media", "fabric", "firmware"),
        check_seams=_DRIVER_CHECKS,
    ),
    SchemeDef(
        key="bmstore", title="BM-Store", interposition="full",
        dma_models=("register", "descriptor"), qos_seam=True,
        fault_seams=("media", "fabric", "firmware", "hot_remove", "link_flap"),
        check_seams=_ENGINE_CHECKS,
        dedicated_host_cores=0, requires_custom_driver=False,
        requires_special_device=False, single_disk_throughput=0.96,
        architecture="direct-attached", out_of_band_management=True,
    ),
    SchemeDef(
        key="passthrough", title=None, interposition="doorbell",
        dma_models=("register", "descriptor"), qos_seam=False,
        fault_seams=("media", "fabric", "firmware", "hot_remove", "link_flap"),
        check_seams=_ENGINE_CHECKS,
        out_of_band_management=True,
    ),
    SchemeDef(
        key="vfio-vm", title="SR-IOV", interposition="none",
        fault_seams=("media", "fabric", "firmware"),
        check_seams=_DRIVER_CHECKS,
        dedicated_host_cores=0, requires_custom_driver=False,
        requires_special_device=True, single_disk_throughput=0.98,
        architecture="device", out_of_band_management=False,
    ),
    SchemeDef(
        key="bmstore-vm", title=None, interposition="full",
        dma_models=("register", "descriptor"), qos_seam=True,
        fault_seams=("media", "fabric", "firmware", "hot_remove", "link_flap"),
        check_seams=_ENGINE_CHECKS,
        out_of_band_management=True,
    ),
    SchemeDef(
        key="spdk-vm", title="SPDK vhost", interposition="software",
        doorbell_modes=("immediate",),
        fault_seams=("media", "fabric"),
        check_seams=("prp", "kernel"),
        dedicated_host_cores=1, requires_custom_driver=True,
        requires_special_device=False, single_disk_throughput=0.90,
        architecture="software", out_of_band_management=False,
    ),
    # ---- paper-only schemes (Table I rows without a runner) ------------
    SchemeDef(
        key=None, title="MDev-NVMe", interposition="software",
        dedicated_host_cores=1, requires_custom_driver=True,
        requires_special_device=False, single_disk_throughput=0.95,
        architecture="software", out_of_band_management=False,
    ),
    SchemeDef(
        key=None, title="LeapIO", interposition="full",
        dedicated_host_cores=0, requires_custom_driver=True,
        requires_special_device=False, single_disk_throughput=0.68,
        architecture="p2p", out_of_band_management=False,
    ),
    SchemeDef(
        key=None, title="FVM", interposition="full",
        dedicated_host_cores=0, requires_custom_driver=True,
        requires_special_device=False, single_disk_throughput=0.97,
        architecture="p2p", out_of_band_management=False,
    ),
)

#: Table I row order as the paper prints it
_TABLE1_ORDER = ("MDev-NVMe", "SPDK vhost", "SR-IOV", "LeapIO", "FVM", "BM-Store")


def runnable_schemes() -> dict[str, SchemeDef]:
    """Runnable scheme key -> definition (run_case registry order)."""
    return {d.key: d for d in SCHEME_DEFS if d.runnable}


def table1_schemes() -> dict[str, SchemeDef]:
    """Table-I title -> definition, in the paper's row order."""
    by_title = {d.title: d for d in SCHEME_DEFS if d.table1}
    return {title: by_title[title] for title in _TABLE1_ORDER}


def scheme_def(key: str) -> SchemeDef:
    d = runnable_schemes().get(key)
    if d is None:
        raise KeyError(f"no runnable scheme {key!r}")
    return d
