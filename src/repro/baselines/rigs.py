"""Rig builders: one-call construction of every storage scheme.

Tests, benchmarks, and examples all build their worlds through these,
so every experiment compares schemes on identical substrates (same
host, same drives, same kernel profile, same random streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..checks import CheckContext, resolve_checks
from ..core.controller import BMSController, ControllerTimings
from ..core.engine import BMSEngine, EngineTimings
from ..faults import DriverFaultPolicy, FaultInjector, FaultPlan
from ..core.qos import QoSLimits
from ..core.sriov_layer import FrontEndFunction
from ..host.driver import NVMeDriver
from ..host.environment import Host
from ..host.kernel_profile import DEFAULT_KERNEL, KernelProfile
from ..host.policy import SubmissionPolicy, resolve_policy
from ..host.vm import VirtualMachine, VMProfile
from ..mgmt.console import RemoteConsole
from ..nvme.flash import FlashProfile, P4510_PROFILE
from ..obs import MetricsRegistry
from ..nvme.ssd import NVMeSSD
from ..sim import Simulator, StreamFactory
from .spdk_vhost import SPDKConfig, SPDKVhostTarget, VhostBlockDevice
from .vfio import VFIOAssignment

__all__ = [
    "NativeRig",
    "BMStoreRig",
    "VFIORig",
    "SPDKRig",
    "build_native",
    "build_bmstore",
    "build_vfio",
    "build_spdk",
]


def _base_world(
    seed: int, kernel: KernelProfile, num_cores: int = 48
) -> tuple[Simulator, StreamFactory, Host]:
    sim = Simulator()
    streams = StreamFactory(root_seed=seed)
    host = Host(sim, streams, kernel=kernel, num_cores=num_cores)
    return sim, streams, host


def _make_injector(
    sim: Simulator,
    faults: Optional[FaultPlan],
    obs: Optional[MetricsRegistry],
) -> Optional[FaultInjector]:
    """An injector only exists when the plan actually schedules faults.

    A plan holding nothing but a driver policy arms host-side
    supervision without creating any injector, so the datapath hooks
    stay on their ``faults is None`` fast path.
    """
    if faults is None or not faults.specs:
        return None
    return FaultInjector(sim, faults, obs=obs)


def _driver_policy(faults: Optional[FaultPlan]) -> Optional[DriverFaultPolicy]:
    return faults.driver_policy if faults is not None else None


# ---------------------------------------------------------------- native
@dataclass
class NativeRig:
    """Bare-metal: the host NVMe driver directly on physical drives."""

    sim: Simulator
    streams: StreamFactory
    host: Host
    ssds: list[NVMeSSD]
    drivers: list[NVMeDriver]
    obs: Optional[MetricsRegistry] = None
    faults: Optional[FaultInjector] = None
    checks: Optional[CheckContext] = None

    def driver(self, index: int = 0) -> NVMeDriver:
        return self.drivers[index]


def build_native(
    num_ssds: int = 1,
    kernel: KernelProfile = DEFAULT_KERNEL,
    seed: int = 7,
    queue_depth: int = 1024,
    num_io_queues: int = 4,
    flash_profile: FlashProfile = P4510_PROFILE,
    obs: Optional[MetricsRegistry] = None,
    faults: Optional[FaultPlan] = None,
    checks=None,
    policy: Optional[SubmissionPolicy] = None,
) -> NativeRig:
    """A bare-metal world: host + drives + bound drivers."""
    policy = resolve_policy(policy)
    sim, streams, host = _base_world(seed, kernel)
    ctx = resolve_checks(checks, obs)
    if ctx is not None:
        ctx.bind_sim(sim)
    ssds = [
        NVMeSSD(sim, host.fabric, streams, name=f"nvme{i}", profile=flash_profile)
        for i in range(num_ssds)
    ]
    if ctx is not None:
        for ssd in ssds:
            ctx.bind_ssd(ssd)
    injector = _make_injector(sim, faults, obs)
    if injector is not None:
        for ssd in ssds:
            injector.bind_ssd(ssd)
        injector.bind_fabric(host.fabric)
        injector.start()
    fault_policy = _driver_policy(faults)
    drivers = [
        NVMeDriver(host, ssd, queue_depth=queue_depth,
                   num_io_queues=num_io_queues, name=f"nvme{i}", obs=obs,
                   fault_policy=fault_policy, checks=ctx, policy=policy)
        for i, ssd in enumerate(ssds)
    ]
    return NativeRig(sim, streams, host, ssds, drivers, obs=obs, faults=injector,
                     checks=ctx)


# --------------------------------------------------------------- BM-Store
@dataclass
class BMStoreRig:
    """The full BM-Store deployment: engine + controller + console."""

    sim: Simulator
    streams: StreamFactory
    host: Host
    engine: BMSEngine
    controller: BMSController
    console: RemoteConsole
    ssds: list[NVMeSSD]
    obs: Optional[MetricsRegistry] = None
    faults: Optional[FaultInjector] = None
    fault_policy: Optional[DriverFaultPolicy] = None
    checks: Optional[CheckContext] = None
    _next_vf: int = 5  # fn 1..4 are PFs; VMs get VFs from 5 up

    def provision(
        self,
        key: str,
        size_bytes: int,
        fn_id: Optional[int] = None,
        placement: Optional[list[int]] = None,
        limits: Optional[QoSLimits] = None,
    ) -> FrontEndFunction:
        """Create a namespace and bind it to a front-end function."""
        if fn_id is None:
            fn_id = self._next_vf
            self._next_vf += 1
        self.engine.create_namespace(key, size_bytes, placement=placement, limits=limits)
        return self.engine.bind_namespace(key, fn_id)

    def baremetal_driver(
        self,
        fn: FrontEndFunction,
        queue_depth: int = 1024,
        num_io_queues: int = 4,
        policy: Optional[SubmissionPolicy] = None,
    ) -> NVMeDriver:
        return NVMeDriver(
            self.host, fn, queue_depth=queue_depth,
            num_io_queues=num_io_queues, name=f"bms.fn{fn.fn_id}",
            obs=self.obs, fault_policy=self.fault_policy, checks=self.checks,
            policy=resolve_policy(policy),
        )

    def vm_driver(
        self,
        vm: VirtualMachine,
        fn: FrontEndFunction,
        queue_depth: int = 1024,
        policy: Optional[SubmissionPolicy] = None,
    ) -> NVMeDriver:
        return vm.bind_nvme(fn, queue_depth=queue_depth, obs=self.obs,
                            fault_policy=self.fault_policy, checks=self.checks,
                            policy=resolve_policy(policy))


def build_bmstore(
    num_ssds: int = 4,
    kernel: KernelProfile = DEFAULT_KERNEL,
    seed: int = 7,
    qos_enabled: bool = True,
    zero_copy: bool = True,
    timings: EngineTimings = EngineTimings(),
    controller_timings: ControllerTimings = ControllerTimings(),
    flash_profile: FlashProfile = P4510_PROFILE,
    obs: Optional[MetricsRegistry] = None,
    faults: Optional[FaultPlan] = None,
    checks=None,
    chip_memory_bytes: Optional[int] = None,
) -> BMStoreRig:
    """A full BM-Store world: host + engine/controller/console + drives."""
    sim, streams, host = _base_world(seed, kernel)
    ctx = resolve_checks(checks, obs)
    if ctx is not None:
        ctx.bind_sim(sim)
    engine_kwargs = {}
    if chip_memory_bytes is not None:
        engine_kwargs["chip_memory_bytes"] = chip_memory_bytes
    engine = BMSEngine(
        host, timings=timings, qos_enabled=qos_enabled, zero_copy=zero_copy,
        obs=obs, checks=ctx, **engine_kwargs,
    )
    controller = BMSController(engine, timings=controller_timings)
    console = RemoteConsole(host, engine.front_port.name)
    ssds = []
    for i in range(num_ssds):
        ssd = NVMeSSD(
            sim, engine.backend_fabric, streams, name=f"bssd{i}",
            profile=flash_profile,
        )
        if ctx is not None:
            ctx.bind_ssd(ssd)
        engine.attach_ssd(ssd)
        ssds.append(ssd)
    injector = _make_injector(sim, faults, obs)
    if injector is not None:
        injector.bind_engine(engine, controller=controller)
        injector.bind_fabric(host.fabric)
        injector.bind_fabric(engine.backend_fabric)
        for ssd in ssds:
            injector.bind_ssd(ssd)
        injector.start()
        if any(spec.kind == "hot_remove" for spec in faults.specs):
            controller.start_watchdog()
    return BMStoreRig(sim, streams, host, engine, controller, console, ssds,
                      obs=obs, faults=injector,
                      fault_policy=_driver_policy(faults), checks=ctx)


# ------------------------------------------------------------------ VFIO
@dataclass
class VFIORig:
    """Pass-through: whole drives assigned to VMs through the IOMMU."""

    sim: Simulator
    streams: StreamFactory
    host: Host
    ssds: list[NVMeSSD]
    vms: list[VirtualMachine]
    drivers: list[NVMeDriver]
    assignment: VFIOAssignment
    obs: Optional[MetricsRegistry] = None
    faults: Optional[FaultInjector] = None
    checks: Optional[CheckContext] = None

    def driver(self, index: int = 0) -> NVMeDriver:
        return self.drivers[index]


def build_vfio(
    num_vms: int = 1,
    kernel: KernelProfile = DEFAULT_KERNEL,
    guest_kernel: Optional[KernelProfile] = None,
    vm_profile: VMProfile = VMProfile(),
    seed: int = 7,
    queue_depth: int = 1024,
    flash_profile: FlashProfile = P4510_PROFILE,
    obs: Optional[MetricsRegistry] = None,
    faults: Optional[FaultPlan] = None,
    checks=None,
    policy: Optional[SubmissionPolicy] = None,
) -> VFIORig:
    """Pass-through worlds: one whole drive per VM."""
    policy = resolve_policy(policy)
    sim, streams, host = _base_world(seed, kernel)
    ctx = resolve_checks(checks, obs)
    if ctx is not None:
        ctx.bind_sim(sim)
    assignment = VFIOAssignment()
    fault_policy = _driver_policy(faults)
    ssds, vms, drivers = [], [], []
    for i in range(num_vms):
        ssd = NVMeSSD(sim, host.fabric, streams, name=f"nvme{i}", profile=flash_profile)
        if ctx is not None:
            ctx.bind_ssd(ssd)
        vm = VirtualMachine(host, f"vm{i}", profile=vm_profile,
                            guest_kernel=guest_kernel or kernel)
        driver = assignment.assign(vm, ssd, queue_depth=queue_depth, obs=obs,
                                   fault_policy=fault_policy, checks=ctx,
                                   policy=policy)
        ssds.append(ssd)
        vms.append(vm)
        drivers.append(driver)
    injector = _make_injector(sim, faults, obs)
    if injector is not None:
        for ssd in ssds:
            injector.bind_ssd(ssd)
        injector.bind_fabric(host.fabric)
        injector.start()
    return VFIORig(sim, streams, host, ssds, vms, drivers, assignment, obs=obs,
                   faults=injector, checks=ctx)


# ------------------------------------------------------------------ SPDK
@dataclass
class SPDKRig:
    """SPDK vhost: polling cores + virtio disks for VMs."""

    sim: Simulator
    streams: StreamFactory
    host: Host
    ssds: list[NVMeSSD]
    target: SPDKVhostTarget
    vdevs: list[VhostBlockDevice]
    obs: Optional[MetricsRegistry] = None
    faults: Optional[FaultInjector] = None
    checks: Optional[CheckContext] = None

    def vdev(self, index: int = 0) -> VhostBlockDevice:
        return self.vdevs[index]


def build_spdk(
    num_ssds: int = 1,
    num_cores: int = 1,
    num_vdevs: int = 1,
    vdev_blocks: Optional[int] = None,
    kernel: KernelProfile = DEFAULT_KERNEL,
    seed: int = 7,
    config: SPDKConfig = SPDKConfig(),
    flash_profile: FlashProfile = P4510_PROFILE,
    obs: Optional[MetricsRegistry] = None,
    faults: Optional[FaultPlan] = None,
    checks=None,
) -> SPDKRig:
    """An SPDK vhost world: polling cores + virtio vdevs."""
    sim, streams, host = _base_world(seed, kernel)
    ctx = resolve_checks(checks, obs)
    if ctx is not None:
        ctx.bind_sim(sim)
    ssds = [
        NVMeSSD(sim, host.fabric, streams, name=f"nvme{i}", profile=flash_profile)
        for i in range(num_ssds)
    ]
    if ctx is not None:
        for ssd in ssds:
            ctx.bind_ssd(ssd)
    injector = _make_injector(sim, faults, obs)
    if injector is not None:
        for ssd in ssds:
            injector.bind_ssd(ssd)
        injector.bind_fabric(host.fabric)
        injector.start()
    target = SPDKVhostTarget(host, ssds, num_cores=num_cores, config=config,
                             checks=ctx)
    vdevs = []
    blocks = vdev_blocks or (256 * 1024**3 // 4096)
    per_ssd_next: dict[int, int] = {}
    for i in range(num_vdevs):
        ssd_index = i % num_ssds
        base = per_ssd_next.get(ssd_index, 0)
        per_ssd_next[ssd_index] = base + blocks
        vdevs.append(target.create_vdev(f"vd{i}", ssd_index, base, blocks))
    target.start()
    return SPDKRig(sim, streams, host, ssds, target, vdevs, obs=obs,
                   faults=injector, checks=ctx)
