"""SPDK vhost baseline: software storage virtualization on polling cores.

The comparison target of the paper's Figs. 1, 9, 13, 14: a user-space
vhost target that dedicates host CPU cores to poll virtio rings and
NVMe completion queues.  Per-request CPU work (descriptor handling +
data handling per byte) bounds throughput per core; dedicated cores are
subtracted from what the host can sell (the TCO argument).

Calibration (DESIGN.md §5): one core ≈ 262 K 4K IOPS and ≈ 2.0 GB/s of
128K processing — reproducing the single-VM ratios of Fig. 9 — while a
cross-core contention factor reproduces the "8 cores for 80% of four
SSDs" shape of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..host.block import CompletionInfo
from ..host.cpu import Core
from ..host.environment import Host
from ..host.memory import BufferPool
from ..nvme.command import SQE
from ..nvme.prp import build_prps
from ..nvme.queues import CompletionQueue, SubmissionQueue
from ..nvme.spec import IOOpcode, LBA_BYTES, StatusCode
from ..nvme.ssd import NVMeSSD
from ..sim import Event, Resource, SimulationError, Simulator

__all__ = ["SPDKConfig", "VhostBlockDevice", "SPDKVhostTarget"]

VHOST_QID = 7  # the SPDK user-space driver's own I/O queue id


@dataclass(frozen=True)
class SPDKConfig:
    """CPU cost model of the vhost target."""

    per_op_ns: int = 3100  # virtio descriptor + NVMe submission handling
    #: requests are segmented at 4 KiB; a few segments ride the fast
    #: descriptor path, the rest pay indirect-descriptor handling —
    #: which is what makes 128K sequential I/O so expensive per core
    segment_bytes: int = 4096
    cheap_segments: int = 2
    per_segment_ns: int = 2050
    completion_ns: int = 600  # completion handling per I/O
    poll_interval_ns: int = 500  # idle-loop granularity
    contention_alpha: float = 0.08  # cross-core queue contention factor
    batch: int = 32  # max requests picked up per ring visit
    guest_submit_ns: int = 900  # guest virtio driver submission cost
    #: serialized guest virtqueue lock section (uncontended/contended),
    #: mirroring the guest NVMe queue lock of the passthrough schemes
    guest_vq_lock_ns: int = 900
    guest_vq_lock_contended_ns: int = 3150
    guest_irq_ns: int = 2500  # interrupt injection into the guest


@dataclass
class _VirtioRequest:
    opcode: int
    lba: int
    nblocks: int
    payload: Optional[bytes]
    want_data: bool
    done: Event
    start_ns: int
    vdev: "VhostBlockDevice"


class VhostBlockDevice:
    """The virtio-blk disk a VM sees; backed by a slice of one SSD."""

    def __init__(
        self,
        target: "SPDKVhostTarget",
        name: str,
        ssd_index: int,
        lba_base: int,
        num_blocks: int,
    ):
        self.target = target
        self.sim = target.sim
        self.name = name
        self.ssd_index = ssd_index
        self.lba_base = lba_base
        self._num_blocks = num_blocks
        self.ring: list[_VirtioRequest] = []
        self.submitted = 0
        self.completed = 0
        self._vq_lock = Resource(self.sim, 1, name=f"{name}.vqlock")

    # BlockTarget ------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def block_bytes(self) -> int:
        return LBA_BYTES

    def read(self, lba: int, nblocks: int, want_data: bool = False) -> Event:
        return self._enqueue(int(IOOpcode.READ), lba, nblocks, None, want_data)

    def write(self, lba: int, nblocks: int, payload: Optional[bytes] = None) -> Event:
        return self._enqueue(int(IOOpcode.WRITE), lba, nblocks, payload, False)

    def flush(self) -> Event:
        return self._enqueue(int(IOOpcode.FLUSH), 0, 0, None, False)

    def _enqueue(self, opcode, lba, nblocks, payload, want_data) -> Event:
        done = self.sim.event(name=f"{self.name}.io")
        start = self.sim.now
        req = _VirtioRequest(opcode, lba, nblocks, payload, want_data, done, start, self)

        def guest_submit():
            cfg = self.target.config
            yield self.sim.timeout(cfg.guest_submit_ns)
            contended = self._vq_lock.in_use > 0 or self._vq_lock.queued > 0
            yield self._vq_lock.acquire()
            yield self.sim.timeout(
                cfg.guest_vq_lock_contended_ns if contended else cfg.guest_vq_lock_ns
            )
            self._vq_lock.release()
            self.ring.append(req)
            self.submitted += 1

        self.sim.process(guest_submit(), name=f"{self.name}.gsub")
        return done


class SPDKVhostTarget:
    """The vhost process: N dedicated polling cores over M SSDs."""

    def __init__(
        self,
        host: Host,
        ssds: list[NVMeSSD],
        num_cores: int = 1,
        config: SPDKConfig = SPDKConfig(),
        name: str = "vhost",
        checks=None,
    ):
        if not ssds:
            raise SimulationError("vhost needs at least one SSD")
        self.sim: Simulator = host.sim
        self.host = host
        self.ssds = ssds
        self.config = config
        self.name = name
        self.cores: list[Core] = host.cpu.dedicate(num_cores, owner=name)
        self.vdevs: list[VhostBlockDevice] = []
        self._pool = BufferPool(host.memory)
        if checks is not None:
            checks.bind_pool(self._pool)
        self._pending: dict[tuple[int, int], _InflightIO] = {}
        self._next_cid = 0
        self._qps = []
        self._busy_ns = [0] * num_cores
        self._started = False
        for ssd in ssds:
            mem = host.memory
            depth = 1024
            sq = SubmissionQueue(mem, mem.alloc(depth * 64), depth, sqid=VHOST_QID)
            cq = CompletionQueue(mem, mem.alloc(depth * 16), depth, cqid=VHOST_QID)
            if checks is not None:
                checks.bind_ring(sq)
                checks.bind_ring(cq)
            qp = ssd.attach_queue_pair(VHOST_QID, sq, cq)
            cq.irq_vector = None  # SPDK polls; no interrupts
            self._qps.append(qp)

    @property
    def contention_factor(self) -> float:
        return 1.0 + self.config.contention_alpha * (len(self.cores) - 1)

    def create_vdev(
        self, name: str, ssd_index: int, lba_base: int, num_blocks: int
    ) -> VhostBlockDevice:
        vdev = VhostBlockDevice(self, name, ssd_index, lba_base, num_blocks)
        self.vdevs.append(vdev)
        return vdev

    def start(self) -> None:
        """Launch one poll loop per dedicated core."""
        if self._started:
            return
        self._started = True
        for core_idx in range(len(self.cores)):
            self.sim.process(self._poll_loop(core_idx), name=f"{self.name}.core{core_idx}")

    # ------------------------------------------------------------- poll loop
    def _assigned(self, core_idx: int, items: list) -> list:
        """Round-robin start offset per core; every core serves every
        ring (multi-queue work sharing), paying the cross-core
        contention factor for it."""
        if not items:
            return []
        offset = core_idx % len(items)
        return items[offset:] + items[:offset]

    def _poll_loop(self, core_idx: int):
        """One dedicated core: CPU work is spent *inline*, so a request's
        processing time is part of its latency and the core's throughput
        is bounded by the per-op cost — both vhost realities."""
        cfg = self.config
        factor = self.contention_factor
        while True:
            did_work = False
            # submissions: visit each assigned vdev ring
            for vdev in self._assigned(core_idx, self.vdevs):
                picked = 0
                while vdev.ring and picked < cfg.batch:
                    qp = self._qps[vdev.ssd_index]
                    if qp.sq.is_full:
                        break
                    req = vdev.ring.pop(0)
                    picked += 1
                    did_work = True
                    cpu = int(self._submit_cpu_ns(req) * factor)
                    self._busy_ns[core_idx] += cpu
                    yield self.sim.timeout(cpu)
                    self._submit(req)
            # completions: poll every SSD CQ (work-shared)
            for ssd_index, qp in enumerate(self._qps):
                reaped = 0
                while reaped < cfg.batch:
                    cqe = qp.cq.poll()
                    if cqe is None:
                        break
                    reaped += 1
                    did_work = True
                    cpu = int(cfg.completion_ns * factor)
                    self._busy_ns[core_idx] += cpu
                    yield self.sim.timeout(cpu)
                    self._complete(ssd_index, cqe)
                if reaped:
                    self.host.fabric.cpu_write(qp.cq_doorbell, 4)
            if not did_work:
                yield self.sim.timeout(cfg.poll_interval_ns)

    def _submit_cpu_ns(self, req: _VirtioRequest) -> int:
        cfg = self.config
        length = req.nblocks * LBA_BYTES
        segments = -(-length // cfg.segment_bytes)
        slow_segments = max(0, segments - cfg.cheap_segments)
        return cfg.per_op_ns + slow_segments * cfg.per_segment_ns

    def _submit(self, req: _VirtioRequest) -> None:
        """Translate + submit one request (CPU already charged)."""
        length = req.nblocks * LBA_BYTES
        qp = self._qps[req.vdev.ssd_index]
        buf = 0
        prp1 = prp2 = 0
        if length:
            buf = self._pool.get(length)
            if req.payload is not None:
                self.host.memory.mem_write(buf, length, req.payload)
            prp1, prp2 = build_prps(self.host.memory, buf, length)
        self._next_cid = (self._next_cid + 1) % 0xFFFF
        cid = self._next_cid
        sqe = SQE(
            opcode=req.opcode, cid=cid, nsid=1,
            slba=req.vdev.lba_base + req.lba, nlb=max(0, req.nblocks - 1),
            prp1=prp1, prp2=prp2, payload=req.payload,
            submit_time_ns=req.start_ns,
        )
        qp.sq.push(sqe)
        self._pending[(req.vdev.ssd_index, cid)] = _InflightIO(req, buf, length)
        self.host.fabric.cpu_write(qp.sq_doorbell, 4)

    def _complete(self, ssd_index: int, cqe) -> None:
        entry = self._pending.pop((ssd_index, cqe.cid), None)
        if entry is None:
            return
        req = entry.request
        req.vdev.completed += 1

        def guest_side():
            yield self.sim.timeout(self.config.guest_irq_ns)
            ok = cqe.status == int(StatusCode.SUCCESS)
            data = None
            if req.want_data and entry.length:
                data = self.host.memory.mem_read(entry.buf, entry.length)
            if entry.buf:
                self._pool.put(entry.buf, entry.length)
            latency = self.sim.now - req.start_ns
            req.done.succeed(CompletionInfo(ok, cqe.status, data, latency))

        self.sim.process(guest_side(), name="vhost.girq")

    # -------------------------------------------------------------- reporting
    def cpu_utilization(self, since: int = 0) -> float:
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return sum(self._busy_ns) / (elapsed * len(self.cores))

    @property
    def dedicated_core_count(self) -> int:
        return len(self.cores)


@dataclass
class _InflightIO:
    request: _VirtioRequest
    buf: int
    length: int
