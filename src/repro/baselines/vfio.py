"""VFIO direct pass-through baseline.

VFIO assigns the whole physical NVMe controller to one VM through the
IOMMU: near-native performance, but the device cannot be shared — the
paper's Table I "no sharing capability" row.  The VM's standard NVMe
driver binds the device directly; only the VM-level interrupt-injection
and lock costs apply (supplied by :class:`~repro.host.vm.VirtualMachine`).
"""

from __future__ import annotations

from ..host.driver import NVMeDriver
from ..host.vm import VirtualMachine
from ..nvme.ssd import NVMeSSD
from ..sim import SimulationError

__all__ = ["VFIOAssignment"]


class VFIOAssignment:
    """Tracks exclusive device -> VM assignments (IOMMU groups)."""

    def __init__(self) -> None:
        self._assigned: dict[str, str] = {}

    def assign(self, vm: VirtualMachine, ssd: NVMeSSD, **driver_kwargs) -> NVMeDriver:
        """Pass ``ssd`` through to ``vm``; enforces exclusivity."""
        owner = self._assigned.get(ssd.name)
        if owner is not None:
            raise SimulationError(
                f"VFIO: {ssd.name} is already assigned to {owner}; "
                "pass-through devices cannot be shared"
            )
        self._assigned[ssd.name] = vm.name
        return vm.bind_nvme(ssd, **driver_kwargs)

    def release(self, ssd: NVMeSSD) -> None:
        self._assigned.pop(ssd.name, None)

    def owner_of(self, ssd: NVMeSSD) -> str | None:
        return self._assigned.get(ssd.name)

    @property
    def assignments(self) -> dict[str, str]:
        return dict(self._assigned)
