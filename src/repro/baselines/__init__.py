"""Comparison schemes: native, VFIO, SPDK vhost, and rig builders."""

from .features import FEATURE_COLUMNS, SCHEMES, SchemeProperties, feature_matrix
from .mdev import MDevConfig, MDevNVMeTarget, MDevVirtualDisk
from .registry import SCHEME_DEFS, SchemeDef, runnable_schemes, scheme_def, table1_schemes
from .native import NATIVE_SCHEME
from .rigs import (
    BMStoreRig,
    NativeRig,
    SPDKRig,
    VFIORig,
    build_bmstore,
    build_native,
    build_spdk,
    build_vfio,
)
from .spdk_vhost import SPDKConfig, SPDKVhostTarget, VhostBlockDevice
from .vfio import VFIOAssignment

__all__ = [
    "FEATURE_COLUMNS",
    "SCHEMES",
    "SchemeProperties",
    "feature_matrix",
    "SCHEME_DEFS",
    "SchemeDef",
    "runnable_schemes",
    "scheme_def",
    "table1_schemes",
    "MDevConfig",
    "MDevNVMeTarget",
    "MDevVirtualDisk",
    "NATIVE_SCHEME",
    "BMStoreRig",
    "NativeRig",
    "SPDKRig",
    "VFIORig",
    "build_bmstore",
    "build_native",
    "build_spdk",
    "build_vfio",
    "SPDKConfig",
    "SPDKVhostTarget",
    "VhostBlockDevice",
    "VFIOAssignment",
]
