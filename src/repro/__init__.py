"""BM-Store (HPCA 2023) reproduction.

A discrete-event-simulated rebuild of the paper's entire system: the
FPGA BMS-Engine datapath, the ARM BMS-Controller management plane, the
PCIe/NVMe/host substrates underneath, the comparison schemes around it,
and the database workloads on top.  See README.md for the tour and
DESIGN.md / EXPERIMENTS.md for the reproduction ledger.

Quick start::

    from repro.baselines import build_bmstore
    rig = build_bmstore(num_ssds=4)
    fn = rig.provision("disk0", 256 << 30)
    driver = rig.baremetal_driver(fn)
"""

#: single source of truth for the package version; pyproject.toml reads
#: it back via ``[tool.setuptools.dynamic]``
__version__ = "0.1.0"
__paper__ = (
    "BM-Store: A Transparent and High-performance Local Storage "
    "Architecture for Bare-metal Clouds Enabling Large-scale Deployment "
    "(HPCA 2023)"
)

__all__ = ["__version__", "__paper__"]
