"""Out-of-band management: MCTP over PCIe, NVMe-MI, remote console."""

from .console import CONSOLE_EID, RemoteConsole
from .mctp import MCTP_BTU, MCTPEndpoint, MCTPPacket
from .nvme_mi import MCTP_TYPE_NVME_MI, MIOpcode, MIRequest, MIResponse, MIStatus

__all__ = [
    "CONSOLE_EID",
    "RemoteConsole",
    "MCTP_BTU",
    "MCTPEndpoint",
    "MCTPPacket",
    "MCTP_TYPE_NVME_MI",
    "MIOpcode",
    "MIRequest",
    "MIResponse",
    "MIStatus",
]
