"""Remote management console.

The cloud vendor's side of BM-Store's out-of-band channel: an MCTP
access point at the PCIe root (the BMC path) speaking NVMe-MI to the
BMS-Controller — never touching the tenant's host OS.
"""

from __future__ import annotations

from typing import Any, Optional

from ..host.environment import Host
from ..pcie.tlp import VendorDefinedMessage
from ..sim import Event, Simulator
from .mctp import MCTPEndpoint
from .nvme_mi import MCTP_TYPE_NVME_MI, MIOpcode, MIRequest, MIResponse

__all__ = ["RemoteConsole", "CONSOLE_EID"]

CONSOLE_EID = 0x08


class RemoteConsole:
    """NVMe-MI requester targeting one BM-Store card."""

    def __init__(self, host: Host, engine_port_name: str, name: str = "console"):
        self.sim: Simulator = host.sim
        self.host = host
        self.name = name
        self._engine_port_name = engine_port_name
        self._next_rid = 0
        self._pending: dict[int, Event] = {}
        self.mctp = MCTPEndpoint(
            self.sim, CONSOLE_EID, transmit=self._vdm_transmit, name=f"{name}.mctp"
        )
        self.mctp.on_message(MCTP_TYPE_NVME_MI, self._on_response)
        host.fabric.set_root_vdm_handler(self._on_root_vdm)

    # ---------------------------------------------------------- physical layer
    def _vdm_transmit(self, dst_eid: int, raw: bytes) -> Event:
        vdm = VendorDefinedMessage(
            requester_id=0, payload=raw, target_id=self._engine_port_name
        )
        return self.host.fabric.root_send_vdm(vdm)

    def _on_root_vdm(self, vdm: VendorDefinedMessage) -> None:
        self.mctp.receive_packet(vdm.payload)

    def _on_response(self, src_eid: int, raw: bytes) -> None:
        response = MIResponse.from_bytes(raw)
        pending = self._pending.pop(response.request_id, None)
        if pending is not None:
            pending.succeed(response)

    # -------------------------------------------------------------- request API
    def request(self, opcode: MIOpcode, **params: Any) -> Event:
        """Send one NVMe-MI request; event fires with the MIResponse."""
        self._next_rid += 1
        rid = self._next_rid
        done = self.sim.event(name=f"{self.name}.req{rid}")
        self._pending[rid] = done
        req = MIRequest(opcode=int(opcode), request_id=rid, params=params)
        self.mctp.send_message(0x1D, MCTP_TYPE_NVME_MI, req.to_bytes())
        return done

    # convenience wrappers ---------------------------------------------------
    def health(self) -> Event:
        return self.request(MIOpcode.HEALTH_STATUS_POLL)

    def controller_list(self) -> Event:
        return self.request(MIOpcode.CONTROLLER_LIST)

    def io_stats(self, fn: int) -> Event:
        return self.request(MIOpcode.READ_IO_STATS, fn=fn)

    def io_monitor(self) -> Event:
        """Fetch the engine's full metrics snapshot out of band."""
        return self.request(MIOpcode.IO_MONITOR_SNAPSHOT)

    def create_namespace(
        self,
        key: str,
        size_bytes: int,
        placement: Optional[list[int]] = None,
        max_iops: Optional[float] = None,
        max_mbps: Optional[float] = None,
    ) -> Event:
        params: dict[str, Any] = {"key": key, "size_bytes": size_bytes}
        if placement is not None:
            params["placement"] = placement
        if max_iops is not None:
            params["max_iops"] = max_iops
        if max_mbps is not None:
            params["max_mbps"] = max_mbps
        return self.request(MIOpcode.CREATE_NAMESPACE, **params)

    def delete_namespace(self, key: str) -> Event:
        return self.request(MIOpcode.DELETE_NAMESPACE, key=key)

    def bind_namespace(self, key: str, fn: int) -> Event:
        return self.request(MIOpcode.BIND_NAMESPACE, key=key, fn=fn)

    def set_qos(
        self,
        key: str,
        max_iops: Optional[float] = None,
        max_mbps: Optional[float] = None,
    ) -> Event:
        return self.request(MIOpcode.SET_QOS, key=key, max_iops=max_iops, max_mbps=max_mbps)

    def create_snapshot(self, volume: str, snapshot: str) -> Event:
        """Freeze ``volume``'s current mapping under ``snapshot``."""
        return self.request(MIOpcode.CREATE_SNAPSHOT, volume=volume,
                            snapshot=snapshot)

    def clone_volume(
        self,
        source: str,
        key: str,
        fn: Optional[int] = None,
        max_iops: Optional[float] = None,
        max_mbps: Optional[float] = None,
    ) -> Event:
        """Thin-clone ``source`` (volume or snapshot) into ``key``.

        No data is copied; the clone shares the source's physical
        chunks until first write (CoW).
        """
        params: dict[str, Any] = {"source": source, "key": key}
        if fn is not None:
            params["fn"] = fn
        if max_iops is not None:
            params["max_iops"] = max_iops
        if max_mbps is not None:
            params["max_mbps"] = max_mbps
        return self.request(MIOpcode.CLONE_VOLUME, **params)

    def volume_stat(self, key: Optional[str] = None) -> Event:
        """Per-volume sharing/CoW statistics (all volumes when no key)."""
        if key is None:
            return self.request(MIOpcode.VOLUME_STAT)
        return self.request(MIOpcode.VOLUME_STAT, key=key)

    def install_program(self, key: str, program: dict) -> Event:
        """Install a pushdown program on ``key``'s namespace (out of band).

        The program dict is validated engine-side before it is armed;
        a rejected program surfaces as ``INVALID_PARAMETER`` with the
        validator's reason in the response error text.
        """
        return self.request(MIOpcode.PUSH_INSTALL, key=key, program=program)

    def uninstall_program(self, key: str) -> Event:
        return self.request(MIOpcode.PUSH_UNINSTALL, key=key)

    def push_stat(self, key: Optional[str] = None) -> Event:
        """Per-program execution statistics (all programs when no key)."""
        if key is None:
            return self.request(MIOpcode.PUSH_STAT)
        return self.request(MIOpcode.PUSH_STAT, key=key)

    def enable_cxl(self) -> Event:
        """Arm the engine's CXL buffer tier out of band (idempotent)."""
        return self.request(MIOpcode.CXL_ENABLE)

    def cxl_stat(self) -> Event:
        """CXL tier spill/promote/borrow statistics (UNSUPPORTED when
        the tier is dormant)."""
        return self.request(MIOpcode.CXL_STAT)

    def hot_upgrade(
        self, ssd: int, version: str, size_bytes: int = 2 * 1024 * 1024,
        activation_s: float = 6.5,
    ) -> Event:
        return self.request(
            MIOpcode.FIRMWARE_HOT_UPGRADE, ssd=ssd, version=version,
            size_bytes=size_bytes, activation_s=activation_s,
        )

    def hot_plug_replace(self, ssd: int) -> Event:
        return self.request(MIOpcode.HOT_PLUG_REPLACE, ssd=ssd)

    def upgrade_reports(self) -> Event:
        return self.request(MIOpcode.GET_UPGRADE_REPORT)

    def fault_log(self) -> Event:
        """Observed faults, slot health, and recovery count (out of band)."""
        return self.request(MIOpcode.GET_FAULT_LOG)
