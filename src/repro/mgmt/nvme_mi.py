"""NVMe Management Interface (NVMe-MI) over MCTP.

The remote console speaks NVMe-MI to the BMS-Controller: health polls,
I/O statistics, namespace provisioning, hot-upgrade and hot-plug
triggers.  Requests/responses are typed records serialized to bytes so
they ride the MCTP fragmentation path for real.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MIOpcode", "MIStatus", "MIRequest", "MIResponse", "MCTP_TYPE_NVME_MI"]

#: MCTP message type for NVMe-MI (per NVMe-MI spec over MCTP)
MCTP_TYPE_NVME_MI = 0x04


class MIOpcode(enum.IntEnum):
    """Management commands BM-Store supports out of band."""

    HEALTH_STATUS_POLL = 0x01
    CONTROLLER_LIST = 0x02
    READ_IO_STATS = 0x10  # BM-Store I/O monitor (per-function AXI counters)
    IO_MONITOR_SNAPSHOT = 0x11  # full metrics-registry dump, when attached
    CREATE_NAMESPACE = 0x20
    DELETE_NAMESPACE = 0x21
    BIND_NAMESPACE = 0x22
    UNBIND_NAMESPACE = 0x23
    SET_QOS = 0x24
    FIRMWARE_HOT_UPGRADE = 0x30
    HOT_PLUG_REPLACE = 0x31
    GET_UPGRADE_REPORT = 0x32
    GET_FAULT_LOG = 0x33  # injected faults, slot health, recovery count
    CREATE_SNAPSHOT = 0x40  # CoW volume layer: freeze a volume's mapping
    CLONE_VOLUME = 0x41  # thin clone from a volume or snapshot
    VOLUME_STAT = 0x42  # per-volume sharing/CoW statistics
    PUSH_INSTALL = 0x50  # pushdown: validate + install a program on a namespace
    PUSH_UNINSTALL = 0x51  # pushdown: remove an installed program
    PUSH_STAT = 0x52  # pushdown: per-program execution statistics
    CXL_ENABLE = 0x60  # arm the CXL buffer tier (spill/borrow extension)
    CXL_STAT = 0x61  # CXL tier spill/promote/borrow statistics


class MIStatus(enum.IntEnum):
    """NVMe-MI response status codes."""
    SUCCESS = 0x00
    INVALID_PARAMETER = 0x04
    INTERNAL_ERROR = 0x05
    UNSUPPORTED = 0x06
    BUSY = 0x07


@dataclass
class MIRequest:
    """One management request: opcode, correlation id, parameters."""
    opcode: int
    request_id: int
    params: dict[str, Any] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"op": int(self.opcode), "rid": self.request_id, "params": self.params}
        ).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MIRequest":
        obj = json.loads(raw)
        return cls(opcode=obj["op"], request_id=obj["rid"], params=obj["params"])


@dataclass
class MIResponse:
    """One management response, correlated by request id."""
    request_id: int
    status: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == int(MIStatus.SUCCESS)

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"rid": self.request_id, "status": int(self.status), "body": self.body}
        ).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MIResponse":
        obj = json.loads(raw)
        return cls(request_id=obj["rid"], status=obj["status"], body=obj["body"])
