"""MCTP over PCIe (DMTF DSP0238) — BM-Store's out-of-band transport.

Management traffic reaches the BMS-Controller without any host
involvement: PCIe vendor-defined messages (VDMs) carry MCTP packets
between the remote console's access point and the MCTP endpoint on the
ARM SoC.  Messages larger than the transmission unit are fragmented
with SOM/EOM/sequence semantics and reassembled at the receiver.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from ..sim import Event, SimulationError, Simulator

__all__ = ["MCTPPacket", "MCTPEndpoint", "MCTP_BTU"]

#: baseline transmission unit (payload bytes per packet)
MCTP_BTU = 64


@dataclass(frozen=True)
class MCTPPacket:
    """One MCTP-over-PCIe packet (the VDM payload)."""

    src_eid: int
    dst_eid: int
    msg_tag: int
    som: bool  # start of message
    eom: bool  # end of message
    seq: int
    msg_type: int
    payload: bytes

    def to_bytes(self) -> bytes:
        header = {
            "src": self.src_eid, "dst": self.dst_eid, "tag": self.msg_tag,
            "som": self.som, "eom": self.eom, "seq": self.seq,
            "type": self.msg_type,
        }
        head = json.dumps(header).encode()
        return len(head).to_bytes(2, "little") + head + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MCTPPacket":
        hlen = int.from_bytes(raw[:2], "little")
        header = json.loads(raw[2 : 2 + hlen])
        return cls(
            src_eid=header["src"], dst_eid=header["dst"], msg_tag=header["tag"],
            som=header["som"], eom=header["eom"], seq=header["seq"],
            msg_type=header["type"], payload=raw[2 + hlen :],
        )


class _Reassembly:
    __slots__ = ("chunks", "next_seq", "msg_type")

    def __init__(self, msg_type: int):
        self.chunks: list[bytes] = []
        self.next_seq = 0
        self.msg_type = msg_type


class MCTPEndpoint:
    """An MCTP endpoint: fragmentation, reassembly, and dispatch.

    ``transmit`` is the physical-layer hook (a function sending one
    packet's bytes toward the peer and returning a delivery event);
    the BMS-Controller wires it to PCIe VDMs, tests can use a direct
    loopback.
    """

    def __init__(
        self,
        sim: Simulator,
        eid: int,
        transmit: Callable[[int, bytes], Event],
        per_packet_ns: int = 5000,
        name: str = "mctp",
    ):
        self.sim = sim
        self.eid = eid
        self.name = name
        self.per_packet_ns = per_packet_ns
        self._transmit = transmit
        # MCTP message tags are 3 bits: at most 8 messages may be in
        # flight from one endpoint; senders block for a free tag
        from ..sim import Store

        self._tag_pool = Store(sim, name=f"{name}.tags")
        for tag in range(8):
            self._tag_pool.put(tag)
        self._handlers: dict[int, Callable[[int, bytes], None]] = {}
        self._partial: dict[tuple[int, int], _Reassembly] = {}
        self.packets_sent = 0
        self.packets_received = 0
        self.messages_delivered = 0

    def on_message(self, msg_type: int, handler: Callable[[int, bytes], None]) -> None:
        """Register a handler(src_eid, message_bytes) for one type."""
        self._handlers[msg_type] = handler

    # ------------------------------------------------------------------ send
    def send_message(self, dst_eid: int, msg_type: int, message: bytes) -> Event:
        """Fragment + transmit; event fires when the last packet is sent."""
        done = self.sim.event(name=f"{self.name}.send")
        self.sim.process(self._send_proc(dst_eid, msg_type, message, done),
                         name=f"{self.name}.tx")
        return done

    def _send_proc(self, dst_eid: int, msg_type: int, message: bytes, done: Event):
        tag = yield self._tag_pool.get()
        try:
            chunks = [
                message[i : i + MCTP_BTU] for i in range(0, len(message), MCTP_BTU)
            ]
            if not chunks:
                chunks = [b""]
            for seq, chunk in enumerate(chunks):
                packet = MCTPPacket(
                    src_eid=self.eid, dst_eid=dst_eid, msg_tag=tag,
                    som=(seq == 0), eom=(seq == len(chunks) - 1),
                    seq=seq % 4, msg_type=msg_type, payload=chunk,
                )
                yield self.sim.timeout(self.per_packet_ns)
                yield self._transmit(dst_eid, packet.to_bytes())
                self.packets_sent += 1
        finally:
            self._tag_pool.put(tag)
        done.succeed()

    # --------------------------------------------------------------- receive
    def receive_packet(self, raw: bytes) -> None:
        """Physical layer delivers one packet's bytes."""
        self.packets_received += 1
        packet = MCTPPacket.from_bytes(raw)
        if packet.dst_eid != self.eid:
            raise SimulationError(
                f"{self.name}: packet for EID {packet.dst_eid} arrived at {self.eid}"
            )
        key = (packet.src_eid, packet.msg_tag)
        if packet.som:
            self._partial[key] = _Reassembly(packet.msg_type)
        asm = self._partial.get(key)
        if asm is None:
            return  # drop out-of-context fragment, as hardware does
        if packet.seq != asm.next_seq % 4:
            del self._partial[key]  # sequence error: drop the message
            return
        asm.next_seq += 1
        asm.chunks.append(packet.payload)
        if packet.eom:
            del self._partial[key]
            message = b"".join(asm.chunks)
            self.messages_delivered += 1
            handler = self._handlers.get(asm.msg_type)
            if handler is not None:
                handler(packet.src_eid, message)
