"""NVMe protocol substrate: commands, queues, PRPs, and the SSD model."""

from .command import CQE, SQE
from .firmware import FirmwareImage, FirmwareSlots
from .flash import P4510_PROFILE, FlashBackend, FlashProfile
from .namespace import Namespace
from .prp import PRP_ENTRY_BYTES, PRPList, build_prps, pages_for, walk_prps
from .queues import CompletionQueue, QueuePair, SubmissionQueue
from .spec import (
    CQE_BYTES,
    DOORBELL_STRIDE,
    LBA_BYTES,
    SQE_BYTES,
    AdminOpcode,
    IOOpcode,
    StatusCode,
)
from .ssd import DEFAULT_FIRMWARE, NVMeSSD, SSDStats
from .zns import ZNS_STATUS, Zone, ZNSConfig, ZNSSSD, ZoneSendAction, ZoneState

__all__ = [
    "CQE",
    "SQE",
    "FirmwareImage",
    "FirmwareSlots",
    "P4510_PROFILE",
    "FlashBackend",
    "FlashProfile",
    "Namespace",
    "PRP_ENTRY_BYTES",
    "PRPList",
    "build_prps",
    "pages_for",
    "walk_prps",
    "CompletionQueue",
    "QueuePair",
    "SubmissionQueue",
    "CQE_BYTES",
    "DOORBELL_STRIDE",
    "LBA_BYTES",
    "SQE_BYTES",
    "AdminOpcode",
    "IOOpcode",
    "StatusCode",
    "DEFAULT_FIRMWARE",
    "NVMeSSD",
    "SSDStats",
    "ZNS_STATUS",
    "Zone",
    "ZNSConfig",
    "ZNSSSD",
    "ZoneSendAction",
    "ZoneState",
]
