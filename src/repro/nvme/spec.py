"""NVMe protocol constants (NVM Express base spec subset).

Opcodes, status codes, and sizes used by the controller models, the
host driver, and the BMS-Engine's target controller.
"""

from __future__ import annotations

import enum

__all__ = [
    "AdminOpcode",
    "IOOpcode",
    "StatusCode",
    "SQE_BYTES",
    "CQE_BYTES",
    "LBA_BYTES",
    "DOORBELL_STRIDE",
]

SQE_BYTES = 64
CQE_BYTES = 16
# All devices in the reproduction use 4 KiB formatted LBAs, matching the
# 4K-native formatting used in the paper's fio test cases.
LBA_BYTES = 4096
DOORBELL_STRIDE = 8


class AdminOpcode(enum.IntEnum):
    """NVMe admin command opcodes."""
    DELETE_IO_SQ = 0x00
    CREATE_IO_SQ = 0x01
    GET_LOG_PAGE = 0x02
    DELETE_IO_CQ = 0x04
    CREATE_IO_CQ = 0x05
    IDENTIFY = 0x06
    ABORT = 0x08
    SET_FEATURES = 0x09
    GET_FEATURES = 0x0A
    NS_MANAGEMENT = 0x0D
    FIRMWARE_COMMIT = 0x10
    FIRMWARE_DOWNLOAD = 0x11
    NS_ATTACH = 0x15
    # vendor-specific (BM-Store pushdown program management, in-band)
    PUSH_INSTALL = 0xC0
    PUSH_UNINSTALL = 0xC1
    PUSH_STAT = 0xC2


class IOOpcode(enum.IntEnum):
    """NVMe I/O command opcodes."""
    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    WRITE_ZEROES = 0x08
    DSM = 0x09  # deallocate / TRIM
    PUSH_EXEC = 0xC8  # vendor-specific: run an installed pushdown program


class StatusCode(enum.IntEnum):
    """NVMe completion status codes (generic command set)."""
    SUCCESS = 0x00
    INVALID_OPCODE = 0x01
    INVALID_FIELD = 0x02
    DATA_TRANSFER_ERROR = 0x04
    ABORTED_POWER_LOSS = 0x05
    INTERNAL_ERROR = 0x06
    ABORTED_BY_REQUEST = 0x07
    INVALID_NAMESPACE = 0x0B
    LBA_OUT_OF_RANGE = 0x80
    CAPACITY_EXCEEDED = 0x81
    NAMESPACE_NOT_READY = 0x82
    PUSH_SANDBOX_FAULT = 0x83  # vendor: pushdown program escaped its sandbox
