"""NVMe namespaces: contiguous LBA ranges with identify data."""

from __future__ import annotations

from dataclasses import dataclass

from .spec import LBA_BYTES

__all__ = ["Namespace"]


@dataclass
class Namespace:
    """One namespace: ``nsid`` plus its size in formatted blocks."""

    nsid: int
    num_blocks: int
    block_bytes: int = LBA_BYTES

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * self.block_bytes

    def contains(self, slba: int, nblocks: int) -> bool:
        return 0 <= slba and slba + nblocks <= self.num_blocks
