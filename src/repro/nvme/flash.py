"""Flash back-end performance model.

Calibrated to the Intel P4510 2 TB used in the paper (DESIGN.md §5):

* reads:  ``read_ways`` concurrent die operations of ``read_access_ns``
  each, sharing a ``read_bus`` at the drive's sequential-read rate.
  ``48 ways x ~74 us`` -> ~640 K 4K IOPS; the bus caps 128K sequential
  reads at ~3.2 GB/s.
* writes: a shallow write-buffer pipeline (``write_ways``) with a short
  ``write_access_ns`` (the buffer hit) over a ``write_bus`` at the
  sustained program rate (~1.4 GB/s) — giving the P4510's ~11.6 us
  qd1 write latency and ~356 K IOPS at qd64.

Service times carry a small lognormal jitter so latency distributions
have realistic tails without destroying determinism (dedicated stream).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import BandwidthLink, RandomStream, Resource, Simulator
from ..sim.units import us

__all__ = ["FlashProfile", "FlashBackend", "P4510_PROFILE"]


@dataclass(frozen=True)
class FlashProfile:
    """Calibration constants for one drive model."""

    name: str
    capacity_bytes: int
    read_ways: int
    read_access_ns: int
    read_bus_bytes_per_sec: float
    write_ways: int
    write_access_ns: int
    write_bus_bytes_per_sec: float
    #: write-back buffer: commands ack once buffered (fast), media
    #: programming drains in the background at the sustained rate
    write_buffer_depth: int = 64
    write_ack_ns: int = 4500
    jitter_cv: float = 0.02

    @property
    def max_random_read_iops(self) -> float:
        return self.read_ways / (self.read_access_ns / 1e9)

    @property
    def max_random_write_iops(self) -> float:
        per_op = self.write_access_ns / 1e9 + 4096 / self.write_bus_bytes_per_sec
        return self.write_ways / per_op


#: Intel SSD DC P4510 2.0 TB (paper Table III).
P4510_PROFILE = FlashProfile(
    name="intel-p4510-2tb",
    capacity_bytes=2_000_000_000_000,
    read_ways=48,
    read_access_ns=us(71.8),
    read_bus_bytes_per_sec=3.23e9,
    write_ways=4,
    write_access_ns=us(8.4),
    write_bus_bytes_per_sec=1.42e9,
)


@dataclass
class FlashStats:
    """Media operation and byte counters."""
    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0


class FlashBackend:
    """The media: concurrency-limited access plus shared data buses."""

    def __init__(
        self,
        sim: Simulator,
        profile: FlashProfile,
        rng: RandomStream,
        name: str = "flash",
    ):
        self.sim = sim
        self.profile = profile
        self.rng = rng
        self.name = name
        self._read_ways = Resource(sim, profile.read_ways, name=f"{name}.rways")
        self._write_ways = Resource(sim, profile.write_ways, name=f"{name}.wways")
        self._write_buffer = Resource(sim, profile.write_buffer_depth, name=f"{name}.wbuf")
        self._read_bus = BandwidthLink(sim, profile.read_bus_bytes_per_sec, name=f"{name}.rbus")
        self._write_bus = BandwidthLink(sim, profile.write_bus_bytes_per_sec, name=f"{name}.wbus")
        self.stats = FlashStats()

    def read(self, nbytes: int):
        """Process generator: one media read of ``nbytes``."""
        yield self._read_ways.acquire()
        try:
            access = self.rng.jitter_ns(self.profile.read_access_ns, self.profile.jitter_cv)
            yield self.sim.timeout(access)
            yield self._read_bus.transfer(nbytes)
        finally:
            self._read_ways.release()
        self.stats.reads += 1
        self.stats.read_bytes += nbytes

    def write(self, nbytes: int):
        """Process generator: one write, acked from the write-back buffer.

        The command completes once a buffer slot is held and the
        buffered-ack time has passed; programming the media happens in
        the background and frees the slot.  At low queue depth this
        gives cache-hit latency; at saturation throughput equals the
        background drain rate (ways over access+bus service).
        """
        yield self._write_buffer.acquire()
        ack = self.rng.jitter_ns(self.profile.write_ack_ns, self.profile.jitter_cv)
        yield self.sim.timeout(ack)
        self.sim.process(self._drain(nbytes), name=f"{self.name}.drain")
        self.stats.writes += 1
        self.stats.write_bytes += nbytes

    def _drain(self, nbytes: int):
        """Background media program for one buffered write."""
        yield self._write_ways.acquire()
        try:
            access = self.rng.jitter_ns(self.profile.write_access_ns, self.profile.jitter_cv)
            yield self.sim.timeout(access)
            yield self._write_bus.transfer(nbytes)
        finally:
            self._write_ways.release()
            self._write_buffer.release()

    def flush(self):
        """Flush is a buffer drain: bounded by the write bus backlog."""
        backlog_ns = max(0, self._write_bus.busy_until() - self.sim.now)
        yield self.sim.timeout(backlog_ns + self.profile.write_access_ns)
