"""Physical Region Page (PRP) construction and walking.

NVMe describes data buffers as PRP entries: 64-bit page addresses.
``prp1`` points at the first (possibly unaligned) page; for transfers
beyond two pages ``prp2`` points at a *PRP list* in memory.  The
BMS-Engine's zero-copy trick (paper Fig. 4b) rewrites these very
entries, so they are real integers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from typing import TYPE_CHECKING

from ..sim import SimulationError
from ..sim.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from ..host.memory import HostMemory

__all__ = ["PRP_ENTRY_BYTES", "PRPList", "build_prps", "walk_prps", "pages_for"]

PRP_ENTRY_BYTES = 8


@dataclass
class PRPList:
    """A PRP list stored at ``addr`` in some memory."""

    addr: int
    entries: list[int]

    @property
    def wire_bytes(self) -> int:
        return len(self.entries) * PRP_ENTRY_BYTES


def pages_for(buffer_addr: int, length: int) -> list[int]:
    """Page-granular addresses covering [buffer_addr, buffer_addr+length)."""
    if length <= 0:
        return []
    pages = []
    addr = buffer_addr
    remaining = length
    while remaining > 0:
        pages.append(addr)
        step = PAGE_SIZE - (addr % PAGE_SIZE)
        addr += step
        remaining -= step
    return pages


def build_prps(memory: "HostMemory", buffer_addr: int, length: int) -> tuple[int, int]:
    """Build PRP entries for a buffer; returns (prp1, prp2).

    For > 2 pages, allocates and stores a PRP list in ``memory`` and
    returns its address as prp2 (list semantics are flagged by the
    caller knowing the transfer size, as in the spec).
    """
    pages = pages_for(buffer_addr, length)
    if not pages:
        raise SimulationError("zero-length PRP build")
    prp1 = pages[0]
    if len(pages) == 1:
        return prp1, 0
    if len(pages) == 2:
        return prp1, pages[1]
    list_addr = memory.alloc(len(pages[1:]) * PRP_ENTRY_BYTES, align=PRP_ENTRY_BYTES)
    memory.store_obj(list_addr, PRPList(list_addr, list(pages[1:])))
    return prp1, list_addr


def walk_prps(
    memory: "HostMemory", prp1: int, prp2: int, length: int
) -> tuple[list[int], Optional[PRPList]]:
    """Resolve (prp1, prp2, length) into page addresses.

    Returns (page_addrs, prp_list or None).  The caller charges the PRP
    list fetch over the fabric when a list is present.

    Per the NVMe spec only ``prp1`` may carry a page offset: ``prp2``
    as a second data pointer and every PRP-list entry must be
    page-aligned, or the device would fabricate DMA addresses inside
    the wrong page (fatal for the Fig. 4b zero-copy rewrite, which
    forwards these entries verbatim).
    """
    npages = len(pages_for(prp1, length))
    if npages <= 1:
        return [prp1], None
    if npages == 2:
        if prp2 % PAGE_SIZE:
            raise SimulationError(
                f"prp2 {prp2:#x} is not page-aligned (only prp1 may be offset)"
            )
        return [prp1, prp2], None
    entry = memory.load_obj(prp2)
    if not isinstance(entry, PRPList):
        raise SimulationError(f"prp2 {prp2:#x} does not point at a PRP list")
    if len(entry.entries) < npages - 1:
        raise SimulationError("PRP list shorter than the transfer")
    used = entry.entries[: npages - 1]
    for item in used:
        if item % PAGE_SIZE:
            raise SimulationError(
                f"PRP list entry {item:#x} is not page-aligned"
            )
    return [prp1, *used], entry
