"""NVMe submission/completion queue rings.

A ring is shared state living in some memory (host DRAM or BMS-Engine
chip memory); the producer and consumer ends both hold a reference,
exactly as real queues are shared memory.  All *transfers* of entries
(fetching an SQE, posting a CQE) are charged through the PCIe fabric by
the callers; the ring object only manages indices, wrap-around, and the
completion phase bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from typing import TYPE_CHECKING

from ..sim import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..host.memory import HostMemory
from .command import CQE, SQE, free_sqe
from .spec import CQE_BYTES, SQE_BYTES

__all__ = ["SubmissionQueue", "CompletionQueue", "QueuePair", "CQECoalescer"]


class SubmissionQueue:
    """A submission ring: producer advances tail, consumer advances head."""

    def __init__(self, memory: "HostMemory", base: int, depth: int, sqid: int, cqid: int = 0):
        if depth < 2:
            raise SimulationError("SQ depth must be >= 2")
        self.memory = memory
        self.base = base
        self.depth = depth
        self.sqid = sqid
        self.cqid = cqid
        self.tail = 0
        self.head = 0
        #: bound CheckContext (ring checker); None = dormant, zero-cost
        self.checks = None
        # shadow-doorbell state (NVMe shadow doorbell convention): the
        # producer publishes the tail here instead of an MMIO write, and
        # only rings when the consumer armed the wakeup after idling
        self.shadow_mode = False
        self.shadow_tail = 0
        self.db_armed = True
        # producers blocked on a full ring (FIFO; woken on head advance)
        self._space_waiters: list = []
        self._space_name = f"sq{sqid}.space"
        # SQEs stranded in the ring by timed-out commands (slot index ->
        # entry).  The producer records them via note_leaked; they rejoin
        # the free list when their slot is overwritten (push) or proven
        # dead at re-attach/teardown (reclaim_dead_slots).
        self._leaked: dict[int, SQE] = {}
        self.leak_reclaims = 0
        #: optional callback fired with the count of reclaimed SQEs
        self.on_reclaim: Optional[Callable[[int], None]] = None

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.depth) * SQE_BYTES

    @property
    def is_full(self) -> bool:
        return (self.tail + 1) % self.depth == self.head % self.depth

    @property
    def is_empty(self) -> bool:
        return self.tail == self.head

    def outstanding(self) -> int:
        return (self.tail - self.head) % self.depth

    # producer side ---------------------------------------------------------
    def push(self, sqe: SQE) -> int:
        """Write an entry at the tail; returns the slot address."""
        if self.checks is not None:
            self.checks.on_sq_push(self, span=sqe.span)
        depth = self.depth
        tail = self.tail
        if (tail + 1) % depth == self.head % depth:
            raise SimulationError(f"SQ{self.sqid} full")
        slot = tail % depth
        stale = self._leaked.pop(slot, None)
        if stale is not None:
            # overwriting the slot proves nothing can fetch the stale
            # entry anymore, so it may rejoin the free list
            free_sqe(stale)
            self.leak_reclaims += 1
            if self.on_reclaim is not None:
                self.on_reclaim(1)
        addr = self.base + slot * SQE_BYTES
        self.memory.store_obj(addr, sqe)
        self.tail = (tail + 1) % depth
        return addr

    def wait_space(self, sim):
        """An event triggered the next time the consumer frees a slot.

        The producer's slot accounting can run ahead of the ring: a
        timed-out command releases its queue slot while its stale SQE
        still occupies the ring until the consumer fetches it (the
        passthrough path during a drive outage is the extreme case —
        nothing fetches at all until the drive is re-seated).  A real
        driver blocks the request when the ring is full; this is that
        block.
        """
        ev = sim.pooled_event(name=self._space_name)
        self._space_waiters.append(ev)
        return ev

    def note_leaked(self, slot: int, sqe: SQE) -> None:
        """Producer: record a timed-out command's SQE stranded at ``slot``.

        The entry cannot be freed yet — the consumer may still fetch the
        stale slot (e.g. a doorbell replay after hot-plug) — but it is
        tracked so the pool recovers it at the next safe point.
        """
        self._leaked[slot % self.depth] = sqe

    def reclaim_dead_slots(self) -> int:
        """Free leaked SQEs whose slots are outside the live window.

        Called at queue teardown or re-attach, *before* any doorbell
        kick: slots in ``[head, tail)`` may still be fetched by the
        consumer and must keep their entries; every other leaked slot
        was consumed before the queue went away and is provably dead.
        Returns the number of entries reclaimed.
        """
        if not self._leaked:
            return 0
        depth = self.depth
        head = self.head % depth
        live = (self.tail - self.head) % depth
        freed = 0
        for slot in sorted(self._leaked):
            if (slot - head) % depth < live:
                continue
            free_sqe(self._leaked.pop(slot))
            freed += 1
        if freed:
            self.leak_reclaims += freed
            if self.on_reclaim is not None:
                self.on_reclaim(freed)
        return freed

    # consumer side ---------------------------------------------------------
    def consume_addr(self) -> int:
        """Address of the entry at head; advances head."""
        if self.checks is not None:
            self.checks.on_sq_consume(self)
        head = self.head
        if self.tail == head:
            raise SimulationError(f"SQ{self.sqid} empty")
        addr = self.base + (head % self.depth) * SQE_BYTES
        self.head = (head + 1) % self.depth
        if self._space_waiters:
            waiters, self._space_waiters = self._space_waiters, []
            for ev in waiters:
                ev.succeed()
        return addr

    # shadow doorbell --------------------------------------------------------
    def publish_tail(self) -> bool:
        """Producer: record the tail in the shadow slot; True when the
        consumer is armed and an MMIO wakeup is owed (this disarms it,
        so exactly one producer pays the doorbell per idle period)."""
        self.shadow_tail = self.tail
        if self.db_armed:
            self.db_armed = False
            return True
        return False

    def rearm_doorbell(self) -> bool:
        """Consumer, after draining: arm the MMIO wakeup.  Returns True
        when entries raced in since the last emptiness check — the
        consumer must drain again instead of going idle (this closes
        the classic shadow-doorbell lost-wakeup window)."""
        self.db_armed = True
        if not self.is_empty:
            self.db_armed = False
            return True
        return False


class CompletionQueue:
    """A completion ring with NVMe phase-bit semantics."""

    def __init__(self, memory: "HostMemory", base: int, depth: int, cqid: int):
        if depth < 2:
            raise SimulationError("CQ depth must be >= 2")
        self.memory = memory
        self.base = base
        self.depth = depth
        self.cqid = cqid
        self.tail = 0  # device writes here
        self.head = 0  # host consumes here
        self._device_phase = 1
        self._host_phase = 1
        self.irq_vector: Optional[int] = None
        #: bound CheckContext (ring checker); None = dormant, zero-cost
        self.checks = None
        # interrupt-coalescing configuration (NVMe Set Features style):
        # written by the driver at queue setup, consulted by the device
        self.coalesce_threshold = 1
        self.coalesce_timeout_ns = 0
        self._coalescer: Optional["CQECoalescer"] = None

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.depth) * CQE_BYTES

    @property
    def is_full(self) -> bool:
        """Device view: one more post would overwrite an unconsumed slot."""
        return (self.tail + 1) % self.depth == self.head % self.depth

    # device side -------------------------------------------------------------
    def post_slot(self, cqe: CQE) -> int:
        """Stamp phase, place at tail; returns the slot address to DMA to.

        Raises on a full ring, mirroring the SQ guard: overwriting an
        unconsumed slot would silently lose a completion the host never
        saw (real controllers must respect the CQ head doorbell).
        """
        if self.checks is not None:
            self.checks.on_cq_post(self, cqe)
        depth = self.depth
        tail = self.tail
        if (tail + 1) % depth == self.head % depth:
            raise SimulationError(
                f"CQ{self.cqid} full: completion would overwrite an "
                f"unconsumed entry (depth {self.depth})"
            )
        cqe.phase = self._device_phase
        addr = self.base + (tail % depth) * CQE_BYTES
        self.memory.store_obj(addr, cqe)
        self.tail = tail = (tail + 1) % depth
        if tail == 0:
            self._device_phase ^= 1
        return addr

    # host side ----------------------------------------------------------------
    def poll(self) -> Optional[CQE]:
        """Return the next completion if its phase bit matches, else None."""
        head = self.head
        addr = self.base + (head % self.depth) * CQE_BYTES
        entry = self.memory.load_obj(addr)
        if not isinstance(entry, CQE) or entry.phase != self._host_phase:
            return None
        if self.checks is not None:
            self.checks.on_cq_poll(self, entry)
        # clear the consumed slot: once the host owns the entry the ring
        # must not alias it, or recycling the CQE would plant a stale
        # object a later wrap could mistake for a fresh completion
        self.memory.pop_obj(addr)
        self.head = (head + 1) % self.depth
        if self.head == 0:
            self._host_phase ^= 1
        return entry

    # device-side interrupt moderation ---------------------------------------
    @property
    def coalescing(self) -> bool:
        return self.coalesce_threshold > 1 or self.coalesce_timeout_ns > 0

    def note_cqe(self, sim, fire: Callable[[], None]) -> None:
        """Device-side IRQ decision point, called right after
        :meth:`post_slot`.  Without coalescing configured this calls
        ``fire`` synchronously — identical to the classic path —
        otherwise the MSI-X is moderated by threshold + timer."""
        if self.irq_vector is None:
            return
        if not self.coalescing:
            fire()
            return
        if self._coalescer is None:
            self._coalescer = CQECoalescer(sim, self, fire)
        self._coalescer.on_cqe()


class CQECoalescer:
    """NVMe interrupt coalescing: MSI-X per N CQEs or per timer tick.

    Lives on the device side of a :class:`CompletionQueue`; created
    lazily on the first coalesced completion so unconfigured queues add
    no simulation state at all.
    """

    def __init__(self, sim, cq: CompletionQueue, fire: Callable[[], None]):
        self.sim = sim
        self.cq = cq
        self.fire = fire
        self.pending = 0
        self.fired = 0
        self.timer_fires = 0
        self._timer_live = False

    def on_cqe(self) -> None:
        self.pending += 1
        if self.cq.checks is not None:
            self.cq.checks.on_cq_coalesce(self.cq, self.pending)
        if self.pending >= self.cq.coalesce_threshold:
            self.pending = 0
            self.fired += 1
            self.fire()
            return
        if self.cq.coalesce_timeout_ns > 0 and not self._timer_live:
            self._timer_live = True
            self.sim.process(self._timer(), name=f"cq{self.cq.cqid}.coalesce")

    def _timer(self):
        yield self.sim.timeout(self.cq.coalesce_timeout_ns)
        self._timer_live = False
        if self.pending:
            self.pending = 0
            self.fired += 1
            self.timer_fires += 1
            self.fire()


@dataclass
class QueuePair:
    """An SQ/CQ pair plus the doorbell addresses the producer rings."""

    sq: SubmissionQueue
    cq: CompletionQueue
    sq_doorbell: int
    cq_doorbell: int
    #: device-side address/LBA translation for passthrough queues (a
    #: :class:`repro.core.dma_routing.DMATranslation`, duck-typed here
    #: so the NVMe layer stays independent of the engine); None for
    #: every normally attached queue
    translation: Optional[object] = field(default=None, compare=False)
