"""NVMe submission/completion queue rings.

A ring is shared state living in some memory (host DRAM or BMS-Engine
chip memory); the producer and consumer ends both hold a reference,
exactly as real queues are shared memory.  All *transfers* of entries
(fetching an SQE, posting a CQE) are charged through the PCIe fabric by
the callers; the ring object only manages indices, wrap-around, and the
completion phase bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from typing import TYPE_CHECKING

from ..sim import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..host.memory import HostMemory
from .command import CQE, SQE
from .spec import CQE_BYTES, SQE_BYTES

__all__ = ["SubmissionQueue", "CompletionQueue", "QueuePair"]


class SubmissionQueue:
    """A submission ring: producer advances tail, consumer advances head."""

    def __init__(self, memory: "HostMemory", base: int, depth: int, sqid: int, cqid: int = 0):
        if depth < 2:
            raise SimulationError("SQ depth must be >= 2")
        self.memory = memory
        self.base = base
        self.depth = depth
        self.sqid = sqid
        self.cqid = cqid
        self.tail = 0
        self.head = 0
        #: bound CheckContext (ring checker); None = dormant, zero-cost
        self.checks = None

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.depth) * SQE_BYTES

    @property
    def is_full(self) -> bool:
        return (self.tail + 1) % self.depth == self.head % self.depth

    @property
    def is_empty(self) -> bool:
        return self.tail == self.head

    def outstanding(self) -> int:
        return (self.tail - self.head) % self.depth

    # producer side ---------------------------------------------------------
    def push(self, sqe: SQE) -> int:
        """Write an entry at the tail; returns the slot address."""
        if self.checks is not None:
            self.checks.on_sq_push(self, span=getattr(sqe, "span", None))
        if self.is_full:
            raise SimulationError(f"SQ{self.sqid} full")
        addr = self.slot_addr(self.tail)
        self.memory.store_obj(addr, sqe)
        self.tail = (self.tail + 1) % self.depth
        return addr

    # consumer side ---------------------------------------------------------
    def consume_addr(self) -> int:
        """Address of the entry at head; advances head."""
        if self.checks is not None:
            self.checks.on_sq_consume(self)
        if self.is_empty:
            raise SimulationError(f"SQ{self.sqid} empty")
        addr = self.slot_addr(self.head)
        self.head = (self.head + 1) % self.depth
        return addr


class CompletionQueue:
    """A completion ring with NVMe phase-bit semantics."""

    def __init__(self, memory: "HostMemory", base: int, depth: int, cqid: int):
        if depth < 2:
            raise SimulationError("CQ depth must be >= 2")
        self.memory = memory
        self.base = base
        self.depth = depth
        self.cqid = cqid
        self.tail = 0  # device writes here
        self.head = 0  # host consumes here
        self._device_phase = 1
        self._host_phase = 1
        self.irq_vector: Optional[int] = None
        #: bound CheckContext (ring checker); None = dormant, zero-cost
        self.checks = None

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.depth) * CQE_BYTES

    @property
    def is_full(self) -> bool:
        """Device view: one more post would overwrite an unconsumed slot."""
        return (self.tail + 1) % self.depth == self.head % self.depth

    # device side -------------------------------------------------------------
    def post_slot(self, cqe: CQE) -> int:
        """Stamp phase, place at tail; returns the slot address to DMA to.

        Raises on a full ring, mirroring the SQ guard: overwriting an
        unconsumed slot would silently lose a completion the host never
        saw (real controllers must respect the CQ head doorbell).
        """
        if self.checks is not None:
            self.checks.on_cq_post(self, cqe)
        if self.is_full:
            raise SimulationError(
                f"CQ{self.cqid} full: completion would overwrite an "
                f"unconsumed entry (depth {self.depth})"
            )
        cqe.phase = self._device_phase
        addr = self.slot_addr(self.tail)
        self.memory.store_obj(addr, cqe)
        self.tail = (self.tail + 1) % self.depth
        if self.tail == 0:
            self._device_phase ^= 1
        return addr

    # host side ----------------------------------------------------------------
    def poll(self) -> Optional[CQE]:
        """Return the next completion if its phase bit matches, else None."""
        addr = self.slot_addr(self.head)
        entry = self.memory.load_obj(addr)
        if not isinstance(entry, CQE) or entry.phase != self._host_phase:
            return None
        if self.checks is not None:
            self.checks.on_cq_poll(self, entry)
        self.head = (self.head + 1) % self.depth
        if self.head == 0:
            self._host_phase ^= 1
        return entry


@dataclass
class QueuePair:
    """An SQ/CQ pair plus the doorbell addresses the producer rings."""

    sq: SubmissionQueue
    cq: CompletionQueue
    sq_doorbell: int
    cq_doorbell: int
