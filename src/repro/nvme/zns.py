"""ZNS (Zoned Namespace) SSD support — paper §VI-A compatibility.

The discussion section names ZNS SSDs among the device types BM-Store's
programmable engine can host.  This module implements the NVMe ZNS
command set on top of the simulated drive: zones with write pointers
and a state machine (EMPTY -> IMPLICITLY/EXPLICITLY OPEN -> FULL,
CLOSED, plus RESET), sequential-write-required enforcement, Zone
Append with assigned-LBA return, open/active-zone resource limits, and
Zone Management Send/Receive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..sim import SimulationError
from .command import SQE
from .spec import IOOpcode, StatusCode
from .ssd import NVMeSSD

__all__ = [
    "ZNSConfig",
    "ZoneState",
    "ZoneSendAction",
    "Zone",
    "ZNS_STATUS",
    "ZNSSSD",
]


class ZNSOpcode(enum.IntEnum):
    """ZNS command-set opcodes (NVMe ZNS spec)."""

    ZONE_MGMT_SEND = 0x79
    ZONE_MGMT_RECV = 0x7A
    ZONE_APPEND = 0x7D


class ZoneSendAction(enum.IntEnum):
    """Zone Management Send actions."""
    CLOSE = 0x1
    FINISH = 0x2
    OPEN = 0x3
    RESET = 0x4


class ZoneState(enum.Enum):
    """The ZNS zone state machine states."""
    EMPTY = "empty"
    IMPLICITLY_OPEN = "implicitly-open"
    EXPLICITLY_OPEN = "explicitly-open"
    CLOSED = "closed"
    FULL = "full"


class ZNS_STATUS(enum.IntEnum):
    """ZNS-specific status codes (command-set specific range)."""

    ZONE_BOUNDARY_ERROR = 0xB8
    ZONE_IS_FULL = 0xB9
    ZONE_IS_READ_ONLY = 0xBA
    ZONE_INVALID_WRITE = 0xBC
    TOO_MANY_ACTIVE_ZONES = 0xBD
    TOO_MANY_OPEN_ZONES = 0xBE


@dataclass(frozen=True)
class ZNSConfig:
    """Zoned-namespace geometry and resource limits."""
    zone_blocks: int = 16 * 1024  # 64 MiB zones at 4K LBAs
    max_open_zones: int = 14
    max_active_zones: int = 28


@dataclass
class Zone:
    """One zone: start, capacity, state, and write pointer."""
    index: int
    start_lba: int
    capacity: int
    state: ZoneState = ZoneState.EMPTY
    write_pointer: int = 0  # relative to start_lba

    @property
    def wp_lba(self) -> int:
        return self.start_lba + self.write_pointer

    @property
    def is_open(self) -> bool:
        return self.state in (ZoneState.IMPLICITLY_OPEN, ZoneState.EXPLICITLY_OPEN)

    @property
    def is_active(self) -> bool:
        return self.is_open or self.state == ZoneState.CLOSED


class ZNSSSD(NVMeSSD):
    """An NVMe drive whose namespace 1 is zoned."""

    def __init__(self, *args, zns_config: ZNSConfig = ZNSConfig(), **kwargs):
        super().__init__(*args, **kwargs)
        self.zns = zns_config
        total_blocks = self.namespaces[1].num_blocks
        self.num_zones = total_blocks // zns_config.zone_blocks
        # zones materialize lazily: an untouched zone is EMPTY by
        # definition, and a 2 TB drive has millions of them
        self._zones: dict[int, Zone] = {}

    # ------------------------------------------------------------- zone state
    def zone(self, index: int) -> Zone:
        """The zone descriptor for ``index`` (materialized on demand)."""
        if not 0 <= index < self.num_zones:
            raise SimulationError(f"zone {index} out of range")
        zone = self._zones.get(index)
        if zone is None:
            zone = Zone(index=index, start_lba=index * self.zns.zone_blocks,
                        capacity=self.zns.zone_blocks)
            self._zones[index] = zone
        return zone

    def zone_of(self, lba: int) -> Optional[Zone]:
        idx = lba // self.zns.zone_blocks
        if not 0 <= idx < self.num_zones:
            return None
        return self.zone(idx)

    @property
    def open_zone_count(self) -> int:
        return sum(1 for z in self._zones.values() if z.is_open)

    @property
    def active_zone_count(self) -> int:
        return sum(1 for z in self._zones.values() if z.is_active)

    def _open_zone(self, zone: Zone, explicit: bool) -> int:
        if zone.is_open:
            if explicit:
                zone.state = ZoneState.EXPLICITLY_OPEN
            return int(StatusCode.SUCCESS)
        if zone.state == ZoneState.FULL:
            return int(ZNS_STATUS.ZONE_IS_FULL)
        if not zone.is_active and self.active_zone_count >= self.zns.max_active_zones:
            return int(ZNS_STATUS.TOO_MANY_ACTIVE_ZONES)
        if self.open_zone_count >= self.zns.max_open_zones:
            return int(ZNS_STATUS.TOO_MANY_OPEN_ZONES)
        zone.state = (
            ZoneState.EXPLICITLY_OPEN if explicit else ZoneState.IMPLICITLY_OPEN
        )
        return int(StatusCode.SUCCESS)

    # ------------------------------------------------------------------- I/O
    def _io(self, sqe: SQE, translation=None):
        # zoned namespaces are never mapped through the engine's
        # passthrough path, so ``translation`` is always None here; the
        # parameter exists only to match the base signature
        opcode = sqe.opcode
        if opcode == int(IOOpcode.WRITE):
            status = self._check_zoned_write(sqe)
            if status != int(StatusCode.SUCCESS):
                yield self.sim.timeout(0)
                return status, 0
            result = yield from super()._io(sqe, translation)
            self._advance_wp(sqe.slba, sqe.num_blocks)
            return result
        if opcode == int(ZNSOpcode.ZONE_APPEND):
            return (yield from self._zone_append(sqe))
        if opcode == int(ZNSOpcode.ZONE_MGMT_SEND):
            yield self.sim.timeout(500)
            return self._zone_mgmt_send(sqe), 0
        if opcode == int(ZNSOpcode.ZONE_MGMT_RECV):
            yield self.sim.timeout(500)
            self._identify_sink(sqe.prp1, self.zone_report())
            return int(StatusCode.SUCCESS), 0
        if opcode == int(IOOpcode.READ):
            # reads beyond a zone's write pointer are deallocated data
            zone = self.zone_of(sqe.slba)
            if zone is None:
                yield self.sim.timeout(0)
                return int(StatusCode.LBA_OUT_OF_RANGE), 0
            return (yield from super()._io(sqe, translation))
        return (yield from super()._io(sqe, translation))

    def _check_zoned_write(self, sqe: SQE) -> int:
        zone = self.zone_of(sqe.slba)
        end_zone = self.zone_of(sqe.slba + sqe.num_blocks - 1)
        if zone is None or end_zone is None:
            return int(StatusCode.LBA_OUT_OF_RANGE)
        if zone is not end_zone:
            return int(ZNS_STATUS.ZONE_BOUNDARY_ERROR)
        if zone.state == ZoneState.FULL:
            return int(ZNS_STATUS.ZONE_IS_FULL)
        if sqe.slba != zone.wp_lba:
            return int(ZNS_STATUS.ZONE_INVALID_WRITE)
        status = self._open_zone(zone, explicit=False)
        if status != int(StatusCode.SUCCESS):
            return status
        return int(StatusCode.SUCCESS)

    def _advance_wp(self, slba: int, nblocks: int) -> None:
        zone = self.zone_of(slba)
        if zone is None:
            return
        zone.write_pointer += nblocks
        if zone.write_pointer >= zone.capacity:
            zone.write_pointer = zone.capacity
            zone.state = ZoneState.FULL

    def _zone_append(self, sqe: SQE):
        zone = self.zone_of(sqe.slba)
        if zone is None or sqe.slba != zone.start_lba:
            yield self.sim.timeout(0)
            return int(ZNS_STATUS.ZONE_INVALID_WRITE), 0
        if zone.state == ZoneState.FULL or (
            zone.write_pointer + sqe.num_blocks > zone.capacity
        ):
            yield self.sim.timeout(0)
            return int(ZNS_STATUS.ZONE_IS_FULL), 0
        status = self._open_zone(zone, explicit=False)
        if status != int(StatusCode.SUCCESS):
            yield self.sim.timeout(0)
            return status, 0
        assigned = zone.wp_lba
        inner = SQE(
            opcode=int(IOOpcode.WRITE), cid=sqe.cid, nsid=sqe.nsid,
            slba=assigned, nlb=sqe.nlb, prp1=sqe.prp1, prp2=sqe.prp2,
            payload=sqe.payload,
        )
        status, _ = yield from super()._io(inner)
        if status == int(StatusCode.SUCCESS):
            self._advance_wp(assigned, sqe.num_blocks)
        # the assigned LBA rides back in dword0 of the completion
        return status, assigned

    def _zone_mgmt_send(self, sqe: SQE) -> int:
        zone = self.zone_of(sqe.slba)
        if zone is None:
            return int(StatusCode.LBA_OUT_OF_RANGE)
        action = sqe.cdw10 & 0xFF
        if action == int(ZoneSendAction.RESET):
            for lba in range(zone.start_lba, zone.wp_lba):
                self._blocks.pop(lba, None)
            zone.state = ZoneState.EMPTY
            zone.write_pointer = 0
            return int(StatusCode.SUCCESS)
        if action == int(ZoneSendAction.OPEN):
            return self._open_zone(zone, explicit=True)
        if action == int(ZoneSendAction.CLOSE):
            if not zone.is_open:
                return int(StatusCode.INVALID_FIELD)
            zone.state = ZoneState.CLOSED
            return int(StatusCode.SUCCESS)
        if action == int(ZoneSendAction.FINISH):
            if zone.state == ZoneState.FULL:
                return int(StatusCode.SUCCESS)
            zone.write_pointer = zone.capacity
            zone.state = ZoneState.FULL
            return int(StatusCode.SUCCESS)
        return int(StatusCode.INVALID_FIELD)

    def zone_report(self, max_zones: int = 1024) -> list[dict]:
        """Descriptors of every non-EMPTY (materialized) zone."""
        return [
            {
                "zone": z.index,
                "state": z.state.value,
                "start_lba": z.start_lba,
                "write_pointer": z.write_pointer,
                "capacity": z.capacity,
            }
            for _, z in sorted(self._zones.items())[:max_zones]
        ]
