"""SSD firmware slots, download, and activation.

Models what the BMS-Controller's hot-upgrade drives: firmware images
are downloaded in chunks (FIRMWARE_DOWNLOAD), committed to a slot, and
*activated* by a controller-level reset during which the drive cannot
serve I/O — the 6–9 s window of paper Table IX.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import SimulationError

__all__ = ["FirmwareImage", "FirmwareSlots"]


@dataclass(frozen=True)
class FirmwareImage:
    """An immutable firmware build: version, size, activation time."""
    version: str
    size_bytes: int
    #: media-side activation time (flash reprogram + controller restart)
    activation_ns: int


@dataclass
class FirmwareSlots:
    """Firmware slot state machine of one drive."""

    active: FirmwareImage
    num_slots: int = 3
    slots: dict[int, FirmwareImage] = field(default_factory=dict)
    _download_buffer: int = 0
    _pending_version: str = ""

    def __post_init__(self) -> None:
        self.slots.setdefault(1, self.active)

    def download_chunk(self, nbytes: int, version: str) -> None:
        if self._pending_version and self._pending_version != version:
            self._download_buffer = 0
        self._pending_version = version
        self._download_buffer += nbytes

    def commit(self, slot: int, image: FirmwareImage) -> None:
        """FIRMWARE_COMMIT: validate the downloaded image into a slot."""
        if not 1 <= slot <= self.num_slots:
            raise SimulationError(f"firmware slot {slot} out of range")
        if self._download_buffer < image.size_bytes:
            raise SimulationError(
                f"firmware image incomplete: {self._download_buffer}/{image.size_bytes} bytes"
            )
        if self._pending_version != image.version:
            raise SimulationError("committed version does not match downloaded image")
        self.slots[slot] = image
        self._download_buffer = 0
        self._pending_version = ""

    def activate(self, slot: int) -> FirmwareImage:
        """Switch the active image (the reset itself is timed by the SSD)."""
        image = self.slots.get(slot)
        if image is None:
            raise SimulationError(f"no firmware in slot {slot}")
        self.active = image
        return image
