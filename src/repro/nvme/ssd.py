"""A complete NVMe SSD device model.

The device hangs off a PCIe fabric port, exposes a doorbell BAR,
fetches SQEs over the fabric, executes media operations on the
:class:`~repro.nvme.flash.FlashBackend`, DMAs data to/from the PRP
pages, posts CQEs, and raises MSI-X — the full Fig. 6 device side.

Data integrity: WRITE commands carrying real payload bytes persist them
per-LBA; READ commands over previously-written ranges DMA the stored
bytes back to the exact PRP pages, so end-to-end tests can verify that
BM-Store's LBA remapping and DMA routing never corrupt or misplace
data.  Performance runs elide payloads and only timing is charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.units import PAGE_SIZE
from ..pcie.config_space import ConfigSpace
from ..pcie.fabric import PCIeFabric, Port
from ..pcie.function import PCIeFunction
from ..sim import Event, SimulationError, Simulator, StreamFactory
from ..sim.units import sec
from .command import SQE, alloc_cqe
from .firmware import FirmwareImage, FirmwareSlots
from .flash import FlashBackend, FlashProfile, P4510_PROFILE
from .namespace import Namespace
from .prp import PRPList, pages_for
from .queues import CompletionQueue, QueuePair, SubmissionQueue
from .spec import (
    CQE_BYTES,
    DOORBELL_STRIDE,
    LBA_BYTES,
    SQE_BYTES,
    AdminOpcode,
    IOOpcode,
    StatusCode,
)

__all__ = ["NVMeSSD", "SSDStats", "DEFAULT_FIRMWARE"]

# controller-internal command decode / scheduling cost
DECODE_NS = 150
DOORBELL_REGION_OFFSET = 0x1000

DEFAULT_FIRMWARE = FirmwareImage(version="VDV10131", size_bytes=2 * 1024 * 1024,
                                 activation_ns=sec(6.5))


@dataclass
class SSDStats:
    """Per-drive operation, byte, error, and inflight counters."""
    read_ops: int = 0
    write_ops: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    admin_ops: int = 0
    errors: int = 0
    inflight: int = 0


class _DoorbellRegion:
    """BAR0 doorbell window: writes wake the owning SSD's queue workers."""

    def __init__(self, ssd: "NVMeSSD", access_ns: int = 20):
        self.ssd = ssd
        self._access_ns = access_ns

    @property
    def access_ns(self) -> int:
        return self._access_ns

    def mem_write(self, addr: int, length: int, data) -> None:
        offset = addr - self.ssd.bar0_base - DOORBELL_REGION_OFFSET
        slot, kind = divmod(offset // DOORBELL_STRIDE, 2)
        if kind == 0:
            self.ssd._on_sq_doorbell(slot)
        # CQ head doorbells only free ring space; index state is shared.

    def mem_read(self, addr: int, length: int):
        return None


class NVMeSSD:
    """One physical NVMe drive on a PCIe fabric."""

    _next_bar_slot = 0

    def __init__(
        self,
        sim: Simulator,
        fabric: PCIeFabric,
        streams: StreamFactory,
        name: str = "ssd0",
        profile: FlashProfile = P4510_PROFILE,
        lanes: int = 4,
        bar0_base: Optional[int] = None,
        firmware: FirmwareImage = DEFAULT_FIRMWARE,
    ):
        self.sim = sim
        self.name = name
        self._cmd_pname = name + ".cmd"
        self.profile = profile
        self.port: Port = fabric.attach(name, lanes=lanes)
        self.flash = FlashBackend(sim, profile, streams.stream(f"{name}.flash"), name=f"{name}.flash")
        self.firmware = FirmwareSlots(active=firmware)
        self.stats = SSDStats()
        self.namespaces: dict[int, Namespace] = {
            1: Namespace(nsid=1, num_blocks=profile.capacity_bytes // LBA_BYTES)
        }
        self._queues: dict[int, QueuePair] = {}
        self._blocks: dict[int, bytes] = {}
        self._data_ranges_written = False
        #: failure injection: LBAs whose media reads fail (grown defects)
        self.bad_lbas: set[int] = set()
        #: bound FaultInjector (hook points ssd.media / ssd.fetch /
        #: ssd.firmware); None = dormant, zero-cost
        self.faults = None
        #: bound CheckContext (prp checker); None = dormant, zero-cost
        self.checks = None
        # firmware-activation gate
        self._paused = False
        self._resume_event: Optional[Event] = None
        self._drained_event: Optional[Event] = None
        self.temperature_k = 310  # SMART health data
        self.power_cycles = 1

        if bar0_base is None:
            bar0_base = 0x10_0000_0000 + NVMeSSD._next_bar_slot * 0x100_0000
            NVMeSSD._next_bar_slot += 1
        self.bar0_base = bar0_base
        self.bar0_size = 0x4000
        self.function = PCIeFunction(
            routing_id=0x100 + NVMeSSD._next_bar_slot,
            config=ConfigSpace(vendor_id=0x8086, device_id=0x0A54,
                               bar_sizes={0: self.bar0_size}),
            name=f"{name}.fn",
        )
        self.function.config.enable()
        self.function.map_bar(self.port, 0, self.bar0_base, _DoorbellRegion(self))

    # ------------------------------------------------------------------ setup
    def doorbell_addr(self, qid: int, is_cq: bool = False) -> int:
        return (
            self.bar0_base
            + DOORBELL_REGION_OFFSET
            + (2 * qid + (1 if is_cq else 0)) * DOORBELL_STRIDE
        )

    def attach_queue_pair(self, qid: int, sq: SubmissionQueue, cq: CompletionQueue) -> QueuePair:
        """Register an SQ/CQ pair (models CREATE_IO_SQ/CQ register effects)."""
        qp = QueuePair(
            sq=sq,
            cq=cq,
            sq_doorbell=self.doorbell_addr(qid, is_cq=False),
            cq_doorbell=self.doorbell_addr(qid, is_cq=True),
        )
        self._queues[qid] = qp
        return qp

    def detach_queue_pair(self, qid: int) -> None:
        self._queues.pop(qid, None)

    @property
    def queue_ids(self) -> list[int]:
        return sorted(self._queues)

    # --------------------------------------------------------------- doorbell
    def _on_sq_doorbell(self, qid: int) -> None:
        qp = self._queues.get(qid)
        if qp is None:
            return
        sq = qp.sq
        spawn = self.sim.spawn
        while True:
            # batch-consume every published SQE before touching the
            # shadow-doorbell state: one doorbell pays for the whole burst
            while sq.tail != sq.head:
                addr = sq.consume_addr()
                spawn(self._execute(qid, qp, addr), name=self._cmd_pname)
            # shadow-doorbell rings re-check after arming the wakeup so
            # entries published without an MMIO are never stranded
            if not (qp.sq.shadow_mode and qp.sq.rearm_doorbell()):
                break

    # --------------------------------------------------------------- command
    def _execute(self, qid: int, qp: QueuePair, sqe_addr: int):
        if self._paused:
            yield self._wait_resume()
        self.stats.inflight += 1
        dropped = False
        tr = qp.translation
        try:
            fetch_addr = sqe_addr if tr is None else tr.tag(sqe_addr)
            sqe = yield self.port.mem_read(fetch_addr, SQE_BYTES)
            if not isinstance(sqe, SQE):
                raise SimulationError(f"{self.name}: no SQE at {sqe_addr:#x}")
            yield self.sim.timeout(DECODE_NS)
            if (
                qid != 0
                and self.faults is not None
                and self.faults.drop_command(self.name, span=sqe.span)
            ):
                # injected command loss: the drive swallows the command
                # and never posts a CQE; only a host-side timeout recovers
                dropped = True
                status, result = int(StatusCode.SUCCESS), 0
            elif qid == 0:
                status, result = yield from self._admin(sqe)
            else:
                status, result = yield from self._io(sqe, tr)
        finally:
            self.stats.inflight -= 1
            self._check_drained()
        if dropped:
            return
        yield from self._complete(qid, qp, sqe, status, result)

    def _complete(self, qid: int, qp: QueuePair, sqe: SQE, status: int, result: int):
        tr = qp.translation
        if tr is not None and not tr.live:
            # the translation's device was surprise-removed: a dead
            # drive's TLPs no longer route anywhere, so the CQE never
            # lands — only the host driver's timeout recovers
            return
        cqe = alloc_cqe(sqe.cid, status, qp.sq.head, qid, result)
        if status != int(StatusCode.SUCCESS):
            self.stats.errors += 1
        # DMA the CQE into the completion ring, then make it host-visible.
        target = qp.cq.slot_addr(qp.cq.tail)
        if tr is not None:
            target = tr.tag(target)
        yield self.port.mem_write(target, CQE_BYTES, None)
        qp.cq.post_slot(cqe)
        if qp.cq.irq_vector is not None:
            if tr is not None:
                qp.cq.note_cqe(self.sim, tr.fire_irq(qp.cq))
            else:
                qp.cq.note_cqe(self.sim, self._fire_vector(qp.cq))

    def _fire_vector(self, cq):
        def fire() -> None:
            self.function.msix.raise_vector(self.port, cq.irq_vector)
        return fire

    # ------------------------------------------------------------------- I/O
    def _io(self, sqe: SQE, translation=None):
        ns = self.namespaces.get(sqe.nsid)
        if ns is None:
            return int(StatusCode.INVALID_NAMESPACE), 0
        opcode = sqe.opcode
        span = sqe.span
        if opcode == int(IOOpcode.FLUSH):
            yield from self.flash.flush()
            if span is not None:
                span.stamp("ssd_dma", self.sim.now)
            return int(StatusCode.SUCCESS), 0
        nblocks = sqe.num_blocks
        # passthrough queues carry guest LBAs: bound-check against the
        # translation window, then shift by its base.  The SQE is shared
        # host state — never mutate it, keep the shifted LBA local.
        slba = sqe.slba
        if translation is not None:
            if slba + nblocks > translation.num_blocks:
                return int(StatusCode.LBA_OUT_OF_RANGE), 0
            slba = slba + translation.lba_offset
        if not ns.contains(slba, nblocks):
            return int(StatusCode.LBA_OUT_OF_RANGE), 0
        length = nblocks * ns.block_bytes
        pages, prp_list = yield from self._resolve_prps(sqe, length, translation)

        if self.faults is not None:
            stall = self.faults.media_stall_ns(self.name, span=span)
            if stall:
                yield self.sim.timeout(stall)
            forced = self.faults.media_error(
                self.name, opcode, sqe.slba, nblocks, span=span
            )
            if forced is not None:
                # the failing media op still burns its access time
                if opcode == int(IOOpcode.WRITE):
                    yield from self.flash.write(length)
                else:
                    yield from self.flash.read(length)
                return forced, 0

        if opcode == int(IOOpcode.READ):
            if self.bad_lbas and any(
                (slba + i) in self.bad_lbas for i in range(nblocks)
            ):
                # grown media defect: the ECC retry burns time, then fails
                yield from self.flash.read(length)
                return int(StatusCode.DATA_TRANSFER_ERROR), 0
            yield from self.flash.read(length)
            payload = self._load_blocks(slba, nblocks)
            yield from self._dma_out(pages, length, payload)
            if span is not None:
                span.stamp("ssd_dma", self.sim.now)
            self.stats.read_ops += 1
            self.stats.read_bytes += length
            return int(StatusCode.SUCCESS), 0

        if opcode == int(IOOpcode.WRITE):
            payload = yield from self._dma_in(pages, length, sqe.payload is not None)
            if sqe.payload is not None:
                payload = sqe.payload  # authoritative copy from the submitter
            if payload is not None:
                self._store_blocks(slba, nblocks, payload)
            yield from self.flash.write(length)
            if span is not None:
                span.stamp("ssd_dma", self.sim.now)
            self.stats.write_ops += 1
            self.stats.write_bytes += length
            return int(StatusCode.SUCCESS), 0

        if opcode in (int(IOOpcode.WRITE_ZEROES), int(IOOpcode.DSM)):
            for lba in range(slba, slba + nblocks):
                self._blocks.pop(lba, None)
            return int(StatusCode.SUCCESS), 0

        return int(StatusCode.INVALID_OPCODE), 0

    def _resolve_prps(self, sqe: SQE, length: int, translation=None):
        npages = len(pages_for(sqe.prp1, length))
        if npages <= 2:
            pages = [sqe.prp1] if npages == 1 else [sqe.prp1, sqe.prp2]
            entry = None
        else:
            list_addr = sqe.prp2
            if translation is not None:
                list_addr = translation.tag(list_addr)
            entry = yield self.port.mem_read(list_addr, (npages - 1) * 8)
            if not isinstance(entry, PRPList):
                raise SimulationError(f"{self.name}: bad PRP list at {sqe.prp2:#x}")
            pages = [sqe.prp1, *entry.entries[: npages - 1]]
        if self.checks is not None:
            self.checks.on_prp_chain(
                pages, length, span=sqe.span,
                memory_name=None, where=self.name,
            )
        if translation is not None:
            # guest PRPs name host pages: tag each with the function id
            # so the engine's root space routes the TLPs out the front
            pages = [translation.tag(p) for p in pages]
        return pages, entry

    def _dma_out(self, pages: list[int], length: int, payload: Optional[bytes]):
        """DMA data toward the PRP pages (device -> memory)."""
        if payload is None:
            yield self.port.mem_write(pages[0], length, None)
            return
        offset = 0
        for page_addr in pages:
            chunk = min(PAGE_SIZE - (page_addr % PAGE_SIZE), length - offset)
            yield self.port.mem_write(page_addr, chunk, payload[offset : offset + chunk])
            offset += chunk
            if offset >= length:
                break

    def _dma_in(self, pages: list[int], length: int, want_data: bool):
        """DMA data from the PRP pages (memory -> device)."""
        if not want_data:
            yield self.port.mem_read(pages[0], length)
            return None
        out = bytearray()
        offset = 0
        for page_addr in pages:
            chunk = min(PAGE_SIZE - (page_addr % PAGE_SIZE), length - offset)
            data = yield self.port.mem_read(page_addr, chunk)
            out += data if isinstance(data, (bytes, bytearray)) else bytes(chunk)
            offset += chunk
            if offset >= length:
                break
        return bytes(out)

    # -------------------------------------------------------------- block data
    def _store_blocks(self, slba: int, nblocks: int, payload: bytes) -> None:
        self._data_ranges_written = True
        for i in range(nblocks):
            chunk = payload[i * LBA_BYTES : (i + 1) * LBA_BYTES]
            self._blocks[slba + i] = chunk.ljust(LBA_BYTES, b"\0")

    def _load_blocks(self, slba: int, nblocks: int) -> Optional[bytes]:
        if not self._data_ranges_written:
            return None
        if not any((slba + i) in self._blocks for i in range(nblocks)):
            return None
        return b"".join(
            self._blocks.get(slba + i, bytes(LBA_BYTES)) for i in range(nblocks)
        )

    # ------------------------------------------------------------------ admin
    def _admin(self, sqe: SQE):
        self.stats.admin_ops += 1
        opcode = sqe.opcode
        if opcode == int(AdminOpcode.IDENTIFY):
            page = {
                "model": self.profile.name,
                "firmware": self.firmware.active.version,
                "capacity_blocks": self.namespaces[1].num_blocks,
                "namespaces": sorted(self.namespaces),
            }
            if sqe.prp1:
                yield self.port.mem_write(sqe.prp1, PAGE_SIZE, None)
                self._identify_sink(sqe.prp1, page)
            return int(StatusCode.SUCCESS), 0
        if opcode == int(AdminOpcode.GET_LOG_PAGE):
            log = self.health_log()
            if sqe.prp1:
                yield self.port.mem_write(sqe.prp1, 512, None)
                self._identify_sink(sqe.prp1, log)
            return int(StatusCode.SUCCESS), 0
        if opcode == int(AdminOpcode.FIRMWARE_DOWNLOAD):
            nbytes = (sqe.cdw10 + 1) * 4  # NUMD: dword count, 0's based
            yield self.port.mem_read(sqe.prp1, nbytes)
            version = sqe.payload.decode() if isinstance(sqe.payload, bytes) else str(sqe.payload)
            self.firmware.download_chunk(nbytes, version)
            return int(StatusCode.SUCCESS), 0
        if opcode == int(AdminOpcode.FIRMWARE_COMMIT):
            slot = sqe.cdw10 & 0x7
            action = (sqe.cdw10 >> 3) & 0x7
            image = sqe.payload
            if isinstance(image, FirmwareImage):
                self.firmware.commit(slot, image)
            if action >= 2:  # activate (with reset)
                yield from self._activate_firmware(slot)
            return int(StatusCode.SUCCESS), 0
        if opcode == int(AdminOpcode.ABORT):
            # cdw10 = cid | (sqid << 16).  The command model executes
            # each fetched SQE to completion, so by the time an Abort
            # arrives the target either finished or was dropped; the
            # Abort itself always succeeds (result 1 = not found).
            yield self.sim.timeout(DECODE_NS)
            return int(StatusCode.SUCCESS), 1
        if opcode in (int(AdminOpcode.CREATE_IO_SQ), int(AdminOpcode.CREATE_IO_CQ),
                      int(AdminOpcode.DELETE_IO_SQ), int(AdminOpcode.DELETE_IO_CQ),
                      int(AdminOpcode.SET_FEATURES), int(AdminOpcode.GET_FEATURES)):
            yield self.sim.timeout(DECODE_NS)
            return int(StatusCode.SUCCESS), 0
        if opcode == int(AdminOpcode.NS_MANAGEMENT):
            yield self.sim.timeout(DECODE_NS)
            return int(StatusCode.SUCCESS), 0
        return int(StatusCode.INVALID_OPCODE), 0

    def _identify_sink(self, addr: int, obj) -> None:
        """Park structured identify/log data for the requester to load."""
        self._last_admin_payloads = getattr(self, "_last_admin_payloads", {})
        self._last_admin_payloads[addr] = obj

    def admin_payload_at(self, addr: int):
        return getattr(self, "_last_admin_payloads", {}).get(addr)

    def health_log(self) -> dict:
        return {
            "temperature_k": self.temperature_k,
            "power_cycles": self.power_cycles,
            "read_ops": self.stats.read_ops,
            "write_ops": self.stats.write_ops,
            "errors": self.stats.errors,
            "firmware": self.firmware.active.version,
        }

    # ------------------------------------------------------- firmware activate
    def _activate_firmware(self, slot: int):
        """Pause, drain, reprogram (activation_ns), resume."""
        self._paused = True
        if self.stats.inflight > 1:  # this command itself is in flight
            self._drained_event = self.sim.event(name=f"{self.name}.drained")
            yield self._drained_event
        image = self.firmware.slots.get(slot)
        activation = image.activation_ns if image else DEFAULT_FIRMWARE.activation_ns
        if self.faults is not None:
            activation += self.faults.firmware_stall_ns(self.name)
        yield self.sim.timeout(activation)
        self.firmware.activate(slot)
        self.power_cycles += 1
        self._paused = False
        resume, self._resume_event = self._resume_event, None
        if resume is not None:
            resume.succeed()
        # pick up anything that arrived while paused
        for qid, qp in list(self._queues.items()):
            self._on_sq_doorbell(qid)

    def _wait_resume(self) -> Event:
        if self._resume_event is None:
            self._resume_event = self.sim.event(name=f"{self.name}.resume")
        return self._resume_event

    def _check_drained(self) -> None:
        if self._drained_event is not None and self.stats.inflight <= 1:
            ev, self._drained_event = self._drained_event, None
            ev.succeed()

    # ------------------------------------------------------------------ misc
    @property
    def is_paused(self) -> bool:
        return self._paused

    def block_data(self, lba: int) -> Optional[bytes]:
        """Test hook: raw stored bytes of one LBA."""
        return self._blocks.get(lba)
