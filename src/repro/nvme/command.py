"""NVMe command structures: submission (SQE) and completion (CQE) entries.

These are the structured stand-ins for the 64-byte / 16-byte wire
formats; the queue layer charges their real wire sizes when they move
over PCIe.  PRP entries are genuine 64-bit integers so the BMS-Engine's
global-PRP bit manipulation (paper Fig. 4b) operates on real addresses.

Both entry types are recycled through module-level free lists
(:func:`alloc_sqe` / :func:`free_sqe` and the CQE pair): the hot I/O
path allocates one SQE and one CQE per command, and both are dead the
moment the host driver finalizes the completion, so the ``counters``
observability mode runs without per-I/O allocation.  Pooling contract:
an entry may be freed only once, only by the component that finalizes
it, and never while any ring slot between head and tail still names it.
A timed-out command's SQE cannot be freed at abort time (its stale ring
entry can still be fetched after a hot-plug replay); the driver instead
parks it in the submission ring's leak ledger
(:meth:`~repro.nvme.queues.SubmissionQueue.note_leaked`), and the ring
recycles it at the next provably-safe point — when its slot is
overwritten by a later push, or when the queue is re-attached/torn down
and the slot sits outside the live ``[head, tail)`` window.
:func:`pool_stats` exposes the live-entry high-water mark so soak tests
can pin that the ledger keeps the pool bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .spec import LBA_BYTES, StatusCode

__all__ = ["SQE", "CQE", "alloc_sqe", "free_sqe", "alloc_cqe", "free_cqe",
           "pool_stats"]


@dataclass(slots=True)
class SQE:
    """Submission queue entry (the fields BM-Store routes/rewrites).

    ``prp1``/``prp2`` follow NVMe semantics: for transfers <= 2 pages
    they are direct data pointers; beyond that ``prp2`` points at a PRP
    list in memory.
    """

    opcode: int
    cid: int
    nsid: int
    slba: int = 0
    nlb: int = 0  # 0's-based block count (0 means 1 block)
    prp1: int = 0
    prp2: int = 0
    # non-wire simulation conveniences ------------------------------------
    payload: Optional[bytes] = field(default=None, repr=False)
    submit_time_ns: int = 0
    cdw10: int = 0  # generic command dword (admin commands)
    cdw11: int = 0
    #: sampled IOSpan riding on the command (observability only)
    span: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def num_blocks(self) -> int:
        return self.nlb + 1

    @property
    def transfer_bytes(self) -> int:
        return self.num_blocks * LBA_BYTES

    def remapped(self, slba: int, prp1: int, prp2: int) -> "SQE":
        """A copy with rewritten LBA/PRPs — what the BMS-Engine forwards."""
        return SQE(opcode=self.opcode, cid=self.cid, nsid=self.nsid,
                   slba=slba, nlb=self.nlb, prp1=prp1, prp2=prp2,
                   payload=self.payload, submit_time_ns=self.submit_time_ns,
                   cdw10=self.cdw10, cdw11=self.cdw11)


@dataclass(slots=True)
class CQE:
    """Completion queue entry."""

    cid: int
    status: int = int(StatusCode.SUCCESS)
    sq_head: int = 0
    sqid: int = 0
    phase: int = 1
    result: int = 0

    @property
    def ok(self) -> bool:
        return self.status == int(StatusCode.SUCCESS)


# ---------------------------------------------------------------- free lists
_SQE_POOL: list = []
_CQE_POOL: list = []
_POOL_CAP = 4096
# live SQE accounting (allocs minus frees through this module): the
# high-water mark is what the leak-reclaim soak tests pin
_SQE_STATS = {"outstanding": 0, "peak": 0}


def pool_stats() -> dict:
    """Live SQE count, its high-water mark, and free-list sizes."""
    return {
        "sqe_outstanding": _SQE_STATS["outstanding"],
        "sqe_peak": _SQE_STATS["peak"],
        "sqe_free": len(_SQE_POOL),
        "cqe_free": len(_CQE_POOL),
    }


def alloc_sqe(opcode: int, cid: int, nsid: int, slba: int = 0, nlb: int = 0,
              prp1: int = 0, prp2: int = 0, payload: Optional[bytes] = None,
              submit_time_ns: int = 0, cdw10: int = 0, cdw11: int = 0) -> SQE:
    """A fully-initialized SQE, recycled from the free list when possible."""
    stats = _SQE_STATS
    stats["outstanding"] += 1
    if stats["outstanding"] > stats["peak"]:
        stats["peak"] = stats["outstanding"]
    if _SQE_POOL:
        sqe = _SQE_POOL.pop()
        sqe.opcode = opcode
        sqe.cid = cid
        sqe.nsid = nsid
        sqe.slba = slba
        sqe.nlb = nlb
        sqe.prp1 = prp1
        sqe.prp2 = prp2
        sqe.payload = payload
        sqe.submit_time_ns = submit_time_ns
        sqe.cdw10 = cdw10
        sqe.cdw11 = cdw11
        sqe.span = None
        return sqe
    return SQE(opcode=opcode, cid=cid, nsid=nsid, slba=slba, nlb=nlb,
               prp1=prp1, prp2=prp2, payload=payload,
               submit_time_ns=submit_time_ns, cdw10=cdw10, cdw11=cdw11)


def free_sqe(sqe: SQE) -> None:
    if _SQE_STATS["outstanding"] > 0:
        _SQE_STATS["outstanding"] -= 1
    if len(_SQE_POOL) < _POOL_CAP:
        sqe.payload = None
        sqe.span = None
        _SQE_POOL.append(sqe)


def alloc_cqe(cid: int, status: int, sq_head: int, sqid: int,
              result: int = 0) -> CQE:
    """A CQE ready for :meth:`CompletionQueue.post_slot` (phase stamped there)."""
    if _CQE_POOL:
        cqe = _CQE_POOL.pop()
        cqe.cid = cid
        cqe.status = status
        cqe.sq_head = sq_head
        cqe.sqid = sqid
        cqe.phase = 1
        cqe.result = result
        return cqe
    return CQE(cid=cid, status=status, sq_head=sq_head, sqid=sqid,
               result=result)


def free_cqe(cqe: CQE) -> None:
    if len(_CQE_POOL) < _POOL_CAP:
        _CQE_POOL.append(cqe)
