"""NVMe command structures: submission (SQE) and completion (CQE) entries.

These are the structured stand-ins for the 64-byte / 16-byte wire
formats; the queue layer charges their real wire sizes when they move
over PCIe.  PRP entries are genuine 64-bit integers so the BMS-Engine's
global-PRP bit manipulation (paper Fig. 4b) operates on real addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .spec import LBA_BYTES, StatusCode

__all__ = ["SQE", "CQE"]


@dataclass
class SQE:
    """Submission queue entry (the fields BM-Store routes/rewrites).

    ``prp1``/``prp2`` follow NVMe semantics: for transfers <= 2 pages
    they are direct data pointers; beyond that ``prp2`` points at a PRP
    list in memory.
    """

    opcode: int
    cid: int
    nsid: int
    slba: int = 0
    nlb: int = 0  # 0's-based block count (0 means 1 block)
    prp1: int = 0
    prp2: int = 0
    # non-wire simulation conveniences ------------------------------------
    payload: Optional[bytes] = field(default=None, repr=False)
    submit_time_ns: int = 0
    cdw10: int = 0  # generic command dword (admin commands)
    cdw11: int = 0

    @property
    def num_blocks(self) -> int:
        return self.nlb + 1

    @property
    def transfer_bytes(self) -> int:
        return self.num_blocks * LBA_BYTES

    def remapped(self, slba: int, prp1: int, prp2: int) -> "SQE":
        """A copy with rewritten LBA/PRPs — what the BMS-Engine forwards."""
        return replace(self, slba=slba, prp1=prp1, prp2=prp2)


@dataclass
class CQE:
    """Completion queue entry."""

    cid: int
    status: int = int(StatusCode.SUCCESS)
    sq_head: int = 0
    sqid: int = 0
    phase: int = 1
    result: int = 0

    @property
    def ok(self) -> bool:
        return self.status == int(StatusCode.SUCCESS)
