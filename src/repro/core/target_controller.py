"""Target Controller: the BMS-Engine's command demultiplexer.

Per the paper's architecture (Fig. 3), the Target Controller receives
every fetched command and forwards *general I/O* to the mapping/QoS
pipeline while *admin (device management) commands* go to the
BMS-Controller on the ARM SoC.  A small set of latency-critical admin
commands (IDENTIFY, GET LOG PAGE) is answered by engine-local state,
mirroring hardware fast paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..nvme.command import SQE
from ..nvme.spec import AdminOpcode, StatusCode
from ..sim import Store

if TYPE_CHECKING:  # pragma: no cover
    from .engine import BMSEngine
    from .sriov_layer import FrontEndFunction

__all__ = ["TargetController", "AdminRequest"]


class AdminRequest:
    """An admin command parked for the BMS-Controller."""

    __slots__ = ("fn", "qid", "sqe", "_engine", "completed")

    def __init__(self, engine: "BMSEngine", fn: "FrontEndFunction", qid: int, sqe: SQE):
        self._engine = engine
        self.fn = fn
        self.qid = qid
        self.sqe = sqe
        self.completed = False

    def respond(self, status: StatusCode = StatusCode.SUCCESS, result: int = 0) -> None:
        """Post the completion back through the front end."""
        if self.completed:
            return
        self.completed = True
        self._engine.post_front_cqe(self.fn, self.qid, self.sqe.cid, int(status), result)


class TargetController:
    """Admin/IO demux of the engine."""

    def __init__(self, engine: "BMSEngine"):
        self.engine = engine
        #: mailbox drained by the BMS-Controller service loop
        self.admin_mailbox: Store = Store(engine.sim, name="bms.adminmbx")
        self.io_commands = 0
        self.admin_commands = 0
        self.admin_forwarded = 0
        # per-(fn, qid) counter handles; building the labeled key on
        # every fetched command is measurable at millions of events
        self._c_io: dict = {}
        self._c_admin: dict = {}

    def dispatch(self, fn: "FrontEndFunction", qid: int, sqe: SQE):
        """Process generator: route one fetched command."""
        obs = self.engine.obs
        span = getattr(sqe, "span", None)
        if span is not None:
            span.stamp("fetch", self.engine.sim.now)
        faults = self.engine.faults
        if faults is not None:
            stall = faults.engine_stall_ns(span=span)
            if stall:
                yield self.engine.sim.timeout(stall)
        if qid != 0:
            self.io_commands += 1
            if obs is not None:
                c = self._c_io.get((fn.fn_id, qid))
                if c is None:
                    c = self._c_io[(fn.fn_id, qid)] = obs.counter(
                        "tc_io_cmds", fn=str(fn.fn_id), qid=str(qid))
                c.inc()
            yield from self.engine._handle_io(fn, qid, sqe)
            return
        self.admin_commands += 1
        if obs is not None:
            c = self._c_admin.get(fn.fn_id)
            if c is None:
                c = self._c_admin[fn.fn_id] = obs.counter(
                    "tc_admin_cmds", fn=str(fn.fn_id))
            c.inc()
        handled = yield from self._engine_local_admin(fn, qid, sqe)
        if handled:
            return
        # management command: hand it to the ARM-side BMS-Controller
        self.admin_forwarded += 1
        if obs is not None:
            obs.counter("tc_admin_forwarded", fn=str(fn.fn_id)).inc()
        self.admin_mailbox.put(AdminRequest(self.engine, fn, qid, sqe))

    def _engine_local_admin(self, fn: "FrontEndFunction", qid: int, sqe: SQE):
        opcode = sqe.opcode
        if opcode == int(AdminOpcode.IDENTIFY):
            ns = fn.namespaces.get(1)
            page = {
                "model": "BM-Store virtual NVMe",
                "function": fn.fn_id,
                "namespace_blocks": ns.num_blocks if ns else 0,
            }
            if sqe.prp1:
                yield self.engine.front_port.mem_write(sqe.prp1, 4096, None)
                self.engine.host_identify_pages[sqe.prp1] = page
            self.engine.post_front_cqe(fn, qid, sqe.cid, int(StatusCode.SUCCESS), 0)
            return True
        if opcode == int(AdminOpcode.GET_LOG_PAGE):
            stats = self.engine.monitor_snapshot(fn.fn_id)
            volumes = self.engine.volumes
            if volumes is not None and fn.ns_key is not None:
                # tenants see their own volume's CoW statistics in the
                # vendor log page (the host never learns fleet topology)
                if fn.ns_key in volumes.volumes:
                    stats["volume"] = volumes.volume_stat(fn.ns_key)
            if sqe.prp1:
                yield self.engine.front_port.mem_write(sqe.prp1, 512, None)
                self.engine.host_identify_pages[sqe.prp1] = stats
            self.engine.post_front_cqe(fn, qid, sqe.cid, int(StatusCode.SUCCESS), 0)
            return True
        if opcode in (
            int(AdminOpcode.CREATE_IO_SQ),
            int(AdminOpcode.CREATE_IO_CQ),
            int(AdminOpcode.DELETE_IO_SQ),
            int(AdminOpcode.DELETE_IO_CQ),
            int(AdminOpcode.SET_FEATURES),
            int(AdminOpcode.GET_FEATURES),
            int(AdminOpcode.ABORT),
        ):
            yield self.engine.sim.timeout(self.engine.timings.pipeline_ns)
            self.engine.post_front_cqe(fn, qid, sqe.cid, int(StatusCode.SUCCESS), 0)
            return True
        if opcode in (
            int(AdminOpcode.PUSH_INSTALL),
            int(AdminOpcode.PUSH_UNINSTALL),
            int(AdminOpcode.PUSH_STAT),
        ):
            yield self.engine.sim.timeout(self.engine.timings.pipeline_ns)
            yield from self._push_admin(fn, qid, sqe)
            return True
        return False

    def _push_admin(self, fn: "FrontEndFunction", qid: int, sqe: SQE):
        """In-band pushdown program management (vendor admin opcodes)."""
        from ..push import PushValidationError

        engine = self.engine
        if fn.ns_key is None:
            engine.post_front_cqe(fn, qid, sqe.cid,
                                  int(StatusCode.INVALID_NAMESPACE), 0)
            return
        opcode = sqe.opcode
        status = StatusCode.SUCCESS
        if opcode == int(AdminOpcode.PUSH_INSTALL):
            try:
                engine.push_manager().install(fn.ns_key, sqe.payload)
            except PushValidationError:
                status = StatusCode.INVALID_FIELD
        elif opcode == int(AdminOpcode.PUSH_UNINSTALL):
            push = engine.push
            if push is None or push.program_for(fn.ns_key) is None:
                status = StatusCode.INVALID_FIELD
            else:
                push.uninstall(fn.ns_key)
        else:  # PUSH_STAT
            push = engine.push
            entry = push.program_for(fn.ns_key) if push is not None else None
            if entry is None:
                status = StatusCode.INVALID_FIELD
            elif sqe.prp1:
                yield engine.front_port.mem_write(sqe.prp1, 512, None)
                engine.host_identify_pages[sqe.prp1] = entry.stat()
        engine.post_front_cqe(fn, qid, sqe.cid, int(status), 0)
