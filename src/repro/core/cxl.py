"""CXL-extended buffer tier with XBOF-style inter-SSD sharing.

The engine ships with a fixed on-card DRAM budget (``chip_memory_bytes``),
so burst-heavy tenants either stall on ``HostMemory: out of memory`` or
force over-provisioning on every card in the rack.  This module models
two escape hatches the fixed-card design leaves on the table:

* :class:`CXLBufferTier` — a second, slower ``HostMemory`` window behind
  a CXL.mem link (distinct ``access_ns``, bandwidth-modeled via
  :class:`~repro.sim.resources.BandwidthLink`).  The engine's
  :class:`~repro.host.memory.BufferPool` spills overflow allocations
  into the window instead of raising out-of-memory; hot buffers stay
  on-card because the pool always serves on-card buckets first, and
  spilled capacity is handed back (promoted) once the working set fits
  on-card again.
* :class:`SharePool` — XBOF-style borrowing of idle per-SSD buffer DRAM
  across the JBOF: when the CXL window itself overflows, the tier
  borrows bounded slices from attached back-end slots.  Grants are
  revocable — returned voluntarily as pressure subsides, and revoked
  forcibly when the lending slot is surprise hot-removed.

Everything here is dormant by default: ``engine.cxl is None`` keeps
every existing run byte-identical (one pointer test on the hot path),
pinned by test.

Spill/promote policy (deterministic by construction):

1. ``BufferPool.get`` serves the on-card free bucket, then a fresh
   on-card allocation.  Only when the chip allocator raises OOM does the
   request fall through to the tier: first recycled spilled buffers,
   then a fresh window allocation, then a borrowed slice — each step
   counted (``cxl_spills``) and visible in NVMe-MI / obs.
2. While spilled buffers of a size sit idle, every on-card ``get`` of
   that size increments a consecutive-hit counter; after
   ``promote_after`` consecutive on-card serves one idle spilled buffer
   is retired back to the window free list (or its borrow grant is
   returned to the lender) and counted as a promote.  The hysteresis
   keeps a brief lull inside a burst from thrashing capacity back and
   forth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..host.memory import HostMemory
from ..sim import Event, SimulationError, Simulator
from ..sim.resources import BandwidthLink
from ..sim.units import MIB

__all__ = ["CXLTimings", "CXLBufferTier", "SharePool", "CXL_WINDOW_BASE"]

#: base of the CXL-attached window in the back-end address space; far
#: above chip memory (0x1000_0000) and far below the function-id tag
#: bits (bit 57+), so ``is_global_prp`` never claims a window address
CXL_WINDOW_BASE = 0x40_0000_0000
#: each lender slot's buffer window: one disjoint 16 GiB slab per slot
SLOT_BUFFER_BASE = 0x50_0000_0000
SLOT_BUFFER_STRIDE = 0x4_0000_0000


@dataclass(frozen=True)
class CXLTimings:
    """Knobs of the CXL buffer tier (all deterministic constants)."""

    #: CXL.mem load latency — ~6x the on-card DRAM's 25 ns
    access_ns: int = 150
    #: x8 CXL 2.0 link payload bandwidth
    bytes_per_sec: float = 28.0e9
    #: capacity of the engine-private CXL window
    window_bytes: int = 256 * MIB
    #: consecutive on-card serves of a size before one idle spilled
    #: buffer of that size is handed back (promote hysteresis)
    promote_after: int = 4
    #: idle buffer DRAM each back-end slot exposes to the share pool
    slot_buffer_bytes: int = 64 * MIB
    #: fraction of a slot's buffer one engine may borrow (the bound)
    max_lend_fraction: float = 0.5


@dataclass
class _Grant:
    """One outstanding borrow from a lender slot."""

    ssd_id: int
    addr: int
    nbytes: int


class SharePool:
    """Idle per-SSD buffer DRAM, lendable across the JBOF (XBOF-style).

    Lender windows are carved lazily per slot index; grants are bounded
    by ``max_lend_fraction`` of the slot's buffer and revoked when the
    owner demands them back (``reclaim``) or vanishes (surprise
    hot-removal).  A revoked grant's bytes are simply lost to the
    borrower — the conservative model of DRAM that left with the drive;
    the slot's bump pointer is *not* rewound, so a revoked address can
    never be re-granted and alias a stale in-flight buffer.
    """

    def __init__(self, engine, timings: CXLTimings):
        self.engine = engine
        self.sim: Simulator = engine.sim
        self.timings = timings
        self._slot_mem: dict[int, HostMemory] = {}
        self._slot_free: dict[int, dict[int, list[int]]] = {}
        self._lent: dict[int, int] = {}
        #: addr -> grant, for every outstanding borrow
        self.grants: dict[int, _Grant] = {}
        self.lends = 0
        self.reclaims = 0
        self.revocations = 0

    # ----------------------------------------------------------- lender side
    def _slot_memory(self, ssd_id: int) -> HostMemory:
        mem = self._slot_mem.get(ssd_id)
        if mem is None:
            mem = HostMemory(
                self.sim, self.timings.slot_buffer_bytes,
                access_ns=self.timings.access_ns,
                base=SLOT_BUFFER_BASE + ssd_id * SLOT_BUFFER_STRIDE,
                name=f"{self.engine.name}.slot{ssd_id}.buf",
            )
            self._slot_mem[ssd_id] = mem
            self._slot_free[ssd_id] = {}
            self._lent[ssd_id] = 0
        return mem

    def _slot_attached(self, ssd_id: int) -> bool:
        slots = self.engine.adaptor.slots
        if ssd_id >= len(slots):
            return False
        return getattr(slots[ssd_id], "ssd", None) is not None

    @property
    def lent_bytes(self) -> int:
        return sum(g.nbytes for g in self.grants.values())

    def borrow(self, nbytes: int) -> Optional[int]:
        """Borrow ``nbytes`` from the first slot with idle capacity.

        Slots are scanned in index order so the choice is deterministic;
        returns the granted address, or None when every slot is either
        detached or at its lending bound.
        """
        bound = int(self.timings.slot_buffer_bytes
                    * self.timings.max_lend_fraction)
        for ssd_id in range(len(self.engine.adaptor.slots)):
            if not self._slot_attached(ssd_id):
                continue
            mem = self._slot_memory(ssd_id)
            if self._lent[ssd_id] + nbytes > bound:
                continue
            bucket = self._slot_free[ssd_id].get(nbytes)
            if bucket:
                addr = bucket.pop()
            else:
                try:
                    addr = mem.alloc(nbytes)
                except SimulationError:
                    continue
            self._lent[ssd_id] += nbytes
            self.grants[addr] = _Grant(ssd_id, addr, nbytes)
            self.lends += 1
            return addr
        return None

    def give_back(self, addr: int) -> None:
        """Voluntary return of a grant (borrower's pressure subsided)."""
        grant = self.grants.pop(addr, None)
        if grant is None:
            return
        self._lent[grant.ssd_id] -= grant.nbytes
        self._slot_free[grant.ssd_id].setdefault(
            grant.nbytes, []).append(grant.addr)

    def reclaim(self, ssd_id: int) -> list[_Grant]:
        """The owner demands its buffer back: revoke the slot's grants."""
        taken = [g for g in self.grants.values() if g.ssd_id == ssd_id]
        for grant in taken:
            del self.grants[grant.addr]
            self._lent[ssd_id] -= grant.nbytes
        self.reclaims += 1
        self.revocations += len(taken)
        return taken

    def memory_of(self, addr: int) -> Optional[HostMemory]:
        for mem in self._slot_mem.values():
            if mem.contains(addr):
                return mem
        return None

    def contains(self, addr: int) -> bool:
        return any(mem.contains(addr) for mem in self._slot_mem.values())


class CXLBufferTier:
    """Slower second buffer tier behind the engine's chip memory.

    Armed via ``engine.cxl_tier()``; the engine's ``BufferPool`` then
    spills overflow allocations here instead of raising out-of-memory.
    """

    def __init__(self, engine, timings: Optional[CXLTimings] = None):
        self.engine = engine
        self.sim: Simulator = engine.sim
        self.timings = timings or CXLTimings()
        self.window = HostMemory(
            self.sim, self.timings.window_bytes,
            access_ns=self.timings.access_ns,
            base=CXL_WINDOW_BASE, name=f"{engine.name}.cxlmem",
        )
        self.link = BandwidthLink(
            self.sim, self.timings.bytes_per_sec, name=f"{engine.name}.cxl"
        )
        self.share = SharePool(engine, self.timings)
        self._rd_pname = engine.name + ".cxlrd"
        #: retired spilled buffers, recyclable before growing the window
        self._window_free: dict[int, list[int]] = {}
        #: revoked borrowed addresses still held by in-flight commands
        self._revoked: set[int] = set()
        #: per-size run of consecutive on-card serves (promote hysteresis)
        self._onchip_runs: dict[int, int] = {}
        # stats — surfaced through NVMe-MI CXL_STAT and obs counters
        self.spills = 0
        self.spilled_bytes = 0
        self.promotes = 0
        self.hits_onchip = 0
        self.hits_cxl = 0
        self.revoked_inflight = 0
        obs = engine.obs
        self._c_spills = self._g_hit = self._g_borrowed = None
        if obs is not None:
            self._c_spills = obs.counter("cxl_spills", engine=engine.name)
            self._g_hit = obs.gauge("cxl_hit_ratio", engine=engine.name)
            self._g_borrowed = obs.gauge("borrowed_bytes", engine=engine.name)

    # ------------------------------------------------------------ geometry
    def contains(self, addr: int) -> bool:
        return self.window.contains(addr) or self.share.contains(addr)

    def owner_memory(self, addr: int) -> HostMemory:
        """The memory a tier-resident address lives in (chip otherwise)."""
        if self.window.contains(addr):
            return self.window
        mem = self.share.memory_of(addr)
        if mem is not None:
            return mem
        return self.engine.chip_memory

    def owner_name(self, addr: int) -> str:
        return self.owner_memory(addr).name

    @property
    def borrowed_bytes(self) -> int:
        return self.share.lent_bytes

    # -------------------------------------------------------- spill/promote
    def spill(self, nbytes: int) -> int:
        """Place one overflow allocation: window, then a borrowed slice.

        Raises the chip allocator's out-of-memory error only when the
        window is exhausted *and* no slot will lend.
        """
        bucket = self._window_free.get(nbytes)
        if bucket:
            addr = bucket.pop()
        else:
            try:
                addr = self.window.alloc(nbytes)
            except SimulationError:
                addr = self.share.borrow(nbytes)
                if addr is None:
                    raise SimulationError(
                        f"{self.engine.name}: chip memory, CXL window and "
                        f"share pool all exhausted allocating {nbytes} bytes"
                    )
        self.spills += 1
        self.spilled_bytes += nbytes
        if self._c_spills is not None:
            self._c_spills.inc()
        self._publish()
        return addr

    def note_get(self, nbytes: int, onchip: bool,
                 idle_spilled: Optional[list[int]] = None) -> None:
        """Account one pool serve; drive the promote hysteresis.

        ``idle_spilled`` is the pool's spilled free bucket for this size
        (may be None/empty): after ``promote_after`` consecutive on-card
        serves one idle spilled buffer is retired back to its source.
        """
        if onchip:
            self.hits_onchip += 1
            if idle_spilled:
                run = self._onchip_runs.get(nbytes, 0) + 1
                if run >= self.timings.promote_after:
                    self.retire(idle_spilled.pop(), nbytes)
                    self.promotes += 1
                    run = 0
                self._onchip_runs[nbytes] = run
        else:
            self.hits_cxl += 1
            self._onchip_runs[nbytes] = 0
        self._publish()

    def retire(self, addr: int, nbytes: int) -> None:
        """Hand spilled capacity back: window free list or the lender."""
        if self.window.contains(addr):
            self._window_free.setdefault(nbytes, []).append(addr)
        else:
            self.share.give_back(addr)
        self._publish()

    def absorb_revoked(self, addr: int) -> bool:
        """True when ``addr`` was revoked while in flight: drop, don't pool."""
        if addr in self._revoked:
            self._revoked.discard(addr)
            self.revoked_inflight += 1
            return True
        return False

    @property
    def hit_ratio(self) -> float:
        total = self.hits_onchip + self.hits_cxl
        return self.hits_onchip / total if total else 1.0

    def _publish(self) -> None:
        if self._g_hit is not None:
            self._g_hit.set(round(self.hit_ratio, 6))
            self._g_borrowed.set(self.borrowed_bytes)

    # ----------------------------------------------------------- revocation
    def on_slot_removed(self, ssd_id: int) -> None:
        """Surprise hot-removal of a lender: its grants die immediately.

        Granted addresses still sitting in the pool's free buckets are
        purged; addresses held by in-flight commands are absorbed when
        they come back through ``put`` (counted ``revoked_inflight``).
        """
        taken = self.share.reclaim(ssd_id)
        if not taken:
            return
        dead = {g.addr for g in taken}
        pool = self.engine._prp_pool
        purged = pool.drop_addresses(dead)
        self._revoked.update(dead - purged)
        self._publish()

    # ------------------------------------------------------------- datapath
    def window_read(self, addr: int, length: int) -> Event:
        """A backend read of a tier-resident address: link + media time."""
        mem = self.owner_memory(addr)
        done = self.sim.event(name=f"{self.engine.name}.cxlrd")

        def proc():
            yield self.link.transfer(length)
            yield self.sim.timeout(mem.access_ns)
            done.succeed(mem.mem_read(addr, length))

        self.sim.spawn(proc(), name=self._rd_pname)
        return done

    # ------------------------------------------------------------------ stats
    def stat(self) -> dict:
        """JSON-able tier statistics (NVMe-MI ``CXL_STAT`` body)."""
        return {
            "window_bytes": self.window.size,
            "window_allocated": self.window.allocated,
            "access_ns": self.timings.access_ns,
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "promotes": self.promotes,
            "hits_onchip": self.hits_onchip,
            "hits_cxl": self.hits_cxl,
            "hit_ratio": round(self.hit_ratio, 6),
            "borrowed_bytes": self.borrowed_bytes,
            "lends": self.share.lends,
            "reclaims": self.share.reclaims,
            "revocations": self.share.revocations,
            "revoked_inflight": self.revoked_inflight,
        }
