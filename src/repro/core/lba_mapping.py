"""BMS-Engine LBA Mapping Table — paper Fig. 4(a) and equations (1)-(4).

The table is a two-dimensional array of 8-bit *mapping entries*:

* bits [7:2] — base chunk index on the back-end SSD (6 bits)
* bits [1:0] — back-end SSD id (2 bits)

Each row additionally has an 8-bit *validation entry*; bit ``j`` says
whether mapping entry ``j`` of that row is valid.  Back-end capacity is
carved into fixed-size chunks (64 GiB in production).  Address
translation for a host LBA ``HL`` with chunk size ``CS`` (in blocks)
and ``EN`` entries per row:

    i      = (HL / CS) / EN                       (1)
    j      = (HL / CS) mod EN                     (2)
    SSD_ID = MT[i][j][1:0]                        (3)
    PL     = MT[i][j][7:2] * CS + HL mod CS       (4)

The hardware holds one table per front-end namespace context; the
:class:`MappingTable` here is that per-namespace table, with the
paper's default provisioning of eight entries (one row) per namespace
and the ability to span more rows for larger namespaces (the paper's
own evaluation binds a 1536 GB namespace = 24 chunks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import SimulationError
from ..sim.units import GIB

__all__ = [
    "MappingEntry",
    "MappingTable",
    "CHUNK_BYTES",
    "ENTRIES_PER_ROW",
    "ROWS",
    "ENTRY_BASE_BITS",
    "ENTRY_SSD_BITS",
]

CHUNK_BYTES = 64 * GIB
ENTRIES_PER_ROW = 8
ROWS = 8
ENTRY_BASE_BITS = 6
ENTRY_SSD_BITS = 2
_BASE_MASK = (1 << ENTRY_BASE_BITS) - 1
_SSD_MASK = (1 << ENTRY_SSD_BITS) - 1


@dataclass(frozen=True)
class MappingEntry:
    """A decoded 8-bit mapping entry."""

    base_chunk: int  # 6-bit chunk index on the target SSD
    ssd_id: int  # 2-bit back-end SSD id

    def __post_init__(self) -> None:
        if not 0 <= self.base_chunk <= _BASE_MASK:
            raise SimulationError(f"base chunk {self.base_chunk} exceeds 6 bits")
        if not 0 <= self.ssd_id <= _SSD_MASK:
            raise SimulationError(f"SSD id {self.ssd_id} exceeds 2 bits")

    def encode(self) -> int:
        """Pack into the 8-bit hardware format of Fig. 4(a)."""
        return (self.base_chunk << ENTRY_SSD_BITS) | self.ssd_id

    @classmethod
    def decode(cls, raw: int) -> "MappingEntry":
        if not 0 <= raw <= 0xFF:
            raise SimulationError(f"mapping entry {raw:#x} is not a byte")
        return cls(base_chunk=(raw >> ENTRY_SSD_BITS) & _BASE_MASK, ssd_id=raw & _SSD_MASK)


class MappingTable:
    """One namespace's mapping table (rows x entries of packed bytes)."""

    def __init__(
        self,
        chunk_blocks: int,
        rows: int = ROWS,
        entries_per_row: int = ENTRIES_PER_ROW,
    ):
        if chunk_blocks <= 0:
            raise SimulationError("chunk size must be positive")
        self.chunk_blocks = chunk_blocks
        self.rows = rows
        self.entries_per_row = entries_per_row
        self._table: list[list[int]] = [[0] * entries_per_row for _ in range(rows)]
        self._valid: list[int] = [0] * rows  # 8-bit validation entries
        # translation counters, read back by the engine's I/O monitor
        self.translations = 0
        self.extent_splits = 0
        self.faults = 0
        #: bound CheckContext (lba checker); None = dormant, zero-cost
        self.checks = None

    # ------------------------------------------------------------ provisioning
    @property
    def capacity_entries(self) -> int:
        return self.rows * self.entries_per_row

    def set_entry(self, index: int, entry: MappingEntry) -> None:
        """Install the mapping for host chunk ``index`` and mark it valid."""
        i, j = self._coords(index)
        if self.checks is not None:
            self.checks.on_lba_set(self, index, entry)
        self._table[i][j] = entry.encode()
        self._valid[i] |= 1 << j

    def clear_entry(self, index: int) -> None:
        i, j = self._coords(index)
        if self.checks is not None:
            self.checks.on_lba_clear(self, index)
        self._valid[i] &= ~(1 << j)
        self._table[i][j] = 0

    def is_valid(self, index: int) -> bool:
        i, j = self._coords(index)
        return bool(self._valid[i] & (1 << j))

    def valid_count(self) -> int:
        return sum(bin(v).count("1") for v in self._valid)

    def validation_entry(self, row: int) -> int:
        return self._valid[row]

    def raw_entry(self, index: int) -> int:
        i, j = self._coords(index)
        return self._table[i][j]

    def _coords(self, index: int) -> tuple[int, int]:
        # equations (1) and (2) with chunk_index = HL / CS precomputed
        i = index // self.entries_per_row
        j = index % self.entries_per_row
        if not 0 <= i < self.rows:
            raise SimulationError(
                f"chunk index {index} outside table ({self.rows}x{self.entries_per_row})"
            )
        return i, j

    # -------------------------------------------------------------- translation
    def translate(self, host_lba: int) -> tuple[int, int]:
        """Equations (1)-(4): host LBA -> (ssd_id, physical LBA).

        Raises for invalid (unprovisioned) entries, which the engine
        surfaces as an LBA-out-of-range completion.
        """
        cs = self.chunk_blocks
        chunk_index = host_lba // cs
        i = chunk_index // self.entries_per_row  # (1)
        j = chunk_index % self.entries_per_row  # (2)
        if not 0 <= i < self.rows:
            self.faults += 1
            raise SimulationError(f"host LBA {host_lba} beyond mapping table")
        if not self._valid[i] & (1 << j):
            self.faults += 1
            if self.checks is not None:
                # a cleared slot must read back as zero (stale packed
                # bytes could be resurrected by a row re-validation)
                self.checks.on_lba_invalid_read(self, host_lba, self._table[i][j])
            raise SimulationError(f"host LBA {host_lba} hits invalid mapping entry")
        self.translations += 1
        raw = self._table[i][j]
        ssd_id = raw & _SSD_MASK  # (3)
        pl = ((raw >> ENTRY_SSD_BITS) & _BASE_MASK) * cs + host_lba % cs  # (4)
        if self.checks is not None:
            self.checks.on_lba_translate(self, host_lba, ssd_id, pl)
        return ssd_id, pl

    def translate_extent(self, host_lba: int, nblocks: int) -> list[tuple[int, int, int]]:
        """Translate a multi-block extent; splits at chunk boundaries.

        Returns [(ssd_id, physical_lba, nblocks), ...].
        """
        out = []
        remaining = nblocks
        lba = host_lba
        while remaining > 0:
            ssd_id, pl = self.translate(lba)
            in_chunk = self.chunk_blocks - (lba % self.chunk_blocks)
            take = min(remaining, in_chunk)
            out.append((ssd_id, pl, take))
            lba += take
            remaining -= take
        if len(out) > 1:
            self.extent_splits += 1
        return out
