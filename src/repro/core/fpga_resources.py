"""FPGA resource-utilization model — paper Table II.

The paper reports LUT/Register/BRAM/URAM usage of the BMS-Engine
bitstream for 1/2/4/6 attached SSDs on the Zynq UltraScale+ ZU19EG.
The numbers fit an affine model (a fixed base for the SR-IOV layer,
target controller, and DMA router, plus a per-SSD host-adaptor slice),
which is exactly how such designs scale; this module reproduces the
table from that decomposition and exposes headroom queries ("BM-Store
can support more SSDs with the remaining resources").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ZU19EG_TOTALS", "FPGAResources", "FPGAResourceModel"]


@dataclass(frozen=True)
class FPGAResources:
    """A resource vector: LUTs, registers, BRAMs, URAMs, clock."""
    luts: int
    registers: int
    brams: float
    urams: float
    clock_mhz: int = 250

    def utilization(self, device: "FPGAResources") -> dict[str, float]:
        return {
            "luts": self.luts / device.luts,
            "registers": self.registers / device.registers,
            "brams": self.brams / device.brams,
            "urams": self.urams / device.urams,
        }

    def fits(self, device: "FPGAResources") -> bool:
        return (
            self.luts <= device.luts
            and self.registers <= device.registers
            and self.brams <= device.brams
            and self.urams <= device.urams
        )


#: Xilinx Zynq UltraScale+ ZU19EG device totals (from the Table II
#: percentages: e.g. 216711 LUTs = 41% -> ~523k LUTs).
ZU19EG_TOTALS = FPGAResources(
    luts=522_720, registers=1_045_440, brams=984, urams=128,
)


class FPGAResourceModel:
    """Affine base + per-SSD model fitted to Table II.

    Table II rows (1/2/4/6 SSDs) are exactly linear in SSD count:
    LUTs 188711+28000*n, registers 182309+44000*n, BRAMs 481.6+44.4*n,
    URAMs 39.4+10*n.
    """

    BASE = FPGAResources(luts=188_711, registers=182_309, brams=481.6, urams=39.4)
    PER_SSD = FPGAResources(luts=28_000, registers=44_000, brams=44.4, urams=10.0)

    def __init__(self, device: FPGAResources = ZU19EG_TOTALS):
        self.device = device

    def configuration(self, num_ssds: int) -> FPGAResources:
        if num_ssds < 1:
            raise ValueError("at least one SSD")
        return FPGAResources(
            luts=self.BASE.luts + self.PER_SSD.luts * num_ssds,
            registers=self.BASE.registers + self.PER_SSD.registers * num_ssds,
            brams=self.BASE.brams + self.PER_SSD.brams * num_ssds,
            urams=self.BASE.urams + self.PER_SSD.urams * num_ssds,
        )

    def utilization(self, num_ssds: int) -> dict[str, float]:
        return self.configuration(num_ssds).utilization(self.device)

    def max_supported_ssds(self) -> int:
        """How many SSDs fit before any resource class is exhausted."""
        n = 1
        while self.configuration(n + 1).fits(self.device):
            n += 1
        return n

    def table_rows(self, counts: tuple[int, ...] = (1, 2, 4, 6)) -> list[dict]:
        rows = []
        for n in counts:
            cfg = self.configuration(n)
            util = cfg.utilization(self.device)
            rows.append({
                "ssds": n,
                "luts": cfg.luts, "luts_pct": round(util["luts"] * 100),
                "registers": cfg.registers,
                "registers_pct": round(util["registers"] * 100),
                "brams": cfg.brams, "brams_pct": round(util["brams"] * 100),
                "urams": cfg.urams, "urams_pct": round(util["urams"] * 100),
                "clock_mhz": cfg.clock_mhz,
            })
        return rows
