"""Extended back-end types: SATA devices and remote storage.

Paper §VI-A: "to support SATA HDD ... add the logic of the SATA
controller to the Host Adaptor"; §VI-D: "we plan to add remote storage
support".  Both are additional back-end slot types behind the same
engine datapath: commands arrive LBA-remapped with global PRPs, data
still moves zero-copy between the device side and host memory through
the engine's DMA router, and the pause/drain machinery that hot
maintenance relies on works unchanged.

Neither device type speaks NVMe admin, so firmware hot-upgrade is
reported unsupported on these slots (the NVMe drives keep it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..nvme.command import SQE
from ..nvme.prp import PRPList, pages_for
from ..nvme.spec import IOOpcode, LBA_BYTES, StatusCode
from ..remote.network import NetworkLink
from ..remote.target import RemoteStorageTarget
from ..sata.disk import SATADisk
from ..sim import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .host_adaptor import HostAdaptor

__all__ = ["ExtendedBackendSlot", "SATABackendSlot", "RemoteBackendSlot"]

SQE_WIRE_BYTES = 64
RESPONSE_WIRE_BYTES = 16


class _ForwardRequest:
    __slots__ = ("sqe", "on_complete")

    def __init__(self, sqe: SQE, on_complete: Callable[[int], None]):
        self.sqe = sqe
        self.on_complete = on_complete


class ExtendedBackendSlot:
    """Base slot: pause/drain machinery + PRP resolution, device-agnostic."""

    supports_firmware_upgrade = False

    def __init__(self, adaptor: "HostAdaptor", index: int, capacity_bytes: int,
                 name: str):
        self.adaptor = adaptor
        self.sim = adaptor.sim
        self.index = index
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.ssd = None  # no NVMe drive behind this slot
        self.paused = False
        self.pause_buffer: list[_ForwardRequest] = []
        self.inflight = 0
        self._drain_event: Optional[Event] = None
        self.forwarded = 0
        self.completed = 0
        self.pending: dict[int, _ForwardRequest] = {}
        self._next_tag = 0

    # ------------------------------------------------------------ forwarding
    def forward(self, sqe: SQE, on_complete: Callable[[int], None]) -> None:
        req = _ForwardRequest(sqe, on_complete)
        if self.paused:
            self.pause_buffer.append(req)
        else:
            self.sim.process(self._run(req), name=f"{self.name}.fwd")

    def _run(self, req: _ForwardRequest):
        if self.paused:
            self.pause_buffer.append(req)
            return
        self._next_tag = (self._next_tag + 1) % 0xFFFF
        tag = self._next_tag
        self.pending[tag] = req
        self.inflight += 1
        self.forwarded += 1
        try:
            status = yield from self._issue(req.sqe)
        finally:
            self.pending.pop(tag, None)
            self.inflight -= 1
            self.completed += 1
            if self.inflight == 0 and self._drain_event is not None:
                ev, self._drain_event = self._drain_event, None
                ev.succeed()
        req.on_complete(status)

    def _issue(self, sqe: SQE):
        raise NotImplementedError  # pragma: no cover

    # ------------------------------------------------------------- maintenance
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        buffered, self.pause_buffer = self.pause_buffer, []
        for req in buffered:
            self.sim.process(self._run(req), name=f"{self.name}.replay")

    def drain(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.drained")
        if self.inflight == 0:
            ev.succeed()
        else:
            self._drain_event = ev
        return ev

    def io_context(self) -> dict:
        return {
            "sq_head": 0, "sq_tail": self.forwarded, "cq_head": self.completed,
            "pending_cids": sorted(self.pending),
            "buffered": len(self.pause_buffer),
        }

    def forward_admin(self, sqe: SQE, on_complete: Callable[[int], None]) -> None:
        """Non-NVMe back ends have no admin queue."""
        on_complete(int(StatusCode.INVALID_OPCODE))

    def detach_ssd(self):
        raise SimulationError(
            f"{self.name}: hot-plug replacement is defined for NVMe slots"
        )

    def attach_ssd(self, ssd) -> None:
        raise SimulationError(
            f"{self.name}: hot-plug replacement is defined for NVMe slots"
        )

    # ------------------------------------------------------------ data moves
    def _resolve_pages(self, sqe: SQE, length: int) -> list[int]:
        """Global-PRP pages of the command (list lives in chip memory)."""
        npages = len(pages_for(sqe.prp1, length))
        if npages <= 1:
            return [sqe.prp1]
        if npages == 2:
            return [sqe.prp1, sqe.prp2]
        entry = self.adaptor.chip_memory.load_obj(sqe.prp2)
        if not isinstance(entry, PRPList):
            raise SimulationError(f"{self.name}: bad chip PRP list")
        return [sqe.prp1, *entry.entries[: npages - 1]]

    def _dma_to_host(self, sqe: SQE, length: int, payload: Optional[bytes]):
        """Device data -> host memory through the engine's DMA router."""
        engine = self.adaptor.engine
        pages = self._resolve_pages(sqe, length)
        if payload is None:
            yield engine.route_dma_write_event(pages[0], length, None)
            return
        offset = 0
        for page in pages:
            chunk = min(4096 - page % 4096, length - offset)
            yield engine.route_dma_write_event(page, chunk, payload[offset : offset + chunk])
            offset += chunk
            if offset >= length:
                break

    def _dma_from_host(self, sqe: SQE, length: int):
        """Host memory -> device through the engine's DMA router."""
        engine = self.adaptor.engine
        pages = self._resolve_pages(sqe, length)
        data = yield engine._route_dma_read(pages[0], length)
        return data if isinstance(data, (bytes, bytearray)) else None


class SATABackendSlot(ExtendedBackendSlot):
    """The Host Adaptor's SATA controller + one SATA device."""

    #: the adaptor's SATA protocol-translation stage
    TRANSLATE_NS = 700

    def __init__(self, adaptor: "HostAdaptor", index: int, disk: SATADisk):
        super().__init__(adaptor, index, disk.profile.capacity_bytes,
                         name=f"sata-slot{index}")
        self.disk = disk

    def _issue(self, sqe: SQE):
        yield self.sim.timeout(self.TRANSLATE_NS)
        opcode = sqe.opcode
        if opcode == int(IOOpcode.FLUSH):
            result = yield self.disk.submit("flush", 0, 0)
            return int(StatusCode.SUCCESS if result.ok else StatusCode.INTERNAL_ERROR)
        nblocks = sqe.num_blocks
        length = nblocks * LBA_BYTES
        if opcode == int(IOOpcode.WRITE):
            payload = sqe.payload
            host_data = yield from self._dma_from_host(sqe, length)
            if payload is None:
                payload = host_data
            result = yield self.disk.submit("write", sqe.slba, nblocks, payload)
            return int(StatusCode.SUCCESS if result.ok else StatusCode.LBA_OUT_OF_RANGE)
        if opcode == int(IOOpcode.READ):
            result = yield self.disk.submit("read", sqe.slba, nblocks, want_data=False)
            if not result.ok:
                return int(StatusCode.LBA_OUT_OF_RANGE)
            yield from self._dma_to_host(sqe, length, result.data)
            return int(StatusCode.SUCCESS)
        return int(StatusCode.INVALID_OPCODE)


class RemoteBackendSlot(ExtendedBackendSlot):
    """NVMe-oF-style remote volume behind the card (§VI-D)."""

    def __init__(
        self,
        adaptor: "HostAdaptor",
        index: int,
        target: RemoteStorageTarget,
        link: NetworkLink,
    ):
        super().__init__(adaptor, index, target.capacity_bytes,
                         name=f"remote-slot{index}")
        self.target = target
        self.link = link

    def _issue(self, sqe: SQE):
        opcode = sqe.opcode
        if opcode == int(IOOpcode.FLUSH):
            yield self.link.send(SQE_WIRE_BYTES)
            result = yield self.target.execute("flush", 0, 0)
            yield self.link.respond(RESPONSE_WIRE_BYTES)
            return int(StatusCode.SUCCESS if result.ok else StatusCode.INTERNAL_ERROR)
        nblocks = sqe.num_blocks
        length = nblocks * LBA_BYTES
        if opcode == int(IOOpcode.WRITE):
            payload = sqe.payload
            host_data = yield from self._dma_from_host(sqe, length)
            if payload is None:
                payload = host_data
            # command capsule carries the data inline (in-capsule write)
            yield self.link.send(SQE_WIRE_BYTES + length)
            result = yield self.target.execute("write", sqe.slba, nblocks, payload)
            yield self.link.respond(RESPONSE_WIRE_BYTES)
            return int(StatusCode.SUCCESS if result.ok else StatusCode.LBA_OUT_OF_RANGE)
        if opcode == int(IOOpcode.READ):
            yield self.link.send(SQE_WIRE_BYTES)
            result = yield self.target.execute("read", sqe.slba, nblocks)
            if not result.ok:
                yield self.link.respond(RESPONSE_WIRE_BYTES)
                return int(StatusCode.LBA_OUT_OF_RANGE)
            yield self.link.respond(RESPONSE_WIRE_BYTES + length)
            yield from self._dma_to_host(sqe, length, result.data)
            return int(StatusCode.SUCCESS)
        return int(StatusCode.INVALID_OPCODE)
