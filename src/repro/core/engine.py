"""BMS-Engine: the FPGA datapath of BM-Store.

Implements the seven-step I/O path of paper Fig. 6:

① host rings a front doorbell; the engine fetches the SQE via the PF/VF
② LBA mapping translates host LBA -> (SSD, physical LBA); QoS gates
③ the remapped command (with *global PRPs*) goes into the host
   adaptor's SQ and the back-end SSD doorbell is rung
④ the SSD fetches the command from the adaptor SQ
⑤ the SSD's DMA TLPs hit the engine, which recovers the function id
   from the global address and routes them to host memory (zero-copy)
⑥ the SSD writes its CQE into the adaptor CQ
⑦ the engine relays the CQE to the host CQ and raises MSI-X

The engine owns two PCIe attachments: a front-end port on the *host*
fabric (SR-IOV: 4 PF + 124 VF) and the root of its own *back-end*
fabric where the SSDs live.  Chip memory holds the adaptor rings and
the converted global PRP lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..host.environment import Host
from ..host.memory import BufferPool, HostMemory
from ..nvme.command import CQE, SQE, alloc_cqe, alloc_sqe
from ..nvme.namespace import Namespace
from ..nvme.prp import PRPList, pages_for
from ..nvme.spec import CQE_BYTES, LBA_BYTES, SQE_BYTES, IOOpcode, StatusCode
from ..nvme.ssd import NVMeSSD
from ..obs import IOSpan, MetricsRegistry
from ..pcie.fabric import PCIeFabric
from ..sim import BandwidthLink, Event, Resource, SimulationError, Simulator
from .axi import AXIBus
from .dma_routing import (
    DMA_MODELS,
    DescriptorRingDMA,
    DMATranslation,
    RouteStats,
    decode_global_prp,
    encode_global_prp,
    is_global_prp,
)
from .host_adaptor import BackendSlot, HostAdaptor
from .lba_mapping import CHUNK_BYTES, MappingEntry, MappingTable
from .qos import QoSLimits, QoSModule
from .sriov_layer import FrontEndFunction, SRIOVLayer
from .target_controller import TargetController

__all__ = ["EngineTimings", "EngineNamespace", "PassthroughBinding", "BMSEngine"]


@dataclass(frozen=True)
class EngineTimings:
    """FPGA pipeline latencies (250 MHz design; DESIGN.md §5).

    The sum over a small command lands the paper's ~3 us of extra
    latency versus a native disk.
    """

    doorbell_ns: int = 200  # front BAR write -> fetch engine wakeup
    pipeline_ns: int = 1500  # LBA map + QoS check + PRP rewrite stages
    issue_ns: int = 20  # per-command pipeline issue slot (50 M cmd/s)
    adaptor_push_ns: int = 100  # write into adaptor SQ (chip RAM)
    cqe_relay_ns: int = 150  # adaptor CQ -> front CQ relay stage
    cut_through_ns: int = 120  # per-TLP DMA routing latency (step ⑤)
    monitor_sample_ns: int = 80  # I/O counter update path
    passthrough_db_ns: int = 40  # front doorbell -> back doorbell relay


@dataclass
class EngineNamespace:
    """An engine-level namespace: size, placement, QoS, binding."""

    key: str
    namespace: Namespace
    table: MappingTable
    chunks: list[tuple[int, int]]  # (ssd_id, physical chunk index)
    bound_fn: Optional[int] = None
    #: step-⑤ routing machinery for this namespace's DMA traffic
    dma_model: str = "register"
    #: host-chunk indices written since the last pre-copy round; None =
    #: dormant (no migration in progress — one attribute test per write)
    dirty_chunks: Optional[set] = None


@dataclass
class PassthroughBinding:
    """One function's I/O queues mapped straight onto a back-end SSD.

    The engine stops interposing on the data path: front doorbells are
    relayed to the device, which fetches guest SQEs and posts CQEs into
    the guest rings itself via the shared :class:`DMATranslation`.
    Only the admin queue (qid 0) stays on the mediated target-
    controller path.
    """

    ens: EngineNamespace
    ssd_id: int
    translation: DMATranslation
    #: host qid -> device-side qid
    dev_qids: dict[int, int] = None

    def __post_init__(self) -> None:
        if self.dev_qids is None:
            self.dev_qids = {}


@dataclass
class _FnStats:
    read_ops: int = 0
    write_ops: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    errors: int = 0


class _BackendRootSpace:
    """Root address space of the back-end domain: the DMA router.

    Untagged addresses are engine chip memory (adaptor rings, PRP
    lists); addresses carrying a function-id tag are global PRPs and
    get routed out of the matching front-end function into host memory.
    """

    def __init__(self, engine: "BMSEngine"):
        self.engine = engine

    @property
    def access_ns(self) -> int:
        return self.engine.chip_memory.access_ns

    def mem_write(self, addr: int, length: int, data) -> None:
        if is_global_prp(addr):
            self.engine._route_dma_write(addr, length, data)
            return
        cxl = self.engine.cxl
        if cxl is not None and cxl.contains(addr):
            cxl.owner_memory(addr).mem_write(addr, length, data)
            return
        self.engine.chip_memory.mem_write(addr, length, data)
        self.engine.adaptor.notice_write(addr)

    def mem_read(self, addr: int, length: int):
        # only reached for local reads via the sync path
        cxl = self.engine.cxl
        if cxl is not None and cxl.contains(addr):
            return cxl.owner_memory(addr).mem_read(addr, length)
        return self.engine.chip_memory.mem_read(addr, length)

    def mem_read_async(self, addr: int, length: int) -> Event:
        if is_global_prp(addr):
            return self.engine._route_dma_read(addr, length)
        cxl = self.engine.cxl
        if cxl is not None and cxl.contains(addr):
            # tier-resident PRP list: pay the CXL link + media latency
            return cxl.window_read(addr, length)
        ev = self.engine.sim.event(name="chipread")
        ev.succeed(self.engine.chip_memory.mem_read(addr, length))
        return ev


class BMSEngine:
    """The FPGA-based datapath component of BM-Store."""

    FRONT_BAR_BASE = 0x20_0000_0000

    def __init__(
        self,
        host: Host,
        timings: EngineTimings = EngineTimings(),
        front_lanes: int = 16,
        qos_enabled: bool = True,
        zero_copy: bool = True,
        chip_memory_bytes: int = 512 * 1024 * 1024,
        chunk_bytes: int = CHUNK_BYTES,
        name: str = "bms",
        obs: Optional[MetricsRegistry] = None,
        checks=None,
    ):
        self.sim: Simulator = host.sim
        self.host = host
        self.name = name
        # hot-path process names resolved once, not per command
        self._ptdb_pname = name + ".ptdb"
        self._fetch_pname = name + ".fetch"
        self._cmd_pname = name + ".cmd"
        self._dmaw_pname = name + ".dmaw"
        self._dmarp_pname = name + ".dmarp"
        self._cqe_pname = name + ".cqe"
        self.timings = timings
        self.zero_copy = zero_copy
        self.chunk_bytes = chunk_bytes
        self.chunk_blocks = chunk_bytes // LBA_BYTES
        self.obs = obs
        #: (ns_key, direction) -> (ops counter, bytes counter) handles,
        #: cached so per-IO accounting skips the labeled-key build
        self._ns_io_counters: dict = {}
        self.route_stats = RouteStats()
        #: bound FaultInjector (hook points engine.dispatch /
        #: engine.backend); None = dormant, zero-cost
        self.faults = None
        #: bound CheckContext (prp checker arms this); None = dormant
        self.checks = None
        #: bound VolumeManager (CoW clones/snapshots); None = dormant
        self.volumes = None
        #: bound PushManager (computational pushdown); None = dormant
        self.push = None
        #: bound CXLBufferTier (buffer spill/borrow extension); None = dormant
        self.cxl = None
        #: the full CheckContext, kept for binding tables/rings created later
        self._check_ctx = checks

        # front end: one port on the host fabric
        self.front_port = host.fabric.attach(name, lanes=front_lanes)
        self.front_bar_base = self.FRONT_BAR_BASE
        self.sriov = SRIOVLayer(self)

        # back end: the engine is the root of its own PCIe domain
        self.backend_fabric = PCIeFabric(self.sim, name=f"{name}.be")
        self.chip_memory = HostMemory(
            self.sim, chip_memory_bytes, access_ns=25, base=0x1000_0000,
            name=f"{name}.chipmem",
        )
        self.backend_fabric.set_root_handler(_BackendRootSpace(self))
        self.adaptor = HostAdaptor(
            self.sim, self.chip_memory, self.backend_fabric,
            push_ns=timings.adaptor_push_ns, cqe_relay_ns=timings.cqe_relay_ns,
        )
        self.adaptor.engine = self  # SATA/remote slots route DMA through us
        self.adaptor.checks = checks  # slots bind their rings at creation

        # store-and-forward path for the zero-copy ablation: FPGA DRAM
        self._chip_dram_bus = BandwidthLink(
            self.sim, 6.0e9, name=f"{name}.dram"
        )

        self.qos = QoSModule(self.sim, enabled=qos_enabled, obs=obs, checks=checks)
        self.target_controller = TargetController(self)
        self.axi = AXIBus(self.sim, name=f"{name}.axi")

        self.namespaces: dict[str, EngineNamespace] = {}
        self._free_chunks: list[list[int]] = []
        self._prp_pool = BufferPool(self.chip_memory)
        if checks is not None:
            checks.bind_engine(self)
            checks.bind_pool(self._prp_pool)
        self._pipeline = Resource(self.sim, 1, name=f"{name}.pipe")
        self._fn_stats: dict[int, _FnStats] = {}
        #: fn_id -> PassthroughBinding for functions in passthrough mode
        self._passthrough: dict[int, PassthroughBinding] = {}
        #: fn_id -> "descriptor" for namespaces on the ring-DMA model
        #: (absent = the default register-triggered cut-through FSM)
        self._dma_model_by_fn: dict[int, str] = {}
        self._desc_dma: Optional[DescriptorRingDMA] = None
        self.host_identify_pages: dict[int, object] = {}
        self.total_ios = 0
        self._register_axi_registers()

    # ------------------------------------------------------------------ setup
    #: the 2-bit SSD-id field of the mapping entry (Fig. 4a) bounds the
    #: number of back-end devices one engine can address
    MAX_BACKENDS = 4

    def _check_backend_capacity(self) -> None:
        if len(self.adaptor.slots) >= self.MAX_BACKENDS:
            raise SimulationError(
                f"mapping-entry SSD id is 2 bits: at most {self.MAX_BACKENDS} "
                "back-end devices per engine"
            )

    def _add_free_chunks(self, capacity_bytes: int) -> None:
        nchunks = min(64, capacity_bytes // self.chunk_bytes)
        self._free_chunks.append(list(range(int(nchunks))))

    def attach_ssd(self, ssd: NVMeSSD) -> BackendSlot:
        """Attach a back-end NVMe drive (created on ``self.backend_fabric``)."""
        self._check_backend_capacity()
        slot = self.adaptor.add_ssd(ssd)
        self._add_free_chunks(ssd.profile.capacity_bytes)
        return slot

    def attach_sata(self, disk) -> "object":
        """Attach a SATA device through the adaptor's SATA controller
        (the paper's §VI-A compatibility extension)."""
        from .backend_extensions import SATABackendSlot

        self._check_backend_capacity()
        slot = SATABackendSlot(self.adaptor, len(self.adaptor.slots), disk)
        self.adaptor.slots.append(slot)
        self._add_free_chunks(disk.profile.capacity_bytes)
        return slot

    def attach_remote(self, target, link) -> "object":
        """Attach a remote volume over the network (§VI-D future work)."""
        from .backend_extensions import RemoteBackendSlot

        self._check_backend_capacity()
        slot = RemoteBackendSlot(self.adaptor, len(self.adaptor.slots), target, link)
        self.adaptor.slots.append(slot)
        self._add_free_chunks(target.capacity_bytes)
        return slot

    @property
    def num_ssds(self) -> int:
        return len(self.adaptor.slots)

    # ---------------------------------------------------------- namespaces
    def volume_manager(self):
        """The engine's CoW volume layer, armed on first use.

        Worlds that never call this keep ``self.volumes is None`` and
        execute byte-identical event sequences to pre-volume builds.
        """
        if self.volumes is None:
            from .volumes import VolumeManager

            self.volumes = VolumeManager(self)
        return self.volumes

    def push_manager(self):
        """The engine's pushdown program layer, armed on first use.

        Worlds that never call this keep ``self.push is None`` and
        execute byte-identical event sequences to pre-pushdown builds.
        """
        if self.push is None:
            from ..push import PushManager

            self.push = PushManager(self)
        return self.push

    def cxl_tier(self, timings=None):
        """The engine's CXL-extended buffer tier, armed on first use.

        Worlds that never call this keep ``self.cxl is None`` and
        execute byte-identical event sequences to fixed-DRAM builds.
        """
        if self.cxl is None:
            from .cxl import CXLBufferTier

            self.cxl = CXLBufferTier(self, timings)
            self._prp_pool.tier = self.cxl
        return self.cxl

    def create_namespace(
        self,
        key: str,
        size_bytes: int,
        placement: Optional[list[int]] = None,
        limits: Optional[QoSLimits] = None,
    ) -> EngineNamespace:
        """Carve a namespace out of back-end chunks (round-robin default)."""
        if key in self.namespaces:
            raise SimulationError(f"namespace {key} already exists")
        if self.num_ssds == 0:
            raise SimulationError("no back-end SSDs attached")
        nchunks = -(-size_bytes // self.chunk_bytes)
        rows = -(-nchunks // 8)
        table = MappingTable(self.chunk_blocks, rows=max(1, rows))
        if self._check_ctx is not None:
            self._check_ctx.bind_table(table)
        order = placement or [i % self.num_ssds for i in range(nchunks)]
        if len(order) != nchunks:
            raise SimulationError("placement list must cover every chunk")
        chunks: list[tuple[int, int]] = []
        for idx, ssd_id in enumerate(order):
            free = self._free_chunks[ssd_id]
            if not free:
                for taken_ssd, taken_chunk in chunks:  # roll back
                    self._free_chunks[taken_ssd].append(taken_chunk)
                raise SimulationError(f"SSD {ssd_id} out of free chunks")
            chunk = free.pop(0)
            chunks.append((ssd_id, chunk))
            table.set_entry(idx, MappingEntry(base_chunk=chunk, ssd_id=ssd_id))
        ns = Namespace(nsid=1, num_blocks=size_bytes // LBA_BYTES)
        ens = EngineNamespace(key=key, namespace=ns, table=table, chunks=chunks)
        self.namespaces[key] = ens
        if limits is not None:
            self.qos.configure(key, limits)
        if self.volumes is not None:
            self.volumes.adopt(key)
        return ens

    def delete_namespace(self, key: str) -> None:
        ens = self.namespaces.pop(key, None)
        if ens is None:
            raise SimulationError(f"no namespace {key}")
        if ens.bound_fn is not None:
            self.disable_passthrough(ens.bound_fn)
            self._dma_model_by_fn.pop(ens.bound_fn, None)
            self.sriov.function_by_id(ens.bound_fn).namespaces.pop(1, None)
            self.sriov.function_by_id(ens.bound_fn).ns_key = None
        if self.volumes is not None:
            # chunks still referenced by a snapshot or clone stay allocated
            freeable = self.volumes.release_namespace(key, ens)
        else:
            freeable = ens.chunks
        for ssd_id, chunk in freeable:
            self._free_chunks[ssd_id].append(chunk)

    def bind_namespace(self, key: str, fn_id: int) -> FrontEndFunction:
        """Attach a namespace to a front PF/VF (what the VM will see)."""
        ens = self.namespaces.get(key)
        if ens is None:
            raise SimulationError(f"no namespace {key}")
        fn = self.sriov.function_by_id(fn_id)
        if fn.ns_key is not None:
            raise SimulationError(f"function {fn_id} already has a namespace")
        fn.namespaces[1] = ens.namespace
        fn.ns_key = key
        ens.bound_fn = fn_id
        if ens.dma_model == "descriptor":
            self._dma_model_by_fn[fn_id] = "descriptor"
        self._fn_stats.setdefault(fn_id, _FnStats())
        return fn

    def unbind_namespace(self, key: str) -> None:
        ens = self.namespaces.get(key)
        if ens is None or ens.bound_fn is None:
            return
        self.disable_passthrough(ens.bound_fn)
        self._dma_model_by_fn.pop(ens.bound_fn, None)
        fn = self.sriov.function_by_id(ens.bound_fn)
        fn.namespaces.pop(1, None)
        fn.ns_key = None
        ens.bound_fn = None

    def set_dma_model(self, key: str, model: str) -> None:
        """Pick the step-⑤ DMA machinery for one namespace's traffic."""
        if model not in DMA_MODELS:
            raise SimulationError(f"dma model {model!r} not one of {DMA_MODELS}")
        ens = self.namespaces.get(key)
        if ens is None:
            raise SimulationError(f"no namespace {key}")
        ens.dma_model = model
        if ens.bound_fn is not None:
            if model == "descriptor":
                self._dma_model_by_fn[ens.bound_fn] = "descriptor"
            else:
                self._dma_model_by_fn.pop(ens.bound_fn, None)

    # --------------------------------------------------------- passthrough
    #: device-side qids for passthrough-mapped host queues sit above the
    #: adaptor's own queues (BACKEND_QID=1) so the two never collide
    PASSTHROUGH_QID_BASE = 16

    def enable_passthrough(self, key: str) -> PassthroughBinding:
        """Map the bound function's I/O queues straight onto the SSD.

        Requires the namespace to live on exactly one back-end drive as
        one contiguous ascending physical extent, because the device
        then translates LBAs with a single constant offset — there is
        no per-command mapping stage left to scatter extents.
        """
        ens = self.namespaces.get(key)
        if ens is None:
            raise SimulationError(f"no namespace {key}")
        if ens.bound_fn is None:
            raise SimulationError(
                f"namespace {key} must be bound to a function before passthrough"
            )
        fn_id = ens.bound_fn
        if fn_id in self._passthrough:
            raise SimulationError(f"function {fn_id} already in passthrough mode")
        ssd_ids = {ssd_id for ssd_id, _ in ens.chunks}
        if len(ssd_ids) != 1:
            raise SimulationError(
                f"passthrough requires a single-SSD namespace; {key} spans "
                f"SSDs {sorted(ssd_ids)}"
            )
        ssd_id = ssd_ids.pop()
        base_chunk = ens.chunks[0][1]
        for i, (_, chunk) in enumerate(ens.chunks):
            if chunk != base_chunk + i:
                raise SimulationError(
                    f"passthrough requires one contiguous physical extent; "
                    f"{key} is fragmented on SSD {ssd_id}"
                )
        fn = self.sriov.function_by_id(fn_id)
        translation = DMATranslation(
            fn_id=fn_id,
            lba_offset=base_chunk * self.chunk_blocks,
            num_blocks=ens.namespace.num_blocks,
            raise_vector=self._make_vector_raiser(fn),
        )
        binding = PassthroughBinding(ens=ens, ssd_id=ssd_id, translation=translation)
        self._passthrough[fn_id] = binding
        fn.passthrough = binding
        # queues attached before enabling get mapped retroactively
        for qid, qp in sorted(fn.queue_pairs.items()):
            if qid != 0:
                self.passthrough_map_queue(fn, qid, qp)
        return binding

    def disable_passthrough(self, fn_id: int) -> None:
        binding = self._passthrough.pop(fn_id, None)
        if binding is None:
            return
        fn = self.sriov.functions.get(fn_id)
        if fn is not None:
            fn.passthrough = None
        slot = self.adaptor.slot_for(binding.ssd_id)
        ssd = getattr(slot, "ssd", None)
        if ssd is not None:
            for dev_qid in binding.dev_qids.values():
                ssd.detach_queue_pair(dev_qid)
        binding.dev_qids.clear()

    def _make_vector_raiser(self, fn: FrontEndFunction):
        def raise_vector(vector: int) -> None:
            fn.function.msix.raise_vector(self.front_port, vector)

        return raise_vector

    def passthrough_map_queue(self, fn: FrontEndFunction, qid: int, qp) -> None:
        """Attach a host SQ/CQ pair to the backing SSD (shared rings)."""
        binding = self._passthrough.get(fn.fn_id)
        if binding is None or qid == 0:
            return
        dev_qid = self.PASSTHROUGH_QID_BASE + qid
        binding.dev_qids[qid] = dev_qid
        slot = self.adaptor.slot_for(binding.ssd_id)
        ssd = getattr(slot, "ssd", None)
        if ssd is not None:
            dev_qp = ssd.attach_queue_pair(dev_qid, qp.sq, qp.cq)
            dev_qp.translation = binding.translation

    def passthrough_unmap_queue(self, fn: FrontEndFunction, qid: int) -> None:
        binding = self._passthrough.get(fn.fn_id)
        if binding is None:
            return
        dev_qid = binding.dev_qids.pop(qid, None)
        if dev_qid is None:
            return
        slot = self.adaptor.slot_for(binding.ssd_id)
        ssd = getattr(slot, "ssd", None)
        if ssd is not None:
            ssd.detach_queue_pair(dev_qid)

    def on_slot_attached(self, ssd_id: int) -> None:
        """A replacement drive landed in a slot: re-map any passthrough
        queues onto it with a fresh (live) translation and kick its
        doorbells so SQEs submitted while the slot was empty get
        fetched instead of waiting for the next host submission."""
        slot = self.adaptor.slot_for(ssd_id)
        ssd = getattr(slot, "ssd", None)
        if ssd is None:
            return
        for fn_id in sorted(self._passthrough):
            binding = self._passthrough[fn_id]
            if binding.ssd_id != ssd_id:
                continue
            old = binding.translation
            binding.translation = DMATranslation(
                fn_id=fn_id, lba_offset=old.lba_offset,
                num_blocks=old.num_blocks, raise_vector=old.raise_vector,
            )
            fn = self.sriov.functions.get(fn_id)
            if fn is None:
                continue
            for host_qid in sorted(binding.dev_qids):
                qp = fn.queue_pairs.get(host_qid)
                if qp is None:
                    continue
                dev_qid = binding.dev_qids[host_qid]
                dev_qp = ssd.attach_queue_pair(dev_qid, qp.sq, qp.cq)
                dev_qp.translation = binding.translation
                # slots the old drive consumed before it was yanked are
                # provably dead; recover their leaked (timed-out) SQEs
                # before the replay kick fetches the live window
                qp.sq.reclaim_dead_slots()
                ssd._on_sq_doorbell(dev_qid)

    # ------------------------------------------------------------ front path
    def on_front_doorbell(self, fn_id: int, qid: int) -> None:
        fn = self.sriov.functions.get(fn_id)
        if fn is None:
            return
        qp = fn.queue_pairs.get(qid)
        if qp is None:
            return
        if qid != 0 and fn.passthrough is not None:
            # passthrough: no SQE fetch, no pipeline — just relay the
            # doorbell to the mapped device queue
            self.sim.spawn(self._passthrough_db(fn, qid), name=self._ptdb_pname)
            return
        self.sim.spawn(self._fetch_loop(fn, qid, qp), name=self._fetch_pname)

    def _passthrough_db(self, fn: FrontEndFunction, qid: int):
        yield self.sim.timeout(self.timings.passthrough_db_ns)
        binding = self._passthrough.get(fn.fn_id)
        if binding is None:
            return
        dev_qid = binding.dev_qids.get(qid)
        if dev_qid is None:
            return
        ssd = getattr(self.adaptor.slot_for(binding.ssd_id), "ssd", None)
        if ssd is None:
            # drive yanked: the doorbell write is lost; the host
            # driver's command timeout is the only recovery path
            return
        ssd._on_sq_doorbell(dev_qid)

    def _fetch_loop(self, fn: FrontEndFunction, qid: int, qp):
        yield self.sim.timeout(self.timings.doorbell_ns)
        sq = qp.sq
        while True:
            while sq.tail != sq.head:
                addr = sq.consume_addr()
                self.sim.spawn(self._process_cmd(fn, qid, addr),
                               name=self._cmd_pname)
                yield self.sim.timeout(self.timings.issue_ns)
            # shadow-doorbell rings re-check after arming the wakeup so
            # tails published without an MMIO are never stranded
            if not (qp.sq.shadow_mode and qp.sq.rearm_doorbell()):
                break

    def _process_cmd(self, fn: FrontEndFunction, qid: int, sqe_addr: int):
        t_start = self.sim.now
        sqe = yield self.front_port.mem_read(sqe_addr, SQE_BYTES)
        if not isinstance(sqe, SQE):
            raise SimulationError(f"{self.name}: no SQE at {sqe_addr:#x}")
        span = sqe.span
        if span is not None:
            span.stamp("doorbell", t_start)
        yield from self.target_controller.dispatch(fn, qid, sqe)

    # ---------------------------------------------------------------- I/O path
    def _handle_io(self, fn: FrontEndFunction, qid: int, sqe: SQE):
        ens = self.namespaces.get(fn.ns_key) if fn.ns_key else None
        if ens is None:
            self.post_front_cqe(fn, qid, sqe.cid, int(StatusCode.INVALID_NAMESPACE), 0,
                                span=sqe.span)
            return

        # FLUSH fans out to every SSD backing the namespace
        if sqe.opcode == int(IOOpcode.FLUSH):
            yield from self._handle_flush(fn, qid, sqe, ens)
            return

        # vendor pushdown command: hand the whole I/O to the interpreter
        if sqe.opcode == int(IOOpcode.PUSH_EXEC):
            if self.push is None:
                self.post_front_cqe(fn, qid, sqe.cid,
                                    int(StatusCode.INVALID_OPCODE), 0,
                                    span=sqe.span)
                return
            yield from self.push.execute(fn, qid, sqe, ens)
            return

        nblocks = sqe.num_blocks
        length = nblocks * LBA_BYTES
        yield self._pipeline.acquire()
        yield self.sim.timeout(self.timings.issue_ns)
        self._pipeline.release()
        yield self.sim.timeout(self.timings.pipeline_ns)

        span = sqe.span
        if sqe.opcode == int(IOOpcode.WRITE):
            # CoW: a write to a shared chunk faults (allocate, copy,
            # remap, decref parent) *before* translation sees the entry
            if self.volumes is not None:
                yield from self.volumes.on_write(ens, sqe.slba, nblocks,
                                                 span=span)
            # live migration: feed the dirty-chunk bitmap
            if ens.dirty_chunks is not None:
                cs = ens.table.chunk_blocks
                ens.dirty_chunks.update(
                    range(sqe.slba // cs, (sqe.slba + nblocks - 1) // cs + 1))

        # ② LBA mapping
        try:
            extents = ens.table.translate_extent(sqe.slba, nblocks)
        except SimulationError as exc:
            from ..checks.runtime import InvariantViolation

            if isinstance(exc, InvariantViolation):
                raise  # a checker violation must surface, not complete as EIO
            self._fn_stats[fn.fn_id].errors += 1
            if self.obs is not None:
                self.obs.counter("ns_errors", ns=fn.ns_key).inc()
            self.post_front_cqe(fn, qid, sqe.cid, int(StatusCode.LBA_OUT_OF_RANGE), 0,
                                span=span)
            return
        if sqe.slba + nblocks > ens.namespace.num_blocks:
            self._fn_stats[fn.fn_id].errors += 1
            if self.obs is not None:
                self.obs.counter("ns_errors", ns=fn.ns_key).inc()
            self.post_front_cqe(fn, qid, sqe.cid, int(StatusCode.LBA_OUT_OF_RANGE), 0,
                                span=span)
            return

        if span is not None:
            span.stamp("lba_map", self.sim.now)

        # ② QoS: over-threshold commands sit in the command buffer
        yield self.qos.admit(fn.ns_key, length, span=span)
        if span is not None:
            span.stamp("qos", self.sim.now)

        # resolve the host PRP pages (fetch the PRP list if present)
        npages = len(pages_for(sqe.prp1, length))
        if npages <= 2:
            host_pages = [sqe.prp1] if npages == 1 else [sqe.prp1, sqe.prp2]
        else:
            entry = yield self.front_port.mem_read(sqe.prp2, (npages - 1) * 8)
            if not isinstance(entry, PRPList):
                raise SimulationError(f"{self.name}: bad host PRP list at {sqe.prp2:#x}")
            host_pages = [sqe.prp1, *entry.entries[: npages - 1]]
        if self.checks is not None:
            self.checks.on_prp_chain(
                host_pages, length, span=span,
                memory_name=self.host.memory.name, where=self.name,
            )

        # ③ forward one back-end command per extent, tracking fan-in
        state = {"remaining": len(extents), "status": int(StatusCode.SUCCESS),
                 "lists": []}
        block_off = 0
        for ssd_id, plba, cnt in extents:
            frag_pages = host_pages[block_off : block_off + cnt]
            frag_len = cnt * LBA_BYTES
            prp1g, prp2g, list_addr = self._build_global_prps(fn.fn_id, frag_pages)
            if list_addr is not None:
                state["lists"].append((list_addr, (len(frag_pages) - 1) * 8))
            payload = None
            if sqe.payload is not None:
                payload = sqe.payload[block_off * LBA_BYTES :][:frag_len]
            fwd = alloc_sqe(
                opcode=sqe.opcode, cid=0, nsid=1, slba=plba, nlb=cnt - 1,
                prp1=prp1g, prp2=prp2g, payload=payload,
                submit_time_ns=self.sim.now,
            )
            if span is not None:
                fwd.span = span  # the back-end SSD stamps ssd_dma on it
            slot = self.adaptor.slot_for(ssd_id)
            slot.forward(fwd, self._make_fanin(fn, qid, sqe, state))
            block_off += cnt
        if span is not None:
            span.stamp("forward", self.sim.now)

        self._account_io(fn.fn_id, sqe.opcode, length, ns_key=fn.ns_key)

    def _handle_flush(self, fn: FrontEndFunction, qid: int, sqe: SQE, ens: EngineNamespace):
        yield self.sim.timeout(self.timings.pipeline_ns)
        ssd_ids = sorted({ssd_id for ssd_id, _ in ens.chunks})
        state = {"remaining": len(ssd_ids), "status": int(StatusCode.SUCCESS), "lists": []}
        for ssd_id in ssd_ids:
            fwd = alloc_sqe(opcode=int(IOOpcode.FLUSH), cid=0, nsid=1,
                            submit_time_ns=self.sim.now)
            self.adaptor.slot_for(ssd_id).forward(
                fwd, self._make_fanin(fn, qid, sqe, state)
            )

    def _make_fanin(self, fn, qid, sqe, state):
        def on_complete(status: int) -> None:
            if status != int(StatusCode.SUCCESS):
                state["status"] = status
            state["remaining"] -= 1
            if state["remaining"] == 0:
                for addr, size in state["lists"]:
                    # drop the PRPList object before the buffer recycles:
                    # page-rounded buckets can hand this address to a
                    # data read, whose mem_read must see bytes, not a
                    # stale object
                    mem = self.chip_memory
                    if self.cxl is not None:
                        mem = self.cxl.owner_memory(addr)
                    mem.pop_obj(addr)
                    self._prp_pool.put(addr, size)
                if state["status"] != int(StatusCode.SUCCESS):
                    self._fn_stats[fn.fn_id].errors += 1
                span = sqe.span
                if span is not None:
                    span.stamp("backend_done", self.sim.now)
                self.post_front_cqe(fn, qid, sqe.cid, state["status"], 0,
                                    span=span)

        return on_complete

    def _build_global_prps(self, fn_id: int, pages: list[int]):
        """Convert host PRPs to global PRPs (paper Fig. 4b, step ⑤ prep)."""
        gp = [encode_global_prp(fn_id, addr) for addr in pages]
        if len(gp) == 1:
            return gp[0], 0, None
        if len(gp) == 2:
            return gp[0], gp[1], None
        size = (len(gp) - 1) * 8
        list_addr = self._prp_pool.get(size)
        mem = self.chip_memory
        if self.cxl is not None:
            mem = self.cxl.owner_memory(list_addr)  # spilled lists live off-card
        mem.store_obj(list_addr, PRPList(list_addr, gp[1:]))
        return gp[0], list_addr, list_addr

    # ----------------------------------------------------- DMA request routing
    def _descriptor_engine(self) -> DescriptorRingDMA:
        if self._desc_dma is None:
            self._desc_dma = DescriptorRingDMA(
                self.sim, self.front_port, name=f"{self.name}.descdma"
            )
        return self._desc_dma

    def _route_dma_write(self, gaddr: int, length: int, data) -> None:
        """Step ⑤: SSD DMA write at a global address -> host memory."""
        fn_id, host_addr, _ = decode_global_prp(gaddr)
        self._check_fn(fn_id)
        self.route_stats.note_write(length)
        if self._dma_model_by_fn.get(fn_id) == "descriptor":
            self._descriptor_engine().submit_write(host_addr, length, data)
            return
        self.sim.spawn(self._route_write_proc(host_addr, length, data),
                       name=self._dmaw_pname)

    def _route_write_proc(self, host_addr: int, length: int, data):
        if not self.zero_copy:
            # ablation: store-and-forward through FPGA DRAM (in + out)
            yield self._chip_dram_bus.transfer(length)
            yield self._chip_dram_bus.transfer(length)
        yield self.sim.timeout(self.timings.cut_through_ns)
        yield self.front_port.mem_write(host_addr, length, data)

    def route_dma_write_event(self, gaddr: int, length: int, data) -> Event:
        """Like the TLP-triggered routing, but returns the delivery event
        (used by the SATA/remote adaptor stages, which need ordering)."""
        fn_id, host_addr, _ = decode_global_prp(gaddr)
        self._check_fn(fn_id)
        self.route_stats.note_write(length)
        done = self.sim.event(name=f"{self.name}.dmawv")

        def runner():
            yield from self._route_write_proc(host_addr, length, data)
            done.succeed()

        self.sim.process(runner(), name=f"{self.name}.dmawp")
        return done

    def _route_dma_read(self, gaddr: int, length: int) -> Event:
        """Step ⑤ for writes: SSD DMA read at a global address."""
        fn_id, host_addr, _ = decode_global_prp(gaddr)
        self._check_fn(fn_id)
        self.route_stats.note_read(length)
        if self._dma_model_by_fn.get(fn_id) == "descriptor":
            return self._descriptor_engine().submit_read(host_addr, length)
        done = self.sim.event(name=f"{self.name}.dmar")
        self.sim.spawn(self._route_read_proc(host_addr, length, done),
                       name=self._dmarp_pname)
        return done

    def _route_read_proc(self, host_addr: int, length: int, done: Event):
        yield self.sim.timeout(self.timings.cut_through_ns)
        data = yield self.front_port.mem_read(host_addr, length)
        if not self.zero_copy:
            yield self._chip_dram_bus.transfer(length)
            yield self._chip_dram_bus.transfer(length)
        done.succeed(data)

    def _check_fn(self, fn_id: int) -> None:
        if fn_id not in self.sriov.functions:
            raise SimulationError(f"DMA routed to unknown function {fn_id}")

    # ------------------------------------------------------------- completion
    def post_front_cqe(self, fn: FrontEndFunction, qid: int, cid: int,
                       status: int, result: int,
                       span: Optional[IOSpan] = None) -> None:
        """Step ⑦: relay the completion into the host CQ + MSI-X."""
        self.sim.spawn(
            self._post_cqe_proc(fn, qid, cid, status, result, span),
            name=self._cqe_pname,
        )

    def _post_cqe_proc(self, fn, qid, cid, status, result, span=None):
        yield self.sim.timeout(self.timings.cqe_relay_ns)
        if not self.zero_copy:
            # store-and-forward ablation: PCIe ordering means the CQE
            # cannot pass the buffered data still draining out of the
            # engine's DRAM — completions are paced by the copy path
            backlog = self._chip_dram_bus.busy_until() - self.sim.now
            if backlog > 0:
                yield self.sim.timeout(backlog)
        qp = fn.queue_pairs.get(qid)
        if qp is None:
            return
        cqe = alloc_cqe(cid, status, qp.sq.head, qid, result)
        target = qp.cq.slot_addr(qp.cq.tail)
        yield self.front_port.mem_write(target, CQE_BYTES, None)
        qp.cq.post_slot(cqe)
        if span is not None:
            span.stamp("complete", self.sim.now)
        if qp.cq.irq_vector is not None:
            qp.cq.note_cqe(self.sim, self._front_irq_thunk(fn, qp.cq))

    def _front_irq_thunk(self, fn: FrontEndFunction, cq):
        def fire() -> None:
            fn.function.msix.raise_vector(self.front_port, cq.irq_vector)

        return fire

    # -------------------------------------------------------------- monitoring
    def _account_io(self, fn_id: int, opcode: int, length: int,
                    ns_key: Optional[str] = None) -> None:
        self.total_ios += 1
        stats = self._fn_stats.setdefault(fn_id, _FnStats())
        if opcode == int(IOOpcode.READ):
            stats.read_ops += 1
            stats.read_bytes += length
        elif opcode == int(IOOpcode.WRITE):
            stats.write_ops += 1
            stats.write_bytes += length
        if self.obs is not None and ns_key is not None:
            direction = "read" if opcode == int(IOOpcode.READ) else "write"
            handles = self._ns_io_counters.get((ns_key, direction))
            if handles is None:
                handles = self._ns_io_counters[(ns_key, direction)] = (
                    self.obs.counter("ns_ops", ns=ns_key, op=direction),
                    self.obs.counter("ns_bytes", ns=ns_key, op=direction),
                )
            handles[0].inc()
            handles[1].inc(length)

    def monitor_snapshot(self, fn_id: int) -> dict:
        stats = self._fn_stats.get(fn_id, _FnStats())
        return {
            "fn": fn_id,
            "read_ops": stats.read_ops,
            "write_ops": stats.write_ops,
            "read_bytes": stats.read_bytes,
            "write_bytes": stats.write_bytes,
            "errors": stats.errors,
        }

    # AXI register map: engine-global and per-function counters, read by
    # the BMS-Controller's I/O monitor over the AXI bus.
    AXI_TOTAL_IOS = 0x000
    AXI_NUM_SSDS = 0x008
    AXI_FN_BASE = 0x100
    AXI_FN_STRIDE = 0x40

    def _register_axi_registers(self) -> None:
        self.axi.register_read(self.AXI_TOTAL_IOS, lambda: self.total_ios)
        self.axi.register_read(self.AXI_NUM_SSDS, lambda: self.num_ssds)

        def reader(fn_id: int, field_name: str):
            def read() -> int:
                stats = self._fn_stats.get(fn_id, _FnStats())
                return getattr(stats, field_name)

            return read

        for fn_id in range(1, 129):
            base = self.AXI_FN_BASE + (fn_id - 1) * self.AXI_FN_STRIDE
            for off, field_name in (
                (0x00, "read_ops"), (0x08, "write_ops"),
                (0x10, "read_bytes"), (0x18, "write_bytes"), (0x20, "errors"),
            ):
                self.axi.register_read(base + off, reader(fn_id, field_name))

    # ------------------------------------------------------------- maintenance
    def pause_backend(self, ssd_id: int) -> None:
        self.adaptor.slot_for(ssd_id).pause()

    def resume_backend(self, ssd_id: int) -> None:
        self.adaptor.slot_for(ssd_id).resume()

    def drain_backend(self, ssd_id: int) -> Event:
        return self.adaptor.slot_for(ssd_id).drain()

    def store_io_context(self, ssd_id: int) -> dict:
        return self.adaptor.slot_for(ssd_id).io_context()

    def surprise_remove(self, ssd_id: int) -> Optional[NVMeSSD]:
        """Surprise hot-remove of a backend drive: every in-flight and
        buffered command fails with NAMESPACE_NOT_READY; the front end
        survives and the slot awaits a replacement."""
        for binding in self._passthrough.values():
            if binding.ssd_id == ssd_id:
                # kill the translation first: commands the drive already
                # fetched can no longer land CQEs or raise MSI-X, which
                # is exactly the driver-timeout-only recovery of a
                # passthrough path with no interposed safety net
                binding.translation.live = False
        removed = self.adaptor.slot_for(ssd_id).surprise_remove()
        if removed is not None:
            for binding in self._passthrough.values():
                if binding.ssd_id == ssd_id:
                    for dev_qid in binding.dev_qids.values():
                        removed.detach_queue_pair(dev_qid)
        if self.cxl is not None:
            # the drive's DRAM left with it: its borrow grants die now
            self.cxl.on_slot_removed(ssd_id)
        if self.obs is not None:
            self.obs.counter("engine_surprise_removes", slot=str(ssd_id)).inc()
        return removed
