"""Standard SR-IOV layer of the BMS-Engine.

The engine exposes 4 PFs and 124 VFs to the host — 128 independent
standard-NVMe controllers in total — so the unmodified host NVMe driver
binds them exactly like physical drives (the transparency property).

Each :class:`FrontEndFunction` implements the driver-facing
``NVMeControllerTarget`` protocol: queue-pair attach, doorbell
addresses inside the engine's BAR, MSI-X via its PCIe function, and the
namespace bound to it by the BMS-Controller.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..nvme.namespace import Namespace
from ..nvme.queues import CompletionQueue, QueuePair, SubmissionQueue
from ..nvme.spec import DOORBELL_STRIDE
from ..pcie.config_space import ConfigSpace, SRIOVCapability
from ..pcie.function import PCIeFunction
from ..sim import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import BMSEngine

__all__ = ["FrontEndFunction", "SRIOVLayer", "NUM_PFS", "NUM_VFS", "FN_BAR_BYTES"]

NUM_PFS = 4
NUM_VFS = 124
#: per-function slice of the engine BAR (doorbell page region)
FN_BAR_BYTES = 0x4000
DOORBELL_REGION_OFFSET = 0x1000


class FrontEndFunction:
    """One front-end NVMe controller (a PF or VF of the engine)."""

    def __init__(self, engine: "BMSEngine", fn_id: int, pcie_fn: PCIeFunction):
        self.engine = engine
        self.fn_id = fn_id  # 1-based: 0 is reserved by the global-PRP format
        self.function = pcie_fn
        self.namespaces: dict[int, Namespace] = {}
        self.queue_pairs: dict[int, QueuePair] = {}
        self.ns_key: Optional[str] = None  # engine namespace bound here
        #: PassthroughBinding when this function's I/O queues are mapped
        #: straight onto a back-end SSD; None = fully interposed
        self.passthrough = None

    @property
    def is_vf(self) -> bool:
        return self.function.is_vf

    @property
    def bar_base(self) -> int:
        return self.engine.front_bar_base + (self.fn_id - 1) * FN_BAR_BYTES

    def doorbell_addr(self, qid: int, is_cq: bool = False) -> int:
        return (
            self.bar_base
            + DOORBELL_REGION_OFFSET
            + (2 * qid + (1 if is_cq else 0)) * DOORBELL_STRIDE
        )

    def attach_queue_pair(
        self, qid: int, sq: SubmissionQueue, cq: CompletionQueue
    ) -> QueuePair:
        qp = QueuePair(
            sq=sq,
            cq=cq,
            sq_doorbell=self.doorbell_addr(qid, is_cq=False),
            cq_doorbell=self.doorbell_addr(qid, is_cq=True),
        )
        self.queue_pairs[qid] = qp
        if self.passthrough is not None and qid != 0:
            # share the very same rings with the backing SSD
            self.engine.passthrough_map_queue(self, qid, qp)
        return qp

    def detach_queue_pair(self, qid: int) -> None:
        if self.passthrough is not None:
            self.engine.passthrough_unmap_queue(self, qid)
        self.queue_pairs.pop(qid, None)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "VF" if self.is_vf else "PF"
        return f"<FrontEnd{kind} fn={self.fn_id} ns={self.ns_key}>"


class _FrontBarRegion:
    """The engine's front BAR: doorbell writes demux to (function, qid)."""

    def __init__(self, layer: "SRIOVLayer", access_ns: int = 20):
        self.layer = layer
        self._access_ns = access_ns
        self._c_doorbells: dict = {}  # (fn, slot) -> counter handle

    @property
    def access_ns(self) -> int:
        return self._access_ns

    def mem_write(self, addr: int, length: int, data) -> None:
        offset = addr - self.layer.engine.front_bar_base
        fn_index, fn_off = divmod(offset, FN_BAR_BYTES)
        db_off = fn_off - DOORBELL_REGION_OFFSET
        if db_off < 0:
            return  # controller-register writes (admin config) — no doorbell
        slot, kind = divmod(db_off // DOORBELL_STRIDE, 2)
        if kind == 0:
            obs = self.layer.engine.obs
            if obs is not None:
                c = self._c_doorbells.get((fn_index, slot))
                if c is None:
                    c = self._c_doorbells[(fn_index, slot)] = obs.counter(
                        "sriov_doorbells", fn=str(fn_index + 1), qid=str(slot)
                    )
                c.inc()
            self.layer.engine.on_front_doorbell(fn_index + 1, slot)

    def mem_read(self, addr: int, length: int):
        return None


class SRIOVLayer:
    """Creates and indexes the engine's PFs and VFs."""

    def __init__(self, engine: "BMSEngine"):
        self.engine = engine
        self.functions: dict[int, FrontEndFunction] = {}
        self._bar = _FrontBarRegion(self)
        engine.front_port.map_window(
            engine.front_bar_base, (NUM_PFS + NUM_VFS) * FN_BAR_BYTES, self._bar
        )
        fn_id = 1
        for pf_index in range(NUM_PFS):
            config = ConfigSpace(
                vendor_id=0x1DED,  # a cloud-vendor id
                device_id=0xB057,
                sriov=SRIOVCapability(total_vfs=NUM_VFS // NUM_PFS),
                bar_sizes={0: FN_BAR_BYTES},
            )
            config.enable()
            pf = PCIeFunction(fn_id, config, name=f"bms.pf{pf_index}")
            self.functions[fn_id] = FrontEndFunction(engine, fn_id, pf)
            fn_id += 1
        for pf_index in range(NUM_PFS):
            pf_fn = self.functions[pf_index + 1].function
            for vf_index in range(NUM_VFS // NUM_PFS):
                config = ConfigSpace(
                    vendor_id=0x1DED, device_id=0xB057, bar_sizes={0: FN_BAR_BYTES}
                )
                config.enable()
                vf = PCIeFunction(
                    fn_id, config, name=f"bms.pf{pf_index}.vf{vf_index}",
                    is_vf=True, parent_pf=pf_fn,
                )
                self.functions[fn_id] = FrontEndFunction(engine, fn_id, vf)
                fn_id += 1

    def function_by_id(self, fn_id: int) -> FrontEndFunction:
        fn = self.functions.get(fn_id)
        if fn is None:
            raise SimulationError(f"no front-end function {fn_id}")
        return fn

    @property
    def physical_functions(self) -> list[FrontEndFunction]:
        return [fn for fn in self.functions.values() if not fn.is_vf]

    @property
    def virtual_functions(self) -> list[FrontEndFunction]:
        return [fn for fn in self.functions.values() if fn.is_vf]
