"""BMS-Engine QoS module — paper Fig. 5.

One command buffer per namespace.  On every incoming command the
engine checks whether the namespace's current I/O rate has reached its
threshold; if so, the command goes into the namespace's command buffer
and the *command dispatcher* reschedules it when budget accrues.
Commands under threshold pass straight through.

Limits are token buckets on both IOPS and bandwidth; either may be
unlimited.  Used for the paper's isolation/fairness claims (Fig. 11/12)
and for the QoS on/off ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import MetricsRegistry
from ..sim import Event, Simulator, Store, TokenBucket

__all__ = ["QoSLimits", "QoSModule"]


@dataclass(frozen=True)
class QoSLimits:
    """Per-namespace thresholds; ``None`` means unlimited."""

    max_iops: Optional[float] = None
    max_bytes_per_sec: Optional[float] = None
    burst_ios: float = 64.0
    burst_bytes: float = 4 * 1024 * 1024

    @property
    def unlimited(self) -> bool:
        return self.max_iops is None and self.max_bytes_per_sec is None


class _NamespaceQoS:
    """Buckets + command buffer + dispatcher for one namespace."""

    def __init__(self, sim: Simulator, ns_key: str, limits: QoSLimits,
                 obs: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.ns_key = ns_key
        self.obs = obs
        self.limits = limits
        self.iops_bucket = TokenBucket(
            sim, limits.max_iops, limits.burst_ios, name=f"qos.{ns_key}.iops"
        )
        self.bw_bucket = TokenBucket(
            sim, limits.max_bytes_per_sec, limits.burst_bytes, name=f"qos.{ns_key}.bw"
        )
        self.buffer: Store = Store(sim, name=f"qos.{ns_key}.cmdbuf")
        self.buffered_total = 0
        self.passed_total = 0
        self._dispatcher_running = False
        #: bound CheckContext (qos checker); None = dormant, zero-cost
        self.checks = None
        if obs is not None:
            self._c_passed = obs.counter("qos_passed", ns=ns_key)
            self._c_buffered = obs.counter("qos_buffered", ns=ns_key)
            self._g_depth = obs.gauge("qos_buffer_depth", ns=ns_key)

    def over_threshold(self, nbytes: int) -> bool:
        return self.iops_bucket.would_block(1.0) or self.bw_bucket.would_block(nbytes)

    def admit(self, nbytes: int, span=None) -> Event:
        """Event that fires when the command may proceed."""
        seq = None
        if self.checks is not None:
            seq = self.checks.on_qos_admit(self, span=span)
        gate = self.sim.event(name="qos.admit")
        # The dispatcher check closes an overtaking window: after the
        # dispatcher's ``buffer.get()`` succeeds, the buffer is briefly
        # empty while the dequeued command still waits on its token
        # bucket; without the flag a same-instant arrival would see an
        # empty buffer, take the fast path, and steal its tokens.
        if (
            not self._dispatcher_running
            and len(self.buffer) == 0
            and not self.over_threshold(nbytes)
        ):
            # fast path: consume and pass through
            self.iops_bucket.consume(1.0)
            self.bw_bucket.consume(nbytes)
            self.passed_total += 1
            if self.obs is not None:
                self._c_passed.inc()
            if self.checks is not None:
                self.checks.on_qos_grant(self, seq, fast=True, span=span)
            gate.succeed()
            return gate
        # threshold reached: into the command buffer for rescheduling
        self.buffered_total += 1
        if self.obs is not None:
            self._c_buffered.inc()
            self._g_depth.add(1)
        self.buffer.put((gate, nbytes, seq, span))
        if not self._dispatcher_running:
            self._dispatcher_running = True
            self.sim.process(self._dispatch(), name="qos.dispatch")
        return gate

    def _dispatch(self):
        """Command dispatcher: replay buffered commands in order."""
        while len(self.buffer) > 0:
            gate, nbytes, seq, span = (yield self.buffer.get())
            if self.obs is not None:
                # the gauge tracks buffer occupancy, so it drops when the
                # command leaves the buffer, not when its tokens arrive
                self._g_depth.add(-1)
            yield self.iops_bucket.consume(1.0)
            yield self.bw_bucket.consume(nbytes)
            self.passed_total += 1
            if self.obs is not None:
                self._c_passed.inc()
            if self.checks is not None:
                self.checks.on_qos_grant(self, seq, fast=False, span=span)
            gate.succeed()
        self._dispatcher_running = False


class QoSModule:
    """The engine-level QoS stage: routes commands per namespace."""

    def __init__(self, sim: Simulator, enabled: bool = True,
                 obs: Optional[MetricsRegistry] = None, checks=None):
        self.sim = sim
        self.enabled = enabled
        self.obs = obs
        self.checks = checks
        self._per_ns: dict[str, _NamespaceQoS] = {}

    def configure(self, ns_key: str, limits: QoSLimits) -> None:
        nsq = _NamespaceQoS(self.sim, ns_key, limits, obs=self.obs)
        if self.checks is not None:
            self.checks.bind_qos(nsq)
        self._per_ns[ns_key] = nsq

    def limits_for(self, ns_key: str) -> Optional[QoSLimits]:
        nsq = self._per_ns.get(ns_key)
        return nsq.limits if nsq else None

    def admit(self, ns_key: str, nbytes: int, span=None) -> Event:
        """Gate a command; fires immediately when QoS is off/unlimited."""
        if not self.enabled:
            gate = self.sim.event(name="qos.off")
            gate.succeed()
            return gate
        nsq = self._per_ns.get(ns_key)
        if nsq is None or nsq.limits.unlimited:
            gate = self.sim.event(name="qos.unlimited")
            gate.succeed()
            return gate
        return nsq.admit(nbytes, span=span)

    def buffered_total(self, ns_key: str) -> int:
        """Cumulative count of commands that were ever buffered."""
        nsq = self._per_ns.get(ns_key)
        return nsq.buffered_total if nsq else 0

    def buffer_depth(self, ns_key: str) -> int:
        """Commands sitting in the namespace's buffer right now."""
        nsq = self._per_ns.get(ns_key)
        return len(nsq.buffer) if nsq else 0

    def passed_count(self, ns_key: str) -> int:
        nsq = self._per_ns.get(ns_key)
        return nsq.passed_total if nsq else 0
