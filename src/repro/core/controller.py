"""BMS-Controller: the ARM-SoC management plane of BM-Store.

Everything the cloud vendor does without touching the host OS lives
here (paper §IV-D):

* **out-of-band management** — an MCTP endpoint + NVMe-MI protocol
  analyzer receive commands from the remote console over PCIe VDMs;
* **I/O monitor** — reads the engine's per-function counters over AXI;
* **hot-upgrade** — downloads SSD firmware in the background, then
  pauses/drains the back-end, stores the I/O context, activates, and
  resumes — tenants see a pause but never an error;
* **hot-plug** — replaces a faulty back-end drive while the front-end
  NVMe identity (the tenant's logical drive) survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..mgmt.mctp import MCTPEndpoint
from ..mgmt.nvme_mi import MCTP_TYPE_NVME_MI, MIOpcode, MIRequest, MIResponse, MIStatus
from ..nvme.command import SQE
from ..nvme.firmware import FirmwareImage
from ..nvme.spec import AdminOpcode, StatusCode
from ..nvme.ssd import NVMeSSD
from ..pcie.tlp import VendorDefinedMessage
from ..sim import Event, SimulationError, Simulator
from ..sim.units import ms, sec
from .engine import BMSEngine
from .qos import QoSLimits
from .target_controller import AdminRequest

__all__ = ["ControllerTimings", "UpgradeReport", "HotPlugReport", "BMSController"]

#: MCTP endpoint id of the BMS-Controller
BMS_EID = 0x1D


@dataclass(frozen=True)
class ControllerTimings:
    """ARM SoC software costs."""

    command_processing_ns: int = 20_000  # per management command
    upgrade_pre_ns: int = ms(60)  # quiesce + context store
    upgrade_post_ns: int = ms(40)  # context reload + resume
    hotplug_pre_ns: int = ms(50)
    hotplug_post_ns: int = ms(50)
    download_chunk_bytes: int = 256 * 1024


@dataclass
class UpgradeReport:
    """Timings and outcome of one firmware hot-upgrade (Table IX)."""
    ssd_id: int
    version: str
    total_ns: int = 0
    io_pause_ns: int = 0
    processing_ns: int = 0
    ok: bool = False


@dataclass
class HotPlugReport:
    """Outcome of one hot-plug replacement (identity preserved?)."""
    ssd_id: int
    io_pause_ns: int = 0
    front_end_preserved: bool = True
    ok: bool = False


class BMSController:
    """The ARM management co-processor."""

    def __init__(
        self,
        engine: BMSEngine,
        timings: ControllerTimings = ControllerTimings(),
        name: str = "bmsc",
    ):
        self.sim: Simulator = engine.sim
        self.engine = engine
        self.timings = timings
        self.name = name
        self.upgrade_reports: list[UpgradeReport] = []
        self.hotplug_reports: list[HotPlugReport] = []
        self._staged_replacements: dict[int, NVMeSSD] = {}
        self._monitor_history: list[dict] = []
        self._monitor_task = None
        self._watchdog_task = None
        #: out-of-band fault visibility: injected faults and recoveries
        self.fault_log: list[dict] = []
        self.recoveries = 0
        self._image_buffer = engine.chip_memory.alloc(timings.download_chunk_bytes)

        # MCTP endpoint: VDMs arriving at the engine's front port are
        # the physical layer; responses go back route-to-root.
        self.mctp = MCTPEndpoint(
            self.sim, BMS_EID, transmit=self._vdm_transmit, name=f"{name}.mctp"
        )
        self.mctp.on_message(MCTP_TYPE_NVME_MI, self._on_mi_message)
        engine.front_port.on_vdm(self._on_vdm)

        # drain in-band admin commands the engine forwards (tenants may
        # probe, but management operations are vendor-only)
        self.sim.process(self._inband_admin_loop(), name=f"{name}.inband")

    # --------------------------------------------------------- MCTP plumbing
    def _vdm_transmit(self, dst_eid: int, raw: bytes) -> Event:
        vdm = VendorDefinedMessage(
            requester_id=0, payload=raw, route_to_root=True
        )
        return self.engine.front_port.send_vdm(vdm)

    def _on_vdm(self, vdm: VendorDefinedMessage) -> None:
        self.mctp.receive_packet(vdm.payload)

    # ----------------------------------------------------- NVMe-MI dispatch
    def _on_mi_message(self, src_eid: int, raw: bytes) -> None:
        request = MIRequest.from_bytes(raw)
        self.sim.process(self._serve(src_eid, request), name=f"{self.name}.mi")

    def _serve(self, src_eid: int, request: MIRequest):
        yield self.sim.timeout(self.timings.command_processing_ns)
        try:
            status, body = yield from self._execute(request)
        except SimulationError as exc:
            from ..checks.runtime import InvariantViolation

            if isinstance(exc, InvariantViolation):
                raise  # checker violations surface, never become MI errors
            status, body = MIStatus.INVALID_PARAMETER, {"error": str(exc)}
        response = MIResponse(request.request_id, int(status), body)
        yield self.mctp.send_message(src_eid, MCTP_TYPE_NVME_MI, response.to_bytes())

    def _execute(self, request: MIRequest):
        op = request.opcode
        p = request.params
        if op == int(MIOpcode.HEALTH_STATUS_POLL):
            body = yield from self._health_poll()
            return MIStatus.SUCCESS, body
        if op == int(MIOpcode.CONTROLLER_LIST):
            return MIStatus.SUCCESS, {
                "physical_functions": len(self.engine.sriov.physical_functions),
                "virtual_functions": len(self.engine.sriov.virtual_functions),
            }
        if op == int(MIOpcode.READ_IO_STATS):
            body = yield from self.read_io_stats(p["fn"])
            return MIStatus.SUCCESS, body
        if op == int(MIOpcode.IO_MONITOR_SNAPSHOT):
            body = yield from self.io_monitor_snapshot()
            if body is None:
                return MIStatus.UNSUPPORTED, {"error": "no metrics registry attached"}
            return MIStatus.SUCCESS, body
        if op == int(MIOpcode.CREATE_NAMESPACE):
            limits = None
            if "max_iops" in p or "max_mbps" in p:
                limits = QoSLimits(
                    max_iops=p.get("max_iops"),
                    max_bytes_per_sec=(
                        p["max_mbps"] * 1e6 if p.get("max_mbps") else None
                    ),
                )
            self.engine.create_namespace(
                p["key"], int(p["size_bytes"]), placement=p.get("placement"),
                limits=limits,
            )
            return MIStatus.SUCCESS, {"key": p["key"]}
        if op == int(MIOpcode.DELETE_NAMESPACE):
            self.engine.delete_namespace(p["key"])
            return MIStatus.SUCCESS, {}
        if op == int(MIOpcode.BIND_NAMESPACE):
            self.engine.bind_namespace(p["key"], int(p["fn"]))
            return MIStatus.SUCCESS, {}
        if op == int(MIOpcode.UNBIND_NAMESPACE):
            self.engine.unbind_namespace(p["key"])
            return MIStatus.SUCCESS, {}
        if op == int(MIOpcode.SET_QOS):
            self.engine.qos.configure(
                p["key"],
                QoSLimits(
                    max_iops=p.get("max_iops"),
                    max_bytes_per_sec=(
                        p["max_mbps"] * 1e6 if p.get("max_mbps") else None
                    ),
                ),
            )
            return MIStatus.SUCCESS, {}
        if op == int(MIOpcode.FIRMWARE_HOT_UPGRADE):
            image = FirmwareImage(
                version=p["version"],
                size_bytes=int(p.get("size_bytes", 2 * 1024 * 1024)),
                activation_ns=sec(float(p.get("activation_s", 6.5))),
            )
            report = yield self.hot_upgrade(int(p["ssd"]), image)
            return (
                MIStatus.SUCCESS if report.ok else MIStatus.INTERNAL_ERROR,
                _report_body(report),
            )
        if op == int(MIOpcode.HOT_PLUG_REPLACE):
            report = yield self.hot_plug(int(p["ssd"]))
            return (
                MIStatus.SUCCESS if report.ok else MIStatus.INTERNAL_ERROR,
                {"io_pause_ms": report.io_pause_ns / 1e6,
                 "front_end_preserved": report.front_end_preserved},
            )
        if op == int(MIOpcode.GET_UPGRADE_REPORT):
            return MIStatus.SUCCESS, {
                "reports": [_report_body(r) for r in self.upgrade_reports]
            }
        if op == int(MIOpcode.CREATE_SNAPSHOT):
            vm = self.engine.volume_manager()
            body = vm.create_snapshot(p["volume"], p["snapshot"])
            return MIStatus.SUCCESS, body
        if op == int(MIOpcode.CLONE_VOLUME):
            vm = self.engine.volume_manager()
            ens = vm.clone_volume(p["source"], p["key"])
            # provisioning is metadata-only: O(chunks) table writes on
            # the ARM core, never a data copy
            yield self.sim.timeout(vm.clone_cost_ns(len(ens.chunks)))
            if "max_iops" in p or "max_mbps" in p:
                self.engine.qos.configure(
                    p["key"],
                    QoSLimits(
                        max_iops=p.get("max_iops"),
                        max_bytes_per_sec=(
                            p["max_mbps"] * 1e6 if p.get("max_mbps") else None
                        ),
                    ),
                )
            if p.get("fn") is not None:
                self.engine.bind_namespace(p["key"], int(p["fn"]))
            return MIStatus.SUCCESS, vm.volume_stat(p["key"])
        if op == int(MIOpcode.VOLUME_STAT):
            vm = self.engine.volume_manager()
            if p.get("key") is not None:
                return MIStatus.SUCCESS, vm.volume_stat(p["key"])
            return MIStatus.SUCCESS, {"volumes": vm.stat_all()}
        if op == int(MIOpcode.PUSH_INSTALL):
            pm = self.engine.push_manager()
            body = pm.install(p["key"], p["program"])
            return MIStatus.SUCCESS, body
        if op == int(MIOpcode.PUSH_UNINSTALL):
            pm = self.engine.push_manager()
            return MIStatus.SUCCESS, pm.uninstall(p["key"])
        if op == int(MIOpcode.PUSH_STAT):
            pm = self.engine.push_manager()
            if p.get("key") is not None:
                return MIStatus.SUCCESS, pm.stat(p["key"])
            return MIStatus.SUCCESS, {"programs": pm.stat_all()}
        if op == int(MIOpcode.CXL_ENABLE):
            tier = self.engine.cxl_tier()
            return MIStatus.SUCCESS, tier.stat()
        if op == int(MIOpcode.CXL_STAT):
            tier = self.engine.cxl
            if tier is None:
                return MIStatus.UNSUPPORTED, {"error": "CXL buffer tier is dormant"}
            return MIStatus.SUCCESS, tier.stat()
        if op == int(MIOpcode.GET_FAULT_LOG):
            yield self.sim.timeout(self.engine.timings.monitor_sample_ns)
            slots = [
                {
                    "index": slot.index,
                    "attached": slot.ssd is not None,
                    "inflight": getattr(slot, "inflight", 0),
                }
                for slot in self.engine.adaptor.slots
            ]
            return MIStatus.SUCCESS, {
                "events": list(self.fault_log),
                "slots": slots,
                "recoveries": self.recoveries,
            }
        return MIStatus.UNSUPPORTED, {}

    # ------------------------------------------------------------- I/O monitor
    def read_io_stats(self, fn_id: int):
        """Read one function's counters over the AXI bus."""
        base = self.engine.AXI_FN_BASE + (fn_id - 1) * self.engine.AXI_FN_STRIDE
        body = {"fn": fn_id}
        for off, key in (
            (0x00, "read_ops"), (0x08, "write_ops"),
            (0x10, "read_bytes"), (0x18, "write_bytes"), (0x20, "errors"),
        ):
            body[key] = yield self.engine.axi.read(base + off)
        return body

    def io_monitor_snapshot(self):
        """Full observability dump: the engine's attached registry.

        Models the paper's I/O monitor export path — the sampling cost
        is charged per metric batch before the snapshot is taken.
        """
        if self.engine.obs is None:
            return None
        yield self.sim.timeout(self.engine.timings.monitor_sample_ns)
        return self.engine.obs.snapshot()

    def _health_poll(self):
        total = yield self.engine.axi.read(self.engine.AXI_TOTAL_IOS)
        nssd = yield self.engine.axi.read(self.engine.AXI_NUM_SSDS)
        drives = []
        for slot in self.engine.adaptor.slots:
            if slot.ssd is not None:
                drives.append(slot.ssd.health_log())
        return {"total_ios": total, "num_ssds": nssd, "drives": drives}

    def start_monitor(self, period_ns: int, fn_ids: list[int]):
        """Periodic sampling of I/O counters into the history buffer."""
        def loop():
            while True:
                yield self.sim.timeout(period_ns)
                sample = {"t": self.sim.now, "fns": {}}
                for fn_id in fn_ids:
                    sample["fns"][fn_id] = (yield from self.read_io_stats(fn_id))
                self._monitor_history.append(sample)

        self._monitor_task = self.sim.process(loop(), name=f"{self.name}.monitor")
        return self._monitor_task

    @property
    def monitor_history(self) -> list[dict]:
        return self._monitor_history

    # -------------------------------------------------------------- hot-upgrade
    def hot_upgrade(self, ssd_id: int, image: FirmwareImage, slot_number: int = 2) -> Event:
        """Firmware hot-upgrade; event fires with an :class:`UpgradeReport`."""
        done = self.sim.event(name=f"{self.name}.upgrade")
        self.sim.process(self._upgrade_proc(ssd_id, image, slot_number, done),
                         name=f"{self.name}.upg")
        return done

    def _admin_roundtrip(self, slot, sqe: SQE) -> Event:
        ev = self.sim.event(name=f"{self.name}.bad")
        slot.forward_admin(sqe, lambda status: ev.succeed(status))
        return ev

    def _upgrade_proc(self, ssd_id: int, image: FirmwareImage, slot_number: int, done: Event):
        report = UpgradeReport(ssd_id=ssd_id, version=image.version)
        t_start = self.sim.now
        slot = self.engine.adaptor.slot_for(ssd_id)

        # phase 1: download the image in the background — I/O still flows
        chunk = self.timings.download_chunk_bytes
        remaining = image.size_bytes
        while remaining > 0:
            take = min(chunk, remaining)
            sqe = SQE(
                opcode=int(AdminOpcode.FIRMWARE_DOWNLOAD), cid=0, nsid=0,
                prp1=self._image_buffer, cdw10=take // 4 - 1,
                payload=image.version.encode(),
            )
            status = yield self._admin_roundtrip(slot, sqe)
            if status != int(StatusCode.SUCCESS):
                report.total_ns = self.sim.now - t_start
                self.upgrade_reports.append(report)
                done.succeed(report)
                return
            remaining -= take

        # phase 2: quiesce — pause forwarding, drain in-flight, store context
        pause_t0 = self.sim.now
        self.engine.pause_backend(ssd_id)
        yield self.engine.drain_backend(ssd_id)
        context = self.engine.store_io_context(ssd_id)
        yield self.sim.timeout(self.timings.upgrade_pre_ns)

        # phase 3: commit + activate (the drive resets internally)
        sqe = SQE(
            opcode=int(AdminOpcode.FIRMWARE_COMMIT), cid=0, nsid=0,
            cdw10=slot_number | (3 << 3),  # activate immediately
            payload=image,
        )
        status = yield self._admin_roundtrip(slot, sqe)

        # phase 4: reload context and resume tenant I/O
        yield self.sim.timeout(self.timings.upgrade_post_ns)
        reloaded = self.engine.store_io_context(ssd_id)
        assert reloaded["sq_tail"] == context["sq_tail"]
        self.engine.resume_backend(ssd_id)
        pause_t1 = self.sim.now

        report.ok = status == int(StatusCode.SUCCESS)
        report.total_ns = self.sim.now - t_start
        report.io_pause_ns = pause_t1 - pause_t0
        report.processing_ns = self.timings.upgrade_pre_ns + self.timings.upgrade_post_ns
        self.upgrade_reports.append(report)
        done.succeed(report)

    # ----------------------------------------------------------------- hot-plug
    def stage_replacement(self, ssd_id: int, new_ssd: NVMeSSD) -> None:
        """Physically seat the replacement drive for slot ``ssd_id``."""
        self._staged_replacements[ssd_id] = new_ssd

    def hot_plug(self, ssd_id: int) -> Event:
        """Replace the drive in ``ssd_id`` with the staged one."""
        done = self.sim.event(name=f"{self.name}.hotplug")
        self.sim.process(self._hotplug_proc(ssd_id, done), name=f"{self.name}.hp")
        return done

    def _hotplug_proc(self, ssd_id: int, done: Event):
        report = HotPlugReport(ssd_id=ssd_id)
        new_ssd = self._staged_replacements.pop(ssd_id, None)
        if new_ssd is None:
            done.succeed(report)
            return
        slot = self.engine.adaptor.slot_for(ssd_id)
        bound_before = {
            key: ens.bound_fn for key, ens in self.engine.namespaces.items()
        }
        pause_t0 = self.sim.now
        self.engine.pause_backend(ssd_id)
        yield self.engine.drain_backend(ssd_id)
        yield self.sim.timeout(self.timings.hotplug_pre_ns)
        slot.detach_ssd()
        slot.attach_ssd(new_ssd)
        yield self.sim.timeout(self.timings.hotplug_post_ns)
        self.engine.resume_backend(ssd_id)
        report.io_pause_ns = self.sim.now - pause_t0
        # transparency check: the tenant's logical drives never changed
        bound_after = {
            key: ens.bound_fn for key, ens in self.engine.namespaces.items()
        }
        report.front_end_preserved = bound_before == bound_after
        report.ok = True
        self.hotplug_reports.append(report)
        done.succeed(report)

    # ------------------------------------------------- fault observation
    FAULT_LOG_CAPACITY = 256

    def note_fault(self, kind: str, target: str) -> None:
        """Record an observed fault (called by the FaultInjector and by
        recovery paths); bounded so long fault storms stay cheap."""
        if len(self.fault_log) < self.FAULT_LOG_CAPACITY:
            self.fault_log.append({"t": self.sim.now, "kind": kind,
                                   "target": target})

    def start_watchdog(self, period_ns: int = ms(20)):
        """Periodic slot-health scan: when a surprise-removed slot has a
        staged replacement seated, drive the re-attach (namespace
        re-attach without disturbing the front end).  Idempotent."""
        if self._watchdog_task is not None:
            return self._watchdog_task

        def loop():
            while True:
                yield self.sim.timeout(period_ns)
                for slot in self.engine.adaptor.slots:
                    if slot.ssd is None and slot.index in self._staged_replacements:
                        yield from self._reseat(slot.index)

        self._watchdog_task = self.sim.process(loop(), name=f"{self.name}.watchdog")
        return self._watchdog_task

    def _reseat(self, ssd_id: int):
        """Recovery from surprise removal: attach the re-seated drive
        back into its slot.  Nothing is in flight (the removal failed
        everything), so no drain is needed — just the hot-plug
        pre/post software costs around the attach."""
        new_ssd = self._staged_replacements.pop(ssd_id, None)
        if new_ssd is None:
            return
        report = HotPlugReport(ssd_id=ssd_id)
        slot = self.engine.adaptor.slot_for(ssd_id)
        pause_t0 = self.sim.now
        self.engine.pause_backend(ssd_id)
        yield self.sim.timeout(self.timings.hotplug_pre_ns)
        slot.attach_ssd(new_ssd)
        yield self.sim.timeout(self.timings.hotplug_post_ns)
        self.engine.resume_backend(ssd_id)
        report.io_pause_ns = self.sim.now - pause_t0
        report.ok = True
        self.hotplug_reports.append(report)
        self.recoveries += 1
        self.note_fault("reattach", str(ssd_id))
        if self.engine.obs is not None:
            self.engine.obs.counter("bmsc_recoveries", slot=str(ssd_id)).inc()

    # --------------------------------------------------------- in-band admin
    def _inband_admin_loop(self):
        """Handle admin commands the Target Controller forwards (step in
        Fig. 3: device management commands go to the BMS-Controller)."""
        while True:
            request: AdminRequest = yield self.target_mailbox.get()
            yield self.sim.timeout(self.timings.command_processing_ns)
            # tenant-visible admin surface is the standard NVMe feature
            # set; vendor management is out-of-band only
            request.respond(StatusCode.INVALID_OPCODE)

    @property
    def target_mailbox(self):
        return self.engine.target_controller.admin_mailbox


def _report_body(report: UpgradeReport) -> dict[str, Any]:
    return {
        "ssd": report.ssd_id,
        "version": report.version,
        "total_s": report.total_ns / 1e9,
        "io_pause_s": report.io_pause_ns / 1e9,
        "processing_ms": report.processing_ns / 1e6,
        "ok": report.ok,
    }
