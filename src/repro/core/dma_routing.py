"""DMA request routing for zero-copy — paper Fig. 4(b).

The BMS-Engine bridges two separate PCIe domains (host-side and
SSD-side) without buffering data.  It rewrites every host PRP entry
into a *global PRP* before handing commands to the back-end SSDs:

* bits [63:57] — PCIe PF/VF function id (7 bits)
* bit  [56]    — PRP-list flag (1 bit)
* bits [47:0]  — the original host physical address

When a back-end SSD later issues a DMA TLP at a global address, the
engine recovers the function id from the address, strips the tag, and
forwards the request out of the matching front-end PF/VF into host
memory — merging the two domains into one and letting the SSD move
data directly to/from the host.
"""

from __future__ import annotations

from ..sim import SimulationError

__all__ = [
    "FUNCTION_ID_BITS",
    "FUNCTION_ID_SHIFT",
    "LIST_FLAG_SHIFT",
    "ADDRESS_MASK",
    "RouteStats",
    "encode_global_prp",
    "decode_global_prp",
    "is_global_prp",
]


class RouteStats:
    """Counts of DMA requests the engine routed between the domains.

    Fed by the engine's step-⑤ router; ``writes``/``reads`` are from
    the SSD's point of view (a host *read* command makes the SSD issue
    DMA *writes* into host memory).
    """

    __slots__ = ("writes", "write_bytes", "reads", "read_bytes")

    def __init__(self) -> None:
        self.writes = 0
        self.write_bytes = 0
        self.reads = 0
        self.read_bytes = 0

    def note_write(self, nbytes: int) -> None:
        self.writes += 1
        self.write_bytes += nbytes

    def note_read(self, nbytes: int) -> None:
        self.reads += 1
        self.read_bytes += nbytes

    @property
    def total_requests(self) -> int:
        return self.writes + self.reads

    @property
    def total_bytes(self) -> int:
        return self.write_bytes + self.read_bytes

FUNCTION_ID_BITS = 7
FUNCTION_ID_SHIFT = 57
LIST_FLAG_SHIFT = 56
ADDRESS_MASK = (1 << 48) - 1
_FN_MASK = (1 << FUNCTION_ID_BITS) - 1


def encode_global_prp(function_id: int, host_addr: int, is_list: bool = False) -> int:
    """Insert the function id + list flag into a host PRP entry.

    ``function_id`` 0 is reserved so that untagged (engine-local)
    addresses are distinguishable — the engine assigns front-end
    functions ids 1..127.
    """
    if not 0 < function_id <= _FN_MASK:
        raise SimulationError(
            f"function id {function_id} outside 1..{_FN_MASK} (0 is reserved)"
        )
    if host_addr & ~ADDRESS_MASK:
        raise SimulationError(f"host address {host_addr:#x} exceeds 48 bits")
    return (
        (function_id << FUNCTION_ID_SHIFT)
        | ((1 if is_list else 0) << LIST_FLAG_SHIFT)
        | host_addr
    )


def decode_global_prp(global_prp: int) -> tuple[int, int, bool]:
    """Split a global PRP into (function_id, host_addr, is_list)."""
    function_id = (global_prp >> FUNCTION_ID_SHIFT) & _FN_MASK
    is_list = bool((global_prp >> LIST_FLAG_SHIFT) & 1)
    host_addr = global_prp & ADDRESS_MASK
    return function_id, host_addr, is_list


def is_global_prp(addr: int) -> bool:
    """True when the address carries a non-zero function-id tag."""
    return ((addr >> FUNCTION_ID_SHIFT) & _FN_MASK) != 0
